"""Documentation lane: intra-repo markdown links and the CLI smoke check.

CI runs this file as the docs lane (see ``.github/workflows/ci.yml``): it
fails on broken intra-repo markdown links — the cross-link mesh between
README, ``docs/architecture.md``, ``docs/workloads.md`` and the rest is
load-bearing navigation — and smoke-tests ``python -m repro bench list``,
the command the workload docs tell readers to start from.
"""

import re
from pathlib import Path

import pytest

from repro.workloads.suite import EXTENDED_BENCHMARK_NAMES

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown that must exist and participates in the link check.
DOC_FILES = sorted(
    list(REPO_ROOT.glob("*.md")) + list((REPO_ROOT / "docs").glob("*.md")))

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _intra_repo_links(path: Path):
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target


class TestMarkdownLinks:
    def test_docs_exist(self):
        names = {path.name for path in DOC_FILES}
        assert {"README.md", "ROADMAP.md"} <= names
        assert {"architecture.md", "workloads.md", "configurations.md",
                "performance.md", "store.md"} <= {
            path.name for path in DOC_FILES if path.parent.name == "docs"}

    @pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
    def test_intra_repo_links_resolve(self, doc):
        broken = []
        for target in _intra_repo_links(doc):
            resolved = (doc.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"{doc.relative_to(REPO_ROOT)}: broken links {broken}"

    def test_docs_cross_link_mesh(self):
        """architecture.md links every companion page; workloads.md and the
        README link architecture/workloads — the navigation the issue asks
        for."""
        architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
        for companion in ("configurations.md", "performance.md", "store.md",
                          "workloads.md"):
            assert companion in architecture
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/architecture.md" in readme
        assert "docs/workloads.md" in readme


class TestCliSmoke:
    def test_bench_list_lists_every_benchmark(self, capsys):
        from repro.__main__ import main

        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        for name in EXTENDED_BENCHMARK_NAMES:
            assert name in out
        assert "mediabench-plus" in out

    def test_bench_list_tag_filter(self, capsys):
        from repro.__main__ import main

        assert main(["bench", "list", "tag:mediabench"]) == 0
        out = capsys.readouterr().out
        assert "jpeg_enc" in out and "viterbi_dec" not in out

    def test_bench_list_bad_selector_is_a_clean_error(self, capsys):
        from repro.__main__ import main

        assert main(["bench", "list", "tag:nope"]) == 2
        err = capsys.readouterr().err
        assert "known tags" in err
