"""Unit and property tests for the µSIMD packed-operation semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra import numpy as hnp

from repro.isa import packed


def u8_words(count=1):
    return hnp.arrays(np.uint8, (count, 8))


def s16_words(count=1):
    return hnp.arrays(np.int16, (count, 4))


class TestShapesAndHelpers:
    def test_ensure_lanes_accepts_correct_shape(self):
        arr = np.zeros((3, 8), dtype=np.uint8)
        assert packed.ensure_lanes(arr, 8).shape == (3, 8)

    def test_ensure_lanes_rejects_wrong_lane_count(self):
        with pytest.raises(ValueError):
            packed.ensure_lanes(np.zeros((3, 4)), 8)

    def test_ensure_lanes_rejects_scalar(self):
        with pytest.raises(ValueError):
            packed.ensure_lanes(np.array(3), 8)

    def test_to_packed_roundtrip(self):
        flat = np.arange(32, dtype=np.uint8)
        words = packed.to_packed(flat, 8)
        assert words.shape == (4, 8)
        np.testing.assert_array_equal(packed.from_packed(words), flat)

    def test_to_packed_rejects_partial_word(self):
        with pytest.raises(ValueError):
            packed.to_packed(np.arange(10, dtype=np.uint8), 8)

    def test_saturate_unsigned_byte(self):
        out = packed.saturate(np.array([-5, 0, 200, 300]), np.uint8)
        np.testing.assert_array_equal(out, [0, 0, 200, 255])

    def test_saturate_signed_word(self):
        out = packed.saturate(np.array([-40000, -3, 5, 40000]), np.int16)
        np.testing.assert_array_equal(out, [-32768, -3, 5, 32767])

    def test_saturate_rejects_float_dtype(self):
        with pytest.raises(TypeError):
            packed.saturate(np.array([1.0]), np.float32)


class TestArithmetic:
    def test_paddb_wraps(self):
        out = packed.paddb(np.full(8, 250, np.uint8), np.full(8, 10, np.uint8))
        assert out.dtype == np.uint8
        np.testing.assert_array_equal(out, np.full(8, 4))

    def test_paddusb_saturates(self):
        out = packed.paddusb(np.full(8, 250, np.uint8), np.full(8, 10, np.uint8))
        np.testing.assert_array_equal(out, np.full(8, 255))

    def test_paddsw_saturates_both_ends(self):
        a = np.array([32000, -32000, 100, 0], dtype=np.int16)
        b = np.array([32000, -32000, -50, 0], dtype=np.int16)
        np.testing.assert_array_equal(packed.paddsw(a, b), [32767, -32768, 50, 0])

    def test_psubusb_clamps_at_zero(self):
        out = packed.psubusb(np.full(8, 10, np.uint8), np.full(8, 20, np.uint8))
        np.testing.assert_array_equal(out, np.zeros(8))

    def test_psubw_wraps(self):
        out = packed.psubw(np.array([-32768] * 4, np.int16), np.ones(4, np.int16))
        np.testing.assert_array_equal(out, np.full(4, 32767))

    def test_pmullw_low_half(self):
        a = np.array([300, -300, 2, 0], dtype=np.int16)
        b = np.array([300, 300, 3, 7], dtype=np.int16)
        expected = ((a.astype(np.int32) * b.astype(np.int32)) & 0xFFFF).astype(np.uint16).astype(np.int16)
        np.testing.assert_array_equal(packed.pmullw(a, b), expected)

    def test_pmulhw_high_half(self):
        a = np.array([30000, -30000, 2, 0], dtype=np.int16)
        b = np.array([30000, 30000, 3, 7], dtype=np.int16)
        expected = ((a.astype(np.int32) * b.astype(np.int32)) >> 16).astype(np.int16)
        np.testing.assert_array_equal(packed.pmulhw(a, b), expected)

    def test_pmaddwd_pairwise(self):
        a = np.array([1, 2, 3, 4], dtype=np.int16)
        b = np.array([5, 6, 7, 8], dtype=np.int16)
        np.testing.assert_array_equal(packed.pmaddwd(a, b), [17, 53])

    def test_pavgb_rounds_up(self):
        out = packed.pavgb(np.array([1] * 8, np.uint8), np.array([2] * 8, np.uint8))
        np.testing.assert_array_equal(out, np.full(8, 2))

    def test_psadbw_matches_reference(self):
        a = np.arange(8, dtype=np.uint8)
        b = np.arange(8, dtype=np.uint8)[::-1].copy()
        assert packed.psadbw(a, b) == int(np.abs(a.astype(int) - b.astype(int)).sum())

    def test_psadbw_batched(self):
        a = np.zeros((3, 8), dtype=np.uint8)
        b = np.full((3, 8), 2, dtype=np.uint8)
        np.testing.assert_array_equal(packed.psadbw(a, b), [16, 16, 16])

    def test_min_max(self):
        a = np.array([1, 200, 3, 4, 5, 6, 7, 8], dtype=np.uint8)
        b = np.array([2, 100, 3, 0, 9, 6, 1, 8], dtype=np.uint8)
        np.testing.assert_array_equal(packed.pminub(a, b), np.minimum(a, b))
        np.testing.assert_array_equal(packed.pmaxub(a, b), np.maximum(a, b))

    def test_pabs(self):
        np.testing.assert_array_equal(packed.pabsb(np.array([-1, 3], np.int8)), [1, 3])
        np.testing.assert_array_equal(packed.pabsw(np.array([-7, 7], np.int16)), [7, 7])


class TestLogicalAndCompare:
    def test_pcmpeqb_mask_values(self):
        a = np.array([1, 2, 3, 4, 5, 6, 7, 8], np.uint8)
        b = np.array([1, 0, 3, 0, 5, 0, 7, 0], np.uint8)
        out = packed.pcmpeqb(a, b)
        np.testing.assert_array_equal(out, [255, 0, 255, 0, 255, 0, 255, 0])

    def test_pcmpgtw_mask_values(self):
        out = packed.pcmpgtw(np.array([5, -3, 0, 9], np.int16),
                             np.array([1, 0, 0, 10], np.int16))
        np.testing.assert_array_equal(out, [-1, 0, 0, 0])

    def test_pandn(self):
        a = np.array([0xF0] * 8, np.uint8)
        b = np.array([0xFF] * 8, np.uint8)
        np.testing.assert_array_equal(packed.pandn(a, b), np.full(8, 0x0F))

    def test_logical_ops(self):
        a = np.array([0b1100] * 4, np.int16)
        b = np.array([0b1010] * 4, np.int16)
        np.testing.assert_array_equal(packed.pand(a, b), np.full(4, 0b1000))
        np.testing.assert_array_equal(packed.por(a, b), np.full(4, 0b1110))
        np.testing.assert_array_equal(packed.pxor(a, b), np.full(4, 0b0110))


class TestShifts:
    def test_psllw_discards_overflow(self):
        out = packed.psllw(np.array([0x4000, 1, -1, 3], np.int16), 2)
        assert out.dtype == np.int16
        assert out[1] == 4

    def test_psrlw_logical(self):
        out = packed.psrlw(np.array([0x8000, 16, 2, 4], np.uint16), 1)
        np.testing.assert_array_equal(out, [0x4000, 8, 1, 2])

    def test_psraw_arithmetic(self):
        out = packed.psraw(np.array([-16, 16, -1, 7], np.int16), 2)
        np.testing.assert_array_equal(out, [-4, 4, -1, 1])

    def test_pslld_psrld_psrad(self):
        a32 = np.array([-8, 8], np.int32)
        np.testing.assert_array_equal(packed.pslld(a32, 1), [-16, 16])
        np.testing.assert_array_equal(packed.psrad(a32, 1), [-4, 4])
        assert packed.psrld(np.array([8, 8], np.uint32), 2).tolist() == [2, 2]


class TestPackUnpack:
    def test_packuswb_saturates(self):
        lo = np.array([-5, 100, 300, 20], np.int16)
        hi = np.array([255, 256, 0, -1], np.int16)
        np.testing.assert_array_equal(packed.packuswb(lo, hi),
                                      [0, 100, 255, 20, 255, 255, 0, 0])

    def test_packsswb_saturates_signed(self):
        lo = np.array([-200, 100, 300, 20], np.int16)
        hi = np.array([127, -128, 0, -1], np.int16)
        np.testing.assert_array_equal(packed.packsswb(lo, hi),
                                      [-128, 100, 127, 20, 127, -128, 0, -1])

    def test_packssdw(self):
        lo = np.array([70000, -70000], np.int32)
        hi = np.array([5, -5], np.int32)
        np.testing.assert_array_equal(packed.packssdw(lo, hi),
                                      [32767, -32768, 5, -5])

    def test_unpack_interleave_low_high(self):
        a = np.arange(8, dtype=np.uint8)
        b = np.arange(8, 16, dtype=np.uint8)
        np.testing.assert_array_equal(packed.punpcklbw(a, b),
                                      [0, 8, 1, 9, 2, 10, 3, 11])
        np.testing.assert_array_equal(packed.punpckhbw(a, b),
                                      [4, 12, 5, 13, 6, 14, 7, 15])

    def test_unpack_words(self):
        a = np.array([0, 1, 2, 3], np.int16)
        b = np.array([4, 5, 6, 7], np.int16)
        np.testing.assert_array_equal(packed.punpcklwd(a, b), [0, 4, 1, 5])
        np.testing.assert_array_equal(packed.punpckhwd(a, b), [2, 6, 3, 7])

    def test_unpack_u8_to_s16_roundtrip(self):
        a = np.array([0, 1, 127, 128, 200, 255, 3, 4], np.uint8)
        lo, hi = packed.unpack_u8_to_s16(a)
        assert lo.dtype == np.int16
        np.testing.assert_array_equal(packed.pack_s16_to_u8(lo, hi), a)

    def test_pshufw(self):
        a = np.array([10, 11, 12, 13], np.int16)
        np.testing.assert_array_equal(packed.pshufw(a, (3, 2, 1, 0)), [13, 12, 11, 10])

    def test_pshufw_rejects_bad_order(self):
        with pytest.raises(ValueError):
            packed.pshufw(np.zeros(4, np.int16), (0, 1, 2))


class TestProperties:
    @given(u8_words(2))
    @settings(max_examples=50)
    def test_paddusb_never_exceeds_255(self, words):
        out = packed.paddusb(words[0], words[1])
        reference = np.minimum(words[0].astype(int) + words[1].astype(int), 255)
        np.testing.assert_array_equal(out, reference)

    @given(u8_words(2))
    @settings(max_examples=50)
    def test_psadbw_equals_reference(self, words):
        expected = int(np.abs(words[0].astype(int) - words[1].astype(int)).sum())
        assert packed.psadbw(words[0], words[1]) == expected

    @given(u8_words(2))
    @settings(max_examples=50)
    def test_pavgb_equals_rounded_mean(self, words):
        expected = (words[0].astype(int) + words[1].astype(int) + 1) // 2
        np.testing.assert_array_equal(packed.pavgb(words[0], words[1]), expected)

    @given(s16_words(2))
    @settings(max_examples=50)
    def test_paddsw_matches_clipped_sum(self, words):
        expected = np.clip(words[0].astype(int) + words[1].astype(int), -32768, 32767)
        np.testing.assert_array_equal(packed.paddsw(words[0], words[1]), expected)

    @given(u8_words(1))
    @settings(max_examples=50)
    def test_unpack_pack_is_identity(self, words):
        lo, hi = packed.unpack_u8_to_s16(words[0])
        np.testing.assert_array_equal(packed.pack_s16_to_u8(lo, hi), words[0])

    @given(s16_words(2))
    @settings(max_examples=50)
    def test_pmaddwd_equals_pairwise_dot(self, words):
        a, b = words[0].astype(np.int64), words[1].astype(np.int64)
        expected = np.array([a[0] * b[0] + a[1] * b[1], a[2] * b[2] + a[3] * b[3]])
        np.testing.assert_array_equal(packed.pmaddwd(words[0], words[1]), expected)
