"""The persistent content-addressed result store and its engine wiring.

Covers the three layers separately:

* :class:`repro.store.ResultStore` itself — round-tripping, atomicity of
  the publish step, corruption tolerance, schema-version namespacing;
* :func:`repro.core.runner.execute_requests` with a store — skip-if-stored,
  write-back, determinism of the merged result;
* :class:`repro.experiments.evaluation.SuiteEvaluation` — the ``ensure``
  path that makes a warm ``report`` render with zero simulations.
"""

from __future__ import annotations

import json

import pytest

from repro.core.runner import execute_requests
from repro.experiments.evaluation import SuiteEvaluation
from repro.machine.config import get_config
from repro.machine.latency import LatencyModel
from repro.sim.plan import ExperimentPlan, RunRequest
from repro.sim.stats import STATS_SCHEMA_VERSION, RunStats
from repro.store import ResultStore, run_fingerprint
from repro.workloads.suite import SuiteParameters, build_suite


def _example_stats() -> RunStats:
    run = RunStats(program_name="prog", config_name="cfg", flavor="vector")
    region = run.region("R1", vectorizable=True)
    region.cycles = 1234
    region.operations = 99
    region.micro_ops = 450
    region.memory_stall_cycles = 17
    region.memory_accesses = 40
    region.segment_executions = 8
    run.region("R0").cycles = 777
    return run


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        stats = _example_stats()
        store.put("ab" * 32, stats)
        loaded = store.get("ab" * 32)
        assert loaded is not None
        assert loaded.canonical_json() == stats.canonical_json()
        assert len(store) == 1

    def test_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("cd" * 32) is None
        assert store.stats.misses == 1

    def test_sharded_layout_and_atomic_publish(self, tmp_path):
        store = ResultStore(tmp_path)
        fingerprint = "ef" * 32
        path = store.put(fingerprint, _example_stats())
        assert path.parent.name == fingerprint[:2]
        assert path.parent.parent.name == f"v{STATS_SCHEMA_VERSION}"
        # no temporary droppings survive the publish
        leftovers = [p for p in path.parent.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_double_put_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        stats = _example_stats()
        store.put("11" * 32, stats)
        store.put("11" * 32, stats)
        assert len(store) == 1
        assert store.get("11" * 32).canonical_json() == stats.canonical_json()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        fingerprint = "22" * 32
        path = store.put(fingerprint, _example_stats())
        path.write_bytes(b"{ truncated nonsense")
        assert store.get(fingerprint) is None
        assert store.stats.corrupt == 1
        # a fresh put repairs the entry
        store.put(fingerprint, _example_stats())
        assert store.get(fingerprint) is not None

    def test_corrupt_entry_is_quarantined_not_left_in_place(self, tmp_path):
        store = ResultStore(tmp_path)
        fingerprint = "66" * 32
        path = store.put(fingerprint, _example_stats())
        path.write_bytes(b"{ truncated nonsense")
        assert store.get(fingerprint) is None
        assert store.stats.quarantined == 1
        assert not path.exists()
        moved = list(store.corrupt_dir.iterdir())
        assert [p.name for p in moved] == [path.name]
        # the original bytes are preserved for post-mortems
        assert moved[0].read_bytes() == b"{ truncated nonsense"

    def test_quarantine_collisions_get_numbered(self, tmp_path):
        store = ResultStore(tmp_path)
        fingerprint = "77" * 32
        for _ in range(2):
            path = store.put(fingerprint, _example_stats())
            path.write_bytes(b"bad")
            assert store.get(fingerprint) is None
        names = sorted(p.name for p in store.corrupt_dir.iterdir())
        assert names == [path.name, f"{path.name}.1"]

    def test_put_retries_transient_oserror_once(self, tmp_path, monkeypatch):
        import errno

        store = ResultStore(tmp_path)
        calls = []
        publish = ResultStore._publish

        def flaky_publish(self, path, fingerprint, payload):
            calls.append(fingerprint)
            if len(calls) == 1:
                raise OSError(errno.EINTR, "interrupted system call")
            publish(self, path, fingerprint, payload)

        monkeypatch.setattr(ResultStore, "_publish", flaky_publish)
        monkeypatch.setattr("repro.store.result_store.PUT_RETRY_DELAY", 0.0)
        store.put("88" * 32, _example_stats())
        assert len(calls) == 2
        assert store.stats.put_retries == 1
        assert store.stats.writes == 1
        assert store.get("88" * 32) is not None

    def test_stats_snapshot_carries_the_robustness_counters(self, tmp_path):
        snapshot = ResultStore(tmp_path).stats.snapshot()
        for key in ("quarantined", "put_retries", "corrupt"):
            assert snapshot[key] == 0

    def test_verify_clean_store(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("aa" * 32, _example_stats())
        store.put("bb" * 32, _example_stats())
        report = store.verify()
        assert (report.total, report.ok, report.corrupt) == (2, 2, 0)
        assert report.quarantined == ()
        assert "2 ok, 0 corrupt" in report.summary()

    def test_verify_quarantines_undecodable_and_mislabelled(self, tmp_path):
        store = ResultStore(tmp_path)
        good = store.put("aa" * 32, _example_stats())
        torn = store.put("bb" * 32, _example_stats())
        torn.write_bytes(torn.read_bytes()[:10])
        liar = store.put("cc" * 32, _example_stats())
        # an entry whose envelope fingerprint disagrees with its filename
        liar.rename(liar.with_name(f"{'cd' * 32}.json"))
        report = ResultStore(tmp_path).verify()
        assert (report.total, report.ok, report.corrupt) == (3, 1, 2)
        assert len(report.quarantined) == 2
        assert good.exists()
        assert not torn.exists()

    def test_verify_without_quarantine_only_reports(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put("aa" * 32, _example_stats())
        path.write_bytes(b"bad")
        report = ResultStore(tmp_path).verify(quarantine=False)
        assert report.corrupt == 1 and report.quarantined == ()
        assert path.exists()  # left in place for inspection

    def test_verify_walks_every_schema_namespace(self, tmp_path):
        old = ResultStore(tmp_path, schema_version=STATS_SCHEMA_VERSION)
        old.put("aa" * 32, _example_stats())
        bumped = ResultStore(tmp_path, schema_version=STATS_SCHEMA_VERSION + 1)
        bumped.put("bb" * 32, _example_stats())
        report = bumped.verify()
        assert report.total == 2 and report.corrupt == 0
        assert report.by_version == {STATS_SCHEMA_VERSION: 1,
                                     STATS_SCHEMA_VERSION + 1: 1}

    def test_iter_entry_paths_is_deterministic(self, tmp_path):
        store = ResultStore(tmp_path)
        for head in ("aa", "bb", "cc"):
            store.put(head * 32, _example_stats())
        first = list(store.iter_entry_paths())
        second = list(store.iter_entry_paths())
        assert first == second
        assert [path.stem[:2] for _, path in first] == ["aa", "bb", "cc"]

    def test_schema_envelope_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        fingerprint = "33" * 32
        path = store.put(fingerprint, _example_stats())
        envelope = json.loads(path.read_text())
        envelope["schema"] = STATS_SCHEMA_VERSION + 1
        path.write_text(json.dumps(envelope))
        assert store.get(fingerprint) is None

    def test_schema_bump_invalidates_by_namespace(self, tmp_path):
        old = ResultStore(tmp_path, schema_version=STATS_SCHEMA_VERSION)
        old.put("44" * 32, _example_stats())
        bumped = ResultStore(tmp_path, schema_version=STATS_SCHEMA_VERSION + 1)
        assert bumped.get("44" * 32) is None
        assert len(bumped) == 0
        assert len(old) == 1  # old entries untouched, just never consulted

    def test_msgpack_requires_package(self, tmp_path):
        try:
            import msgpack  # noqa: F401
        except ImportError:
            with pytest.raises(RuntimeError, match="msgpack"):
                ResultStore(tmp_path, serialization="msgpack")
        else:
            store = ResultStore(tmp_path, serialization="msgpack")
            store.put("55" * 32, _example_stats())
            assert store.get("55" * 32) is not None

    def test_unknown_serialization_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path, serialization="pickle")

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert ResultStore.from_env() is None
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        store = ResultStore.from_env()
        assert store is not None and store.root == tmp_path


class TestRunFingerprint:
    def test_axes_are_distinguished(self, tiny_suite):
        spec = tiny_suite["gsm_enc"]
        cfg_a, cfg_b = get_config("vector2-2w"), get_config("vector1-2w")
        base = run_fingerprint(spec.program_for(cfg_a), cfg_a)
        assert run_fingerprint(spec.program_for(cfg_a), cfg_a) == base
        assert run_fingerprint(spec.program_for(cfg_b), cfg_b) != base
        assert run_fingerprint(spec.program_for(cfg_a), cfg_a,
                               perfect_memory=True) != base
        slow = LatencyModel().with_overrides(vector_load=9)
        assert run_fingerprint(spec.program_for(cfg_a), cfg_a,
                               latency_model=slow) != base

    def test_structurally_identical_rebuilds_share_a_key(self, tiny_parameters):
        config = get_config("vector2-2w")
        first = build_suite(tiny_parameters, names=["gsm_enc"])["gsm_enc"]
        second = build_suite(tiny_parameters, names=["gsm_enc"])["gsm_enc"]
        assert first is not second
        assert (run_fingerprint(first.program_for(config), config)
                == run_fingerprint(second.program_for(config), config))


class TestExecuteRequestsStore:
    PLAN = ExperimentPlan([
        RunRequest("gsm_enc", "vliw-2w", False),
        RunRequest("gsm_enc", "vector2-2w", False),
        RunRequest("gsm_enc", "vector2-2w", True),
    ])

    def test_write_back_then_skip(self, tiny_suite, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        cold = execute_requests(self.PLAN, tiny_suite, store=store)
        assert store.stats.writes == len(self.PLAN)
        assert len(store) == len(self.PLAN)

        # a second process (modelled by a fresh store handle) must not
        # simulate anything: fail loudly if the engine is reached
        import repro.core.runner as runner_module
        monkeypatch.setattr(
            runner_module, "execute_plan",
            lambda *a, **k: pytest.fail("store should have answered every run"))
        warm = execute_requests(self.PLAN, tiny_suite,
                                store=ResultStore(tmp_path))
        assert list(warm) == list(cold)
        for request in self.PLAN:
            assert warm[request].canonical_json() == cold[request].canonical_json()

    def test_partial_store_simulates_only_the_gap(self, tiny_suite, tmp_path):
        store = ResultStore(tmp_path)
        first = ExperimentPlan(self.PLAN.requests[:1])
        execute_requests(first, tiny_suite, store=store)
        store2 = ResultStore(tmp_path)
        execute_requests(self.PLAN, tiny_suite, store=store2)
        assert store2.stats.hits == 1
        assert store2.stats.writes == len(self.PLAN) - 1

    def test_store_with_jobs_matches_serial_without(self, tiny_suite, tmp_path):
        with_store = execute_requests(self.PLAN, tiny_suite, jobs=2,
                                      min_parallel_runs=0,
                                      store=ResultStore(tmp_path))
        plain = execute_requests(self.PLAN, tiny_suite)
        assert ([s.canonical_json() for s in with_store.values()]
                == [s.canonical_json() for s in plain.values()])


class TestSuiteEvaluationStore:
    CONFIGS = ("vliw-2w", "usimd-2w", "vector2-2w")

    def _evaluation(self, parameters, store):
        return SuiteEvaluation(parameters=parameters,
                               benchmark_names=("gsm_enc",),
                               config_names=self.CONFIGS, store=store)

    def test_ensure_consults_and_fills_the_store(self, tiny_parameters, tmp_path):
        first = self._evaluation(tiny_parameters, ResultStore(tmp_path))
        first.prefetch()
        assert first.simulated_runs == len(self.CONFIGS) * 2

        second = self._evaluation(tiny_parameters, ResultStore(tmp_path))
        second.prefetch()
        assert second.simulated_runs == 0
        for name in self.CONFIGS:
            assert (second.run("gsm_enc", name).canonical_json()
                    == first.run("gsm_enc", name).canonical_json())

    def test_store_disabled_by_default_without_env(self, tiny_parameters,
                                                   monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        evaluation = SuiteEvaluation(parameters=tiny_parameters)
        assert evaluation.store is None

    def test_store_from_env(self, tiny_parameters, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        evaluation = SuiteEvaluation(parameters=tiny_parameters)
        assert isinstance(evaluation.store, ResultStore)
        assert evaluation.store.root == tmp_path

    def test_store_path_string_accepted(self, tiny_parameters, tmp_path):
        evaluation = SuiteEvaluation(parameters=tiny_parameters,
                                     store=str(tmp_path / "s"))
        assert isinstance(evaluation.store, ResultStore)


class TestWarmReportByteIdentical:
    """The acceptance criterion: warm store -> zero simulations, same bytes."""

    def test_full_tiny_report(self, tmp_path):
        from repro.experiments.report import full_report

        cold_eval = SuiteEvaluation(parameters=SuiteParameters.tiny(),
                                    store=ResultStore(tmp_path))
        cold = full_report(cold_eval)
        assert cold_eval.simulated_runs > 0

        warm_eval = SuiteEvaluation(parameters=SuiteParameters.tiny(),
                                    store=ResultStore(tmp_path))
        warm = full_report(warm_eval)
        assert warm_eval.simulated_runs == 0
        assert warm == cold
