"""The standing trace-vs-interpreter fuzz lane (repro.fuzz).

Tier-1 runs a bounded hypothesis-driven seed sweep at tiny sizes (kept
well under ten seconds); the ``slow`` marker guards a wider sweep for the
nightly lane.  The injected-bug tests prove the whole pipeline — sweep,
field diff, shrinker, reproducer file — catches a deliberate engine
mutation and minimizes it to a replayable case.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import (
    FLAVORS,
    check_reproducer,
    compare_spec,
    load_reproducer,
    run_fuzz,
    shrink_spec,
    write_reproducer,
)
from repro.workloads.synthetic import (
    LoopSpec,
    ProgramSpec,
    count_statements,
    generate_spec,
    params_for_seed,
)


class TestBoundedSweep:
    """The tier-1 fast lane: a bounded seed sweep, trace == interpreter."""

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=12, deadline=None)
    def test_generated_programs_agree(self, seed):
        spec = generate_spec(params_for_seed(seed, scale="tiny"))
        for flavor in FLAVORS:
            assert compare_spec(spec, flavor, "vector2-2w") is None

    def test_run_fuzz_clean_sweep(self):
        result = run_fuzz(6, perfect_modes=(False,))
        assert result.ok
        assert result.seeds_run == 6
        assert result.comparisons == 6 * len(FLAVORS)

    def test_budget_stops_early(self):
        result = run_fuzz(10_000, budget_seconds=0.0)
        assert result.budget_exhausted
        assert result.seeds_run < 10_000

    @pytest.mark.slow
    def test_wide_sweep_both_memory_modes(self):
        result = run_fuzz(60, perfect_modes=(False, True))
        assert result.ok, [m.detail for m in result.mismatches]
        assert result.comparisons == 60 * len(FLAVORS) * 2


def _has_strided_vector_access(spec: ProgramSpec) -> bool:
    def walk(nodes) -> bool:
        for node in nodes:
            if isinstance(node, LoopSpec):
                if walk(node.body):
                    return True
            elif node.kind == "mem" and node.unit == "vector" \
                    and node.stride != 8:
                return True
        return False
    return walk(spec.body)


def _inject_strided_bug(spec: ProgramSpec, stats) -> None:
    """A deliberate engine bug: strided vector programs gain one cycle."""
    if _has_strided_vector_access(spec):
        next(iter(stats.regions.values())).cycles += 1


class TestInjectedBug:
    """Acceptance: a deliberate mutation is caught, shrunk and replayable."""

    def test_bug_is_caught_shrunk_and_replayable(self, tmp_path):
        result = run_fuzz(12, corrupt=_inject_strided_bug,
                          reproducer_dir=tmp_path)
        assert not result.ok, "the injected bug must be caught"
        mismatch = result.mismatches[0]
        assert mismatch.statements <= 20
        assert mismatch.detail
        path = Path(mismatch.reproducer)
        assert path.is_file()
        # while the bug is "in the engine", the reproducer still fails ...
        assert check_reproducer(path, corrupt=_inject_strided_bug) is not None
        # ... and once fixed, it passes: a permanent regression case
        assert check_reproducer(path) is None

    def test_shrunk_spec_keeps_the_trigger(self):
        seed = next(
            seed for seed in range(100)
            if _has_strided_vector_access(
                generate_spec(params_for_seed(seed, scale="tiny"))))
        spec = generate_spec(params_for_seed(seed, scale="tiny"))

        def still_fails(candidate):
            return compare_spec(candidate, FLAVORS[2], "vector2-2w",
                                corrupt=_inject_strided_bug) is not None

        assert still_fails(spec)
        shrunk = shrink_spec(spec, still_fails)
        assert _has_strided_vector_access(shrunk)
        assert count_statements(shrunk) <= count_statements(spec)
        assert still_fails(shrunk)

    def test_without_shrinking(self, tmp_path):
        result = run_fuzz(12, corrupt=_inject_strided_bug,
                          reproducer_dir=tmp_path, shrink=False)
        assert not result.ok
        assert Path(result.mismatches[0].reproducer).is_file()


class TestReproducerFiles:
    def test_write_load_round_trip(self, tmp_path):
        from repro.compiler.ir import ISAFlavor

        spec = generate_spec(params_for_seed(4, scale="tiny"))
        path = write_reproducer(tmp_path, spec=spec, flavor=ISAFlavor.VECTOR,
                                config="vector2-2w", perfect=False, seed=4,
                                detail="example")
        data = load_reproducer(path)
        assert data["spec"] == spec
        assert data["flavor"] is ISAFlavor.VECTOR
        assert data["config"] == "vector2-2w"
        assert data["perfect"] is False
        assert data["seed"] == 4

    def test_unknown_format_rejected(self, tmp_path):
        bad = tmp_path / "reproducer_bad.json"
        bad.write_text('{"format": "something-else/9"}')
        with pytest.raises(ValueError, match="format"):
            load_reproducer(bad)


class TestFuzzCli:
    def test_clean_run_exits_zero(self, capsys, tmp_path):
        from repro.__main__ import main

        assert main(["fuzz", "--seeds", "3",
                     "--reproducer-dir", str(tmp_path / "out")]) == 0
        out = capsys.readouterr().out
        assert "0 mismatch(es)" in out
        assert not (tmp_path / "out").exists()  # created lazily

    def test_unknown_config_is_a_clean_error(self, capsys):
        from repro.__main__ import main

        assert main(["fuzz", "--seeds", "1",
                     "--configs", "warp-drive"]) == 2
        assert "error:" in capsys.readouterr().err
