"""Equivalence tests for the trace-compiled execution tier.

The trace engine's contract is *identity*, not approximation: for any
program, configuration and memory mode it must produce the same
:class:`~repro.sim.stats.RunStats` — field for field — and leave the memory
hierarchy in the same state (same counters, same cache contents) as the
interpreting reference executor.  These tests enforce the contract with
hand-written kernels, the benchmark suite, and property-based random
programs with random loop nests, and cross-check both engines against the
cycle-accurate engine on single segments.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.builder import KernelBuilder
from repro.compiler.ir import ISAFlavor
from repro.compiler.scheduler import compile_program
from repro.compiler.trace import trace_program
from repro.core.architecture import VectorMicroSimdVliwMachine
from repro.isa.operations import Opcode
from repro.machine.config import get_config
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.engines import make_engine
from repro.sim.fast import ExecutionEngine, execute_program
from repro.sim.trace import TraceExecutionEngine
from repro.sim.vliw import CycleAccurateEngine
from tests.test_compiler import build_segment_from_spec, random_segment_strategy
from tests.test_sim import build_streaming_program


def _hierarchy(config, perfect=False, preload_span=None):
    hierarchy = MemoryHierarchy(config.memory, l1_ports=config.l1_ports,
                                l2_port_words=config.l2_port_words,
                                perfect=perfect)
    if preload_span is not None and not perfect:
        hierarchy.preload(*preload_span)
    return hierarchy


def assert_engines_identical(program, config, perfect=False, preload_span=None,
                             chunk_size=None):
    """Interpreter and trace tier must agree on stats and hierarchy state."""
    compiled = compile_program(program, config)
    ref_hierarchy = _hierarchy(config, perfect, preload_span)
    trace_hierarchy = _hierarchy(config, perfect, preload_span)
    reference = ExecutionEngine(compiled, ref_hierarchy).run()
    engine = TraceExecutionEngine(compiled, trace_hierarchy)
    if chunk_size is not None:
        engine.chunk_size = chunk_size
    traced = engine.run()
    assert traced.to_dict() == reference.to_dict()
    assert traced.canonical_json() == reference.canonical_json()
    assert trace_hierarchy.statistics() == ref_hierarchy.statistics()
    return reference


# ---------------------------------------------------------------------------
# deterministic cases
# ---------------------------------------------------------------------------

class TestTraceEngineBasics:
    @pytest.mark.parametrize("perfect", [False, True])
    @pytest.mark.parametrize("stride", [8, 256])
    def test_streaming_kernel(self, vector2_2w, perfect, stride):
        program = build_streaming_program(stride_bytes=stride)
        assert_engines_identical(program, vector2_2w, perfect=perfect)

    def test_chunked_replay_matches_unchunked(self, vector2_2w):
        program = build_streaming_program(iterations=16)
        for chunk in (1, 3, 7):
            assert_engines_identical(program, vector2_2w, chunk_size=chunk)

    def test_zero_and_one_trip_loops(self, vector2_2w):
        builder = KernelBuilder("edge", ISAFlavor.VECTOR)
        with builder.loop(0, name="never"):
            builder.load(builder.addr(0x1000))
        with builder.loop(1, name="once") as i:
            builder.store(builder.addr(0x2000, (i, 8)), builder.iop(Opcode.MOV))
        assert_engines_identical(builder.program(), vector2_2w)

    def test_memory_free_program(self, vliw_2w):
        builder = KernelBuilder("compute", ISAFlavor.SCALAR)
        with builder.loop(50, name="i"):
            builder.independent_ops(4)
        assert_engines_identical(builder.program(), vliw_2w)
        assert_engines_identical(builder.program(), vliw_2w, perfect=True)

    def test_wrapped_table_lookup_addresses(self, vector2_2w):
        builder = KernelBuilder("lut", ISAFlavor.VECTOR)
        with builder.loop(13, name="i") as i:
            builder.load(builder.addr(0x4000, (i, 40), wrap_bytes=256))
        assert_engines_identical(builder.program(), vector2_2w)

    def test_coherency_traffic(self, vector2_2w):
        builder = KernelBuilder("coherent", ISAFlavor.VECTOR)
        with builder.loop(8, name="i") as i:
            value = builder.load(builder.addr(0x8000, (i, 64)))
            builder.store(builder.addr(0x8000, (i, 64)), value)
            builder.vload(builder.addr(0x8000, (i, 64)), vl=16)
        assert_engines_identical(builder.program(), vector2_2w,
                                 preload_span=(0x8000, 4096))

    def test_engine_escape_hatch(self, vector2_2w):
        program = build_streaming_program()
        default = execute_program(program, vector2_2w)
        interp = execute_program(program, vector2_2w, engine="interpreter")
        traced = execute_program(program, vector2_2w, engine="trace")
        assert default.canonical_json() == interp.canonical_json()
        assert default.canonical_json() == traced.canonical_json()

    def test_machine_run_accepts_engine(self, vector2_2w):
        machine = VectorMicroSimdVliwMachine(vector2_2w)
        program = build_streaming_program()
        a = machine.run(program, engine="interpreter")
        b = machine.run(program, engine="trace")
        assert a.canonical_json() == b.canonical_json()

    def test_unknown_engine_rejected(self, vector2_2w):
        compiled = compile_program(build_streaming_program(), vector2_2w)
        with pytest.raises(ValueError, match="unknown execution engine"):
            make_engine("warp-drive", compiled,
                        MemoryHierarchy(vector2_2w.memory))

    def test_trace_lowering_covers_every_access(self, vector2_2w):
        program = build_streaming_program(iterations=8)
        trace = trace_program(compile_program(program, vector2_2w))
        op_index, addresses = trace.materialize(0, trace.stream_length)
        assert len(op_index) == trace.stream_length
        # interleaving: the two memory ops of the loop body alternate
        assert sorted(set(op_index.tolist())) == list(range(len(trace.ops)))
        assert addresses.min() >= 0


# ---------------------------------------------------------------------------
# benchmark suite
# ---------------------------------------------------------------------------

class TestSuiteEquivalence:
    # two of the paper's six plus every extended-suite kernel: the four
    # new access patterns (data-dependent ACS, long strided streams, 2-D
    # stencil reuse, recurrences) must not open a gap between the tiers
    @pytest.mark.parametrize("benchmark_name", [
        "gsm_enc", "jpeg_enc",
        "viterbi_dec", "fir_bank", "sobel_edge", "adpcm_codec",
    ])
    @pytest.mark.parametrize("config_name", ["vliw-2w", "vector2-2w"])
    @pytest.mark.parametrize("perfect", [False, True])
    def test_benchmark_runs_identical(self, tiny_suite, benchmark_name,
                                      config_name, perfect):
        config = get_config(config_name)
        program = tiny_suite[benchmark_name].program_for(config)
        machine = VectorMicroSimdVliwMachine(config, perfect_memory=perfect)
        reference = machine.run(program, engine="interpreter")
        traced = machine.run(program, engine="trace")
        assert traced.to_dict() == reference.to_dict()

    def test_tiny_report_byte_identical_across_engines(self, tiny_parameters):
        from repro.experiments.evaluation import SuiteEvaluation
        from repro.experiments.report import full_report

        traced = full_report(SuiteEvaluation(parameters=tiny_parameters,
                                             engine="trace"))
        interpreted = full_report(SuiteEvaluation(parameters=tiny_parameters,
                                                  engine="interpreter"))
        assert traced == interpreted


# ---------------------------------------------------------------------------
# property-based equivalence on random programs
# ---------------------------------------------------------------------------

_SCALAR_STRIDES = (0, 1, 3, 8, 32, 64)
_VECTOR_STRIDES = (8, 16, 24, 64, 256)


@st.composite
def random_programs(draw):
    """A random kernel program with a random loop nest and address mix."""
    builder = KernelBuilder("prop", ISAFlavor.VECTOR)
    bases = [draw(st.integers(0, 1 << 12)) * 8 for _ in range(3)]
    active_vars = []

    def emit_segment():
        for _ in range(draw(st.integers(1, 3))):
            kind = draw(st.sampled_from(
                ["load", "store", "vload", "vstore", "compute"]))
            base = draw(st.sampled_from(bases))
            terms = tuple((var, draw(st.sampled_from(_SCALAR_STRIDES)))
                          for var in active_vars
                          if draw(st.booleans()))
            wrap = draw(st.sampled_from((None, None, 128, 512)))
            address = builder.addr(base, *terms, wrap_bytes=wrap)
            if kind == "load":
                builder.load(address)
            elif kind == "store":
                builder.store(address, builder.iop(Opcode.MOV))
            elif kind == "vload":
                builder.vload(address, vl=draw(st.integers(1, 16)),
                              stride_bytes=draw(st.sampled_from(_VECTOR_STRIDES)))
            elif kind == "vstore":
                builder.vstore(address, builder.vop(Opcode.VADDW, vl=4),
                               vl=draw(st.integers(1, 16)),
                               stride_bytes=draw(st.sampled_from(_VECTOR_STRIDES)))
            else:
                builder.independent_ops(draw(st.integers(1, 2)))

    def emit_block(depth):
        for _ in range(draw(st.integers(1, 2))):
            if depth < 2 and draw(st.booleans()):
                trip = draw(st.sampled_from((0, 1, 2, 3, 5)))
                with builder.loop(trip, name=f"i{depth}",
                                  control=draw(st.booleans())) as var:
                    active_vars.append(var)
                    emit_block(depth + 1)
                    active_vars.pop()
            else:
                if draw(st.booleans()):
                    with builder.region("R1", "vector region", vectorizable=True):
                        emit_segment()
                else:
                    emit_segment()

    emit_block(0)
    return builder.program()


class TestPropertyEquivalence:
    @given(program=random_programs(),
           config_name=st.sampled_from(["vector2-2w", "vector1-4w"]),
           perfect=st.booleans(),
           preload=st.booleans(),
           chunk=st.sampled_from([13, 1 << 20]))
    @settings(max_examples=30, deadline=None)
    def test_trace_equals_interpreter(self, program, config_name, perfect,
                                      preload, chunk):
        config = get_config(config_name)
        span = (0, 1 << 14) if preload else None
        assert_engines_identical(program, config, perfect=perfect,
                                 preload_span=span, chunk_size=chunk)

    @given(spec=random_segment_strategy())
    @settings(max_examples=20, deadline=None)
    def test_single_segments_consistent_with_cycle_engine(self, spec):
        """fast == trace == cycle-accurate (minus drain) on one segment."""
        config = get_config("vector2-2w")
        segment = build_segment_from_spec(spec)
        builder_program = _single_segment_program(segment)
        compiled = compile_program(builder_program, config)

        reference = ExecutionEngine(compiled,
                                    _hierarchy(config)).run()
        traced = TraceExecutionEngine(compiled, _hierarchy(config)).run()
        assert traced.to_dict() == reference.to_dict()

        schedule = compiled.schedule_for(builder_program.segments()[0])
        cycle_trace = CycleAccurateEngine(config).run_segment(
            schedule, _hierarchy(config))
        assert (cycle_trace.cycles - cycle_trace.drain_cycles
                == reference.total_cycles)
        assert cycle_trace.stall_cycles == reference.total_stall_cycles


def _single_segment_program(segment):
    from repro.compiler.ir import KernelProgram

    return KernelProgram(name="single", flavor=ISAFlavor.VECTOR,
                         body=[segment])
