"""Tests of the synthetic workload family (repro.workloads.synthetic).

Covers the spec JSON round trip, seed determinism, the degenerate-shape
guarantees (zero-trip and single-iteration nests agree across engines),
the builder's non-affine-address rejection, the trace tier's explicit
interpreter fallback, and the three-way bit-identical functional
references — the same guarantees every shipped kernel family carries.
"""

import numpy as np
import pytest

from repro.compiler.builder import KernelBuilder
from repro.compiler.ir import ISAFlavor
from repro.compiler.trace import TraceLoweringError
from repro.machine.config import get_config
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.fast import ExecutionEngine, execute_program
from repro.sim.trace import TraceExecutionEngine
from repro.workloads.suite import SYNTHETIC_BENCHMARK_NAMES, SuiteParameters, build_suite
from repro.workloads.synthetic import (
    LoopSpec,
    ProgramSpec,
    Statement,
    SyntheticParameters,
    build_program,
    canonical_spec_json,
    count_statements,
    generate_spec,
    params_for_seed,
    spec_from_dict,
    spec_to_dict,
    synthetic_reference,
    synthetic_usimd,
    synthetic_vector,
)

FLAVORS = (ISAFlavor.SCALAR, ISAFlavor.USIMD, ISAFlavor.VECTOR)


def _engines_identical(program, config_name="vector2-2w", perfect=False):
    traced = execute_program(program, get_config(config_name),
                             perfect_memory=perfect, engine="trace")
    reference = execute_program(program, get_config(config_name),
                                perfect_memory=perfect, engine="interpreter")
    assert traced.to_dict() == reference.to_dict()


class TestSpecRoundTrip:
    def test_json_round_trip_is_identity(self):
        spec = generate_spec(SyntheticParameters(seed=11, statements=10))
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_canonical_json_is_deterministic(self):
        params = SyntheticParameters(seed=3, statements=8)
        assert (canonical_spec_json(generate_spec(params))
                == canonical_spec_json(generate_spec(params)))

    def test_different_seeds_differ(self):
        a = generate_spec(SyntheticParameters(seed=0))
        b = generate_spec(SyntheticParameters(seed=1))
        assert canonical_spec_json(a) != canonical_spec_json(b)

    def test_statement_budget_is_respected(self):
        for seed in range(5):
            params = SyntheticParameters(seed=seed, statements=7)
            assert count_statements(generate_spec(params)) <= 7

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="min_trip"):
            SyntheticParameters(min_trip=5, max_trip=2)
        with pytest.raises(ValueError, match="weights"):
            SyntheticParameters(scalar_weight=0, packed_weight=0,
                                vector_weight=0)
        with pytest.raises(ValueError, match="gather_density"):
            SyntheticParameters(gather_density=1.5)
        with pytest.raises(ValueError, match="scale"):
            params_for_seed(0, scale="huge")


class TestDegenerateShapes:
    """Zero-trip and single-iteration nests: no silent wrong-stats path."""

    def _spec(self, body):
        return ProgramSpec(name="degenerate", arrays=(("buf", 512),),
                           body=body)

    @pytest.mark.parametrize("flavor", FLAVORS, ids=lambda f: f.value)
    def test_zero_trip_loop_agrees(self, flavor):
        spec = self._spec((
            LoopSpec(trip=0, label="Lz", body=(
                Statement(kind="mem", unit="vector", coefs=(8,)),
                Statement(kind="compute", unit="packed", length=4),
            )),
            Statement(kind="mem", unit="scalar", region="R0"),
        ))
        _engines_identical(build_program(spec, flavor))

    @pytest.mark.parametrize("flavor", FLAVORS, ids=lambda f: f.value)
    def test_single_iteration_nest_agrees(self, flavor):
        spec = self._spec((
            LoopSpec(trip=1, label="La", body=(
                LoopSpec(trip=1, label="Lb", body=(
                    Statement(kind="mem", unit="vector", coefs=(16, 8),
                              store=True, stride=16),
                )),
            )),
        ))
        _engines_identical(build_program(spec, flavor))

    def test_empty_body_loops_agree(self):
        spec = self._spec((LoopSpec(trip=5, label="Le", body=()),))
        for perfect in (False, True):
            _engines_identical(build_program(spec, ISAFlavor.SCALAR),
                               perfect=perfect)

    def test_deep_preset_carries_degenerate_loops(self):
        # the shipped preset actually exercises the degenerate paths
        spec = generate_spec(SyntheticParameters(
            seed=303, depth=4, statements=8, min_trip=0, max_trip=4,
            degenerate_density=0.35, footprint_kb=4))
        trips = []

        def walk(nodes):
            for node in nodes:
                if isinstance(node, LoopSpec):
                    trips.append(node.trip)
                    walk(node.body)
        walk(spec.body)
        assert any(trip <= 1 for trip in trips)


class TestNonAffineRejection:
    """Out-of-scope address variables fail loudly, never silently."""

    def test_builder_rejects_sibling_loop_variable(self):
        builder = KernelBuilder("bad", ISAFlavor.SCALAR)
        with builder.loop(4, "i") as i:
            builder.iop()
        with builder.loop(4, "j"):
            builder.load(builder.addr(0x10000, (i, 8)))
        with pytest.raises(ValueError, match="not bound by an enclosing"):
            builder.program()

    def test_trace_tier_falls_back_with_reason(self, monkeypatch):
        """A lowering failure delegates to the interpreter, recorded."""
        from repro.compiler.cache import compile_cached
        import repro.sim.trace as sim_trace

        program = build_program(
            generate_spec(SyntheticParameters(seed=5, statements=5,
                                              footprint_kb=2)),
            ISAFlavor.VECTOR)
        config = get_config("vector2-2w")
        compiled = compile_cached(program, config)

        def failing(compiled_program):
            raise TraceLoweringError("synthetic: outside the affine contract")

        monkeypatch.setattr(sim_trace, "trace_program", failing)

        def hierarchy():
            return MemoryHierarchy(config.memory, l1_ports=config.l1_ports,
                                   l2_port_words=config.l2_port_words)

        engine = TraceExecutionEngine(compiled, hierarchy())
        stats = engine.run()
        assert engine.fallback_reason == \
            "synthetic: outside the affine contract"
        reference = ExecutionEngine(compiled, hierarchy()).run()
        assert stats.to_dict() == reference.to_dict()

    def test_no_fallback_on_clean_programs(self):
        from repro.compiler.cache import compile_cached

        program = build_program(
            generate_spec(SyntheticParameters(seed=5, statements=5,
                                              footprint_kb=2)),
            ISAFlavor.VECTOR)
        config = get_config("vector2-2w")
        engine = TraceExecutionEngine(
            compile_cached(program, config),
            MemoryHierarchy(config.memory, l1_ports=config.l1_ports,
                            l2_port_words=config.l2_port_words))
        engine.run()
        assert engine.fallback_reason is None


class TestFunctionalReferences:
    """Reference / µSIMD / vector payload pipelines are bit-identical."""

    @pytest.mark.parametrize("name", SYNTHETIC_BENCHMARK_NAMES)
    def test_preset_trio_identical(self, name):
        from repro.workloads.registry import get_workload

        params = get_workload(name).tiny_params
        reference = synthetic_reference(params)
        assert reference.dtype == np.int16
        np.testing.assert_array_equal(reference, synthetic_usimd(params))
        np.testing.assert_array_equal(reference, synthetic_vector(params))

    def test_seed_sweep_trio_identical(self):
        for seed in range(12):
            params = params_for_seed(seed)
            reference = synthetic_reference(params)
            np.testing.assert_array_equal(reference, synthetic_usimd(params))
            np.testing.assert_array_equal(reference, synthetic_vector(params))

    def test_payload_is_seed_deterministic(self):
        a = synthetic_reference(SyntheticParameters(seed=9))
        b = synthetic_reference(SyntheticParameters(seed=9))
        np.testing.assert_array_equal(a, b)


class TestSuiteAndCliIntegration:
    def test_build_suite_synthetic(self):
        suite = build_suite(SuiteParameters.tiny(),
                            names=SYNTHETIC_BENCHMARK_NAMES)
        assert tuple(suite) == SYNTHETIC_BENCHMARK_NAMES
        for spec in suite.values():
            assert set(spec.programs) == set(FLAVORS)

    @pytest.mark.parametrize("name", SYNTHETIC_BENCHMARK_NAMES)
    def test_preset_engines_identical_all_flavors(self, name):
        suite = build_suite(SuiteParameters.tiny(), names=(name,))
        for program in suite[name].programs.values():
            _engines_identical(program)

    def test_bench_list_shows_synthetic(self, capsys):
        from repro.__main__ import main

        assert main(["bench", "list", "tag:synthetic"]) == 0
        out = capsys.readouterr().out
        for name in SYNTHETIC_BENCHMARK_NAMES:
            assert name in out

    def test_sweep_accepts_synthetic_selector(self, capsys):
        from repro.__main__ import main

        assert main(["sweep", "--tiny", "--no-store",
                     "--benchmarks", "synthetic_stream"]) == 0
        assert "swept" in capsys.readouterr().out
