"""Functional equivalence tests: scalar vs µSIMD vs Vector-µSIMD kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.workloads.adpcm import codec
from repro.workloads.data import (synthetic_blocks, synthetic_image, synthetic_speech,
                                  synthetic_video)
from repro.workloads.fir import filterbank
from repro.workloads.gsm import autocorr, ltp
from repro.workloads.jpeg import color, dct, huffman, quant, upsample
from repro.workloads.mpeg2 import motion, predict
from repro.workloads.sobel import stencil
from repro.workloads.viterbi import trellis


@pytest.fixture(scope="module")
def image():
    return synthetic_image(64, 48, channels=3, seed=7)


@pytest.fixture(scope="module")
def video():
    return synthetic_video(3, 64, 48, dx=2, dy=1, seed=7)


@pytest.fixture(scope="module")
def speech():
    return synthetic_speech(480, seed=7)


class TestSyntheticData:
    def test_image_shape_and_range(self, image):
        assert image.shape == (48, 64, 3)
        assert image.dtype == np.uint8

    def test_image_deterministic(self):
        a = synthetic_image(32, 32, seed=1)
        b = synthetic_image(32, 32, seed=1)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, synthetic_image(32, 32, seed=2))

    def test_video_translates(self, video):
        assert video.shape == (3, 48, 64)
        # consecutive frames differ but are correlated
        assert not np.array_equal(video[0], video[1])
        correlation = np.corrcoef(video[0].ravel(), video[1].ravel())[0, 1]
        assert correlation > 0.3

    def test_speech_range(self, speech):
        assert speech.dtype == np.int16
        assert np.abs(speech).max() <= 4095

    def test_blocks_shape(self):
        blocks = synthetic_blocks(5)
        assert blocks.shape == (5, 8, 8)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            synthetic_image(0, 10)
        with pytest.raises(ValueError):
            synthetic_video(0, 8, 8)
        with pytest.raises(ValueError):
            synthetic_speech(0)


class TestColorConversion:
    def test_usimd_matches_reference(self, image):
        reference = color.rgb_to_ycc_reference(image)
        planar = (image[..., 0].ravel(), image[..., 1].ravel(), image[..., 2].ravel())
        y, cb, cr = color.rgb_to_ycc_usimd(planar)
        np.testing.assert_array_equal(y, reference[..., 0].ravel())
        np.testing.assert_array_equal(cb, reference[..., 1].ravel())
        np.testing.assert_array_equal(cr, reference[..., 2].ravel())

    def test_vector_matches_reference(self, image):
        reference = color.rgb_to_ycc_reference(image)
        planar = (image[..., 0].ravel(), image[..., 1].ravel(), image[..., 2].ravel())
        y, cb, cr = color.rgb_to_ycc_vector(planar)
        np.testing.assert_array_equal(y, reference[..., 0].ravel())
        np.testing.assert_array_equal(cb, reference[..., 1].ravel())
        np.testing.assert_array_equal(cr, reference[..., 2].ravel())

    def test_vector_and_usimd_identical(self, image):
        planar = (image[..., 0].ravel(), image[..., 1].ravel(), image[..., 2].ravel())
        for a, b in zip(color.rgb_to_ycc_usimd(planar), color.rgb_to_ycc_vector(planar)):
            np.testing.assert_array_equal(a, b)

    def test_grey_input_maps_to_neutral_chroma(self):
        grey = np.full((8, 8, 3), 120, dtype=np.uint8)
        out = color.rgb_to_ycc_reference(grey)
        assert np.all(out[..., 0] == 120)
        assert np.all(np.abs(out[..., 1].astype(int) - 128) <= 1)
        assert np.all(np.abs(out[..., 2].astype(int) - 128) <= 1)

    def test_roundtrip_is_close(self, image):
        ycc = color.rgb_to_ycc_reference(image)
        rgb = color.ycc_to_rgb_reference(ycc)
        error = np.abs(rgb.astype(int) - image.astype(int))
        assert error.mean() < 3.0

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            color.rgb_to_ycc_reference(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            color.rgb_to_ycc_usimd((np.zeros(5), np.zeros(5), np.zeros(5)))

    @given(hnp.arrays(np.uint8, (3, 16)))
    @settings(max_examples=25)
    def test_usimd_property_equivalence(self, planes):
        planar = (planes[0], planes[1], planes[2])
        rgb = np.stack(planar, axis=-1).reshape(1, -1, 3)
        reference = color.rgb_to_ycc_reference(rgb)
        y, cb, cr = color.rgb_to_ycc_usimd(planar)
        np.testing.assert_array_equal(y, reference[..., 0].ravel())
        np.testing.assert_array_equal(cb, reference[..., 1].ravel())
        np.testing.assert_array_equal(cr, reference[..., 2].ravel())


class TestDct:
    def test_flat_block_concentrates_in_dc(self):
        block = np.full((8, 8), 200, dtype=np.uint8)
        coefficients = dct.forward_dct_block(block)
        assert abs(int(coefficients[0, 0])) > 0
        assert np.abs(coefficients[1:, :]).max() <= 1
        assert np.abs(coefficients[:, 1:]).max() <= 1

    def test_roundtrip_accuracy(self):
        blocks = synthetic_blocks(10, seed=3)
        for block in blocks:
            recovered = dct.inverse_dct_block(dct.forward_dct_block(block))
            assert np.abs(recovered.astype(int) - block.astype(int)).max() <= 1

    def test_image_roundtrip(self):
        plane = synthetic_image(32, 32, channels=1, seed=5)[:, :, 0]
        recovered = dct.inverse_dct_image(dct.forward_dct_image(plane))
        assert np.abs(recovered.astype(int) - plane.astype(int)).max() <= 2

    def test_energy_preservation(self):
        block = synthetic_blocks(1, seed=9)[0]
        coefficients = dct.forward_dct_block(block).astype(np.float64)
        spatial_energy = ((block.astype(np.float64) - 128) ** 2).sum()
        freq_energy = (coefficients ** 2).sum()
        assert freq_energy == pytest.approx(spatial_energy, rel=0.05)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            dct.forward_dct_block(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            dct.forward_dct_image(np.zeros((12, 12)))


class TestQuantisation:
    def test_usimd_matches_reference(self):
        coefficients = dct.forward_dct_image(synthetic_image(32, 32, 1, seed=2)[:, :, 0])
        reference = quant.quantize_reference(coefficients, quant.LUMINANCE_QTABLE)
        np.testing.assert_array_equal(
            quant.quantize_usimd(coefficients, quant.LUMINANCE_QTABLE), reference)

    def test_vector_matches_reference(self):
        coefficients = dct.forward_dct_image(synthetic_image(32, 32, 1, seed=2)[:, :, 0])
        reference = quant.quantize_reference(coefficients, quant.CHROMINANCE_QTABLE)
        np.testing.assert_array_equal(
            quant.quantize_vector(coefficients, quant.CHROMINANCE_QTABLE), reference)

    def test_quantisation_reduces_magnitude(self):
        coefficients = dct.forward_dct_image(synthetic_image(32, 32, 1, seed=2)[:, :, 0])
        quantised = quant.quantize_reference(coefficients, quant.LUMINANCE_QTABLE)
        assert np.abs(quantised).sum() < np.abs(coefficients).sum()

    def test_dequantize_roundtrip_error_bounded(self):
        coefficients = dct.forward_dct_image(synthetic_image(32, 32, 1, seed=2)[:, :, 0])
        quantised = quant.quantize_reference(coefficients, quant.LUMINANCE_QTABLE)
        restored = quant.dequantize_reference(quantised, quant.LUMINANCE_QTABLE)
        tiled = np.tile(quant.LUMINANCE_QTABLE, (4, 4))
        assert np.all(np.abs(restored.astype(int) - coefficients.astype(int)) <= tiled)

    def test_reciprocal_table_validation(self):
        with pytest.raises(ValueError):
            quant.reciprocal_table(np.zeros((8, 8), dtype=int))


class TestUpsample:
    def test_usimd_matches_reference(self):
        chroma = synthetic_image(32, 16, 1, seed=4)[:, :, 0]
        np.testing.assert_array_equal(upsample.upsample_h2v2_usimd(chroma),
                                      upsample.upsample_h2v2_reference(chroma))

    def test_vector_matches_reference(self):
        chroma = synthetic_image(32, 16, 1, seed=4)[:, :, 0]
        np.testing.assert_array_equal(upsample.upsample_h2v2_vector(chroma),
                                      upsample.upsample_h2v2_reference(chroma))

    def test_output_shape(self):
        chroma = np.zeros((8, 16), dtype=np.uint8)
        assert upsample.upsample_h2v2_reference(chroma).shape == (16, 32)

    def test_constant_plane_stays_constant(self):
        chroma = np.full((8, 16), 77, dtype=np.uint8)
        out = upsample.upsample_h2v2_reference(chroma)
        assert np.all(out == 77)

    def test_down_then_up_is_close(self):
        plane = synthetic_image(32, 32, 1, seed=6)[:, :, 0]
        down = upsample.downsample_h2v2(plane)
        up = upsample.upsample_h2v2_reference(down)
        assert np.abs(up.astype(int) - plane.astype(int)).mean() < 12

    def test_width_validation(self):
        with pytest.raises(ValueError):
            upsample.upsample_h2v2_usimd(np.zeros((4, 6), dtype=np.uint8))


class TestHuffman:
    def test_zigzag_permutation(self):
        block = np.arange(64).reshape(8, 8)
        scanned = huffman.zigzag_scan(block)
        assert sorted(scanned.tolist()) == list(range(64))
        np.testing.assert_array_equal(huffman.inverse_zigzag(scanned), block)

    def test_zigzag_starts_with_dc_neighbours(self):
        block = np.arange(64).reshape(8, 8)
        scanned = huffman.zigzag_scan(block)
        assert scanned[0] == 0 and set(scanned[1:3].tolist()) == {1, 8}

    def test_run_length_roundtrip(self):
        sequence = np.zeros(64, dtype=np.int64)
        sequence[[0, 5, 20, 63]] = [10, -3, 7, 1]
        pairs = huffman.run_length_encode(sequence)
        np.testing.assert_array_equal(huffman.run_length_decode(pairs), sequence)

    def test_bit_writer_reader_roundtrip(self):
        writer = huffman.BitWriter()
        writer.write(0b1011, 4)
        writer.write_unary(3)
        writer.write(0, 1)
        reader = huffman.BitReader(writer.getvalue())
        assert reader.read(4) == 0b1011
        assert reader.read_unary() == 3
        assert reader.read(1) == 0

    def test_block_roundtrip(self):
        blocks = synthetic_blocks(4, seed=11)
        for block in blocks:
            quantised = quant.quantize_reference(
                dct.forward_dct_block(block).astype(np.int16).reshape(8, 8),
                quant.LUMINANCE_QTABLE)
            writer = huffman.BitWriter()
            huffman.encode_block(quantised, writer)
            decoded = huffman.decode_block(huffman.BitReader(writer.getvalue()))
            np.testing.assert_array_equal(decoded, quantised)

    def test_compression_happens(self):
        quantised = np.zeros((8, 8), dtype=np.int16)
        quantised[0, 0] = 5
        writer = huffman.BitWriter()
        huffman.encode_block(quantised, writer)
        assert len(writer.getvalue()) < 64  # far fewer bytes than raw


class TestMotion:
    def test_usimd_and_vector_sad_match_reference(self):
        blocks = synthetic_blocks(2, block=(16, 16), seed=13)
        reference_value = motion.sad_block_reference(blocks[0], blocks[1])
        assert motion.sad_block_usimd(blocks[0], blocks[1]) == reference_value
        assert motion.sad_block_vector(blocks[0], blocks[1]) == reference_value

    def test_sad_of_identical_blocks_is_zero(self):
        block = synthetic_blocks(1, block=(16, 16), seed=14)[0]
        assert motion.sad_block_reference(block, block) == 0
        assert motion.sad_block_vector(block, block) == 0

    def test_full_search_recovers_synthetic_motion(self, video):
        # frame 1 is frame 0 shifted by (dy=1, dx=2): searching frame1's block
        # in frame 0 should find displacement (-1, -2) (modulo border effects).
        (dy, dx), sad = motion.full_search_reference(video[0], video[1],
                                                     mb_row=16, mb_col=16, radius=3)
        assert (dy, dx) == (-1, -2)

    def test_full_search_zero_motion_for_same_frame(self, video):
        (dy, dx), sad = motion.full_search_reference(video[0], video[0], 16, 16, 2)
        assert (dy, dx) == (0, 0) and sad == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            motion.sad_block_reference(np.zeros((8, 8)), np.zeros((8, 16)))
        with pytest.raises(ValueError):
            motion.sad_block_usimd(np.zeros((8, 10), dtype=np.uint8),
                                   np.zeros((8, 10), dtype=np.uint8))


class TestPrediction:
    def test_full_pel_prediction_is_copy(self, video):
        out = predict.form_prediction_reference(video[0], 8, 8)
        np.testing.assert_array_equal(out, video[0][8:24, 8:24])

    def test_half_pel_usimd_matches_reference(self, video):
        for half_x, half_y in ((True, False), (False, True), (False, False)):
            reference_block = predict.form_prediction_reference(
                video[0], 8, 8, half_pel_x=half_x, half_pel_y=half_y)
            usimd_block = predict.form_prediction_usimd(
                video[0], 8, 8, half_pel_x=half_x, half_pel_y=half_y)
            np.testing.assert_array_equal(usimd_block, reference_block)

    def test_vector_matches_reference(self, video):
        reference_block = predict.form_prediction_reference(video[0], 8, 8,
                                                            half_pel_x=True)
        vector_block = predict.form_prediction_vector(video[0], 8, 8, half_pel_x=True)
        np.testing.assert_array_equal(vector_block, reference_block)

    def test_add_block_saturation(self):
        prediction = np.full((8, 8), 250, dtype=np.uint8)
        residual = np.full((8, 8), 20, dtype=np.int16)
        out = predict.add_block_reference(prediction, residual)
        assert np.all(out == 255)
        negative = predict.add_block_reference(np.zeros((8, 8), np.uint8),
                                               np.full((8, 8), -5, np.int16))
        assert np.all(negative == 0)

    def test_add_block_flavours_match(self):
        rng = np.random.default_rng(15)
        prediction = rng.integers(0, 256, (16, 16), dtype=np.uint8)
        residual = rng.integers(-64, 64, (16, 16)).astype(np.int16)
        reference_block = predict.add_block_reference(prediction, residual)
        np.testing.assert_array_equal(predict.add_block_usimd(prediction, residual),
                                      reference_block)
        np.testing.assert_array_equal(predict.add_block_vector(prediction, residual),
                                      reference_block)


class TestGsmKernels:
    def test_autocorrelation_flavours_match(self, speech):
        frame = speech[:autocorr.GSM_FRAME_SAMPLES]
        reference_acf = autocorr.autocorrelation_reference(frame)
        np.testing.assert_array_equal(autocorr.autocorrelation_usimd(frame), reference_acf)
        np.testing.assert_array_equal(autocorr.autocorrelation_vector(frame), reference_acf)

    def test_autocorrelation_lag_zero_is_energy(self, speech):
        frame = speech[:160].astype(np.int64)
        acf = autocorr.autocorrelation_reference(frame)
        assert acf[0] == int((frame * frame).sum())
        assert acf[0] >= np.abs(acf[1:]).max()

    def test_ltp_flavours_match(self, speech):
        history = speech[:ltp.LTP_MAX_LAG]
        current = speech[ltp.LTP_MAX_LAG:ltp.LTP_MAX_LAG + ltp.SUBSEGMENT_SAMPLES]
        reference_result = ltp.ltp_parameters_reference(current, history)
        assert ltp.ltp_parameters_usimd(current, history) == reference_result
        assert ltp.ltp_parameters_vector(current, history) == reference_result

    def test_ltp_finds_planted_lag(self):
        # plant an exact copy of the current sub-segment at lag 60: the search
        # must find it (it maximises the cross-correlation by construction)
        rng = np.random.default_rng(3)
        current = (1500 * np.sin(np.arange(40) / 3.0)).astype(np.int16)
        history = rng.integers(-200, 200, ltp.LTP_MAX_LAG).astype(np.int16)
        lag_planted = 60
        start = ltp.LTP_MAX_LAG - lag_planted
        history[start:start + ltp.SUBSEGMENT_SAMPLES] = current
        lag, value = ltp.ltp_parameters_reference(current, history)
        assert lag == lag_planted
        assert value == int((current.astype(np.int64) ** 2).sum())

    def test_long_term_filter_gain_zero_is_identity(self, speech):
        residual = speech[:40]
        history = speech[:120]
        out = ltp.long_term_filter_reference(residual, history, lag=60, gain_q6=0)
        np.testing.assert_array_equal(out, residual)

    def test_validation(self, speech):
        with pytest.raises(ValueError):
            ltp.ltp_parameters_reference(speech[:10], speech[:200])
        with pytest.raises(ValueError):
            ltp.ltp_parameters_reference(speech[:40], speech[:30])
        with pytest.raises(ValueError):
            autocorr.autocorrelation_reference(np.zeros((2, 2)))


# ---------------------------------------------------------------------------
# extended-suite kernels (tag: mediabench-plus)
# ---------------------------------------------------------------------------

class TestViterbiKernels:
    @pytest.fixture(scope="class")
    def bits(self):
        rng = np.random.default_rng(21)
        return rng.integers(0, 2, 96).astype(np.int64)

    def test_clean_channel_roundtrip(self, bits):
        coded = trellis.convolutional_encode_reference(bits)
        np.testing.assert_array_equal(trellis.viterbi_decode_reference(coded),
                                      bits)

    def test_corrects_scattered_bit_errors(self, bits):
        # rate-1/2, K=5: a few well-separated flips must be corrected
        coded = trellis.convolutional_encode_reference(bits)
        corrupted = coded.copy()
        corrupted[[7, 61, 140]] ^= 1
        np.testing.assert_array_equal(trellis.viterbi_decode_reference(corrupted),
                                      bits)

    def test_usimd_matches_reference(self, bits):
        coded = trellis.convolutional_encode_reference(bits)
        coded[[10, 33]] ^= 1  # exercise non-trivial metrics too
        np.testing.assert_array_equal(trellis.viterbi_decode_usimd(coded),
                                      trellis.viterbi_decode_reference(coded))

    def test_vector_matches_reference(self, bits):
        coded = trellis.convolutional_encode_reference(bits)
        coded[[10, 33]] ^= 1
        np.testing.assert_array_equal(trellis.viterbi_decode_vector(coded),
                                      trellis.viterbi_decode_reference(coded))

    @given(hnp.arrays(np.int64, 40, elements=st.integers(0, 1)))
    @settings(max_examples=15, deadline=None)
    def test_property_roundtrip_and_flavour_equivalence(self, bits):
        coded = trellis.convolutional_encode_reference(bits)
        decoded = trellis.viterbi_decode_reference(coded)
        np.testing.assert_array_equal(decoded, bits)
        np.testing.assert_array_equal(trellis.viterbi_decode_usimd(coded), decoded)
        np.testing.assert_array_equal(trellis.viterbi_decode_vector(coded), decoded)

    def test_validation(self):
        with pytest.raises(ValueError):
            trellis.convolutional_encode_reference(np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError):
            trellis.viterbi_decode_reference(np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            trellis.viterbi_decode_reference(np.zeros(4, dtype=np.int64))


class TestFirBankKernels:
    @pytest.fixture(scope="class")
    def bank(self, speech):
        rng = np.random.default_rng(22)
        coeffs = rng.integers(-512, 512, (3, 16)).astype(np.int16)
        return speech[:120].astype(np.int16), coeffs

    def test_reference_shape_and_exactness(self, bank):
        samples, coeffs = bank
        out = filterbank.fir_bank_reference(samples, coeffs)
        assert out.shape == (samples.shape[0] - coeffs.shape[1] + 1,
                             coeffs.shape[0])
        # spot-check one output against a hand dot product
        n, band = 5, 1
        window = samples[n:n + coeffs.shape[1]].astype(np.int64)
        assert out[n, band] == int((window * coeffs[band].astype(np.int64)).sum())

    def test_usimd_matches_reference(self, bank):
        samples, coeffs = bank
        np.testing.assert_array_equal(
            filterbank.fir_bank_usimd(samples, coeffs),
            filterbank.fir_bank_reference(samples, coeffs))

    def test_vector_matches_reference(self, bank):
        samples, coeffs = bank
        np.testing.assert_array_equal(
            filterbank.fir_bank_vector(samples, coeffs),
            filterbank.fir_bank_reference(samples, coeffs))

    def test_vector_short_vl_still_exact(self, bank):
        samples, coeffs = bank
        np.testing.assert_array_equal(
            filterbank.fir_bank_vector(samples, coeffs, max_vl=2),
            filterbank.fir_bank_reference(samples, coeffs))

    def test_moving_average_of_constant_is_flat(self):
        samples = np.full(64, 100, dtype=np.int16)
        coeffs = np.ones((1, 8), dtype=np.int16)
        out = filterbank.fir_bank_reference(samples, coeffs)
        assert np.all(out == 800)

    def test_validation(self):
        with pytest.raises(ValueError):
            filterbank.fir_bank_reference(np.zeros((2, 4)), np.zeros((1, 4)))
        with pytest.raises(ValueError):
            filterbank.fir_bank_reference(np.zeros(16), np.zeros(8))
        with pytest.raises(ValueError):
            filterbank.fir_bank_reference(np.zeros(16), np.zeros((1, 6)))
        with pytest.raises(ValueError):
            filterbank.fir_bank_reference(np.zeros(4), np.zeros((1, 8)))


class TestSobelKernels:
    @pytest.fixture(scope="class")
    def grey(self):
        return synthetic_image(48, 32, channels=1, seed=23)[:, :, 0]

    def test_usimd_matches_reference(self, grey):
        np.testing.assert_array_equal(stencil.sobel_usimd(grey),
                                      stencil.sobel_reference(grey))

    def test_vector_matches_reference(self, grey):
        np.testing.assert_array_equal(stencil.sobel_vector(grey),
                                      stencil.sobel_reference(grey))

    def test_flat_image_has_no_edges(self):
        flat = np.full((16, 16), 90, dtype=np.uint8)
        assert np.all(stencil.sobel_reference(flat) == 0)

    def test_vertical_step_yields_vertical_edge(self):
        image = np.zeros((8, 16), dtype=np.uint8)
        image[:, 8:] = 200
        out = stencil.sobel_reference(image)
        assert np.all(out[1:-1, 8] == 255)  # saturated |Gx| at the step
        assert np.all(out[:, :7] == 0) and np.all(out[:, 10:] == 0)

    def test_border_is_zero(self, grey):
        out = stencil.sobel_reference(grey)
        assert not out[[0, -1], :].any() and not out[:, [0, -1]].any()

    @given(hnp.arrays(np.uint8, (5, 24)))
    @settings(max_examples=20, deadline=None)
    def test_property_flavour_equivalence(self, image):
        reference = stencil.sobel_reference(image)
        np.testing.assert_array_equal(stencil.sobel_usimd(image), reference)
        np.testing.assert_array_equal(stencil.sobel_vector(image), reference)

    def test_validation(self):
        with pytest.raises(ValueError):
            stencil.sobel_reference(np.zeros(8))
        with pytest.raises(ValueError):
            stencil.sobel_reference(np.zeros((2, 8)))


class TestAdpcmKernels:
    @pytest.fixture(scope="class")
    def blocks(self, speech):
        return speech[:480].reshape(4, 120)

    def test_roundtrip_tracks_the_signal(self, blocks):
        codes = codec.adpcm_encode_reference(blocks)
        decoded = codec.adpcm_decode_reference(codes)
        error = np.abs(decoded.astype(np.int64) - blocks.astype(np.int64))
        # ADPCM is lossy; the adaptive step keeps the error a small
        # fraction of the signal swing once the predictor locks on
        assert error[:, 8:].mean() < 0.05 * np.abs(blocks).max()

    def test_codes_are_nibbles(self, blocks):
        codes = codec.adpcm_encode_reference(blocks)
        assert codes.dtype == np.uint8
        assert codes.max() <= 0xF

    def test_usimd_matches_reference(self, blocks):
        codes = codec.adpcm_encode_reference(blocks)
        np.testing.assert_array_equal(codec.adpcm_decode_usimd(codes),
                                      codec.adpcm_decode_reference(codes))

    def test_vector_matches_reference(self, blocks):
        codes = codec.adpcm_encode_reference(blocks)
        np.testing.assert_array_equal(codec.adpcm_decode_vector(codes),
                                      codec.adpcm_decode_reference(codes))

    def test_blocks_are_independent(self, blocks):
        # decoding a block alone equals decoding it within the batch
        codes = codec.adpcm_encode_reference(blocks)
        alone = codec.adpcm_decode_reference(codes[1:2])
        together = codec.adpcm_decode_reference(codes)
        np.testing.assert_array_equal(alone[0], together[1])

    @given(hnp.arrays(np.int16, (3, 16)))
    @settings(max_examples=20, deadline=None)
    def test_property_flavour_equivalence(self, samples):
        codes = codec.adpcm_encode_reference(samples)
        reference = codec.adpcm_decode_reference(codes)
        np.testing.assert_array_equal(codec.adpcm_decode_usimd(codes), reference)
        np.testing.assert_array_equal(codec.adpcm_decode_vector(codes), reference)

    def test_validation(self):
        with pytest.raises(ValueError):
            codec.adpcm_encode_reference(np.zeros(16, dtype=np.int16))
        with pytest.raises(ValueError):
            codec.adpcm_decode_reference(np.zeros((0, 4), dtype=np.int64))
