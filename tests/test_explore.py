"""Design-space exploration: config generation, Pareto math, resumable sweeps."""

from __future__ import annotations

import pytest

from repro.core.architecture import VectorMicroSimdVliwMachine
from repro.explore import (
    BASELINE_CONFIG,
    DesignSpace,
    ParetoPoint,
    pareto_frontier,
    point_config,
    run_exploration,
)
from repro.machine.config import (
    PAPER_CONFIGS,
    get_config,
    register_config,
    registered_configs,
    unregister_config,
)
from repro.store import ResultStore
from repro.workloads.suite import SuiteParameters


class TestDesignSpace:
    def test_default_space_has_at_least_100_points(self):
        space = DesignSpace.default()
        points = list(space.points())
        assert len(space) == len(points) >= 100

    def test_points_are_unique_and_deterministic(self):
        space = DesignSpace.default()
        first = [p.name for p in space.points()]
        second = [p.name for p in space.points()]
        assert first == second
        assert len(set(first)) == len(first)

    def test_every_point_materialises_as_a_valid_config(self):
        # MachineConfig.__post_init__ validates; constructing is the test
        for point in DesignSpace.default().points():
            config = point_config(point)
            assert config.name == point.name
            assert config.has_vector
            assert config.memory.l2_banks == point.l2_banks

    def test_name_encodes_axes(self):
        point = next(iter(DesignSpace.smoke().points()))
        name = point.name
        assert f"{point.issue_width}w" in name
        assert f"vu{point.vector_units}" in name
        assert f"pw{point.port_words}" in name

    def test_issue_slots_cost(self):
        point = next(p for p in DesignSpace.default().points()
                     if p.vector_units == 2 and p.vector_lanes == 4
                     and p.issue_width == 2)
        assert point.issue_slots == 2 + 2 * 4


class TestConfigRegistry:
    def test_register_resolves_through_get_config(self):
        config = point_config(next(iter(DesignSpace.smoke().points())))
        register_config(config, overwrite=True)
        try:
            assert get_config(config.name) is config
            assert config.name in registered_configs()
            # a registered config drives a machine end to end
            machine = VectorMicroSimdVliwMachine.from_name(config.name)
            assert machine.config is config
        finally:
            unregister_config(config.name)
        with pytest.raises(KeyError):
            get_config(config.name)

    def test_paper_names_cannot_be_shadowed(self):
        vector = PAPER_CONFIGS["vector2-2w"]
        with pytest.raises(ValueError, match="Table-2"):
            register_config(vector)

    def test_conflicting_reregistration_rejected(self):
        points = iter(DesignSpace.default().points())
        a = point_config(next(points))
        b = point_config(next(points))
        register_config(a, overwrite=True)
        try:
            register_config(a)  # same content: no-op
            from dataclasses import replace
            impostor = replace(b, name=a.name)
            with pytest.raises(ValueError, match="already registered"):
                register_config(impostor)
            register_config(impostor, overwrite=True)
            assert get_config(a.name) == impostor
        finally:
            unregister_config(a.name)


class TestParetoFrontier:
    def test_dominated_points_are_dropped(self):
        points = [
            ParetoPoint("cheap-slow", cost=2, value=1.0),
            ParetoPoint("mid", cost=4, value=2.0),
            ParetoPoint("mid-dominated", cost=4, value=1.5),
            ParetoPoint("pricey-dominated", cost=8, value=1.9),
            ParetoPoint("pricey-best", cost=8, value=3.0),
        ]
        frontier = pareto_frontier(points)
        assert [p.name for p in frontier] == ["cheap-slow", "mid", "pricey-best"]

    def test_order_independent_and_tie_broken_by_name(self):
        points = [
            ParetoPoint("b", cost=1, value=1.0),
            ParetoPoint("a", cost=1, value=1.0),
        ]
        assert pareto_frontier(points) == pareto_frontier(reversed(points))
        assert [p.name for p in pareto_frontier(points)] == ["a"]

    def test_empty(self):
        assert pareto_frontier([]) == ()


class TestRunExploration:
    def _smoke(self, tmp_path, **kwargs):
        return run_exploration(space=DesignSpace.smoke(),
                               benchmarks=("gsm_enc",),
                               parameters=SuiteParameters.tiny(),
                               store=ResultStore(tmp_path),
                               shard_size=4, **kwargs)

    def test_end_to_end_smoke(self, tmp_path):
        result = self._smoke(tmp_path)
        assert result.complete
        assert set(result.covered_configs()) == set(result.configs)
        for name in result.configs:
            assert result.speedup("gsm_enc", name) > 0
        frontier = result.frontier()
        assert frontier
        costs = [p.cost for p in frontier]
        values = [p.value for p in frontier]
        assert costs == sorted(costs) and values == sorted(values)
        summary = result.summary()
        assert "Pareto frontier" in summary and BASELINE_CONFIG in summary

    def test_baseline_speedup_is_one(self, tmp_path):
        result = self._smoke(tmp_path)
        baseline = result.stats("gsm_enc", BASELINE_CONFIG)
        assert baseline.speedup_over(baseline) == 1.0

    def test_interrupted_sweep_resumes_from_store(self, tmp_path):
        partial = self._smoke(tmp_path, max_shards=1)
        assert not partial.complete
        assert partial.simulated_runs == 4
        assert "PARTIAL" in partial.summary()

        resumed = self._smoke(tmp_path)
        assert resumed.complete
        assert resumed.stored_runs == 4          # the interrupted shard
        assert resumed.simulated_runs == len(resumed.runs) - 4
        # and a third run is pure store reads with identical conclusions
        third = self._smoke(tmp_path)
        assert third.simulated_runs == 0
        assert third.frontier() == resumed.frontier()
        assert third.frontier("gsm_enc") == resumed.frontier("gsm_enc")

    def test_geomean_over_two_benchmarks(self, tmp_path):
        result = run_exploration(space=DesignSpace.smoke(),
                                 benchmarks=("gsm_enc", "jpeg_enc"),
                                 parameters=SuiteParameters.tiny(),
                                 store=ResultStore(tmp_path), shard_size=8)
        name = next(iter(result.configs))
        expected = (result.speedup("gsm_enc", name)
                    * result.speedup("jpeg_enc", name)) ** 0.5
        assert result.geomean_speedup(name) == pytest.approx(expected)


class TestExploreCli:
    def test_explore_smoke_cli(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(["explore", "--space", "smoke",
                     "--benchmarks", "gsm_enc",
                     "--store", str(tmp_path / "store")])
        assert code == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out

    def test_sweep_cli_warm_second_run(self, tmp_path, capsys):
        from repro.__main__ import main

        store = str(tmp_path / "store")
        assert main(["sweep", "--tiny", "--store", store]) == 0
        first = capsys.readouterr().out
        assert main(["sweep", "--tiny", "--store", store]) == 0
        second = capsys.readouterr().out
        assert ", 120 simulated" in first
        assert "120 already stored, 0 simulated" in second
