"""Property test: every batched replay tier matches the serial reference.

Hypothesis drives random access streams — plain loads/stores, dirty
write-backs via store-then-evict, coherency invalidation probes, and the
degenerate 1-way / 1-set geometries — through two caches: one pinned to the
serial reference machine (``engine="reference"``), one free to pick the
batched generation-round or closed-form tiers (``engine="auto"``).  After
every batch the per-event result codes must be identical, and at the end the
full architectural state must agree: resident tags per set *in LRU order*
(stamps may be renumbered between tiers, their per-set relative order may
not), dirty bits, the resident-line count and all six statistics counters.

Streams are split into several batches per example so state is carried
*between* tiers — a closed-form warm-up followed by a random batch exercises
the matrix/row representation hand-off, which is where a staleness bug would
hide.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import _EMPTY, SetAssociativeCache

#: Line-index pool kept tiny so streams collide constantly: conflict misses,
#: LRU evictions and re-references are the common case, not the rare one.
MAX_LINES = 16


def _geometry():
    return st.tuples(
        st.sampled_from([1, 2, 4]),    # num_sets (1 = fully degenerate)
        st.sampled_from([1, 2, 4]),    # assoc (1 = direct mapped)
        st.sampled_from([16, 64]),     # line_bytes
    )


def _random_batch():
    """A batch of (line_index, is_store, is_probe) event triples."""
    event = st.tuples(
        st.integers(min_value=0, max_value=MAX_LINES - 1),
        st.booleans(),
        st.booleans(),
    )
    return st.lists(event, min_size=0, max_size=40)


def _monotone_batch():
    """An affine warm-up shaped batch (hits the closed-form tier when cold)."""
    return st.tuples(
        st.integers(min_value=0, max_value=MAX_LINES - 1),  # first line
        st.integers(min_value=1, max_value=3),              # line stride
        st.integers(min_value=1, max_value=24),             # events
        st.booleans(),                                      # scalar store flag
    )


def _batches():
    return st.lists(
        st.one_of(_random_batch(), _monotone_batch()),
        min_size=1, max_size=4)


def _materialize(batch, line_bytes):
    """Batch description -> (addresses, stores, coherency) arrays."""
    if isinstance(batch, tuple):  # monotone description
        first, stride, count, store = batch
        lines = first + stride * np.arange(count, dtype=np.int64)
        addresses = lines * line_bytes
        return addresses, store, None
    if not batch:
        return np.zeros(0, dtype=np.int64), False, None
    lines = np.array([line for line, _, _ in batch], dtype=np.int64)
    stores = np.array([s for _, s, _ in batch], dtype=bool)
    probes = np.array([p for _, _, p in batch], dtype=bool)
    return lines * line_bytes, stores, probes


def _lru_state(cache):
    """Resident (tag, dirty) pairs per set, ordered oldest to youngest.

    Stamps are compared only through their per-set ordering: the batched
    tiers renumber the clock, the relative order is the contract.
    """
    state = []
    for tags, stamps, dirty in zip(cache._tags, cache._stamps, cache._dirty):
        resident = [(stamps[w], tags[w], dirty[w])
                    for w in range(cache.assoc) if tags[w] != _EMPTY]
        resident.sort()
        state.append(tuple((tag, d) for _, tag, d in resident))
    return state


@settings(max_examples=150, deadline=None)
@given(geometry=_geometry(), batches=_batches())
def test_batched_tiers_match_serial_reference(geometry, batches):
    num_sets, assoc, line_bytes = geometry
    size = num_sets * assoc * line_bytes
    reference = SetAssociativeCache(size, assoc, line_bytes, name="ref")
    batched = SetAssociativeCache(size, assoc, line_bytes, name="auto")

    for batch in batches:
        addresses, stores, coherency = _materialize(batch, line_bytes)
        want = reference.replay_events(addresses, stores, coherency,
                                       engine="reference")
        got = batched.replay_events(addresses, stores, coherency,
                                    engine="auto")
        assert np.array_equal(want, got), (
            f"result codes diverge on {batch!r}")

    assert _lru_state(reference) == _lru_state(batched)
    assert reference._resident == batched._resident
    assert (dataclasses.asdict(reference.stats)
            == dataclasses.asdict(batched.stats))


@settings(max_examples=60, deadline=None)
@given(geometry=_geometry(), batches=_batches())
def test_single_event_replay_matches_access(geometry, batches):
    """replay_events one event at a time == the scalar access/invalidate API."""
    num_sets, assoc, line_bytes = geometry
    size = num_sets * assoc * line_bytes
    scalar = SetAssociativeCache(size, assoc, line_bytes, name="scalar")
    vector = SetAssociativeCache(size, assoc, line_bytes, name="vector")

    for batch in batches:
        addresses, stores, coherency = _materialize(batch, line_bytes)
        n = len(addresses)
        store_arr = np.full(n, stores, dtype=bool) if isinstance(stores, bool) \
            else stores
        probe_arr = np.zeros(n, dtype=bool) if coherency is None else coherency
        for i in range(n):
            got = vector.replay_events(addresses[i:i + 1],
                                       store_arr[i:i + 1],
                                       probe_arr[i:i + 1])
            if probe_arr[i]:
                resident = scalar.contains(addresses[i])
                dirty = scalar.is_dirty(addresses[i])
                if resident and (dirty or store_arr[i]):
                    was_dirty = scalar.invalidate(addresses[i])
                    want = 2 if was_dirty else 1
                else:
                    want = 0
            else:
                hit, _ = scalar.access(addresses[i], bool(store_arr[i]))
                want = 1 if hit else 0
            assert got[0] == want, (batch, i)

    assert _lru_state(scalar) == _lru_state(vector)
    assert scalar._resident == vector._resident
