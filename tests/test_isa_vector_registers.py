"""Tests for the Vector-µSIMD functional layer and the register metadata."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra import numpy as hnp

from repro.isa import packed, vectorops
from repro.isa.operations import (OpClass, Opcode, OperationDescriptor,
                                  descriptor_for, micro_ops_for, register_opcode)
from repro.isa.registers import (AccumulatorValue, RegisterClass, RegisterFileSpec,
                                 VectorRegisterValue)


class TestVectorState:
    def test_defaults(self):
        state = vectorops.VectorState()
        assert state.vl == 16 and state.vs == 1

    def test_vl_bounds(self):
        state = vectorops.VectorState()
        state.vl = 1
        state.vl = 16
        with pytest.raises(ValueError):
            state.vl = 0
        with pytest.raises(ValueError):
            state.vl = 17

    def test_vs_bounds(self):
        state = vectorops.VectorState()
        state.vs = 5
        with pytest.raises(ValueError):
            state.vs = 0


class TestVectorMemory:
    def test_vload_stride_one(self):
        memory = np.arange(64, dtype=np.int16).reshape(8, 8)
        out = vectorops.vload_words(memory, base_word=2, vl=3, vs=1)
        np.testing.assert_array_equal(out, memory[2:5])

    def test_vload_strided(self):
        memory = np.arange(64, dtype=np.int16).reshape(8, 8)
        out = vectorops.vload_words(memory, base_word=0, vl=4, vs=2)
        np.testing.assert_array_equal(out, memory[[0, 2, 4, 6]])

    def test_vload_out_of_bounds(self):
        memory = np.zeros((4, 8))
        with pytest.raises(IndexError):
            vectorops.vload_words(memory, base_word=0, vl=4, vs=2)

    def test_vstore_roundtrip(self):
        memory = np.zeros((8, 8), dtype=np.int16)
        value = np.arange(16, dtype=np.int16).reshape(2, 8)
        vectorops.vstore_words(memory, base_word=3, value=value, vs=2)
        np.testing.assert_array_equal(memory[3], value[0])
        np.testing.assert_array_equal(memory[5], value[1])

    def test_vload_respects_state(self):
        memory = np.arange(32, dtype=np.int16).reshape(4, 8)
        state = vectorops.VectorState(vl=2, vs=2)
        out = vectorops.vload(memory, 0, state)
        np.testing.assert_array_equal(out, memory[[0, 2]])


class TestVectorCompute:
    def test_vmap2_length_mismatch(self):
        with pytest.raises(ValueError):
            vectorops.vmap2(packed.paddw, np.zeros((2, 4)), np.zeros((3, 4)))

    def test_vaddw_elementwise(self):
        a = np.full((4, 4), 10, np.int16)
        b = np.full((4, 4), 5, np.int16)
        np.testing.assert_array_equal(vectorops.vaddw(a, b), np.full((4, 4), 15))

    def test_vsubb_saturates(self):
        a = np.full((2, 8), 5, np.uint8)
        b = np.full((2, 8), 9, np.uint8)
        np.testing.assert_array_equal(vectorops.vsubb(a, b), np.zeros((2, 8)))

    def test_vunpack_widens(self):
        a = np.arange(16, dtype=np.uint8).reshape(2, 8)
        lo, hi = vectorops.vunpack_u8_to_s16(a)
        assert lo.shape == (2, 4) and lo.dtype == np.int16

    def test_vmaddwd_shape(self):
        a = np.ones((3, 4), np.int16)
        out = vectorops.vmaddwd(a, a)
        assert out.shape == (3, 2)
        np.testing.assert_array_equal(out, np.full((3, 2), 2))


class TestAccumulators:
    def test_vsad_accumulate_matches_reference(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, (8, 8), dtype=np.uint8)
        b = rng.integers(0, 256, (8, 8), dtype=np.uint8)
        acc = vectorops.accumulator_zero()
        acc = vectorops.vsad_accumulate(acc, a, b)
        assert vectorops.accumulator_sum(acc) == int(
            np.abs(a.astype(int) - b.astype(int)).sum())

    def test_vmac_accumulate_matches_dot(self):
        a = np.arange(8, dtype=np.int64).reshape(2, 4)
        b = np.arange(8, 16, dtype=np.int64).reshape(2, 4)
        acc = vectorops.accumulator_zero(4)
        acc = vectorops.vmac_accumulate(acc, a, b)
        assert vectorops.accumulator_sum(acc) == int((a * b).sum())

    def test_accumulator_value_range_check(self):
        acc = AccumulatorValue(lanes=8)
        acc.accumulate(np.full(8, 100))
        assert acc.check_range()
        acc.slots[:] = 1 << 40
        assert not acc.check_range()

    def test_accumulator_clear_and_reduce(self):
        acc = AccumulatorValue(lanes=4)
        acc.accumulate(np.array([1, 2, 3, 4]))
        assert acc.reduce() == 10
        acc.clear()
        assert acc.reduce() == 0

    @given(hnp.arrays(np.uint8, (5, 8)), hnp.arrays(np.uint8, (5, 8)))
    @settings(max_examples=30)
    def test_vsad_property(self, a, b):
        acc = vectorops.vsad_accumulate(vectorops.accumulator_zero(), a, b)
        assert vectorops.accumulator_sum(acc) == int(
            np.abs(a.astype(int) - b.astype(int)).sum())


class TestRegisterMetadata:
    def test_register_file_spec_capacity(self):
        spec = RegisterFileSpec(RegisterClass.VECTOR, 20, 64,
                                words_per_register=16, lanes=4)
        assert spec.total_bits == 20 * 64 * 16

    def test_register_file_spec_validation(self):
        with pytest.raises(ValueError):
            RegisterFileSpec(RegisterClass.INT, -1)
        with pytest.raises(ValueError):
            RegisterFileSpec(RegisterClass.INT, 4, words_per_register=0)

    def test_vector_register_value(self):
        value = VectorRegisterValue(np.zeros((8, 8)), element_bits=8)
        assert value.vector_length == 8 and value.lanes == 8
        assert value.as_matrix().shape == (8, 8)

    def test_vector_register_value_limits(self):
        with pytest.raises(ValueError):
            VectorRegisterValue(np.zeros((17, 8)))
        with pytest.raises(ValueError):
            VectorRegisterValue(np.zeros(8))

    def test_accumulator_slot_bits(self):
        assert AccumulatorValue(lanes=8).slot_bits == 24
        assert AccumulatorValue(lanes=4).slot_bits == 48


class TestOpcodeMetadata:
    def test_descriptor_lookup(self):
        desc = descriptor_for(Opcode.VSAD)
        assert desc.op_class is OpClass.VECTOR_SAD

    def test_descriptor_lookup_by_string(self):
        assert descriptor_for("paddb").op_class is OpClass.SIMD_ALU

    def test_unknown_opcode_raises(self):
        with pytest.raises(KeyError):
            descriptor_for("nonexistent_op")

    def test_register_duplicate_opcode_raises(self):
        with pytest.raises(ValueError):
            register_opcode(OperationDescriptor("add", OpClass.INT_ALU))

    def test_micro_ops_scalar(self):
        assert micro_ops_for(Opcode.ADD) == 1

    def test_micro_ops_simd(self):
        assert micro_ops_for(Opcode.PADDB) == 8
        assert micro_ops_for(Opcode.PADDW) == 4

    def test_micro_ops_vector(self):
        assert micro_ops_for(Opcode.VADDB, vector_length=16) == 128
        assert micro_ops_for(Opcode.VADDW, vector_length=8) == 32

    def test_micro_ops_vector_memory(self):
        assert micro_ops_for(Opcode.VLOAD, vector_length=8) == 64

    def test_micro_ops_subword_override(self):
        assert micro_ops_for(Opcode.VADDB, vector_length=4, subwords=2) == 8

    def test_micro_ops_rejects_bad_vl(self):
        with pytest.raises(ValueError):
            micro_ops_for(Opcode.VADDB, vector_length=17)
        with pytest.raises(ValueError):
            micro_ops_for(Opcode.VADDB, vector_length=0)

    def test_op_class_predicates(self):
        assert OpClass.VECTOR_LOAD.is_vector_memory
        assert OpClass.VECTOR_LOAD.is_memory
        assert not OpClass.VECTOR_LOAD.is_vector
        assert OpClass.VECTOR_SAD.is_vector
        assert OpClass.SIMD_ALU.is_simd
        assert OpClass.STORE.is_store
        assert not OpClass.LOAD.is_store
