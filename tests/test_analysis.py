"""Tests for the static analyzer: diagnostics, lints, schedule verification.

The mutation tests are the heart of this file: they corrupt known-good
schedules and programs one defect class at a time and assert the analyzer
reports the *right* ``REPxxx`` code — a checker that cannot catch seeded
defects is just expensive agreement.
"""

import json
from dataclasses import replace

import pytest

from repro.analysis import (
    CODE_CATALOG,
    DiagnosticReport,
    IRValidationError,
    ScheduleVerificationError,
    Severity,
    SourceLocation,
    analyze_program,
    carried_recurrence_bound,
    check_or_raise,
    check_schedule,
    diag,
    lint_program,
    reconstruct_edges,
    verification_enabled,
    verify_compiled,
)
from repro.analysis.analyzer import VERIFY_ENV
from repro.compiler.builder import KernelBuilder
from repro.compiler.cache import CompileCache, compile_cached
from repro.compiler.ir import (AddressExpr, ISAFlavor, KernelProgram,
                               LoopVar, Operation, Segment)
from repro.compiler.scheduler import compile_program
from repro.compiler.trace import TraceLoweringError
from repro.isa.operations import Opcode
from repro.machine.config import get_config
from repro.machine.latency import LatencyModel


VECTOR_CONFIG = get_config("vector2-2w")
LATENCY = LatencyModel()


def vector_kernel() -> KernelProgram:
    """A small, legal vector kernel with a loop-carried accumulator."""
    b = KernelBuilder("mutant", ISAFlavor.VECTOR)
    with b.loop(4, "i") as i:
        b.setvl(8)
        acc = b.acc_clear()
        v1 = b.vload(b.addr(0x1000, (i, 64)), vl=8)
        v2 = b.vload(b.addr(0x2000, (i, 64)), vl=8)
        acc = b.vsad(acc, v1, v2, vl=8)
        total = b.vsum(acc)
        b.store(b.addr(0x3000, (i, 8)), total)
    return b.program()


def kernel_schedule():
    program = vector_kernel()
    compiled = compile_program(program, VECTOR_CONFIG, LATENCY, verify=False)
    segment = program.segments()[0]
    return compiled.schedule_for(segment), segment


def codes_of(findings) -> set:
    return {d.code for d in findings}


# ---------------------------------------------------------------------------
# Diagnostics framework
# ---------------------------------------------------------------------------

class TestDiagnostics:
    def test_catalog_defaults_severity(self):
        finding = diag("REP201", "too early")
        assert finding.severity is Severity.ERROR
        assert diag("REP301", "may overlap").severity is Severity.WARNING
        assert diag("REP104", "dead loop").severity is Severity.INFO

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError, match="REP999"):
            diag("REP999", "nope")

    def test_format_includes_location(self):
        finding = diag("REP201", "too early",
                       SourceLocation(benchmark="jpeg_enc", segment=2,
                                      operation=5, opcode="vload", cycle=3))
        text = finding.format()
        assert text.startswith("REP201 error: too early [")
        assert "benchmark=jpeg_enc" in text and "op=5(vload)" in text

    def test_report_summary_and_json(self):
        report = DiagnosticReport()
        report.add(diag("REP202", "oversubscribed"))
        report.add(diag("REP301", "overlap"))
        assert report.has_errors
        assert report.codes() == ["REP202", "REP301"]
        assert "1 error, 1 warning, 0 info" in report.summary()
        payload = json.loads(report.to_json())
        assert payload["format"] == "repro-diagnostics/1"
        assert payload["summary"]["errors"] == 1
        assert payload["diagnostics"][0]["code"] == "REP202"

    def test_every_catalog_code_is_repxxx(self):
        for code, (severity, title) in CODE_CATALOG.items():
            assert code.startswith("REP") and len(code) == 6
            assert isinstance(severity, Severity) and title


class TestTypedExceptions:
    def test_builder_raises_typed_validation_error(self):
        b = KernelBuilder("bad", ISAFlavor.SCALAR)
        with b.loop(4, "i") as i:
            b.iop()
        with b.loop(4, "j"):
            b.load(b.addr(0x10000, (i, 8)))
        with pytest.raises(IRValidationError) as excinfo:
            b.program()
        # still a ValueError with the historical message for old callers
        assert isinstance(excinfo.value, ValueError)
        assert "not bound by an enclosing" in str(excinfo.value)
        assert excinfo.value.code == "REP101"
        assert excinfo.value.diagnostic.location.program == "bad"

    def test_trace_error_carries_rep105(self):
        err = TraceLoweringError("outside the affine contract")
        assert isinstance(err, ValueError)
        assert err.code == "REP105"
        assert err.diagnostic.severity is Severity.ERROR


# ---------------------------------------------------------------------------
# Dependence reconstruction
# ---------------------------------------------------------------------------

class TestDepgraph:
    def test_raw_distance_is_producer_latency(self):
        b = KernelBuilder("chain", ISAFlavor.SCALAR)
        loaded = b.load(b.addr(0x100))
        b.iop(Opcode.ADD, srcs=(loaded,))
        segment = b.program().segments()[0]
        edges = reconstruct_edges(segment, VECTOR_CONFIG, LATENCY)
        raw = [e for e in edges if e.kind == "raw"]
        assert len(raw) == 1
        assert raw[0].producer == 0 and raw[0].consumer == 1
        assert raw[0].min_distance == LATENCY.result_latency(
            Opcode.LOAD, 1, VECTOR_CONFIG)

    def test_memory_edges_from_aliasing_stores(self):
        b = KernelBuilder("mem", ISAFlavor.SCALAR)
        with b.loop(4, "i") as i:
            value = b.iop()
            b.store(b.addr(0x100, (i, 8)), value)
            b.load(b.addr(0x100, (i, 8)))
        segment = b.program().segments()[0]
        edges = reconstruct_edges(segment, VECTOR_CONFIG, LATENCY)
        memory = [e for e in edges if e.kind == "memory"]
        assert len(memory) == 1
        assert (memory[0].producer, memory[0].consumer) == (1, 2)
        assert memory[0].min_distance >= 1

    def test_self_dependence_never_reported(self):
        # an accumulator op reads and writes the same register
        segment = vector_kernel().segments()[0]
        for edge in reconstruct_edges(segment, VECTOR_CONFIG, LATENCY):
            assert edge.producer != edge.consumer

    def test_recurrence_bound_from_accumulator(self):
        segment = vector_kernel().segments()[0]
        bound = carried_recurrence_bound(segment, VECTOR_CONFIG, LATENCY)
        assert bound >= LATENCY.result_latency(Opcode.VSAD, 8, VECTOR_CONFIG)


# ---------------------------------------------------------------------------
# Clean programs stay clean
# ---------------------------------------------------------------------------

class TestCleanPrograms:
    def test_vector_kernel_verifies_clean(self):
        program = vector_kernel()
        compiled = compile_program(program, VECTOR_CONFIG, LATENCY,
                                   verify=False)
        report = verify_compiled(compiled)
        assert not report.has_errors, report.format_text()

    def test_real_benchmark_verifies_clean(self):
        from repro.workloads.suite import SuiteParameters, build_benchmark
        spec = build_benchmark("gsm_enc", SuiteParameters.tiny())
        program = spec.program_for(VECTOR_CONFIG)
        compiled = compile_cached(program, VECTOR_CONFIG,
                                  cache=CompileCache())
        report = verify_compiled(compiled, benchmark="gsm_enc")
        assert not report.has_errors, report.format_text()


# ---------------------------------------------------------------------------
# Mutation tests: every seeded defect class must be caught
# ---------------------------------------------------------------------------

class TestScheduleMutations:
    def test_clean_schedule_passes(self):
        schedule, _ = kernel_schedule()
        assert check_schedule(schedule, VECTOR_CONFIG, LATENCY) == []

    def test_dependence_violation_cycle_swap(self):
        schedule, segment = kernel_schedule()
        edges = reconstruct_edges(segment, VECTOR_CONFIG, LATENCY)
        edge = max((e for e in edges if e.kind == "raw"),
                   key=lambda e: e.min_distance)
        entries = list(schedule.entries)
        entries[edge.producer], entries[edge.consumer] = (
            replace(entries[edge.producer], cycle=entries[edge.consumer].cycle),
            replace(entries[edge.consumer], cycle=entries[edge.producer].cycle))
        mutated = replace(schedule, entries=entries)
        codes = codes_of(check_schedule(mutated, VECTOR_CONFIG, LATENCY))
        assert "REP201" in codes

    def test_dependence_violation_latency_shaved(self):
        # issue the consumer one cycle after a multi-cycle producer: legal
        # issue order, illegal timing — the defect a dropped latency edge
        # would cause
        schedule, segment = kernel_schedule()
        edges = reconstruct_edges(segment, VECTOR_CONFIG, LATENCY)
        edge = max((e for e in edges if e.min_distance > 1),
                   key=lambda e: e.min_distance)
        entries = list(schedule.entries)
        entries[edge.consumer] = replace(
            entries[edge.consumer], cycle=entries[edge.producer].cycle + 1)
        mutated = replace(schedule, entries=entries)
        codes = codes_of(check_schedule(mutated, VECTOR_CONFIG, LATENCY))
        assert "REP201" in codes

    def test_issue_slot_double_booking(self):
        schedule, _ = kernel_schedule()
        entries = [replace(entry, cycle=0) for entry in schedule.entries]
        assert len(entries) > VECTOR_CONFIG.issue_width
        mutated = replace(schedule, entries=entries)
        findings = check_schedule(mutated, VECTOR_CONFIG, LATENCY)
        codes = codes_of(findings)
        assert "REP202" in codes
        oversub = [d for d in findings if d.code == "REP202"]
        assert any("issue slots" in d.message for d in oversub)

    def test_port_double_booking(self):
        # both vector loads on one cycle: the single L2 port is occupied
        # for ceil(VL / port words) cycles each
        schedule, segment = kernel_schedule()
        load_indices = [i for i, op in enumerate(segment.operations)
                        if op.opcode == Opcode.VLOAD]
        assert len(load_indices) == 2
        entries = list(schedule.entries)
        entries[load_indices[1]] = replace(
            entries[load_indices[1]], cycle=entries[load_indices[0]].cycle)
        mutated = replace(schedule, entries=entries)
        findings = check_schedule(mutated, VECTOR_CONFIG, LATENCY)
        oversub = [d for d in findings if d.code == "REP202"]
        assert any("L2" in d.message for d in oversub)

    def test_missing_entry(self):
        schedule, _ = kernel_schedule()
        mutated = replace(schedule, entries=list(schedule.entries)[:-1])
        codes = codes_of(check_schedule(mutated, VECTOR_CONFIG, LATENCY))
        assert codes == {"REP203"}

    def test_duplicate_entry(self):
        schedule, _ = kernel_schedule()
        entries = list(schedule.entries) + [schedule.entries[0]]
        mutated = replace(schedule, entries=entries)
        codes = codes_of(check_schedule(mutated, VECTOR_CONFIG, LATENCY))
        assert codes == {"REP203"}

    def test_foreign_operation(self):
        schedule, _ = kernel_schedule()
        foreign = Operation(Opcode.ADD)
        entries = list(schedule.entries)
        entries[0] = replace(entries[0], operation=foreign)
        mutated = replace(schedule, entries=entries)
        codes = codes_of(check_schedule(mutated, VECTOR_CONFIG, LATENCY))
        assert "REP203" in codes

    def test_wrong_assumed_latency(self):
        schedule, _ = kernel_schedule()
        entries = list(schedule.entries)
        entries[3] = replace(entries[3],
                             assumed_latency=entries[3].assumed_latency + 1)
        mutated = replace(schedule, entries=entries)
        codes = codes_of(check_schedule(mutated, VECTOR_CONFIG, LATENCY))
        assert "REP204" in codes

    def test_wrong_occupancy(self):
        schedule, _ = kernel_schedule()
        entries = list(schedule.entries)
        entries[3] = replace(entries[3], occupancy=entries[3].occupancy + 1)
        mutated = replace(schedule, entries=entries)
        codes = codes_of(check_schedule(mutated, VECTOR_CONFIG, LATENCY))
        assert "REP205" in codes

    def test_recurrence_interval_below_bound(self):
        schedule, _ = kernel_schedule()
        mutated = replace(schedule, recurrence_interval=0)
        codes = codes_of(check_schedule(mutated, VECTOR_CONFIG, LATENCY))
        assert "REP206" in codes

    def test_unexecutable_operation(self):
        # a µSIMD schedule checked against a machine with neither µSIMD nor
        # vector units
        b = KernelBuilder("packed", ISAFlavor.USIMD)
        a = b.simd(Opcode.PADDW)
        b.simd(Opcode.PADDW, a)
        program = b.program()
        usimd = get_config("usimd-2w")
        compiled = compile_program(program, usimd, LATENCY, verify=False)
        schedule = compiled.schedule_for(program.segments()[0])
        vliw = get_config("vliw-2w")
        codes = codes_of(check_schedule(schedule, vliw, LATENCY))
        assert "REP207" in codes

    def test_negative_cycle(self):
        schedule, _ = kernel_schedule()
        entries = list(schedule.entries)
        entries[0] = replace(entries[0], cycle=-1)
        mutated = replace(schedule, entries=entries)
        codes = codes_of(check_schedule(mutated, VECTOR_CONFIG, LATENCY))
        assert "REP208" in codes


class TestIRMutations:
    def test_shrunk_vector_remainder(self):
        # shrink the producer's VL below its consumer's: stale-lane read
        program = vector_kernel()
        segment = program.segments()[0]
        producer = next(op for op in segment.operations
                        if op.opcode == Opcode.VLOAD)
        producer.vector_length = 4
        codes = codes_of(lint_program(program))
        assert "REP103" in codes

    def test_dead_overwrite(self):
        b = KernelBuilder("dead", ISAFlavor.SCALAR)
        reg = b.int_reg("x")
        b.emit(Operation(Opcode.MOV, dests=(reg,)))
        b.emit(Operation(Opcode.MOV, dests=(reg,)))
        codes = codes_of(lint_program(b.program()))
        assert "REP102" in codes

    def test_single_write_not_flagged(self):
        b = KernelBuilder("filler", ISAFlavor.SCALAR)
        b.independent_ops(3)
        assert lint_program(b.program()) == []

    def test_zero_trip_loop_is_info(self):
        b = KernelBuilder("deadloop", ISAFlavor.SCALAR)
        with b.loop(0, "i"):
            b.iop()
        report = analyze_program(b.program())
        assert report.codes() == ["REP104"]
        assert not report.has_errors

    def test_oversized_vector_length(self):
        b = KernelBuilder("huge", ISAFlavor.VECTOR)
        v = b.vload(b.addr(0x1000), vl=8)
        b.vop(Opcode.VADDW, v, v, vl=32)
        codes = codes_of(lint_program(b.program()))
        assert "REP106" in codes

    def test_unbound_variable_in_handmade_ir(self):
        # bypass the builder's own validation by constructing IR directly
        stray = LoopVar.fresh("k")
        from repro.compiler.ir import VirtualRegister
        from repro.isa.registers import RegisterClass
        dest = VirtualRegister.fresh(RegisterClass.INT)
        op = Operation(Opcode.LOAD, dests=(dest,),
                       address=AddressExpr(base=0x100, terms=((stray, 8),)))
        program = KernelProgram(name="handmade", flavor=ISAFlavor.SCALAR,
                                body=[Segment(operations=[op])])
        codes = codes_of(lint_program(program))
        assert "REP101" in codes

    def test_negative_address_reach(self):
        b = KernelBuilder("below", ISAFlavor.SCALAR)
        with b.loop(4, "i") as i:
            b.load(b.addr(8, (i, -8)))
        codes = codes_of(lint_program(b.program()))
        assert "REP302" in codes

    def test_unflagged_overlap_between_distinct_streams(self):
        # store indexed by i, load indexed by j over the same table: the
        # structural alias test sees different expressions (no edge) but
        # the footprints meet for i == j
        b = KernelBuilder("overlap", ISAFlavor.SCALAR)
        with b.loop(4, "i") as i:
            with b.loop(4, "j") as j:
                value = b.iop()
                b.store(b.addr(0x100, (i, 8)), value)
                b.load(b.addr(0x100, (j, 8)))
        findings = lint_program(b.program())
        assert "REP301" in codes_of(findings)
        assert all(d.severity is not Severity.ERROR for d in findings)

    def test_disjoint_streams_not_flagged(self):
        b = KernelBuilder("disjoint", ISAFlavor.SCALAR)
        with b.loop(4, "i") as i:
            value = b.iop()
            b.store(b.addr(0x100, (i, 8)), value)
            b.load(b.addr(0x300, (i, 8)))
        assert "REP301" not in codes_of(lint_program(b.program()))

    def test_interleaved_strided_streams_not_flagged(self):
        # two stride-32 streams offset by 8 bytes never meet: the gcd
        # lattice separates what interval arithmetic cannot
        b = KernelBuilder("lattice", ISAFlavor.VECTOR)
        with b.loop(4, "i") as i:
            v = b.vload(b.addr(0x1000, (i, 512)), vl=16, stride_bytes=32)
            b.vstore(b.addr(0x1008, (i, 512)), v, vl=16, stride_bytes=32)
        assert "REP301" not in codes_of(lint_program(b.program()))


# ---------------------------------------------------------------------------
# verify=True wiring
# ---------------------------------------------------------------------------

class TestVerifyWiring:
    def test_env_contract(self, monkeypatch):
        monkeypatch.delenv(VERIFY_ENV, raising=False)
        assert not verification_enabled()
        assert verification_enabled(True)
        for value in ("0", "false", "no", "off", ""):
            monkeypatch.setenv(VERIFY_ENV, value)
            assert not verification_enabled()
        monkeypatch.setenv(VERIFY_ENV, "1")
        assert verification_enabled()
        assert not verification_enabled(False)  # explicit False wins

    def test_compile_program_verify_true_stamps(self):
        compiled = compile_program(vector_kernel(), VECTOR_CONFIG, LATENCY,
                                   verify=True)
        assert compiled._analysis_verified

    def test_check_or_raise_on_corrupted_schedule(self):
        program = vector_kernel()
        compiled = compile_program(program, VECTOR_CONFIG, LATENCY,
                                   verify=False)
        segment = program.segments()[0]
        schedule = compiled.schedule_for(segment)
        entries = [replace(entry, cycle=0) for entry in schedule.entries]
        compiled.schedules[id(segment)] = replace(schedule, entries=entries)
        with pytest.raises(ScheduleVerificationError) as excinfo:
            check_or_raise(compiled)
        assert excinfo.value.report.has_errors
        assert excinfo.value.code.startswith("REP2")

    def test_env_enables_verification_in_compile(self, monkeypatch):
        monkeypatch.setenv(VERIFY_ENV, "1")
        compiled = compile_program(vector_kernel(), VECTOR_CONFIG, LATENCY)
        assert compiled._analysis_verified


class TestCacheRebindVerification:
    """Satellite regression: rebound schedules are checked, not trusted."""

    def _corrupt(self, compiled):
        segment = compiled.program.segments()[0]
        schedule = compiled.schedule_for(segment)
        entries = [replace(entry, cycle=0) for entry in schedule.entries]
        compiled.schedules[id(segment)] = replace(schedule, entries=entries)

    def test_clean_rebind_verifies(self):
        cache = CompileCache()
        first = cache.get(vector_kernel(), VECTOR_CONFIG, LATENCY,
                          verify=True)
        second = cache.get(vector_kernel(), VECTOR_CONFIG, LATENCY,
                           verify=True)
        assert second is not first
        assert cache.stats.rebinds == 1
        assert second._analysis_verified

    def test_corrupted_cache_entry_caught_on_rebind(self):
        cache = CompileCache()
        cached = cache.get(vector_kernel(), VECTOR_CONFIG, LATENCY,
                           verify=False)
        self._corrupt(cached)
        with pytest.raises(ScheduleVerificationError):
            cache.get(vector_kernel(), VECTOR_CONFIG, LATENCY, verify=True)

    def test_corrupted_cache_entry_caught_on_identity_hit(self):
        cache = CompileCache()
        program = vector_kernel()
        cached = cache.get(program, VECTOR_CONFIG, LATENCY, verify=False)
        self._corrupt(cached)
        with pytest.raises(ScheduleVerificationError):
            cache.get(program, VECTOR_CONFIG, LATENCY, verify=True)


class TestVerificationMemo:
    """A passed verification is memoised by content, never by trust."""

    def test_identical_recompile_skips_reanalysis(self, monkeypatch):
        from repro.analysis import analyzer

        analyzer._PASSED_MEMO.clear()
        compile_program(vector_kernel(), VECTOR_CONFIG, LATENCY, verify=True)
        calls = []
        real = analyzer.verify_compiled

        def counting(compiled, **kwargs):
            calls.append(compiled)
            return real(compiled, **kwargs)

        monkeypatch.setattr(analyzer, "verify_compiled", counting)
        again = compile_program(vector_kernel(), VECTOR_CONFIG, LATENCY,
                                verify=True)
        assert again._analysis_verified
        assert calls == []  # content memo hit: one fingerprint, no re-analysis

    def test_memo_never_hides_a_corrupted_schedule(self):
        from repro.analysis import analyzer

        analyzer._PASSED_MEMO.clear()
        program = vector_kernel()
        compiled = compile_program(program, VECTOR_CONFIG, LATENCY,
                                   verify=True)
        # corrupt the timing of the already-memoised compilation: the key is
        # content-derived, so the corrupted object cannot match the passed one
        segment = program.segments()[0]
        schedule = compiled.schedule_for(segment)
        entries = [replace(entry, cycle=0) for entry in schedule.entries]
        compiled.schedules[id(segment)] = replace(schedule, entries=entries)
        compiled._analysis_verified = False
        with pytest.raises(ScheduleVerificationError):
            check_or_raise(compiled)

    def test_foreign_operation_entries_are_never_memoisable(self):
        from repro.analysis.analyzer import _verification_key

        program = vector_kernel()
        compiled = compile_program(program, VECTOR_CONFIG, LATENCY,
                                   verify=False)
        assert _verification_key(compiled) is not None
        segment = program.segments()[0]
        schedule = compiled.schedule_for(segment)
        foreign = replace(schedule.entries[0],
                          operation=Operation(Opcode.ADD))
        compiled.schedules[id(segment)] = replace(
            schedule, entries=[foreign] + list(schedule.entries[1:]))
        assert _verification_key(compiled) is None


# ---------------------------------------------------------------------------
# Fuzz-lane integration
# ---------------------------------------------------------------------------

class TestFuzzIntegration:
    def test_compare_spec_reports_analysis_errors(self):
        from repro.compiler.cache import GLOBAL_COMPILE_CACHE
        from repro.fuzz import compare_spec
        from repro.workloads.synthetic import generate_spec
        from repro.workloads.synthetic.generator import params_for_seed
        from repro.workloads.synthetic.spec import build_program

        spec = generate_spec(params_for_seed(0, "tiny"))
        program = build_program(spec, ISAFlavor.VECTOR)
        GLOBAL_COMPILE_CACHE.clear()
        try:
            # plant a corrupted compilation in the global cache; the fuzz
            # lane's structurally identical rebuild rebinds it
            compiled = compile_cached(program, VECTOR_CONFIG, verify=False)
            segment = compiled.program.segments()[0]
            schedule = compiled.schedule_for(segment)
            entries = [replace(entry, cycle=0) for entry in schedule.entries]
            compiled.schedules[id(segment)] = replace(schedule,
                                                      entries=entries)
            detail = compare_spec(spec, ISAFlavor.VECTOR, "vector2-2w")
            assert detail is not None and detail.startswith("analysis:")
            assert "REP2" in detail
        finally:
            GLOBAL_COMPILE_CACHE.clear()

    def test_clean_seed_analyzes_clean(self):
        from repro.analysis import analyze_fuzz_seeds
        report = analyze_fuzz_seeds(2)
        assert not report.has_errors, report.format_text()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestLintCLI:
    def test_lint_exits_clean_on_real_benchmark(self, capsys):
        from repro.__main__ import main
        code = main(["lint", "--benchmarks", "fir_bank", "--tiny",
                     "--configs", "vector2-2w", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0

    def test_lint_rejects_unknown_config(self, capsys):
        from repro.__main__ import main
        code = main(["lint", "--benchmarks", "fir_bank",
                     "--configs", "warp-drive"])
        assert code == 2
        assert "warp-drive" in capsys.readouterr().err
