"""Tests for the caches, the vector cache, the hierarchy and the layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.config import MemoryConfig
from repro.memory.cache import SetAssociativeCache
from repro.memory.hierarchy import COHERENCY_WRITEBACK_PENALTY, MemoryHierarchy
from repro.memory.layout import AddressSpace, ArraySpec
from repro.memory.stream import LEVEL_NAMES, AccessStream, StreamOp
from repro.memory.vector_cache import VectorCache


class TestSetAssociativeCache:
    def make(self, size=1024, assoc=2, line=32):
        return SetAssociativeCache(size, assoc, line, name="test")

    def test_miss_then_hit(self):
        cache = self.make()
        hit, _ = cache.access(0x100)
        assert not hit
        hit, _ = cache.access(0x100)
        assert hit
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_same_line_hits(self):
        cache = self.make(line=32)
        cache.access(0x100)
        hit, _ = cache.access(0x11F)
        assert hit

    def test_lru_eviction(self):
        cache = self.make(size=128, assoc=2, line=32)  # 2 sets
        # three lines mapping to set 0: line addresses 0, 64, 128
        cache.access(0)
        cache.access(64)
        cache.access(0)      # make 64 the LRU
        cache.access(128)    # evicts 64
        assert cache.contains(0)
        assert not cache.contains(64)
        assert cache.contains(128)

    def test_dirty_writeback_address(self):
        cache = self.make(size=128, assoc=2, line=32)
        cache.access(0, is_store=True)
        cache.access(64)
        _, writeback = cache.access(128)
        assert writeback == 0
        assert cache.stats.writebacks == 1

    def test_invalidate(self):
        cache = self.make()
        cache.access(0x40, is_store=True)
        assert cache.invalidate(0x40) is True
        assert not cache.contains(0x40)
        assert cache.invalidate(0x40) is False

    def test_flush_counts_dirty(self):
        cache = self.make()
        cache.access(0, is_store=True)
        cache.access(64)
        assert cache.flush() == 1
        assert cache.resident_lines() == 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(100, 2, 32)
        with pytest.raises(ValueError):
            SetAssociativeCache(1024, 2, 33)
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 2, 32)

    def test_hit_rate(self):
        cache = self.make()
        assert cache.stats.hit_rate == 0.0
        cache.access(0)
        cache.access(0)
        assert cache.stats.hit_rate == 0.5

    @given(st.lists(st.integers(min_value=0, max_value=4096), min_size=1, max_size=200))
    @settings(max_examples=30)
    def test_residency_never_exceeds_capacity(self, addresses):
        cache = SetAssociativeCache(512, 2, 32)
        for address in addresses:
            cache.access(address)
        assert cache.resident_lines() <= 512 // 32
        # re-accessing the most recent address is always a hit
        hit, _ = cache.access(addresses[-1])
        assert hit

    def test_negative_address_rejected(self):
        cache = self.make()
        with pytest.raises(ValueError):
            cache.access(-8)

    def test_stats_frozen_restores_counters_but_keeps_state(self):
        cache = self.make()
        cache.access(0x100)
        before = cache.stats.snapshot()
        with cache.stats.stats_frozen():
            cache.access(0x900, is_store=True)
            cache.access(0x100)
        assert cache.stats.snapshot() == before
        assert cache.contains(0x900)
        assert cache.is_dirty(0x900)

    @given(st.lists(st.tuples(st.integers(0, 2048), st.booleans()),
                    min_size=1, max_size=120))
    @settings(max_examples=30)
    def test_access_batch_equals_serial_walk(self, events):
        serial = SetAssociativeCache(256, 2, 32)
        batched = SetAssociativeCache(256, 2, 32)
        expected = [serial.access(address, is_store=store)[0]
                    for address, store in events]
        addresses = np.array([address for address, _ in events], dtype=np.int64)
        stores = np.array([store for _, store in events], dtype=bool)
        hits = batched.access_batch(addresses, stores)
        assert hits.tolist() == expected
        assert serial.stats.snapshot() == batched.stats.snapshot()
        assert serial._tags == batched._tags
        assert serial._dirty == batched._dirty


class TestVectorCache:
    def make(self):
        return VectorCache(4096, 4, 64, banks=2, port_words=4)

    def test_plan_stride_one(self):
        cache = self.make()
        plan = cache.plan(base_address=0, stride_bytes=8, vector_length=16)
        assert plan.stride_one
        assert plan.transfer_cycles == 4
        assert len(plan.line_addresses) == 2  # 128 bytes = 2 x 64-byte lines

    def test_plan_non_unit_stride(self):
        cache = self.make()
        plan = cache.plan(base_address=0, stride_bytes=64, vector_length=8)
        assert not plan.stride_one
        assert plan.transfer_cycles == 8
        assert len(plan.line_addresses) == 8

    def test_stride_one_lines_hit_different_banks(self):
        cache = self.make()
        plan = cache.plan(base_address=0, stride_bytes=8, vector_length=16)
        assert plan.bank_conflict_cycles == 0

    def test_bank_conflicts_detected_for_same_bank_pairs(self):
        cache = self.make()
        # lines 0 and 128 both map to bank 0 (line index 0 and 2)
        plan = cache.plan(base_address=0, stride_bytes=16, vector_length=16)
        assert plan.stride_one is False  # stride 16 bytes is not element stride
        # craft an explicitly conflicting plan through the private helper
        assert cache._bank_conflicts([0, 128], stride_one=True) == 1
        assert cache._bank_conflicts([0, 64], stride_one=True) == 0

    def test_zero_stride_rejected(self):
        with pytest.raises(ValueError):
            self.make().plan(0, 0, 4)

    def test_access_lines_fills(self):
        cache = self.make()
        plan = cache.plan(0, 8, 16)
        missing, _ = cache.access_lines(plan, is_store=False)
        assert len(missing) == 2
        missing, _ = cache.access_lines(plan, is_store=False)
        assert missing == []


class TestHierarchy:
    def make(self, perfect=False):
        return MemoryHierarchy(MemoryConfig(), l1_ports=1, l2_port_words=4,
                               perfect=perfect)

    def test_scalar_cold_miss_goes_to_memory(self):
        hierarchy = self.make()
        result = hierarchy.scalar_access(0x2000)
        assert result.level == "memory"
        assert result.latency == 500

    def test_scalar_hit_after_fill(self):
        hierarchy = self.make()
        hierarchy.scalar_access(0x2000)
        result = hierarchy.scalar_access(0x2000)
        assert result.level == "l1"
        assert result.latency == 1

    def test_scalar_l2_hit_after_preload(self):
        hierarchy = self.make()
        hierarchy.preload(0x4000, 4096)
        result = hierarchy.scalar_access(0x4000)
        assert result.level == "l2"
        assert result.latency == 5

    def test_vector_hit_after_preload_stride_one(self):
        hierarchy = self.make()
        hierarchy.preload(0x8000, 4096)
        result = hierarchy.vector_access(0x8000, stride_bytes=8, vector_length=16)
        assert result.hit
        # 5-cycle cache + 4 transfer cycles - 1
        assert result.latency == 5 + 4 - 1

    def test_vector_non_unit_stride_serialises(self):
        hierarchy = self.make()
        hierarchy.preload(0x8000, 65536)
        result = hierarchy.vector_access(0x8000, stride_bytes=256, vector_length=16)
        assert result.latency >= 5 + 16 - 1
        assert not result.stride_one

    def test_vector_miss_penalty(self):
        hierarchy = self.make()
        result = hierarchy.vector_access(0x8000, stride_bytes=8, vector_length=16)
        assert not result.hit
        assert result.latency > 500  # two lines from memory

    def test_perfect_memory_scalar(self):
        hierarchy = self.make(perfect=True)
        assert hierarchy.scalar_access(0x1234).latency == 1

    def test_perfect_memory_vector_ignores_stride(self):
        hierarchy = self.make(perfect=True)
        result = hierarchy.vector_access(0, stride_bytes=1024, vector_length=16)
        assert result.latency == 5 + 4 - 1
        assert result.hit

    def test_coherency_writeback_penalty(self):
        hierarchy = self.make()
        hierarchy.preload(0x6000, 256)
        hierarchy.scalar_access(0x6000, is_store=True)   # dirty in L1
        result = hierarchy.vector_access(0x6000, stride_bytes=8, vector_length=8)
        assert result.coherency_penalty == COHERENCY_WRITEBACK_PENALTY
        assert hierarchy.stats.coherency_writebacks == 1

    def test_preload_does_not_change_stats(self):
        hierarchy = self.make()
        hierarchy.preload(0, 8192)
        assert hierarchy.l2.stats.accesses == 0
        assert hierarchy.l3.stats.accesses == 0

    def test_statistics_snapshot(self):
        hierarchy = self.make()
        hierarchy.scalar_access(0)
        stats = hierarchy.statistics()
        assert stats["l1"]["accesses"] == 1
        assert stats["paths"]["scalar_accesses"] == 1

    def test_reset_stats(self):
        hierarchy = self.make()
        hierarchy.scalar_access(0)
        hierarchy.reset_stats()
        assert hierarchy.l1.stats.accesses == 0
        assert hierarchy.stats.scalar_accesses == 0

    def test_preload_include_l1(self):
        hierarchy = self.make()
        hierarchy.preload(0x4000, 4096, include_l1=True)
        result = hierarchy.scalar_access(0x4000)
        assert result.level == "l1"
        assert hierarchy.l1.stats.accesses == 1  # only the probe above


class TestAccessResultSemantics:
    """``hit`` means "hit in the level the schedule assumed", deliberately.

    The compiler schedules every scalar access as a 1-cycle L1 hit, so a
    scalar access served by the L2 or L3 *stalled the pipeline* and reports
    ``hit=False`` even though it never reached memory; ``level`` (alias
    ``served_level``) names the server and ``l1_hit`` isolates the true L1
    case.  The trace tier reproduces exactly this accounting (its level
    counters are tested against the interpreter's), so the semantics are
    pinned down here.
    """

    def make(self):
        return MemoryHierarchy(MemoryConfig(), l1_ports=1, l2_port_words=4)

    def test_scalar_l1_hit(self):
        hierarchy = self.make()
        hierarchy.scalar_access(0x2000)
        result = hierarchy.scalar_access(0x2000)
        assert result.hit and result.l1_hit
        assert result.served_level == "l1"

    def test_scalar_l2_hit_reports_schedule_miss(self):
        hierarchy = self.make()
        hierarchy.preload(0x4000, 256)
        result = hierarchy.scalar_access(0x4000)
        assert result.served_level == "l2"
        assert result.hit is False      # the schedule assumed an L1 hit
        assert result.l1_hit is False
        assert result.latency == hierarchy.config.l2_latency

    def test_scalar_l3_and_memory(self):
        hierarchy = self.make()
        cold = hierarchy.scalar_access(0x9000)
        assert cold.served_level == "memory" and not cold.hit
        hierarchy.l1.flush()
        hierarchy.l2.cache.flush()
        warm = hierarchy.scalar_access(0x9000)
        assert warm.served_level == "l3" and not warm.hit

    def test_vector_hit_is_l2_hit(self):
        hierarchy = self.make()
        hierarchy.preload(0x8000, 4096)
        result = hierarchy.vector_access(0x8000, stride_bytes=8, vector_length=16)
        assert result.hit                 # the vector path's target level is L2
        assert result.l1_hit is False     # ... which is not the L1
        assert result.served_level == "l2"


class TestBatchedHierarchy:
    def make(self):
        return MemoryHierarchy(MemoryConfig(), l1_ports=1, l2_port_words=4)

    def test_scalar_access_batch_matches_serial(self):
        serial, batched = self.make(), self.make()
        addresses = np.array([0x100, 0x100, 0x5000, 0x100, 0x5008, 0x9000],
                             dtype=np.int64)
        expected = [serial.scalar_access(int(a)) for a in addresses]
        result = batched.scalar_access_batch(addresses)
        assert result.latencies.tolist() == [r.latency for r in expected]
        assert ([LEVEL_NAMES[code] for code in result.levels.tolist()]
                == [r.level for r in expected])
        assert serial.statistics() == batched.statistics()

    def test_vector_access_batch_matches_serial(self):
        serial, batched = self.make(), self.make()
        serial.preload(0x8000, 2048)
        batched.preload(0x8000, 2048)
        bases = np.array([0x8000, 0x8080, 0x8000, 0xA000], dtype=np.int64)
        expected = [serial.vector_access(int(b), stride_bytes=8, vector_length=16)
                    for b in bases]
        result = batched.vector_access_batch(bases, stride_bytes=8,
                                             vector_length=16)
        assert result.latencies.tolist() == [r.latency for r in expected]
        assert serial.statistics() == batched.statistics()

    def test_batched_perfect_memory_matches_serial(self):
        serial = MemoryHierarchy(MemoryConfig(), perfect=True)
        batched = MemoryHierarchy(MemoryConfig(), perfect=True)
        addresses = np.array([0x100, 0x2000, 0x100], dtype=np.int64)
        scalar = batched.scalar_access_batch(addresses)
        assert scalar.latencies.tolist() == [
            serial.scalar_access(int(a)).latency for a in addresses]
        vector = batched.vector_access_batch(addresses, stride_bytes=256,
                                             vector_length=9)
        assert vector.latencies.tolist() == [
            serial.vector_access(int(a), 256, 9).latency for a in addresses]
        assert serial.statistics() == batched.statistics()

    def test_replay_stream_interleaves_scalar_and_vector(self):
        serial, batched = self.make(), self.make()
        ops = (StreamOp(is_vector=False, is_store=True),
               StreamOp(is_vector=True, is_store=False,
                        stride_bytes=8, vector_length=8))
        op_index = np.array([0, 1, 0, 1, 0, 1], dtype=np.int64)
        addresses = np.array([0x8000, 0x8000, 0x8040, 0x8040, 0x8000, 0x8000],
                             dtype=np.int64)
        expected = []
        for op_id, address in zip(op_index.tolist(), addresses.tolist()):
            if ops[op_id].is_vector:
                expected.append(serial.vector_access(address, 8, 8))
            else:
                expected.append(serial.scalar_access(address, is_store=True))
        result = batched.replay_stream(AccessStream(
            ops=ops, op_index=op_index, addresses=addresses))
        assert result.latencies.tolist() == [r.latency for r in expected]
        assert serial.statistics() == batched.statistics()
        # the stream contained scalar stores that vector accesses hit on
        assert batched.stats.coherency_writebacks > 0


class TestAddressSpace:
    def test_allocation_alignment(self):
        space = AddressSpace(base=0x1000, alignment=64)
        a = space.allocate("a", (10,), element_bytes=1)
        b = space.allocate("b", (10,), element_bytes=1)
        assert a.base % 64 == 0
        assert b.base % 64 == 0
        assert b.base >= a.end

    def test_no_overlap(self):
        space = AddressSpace()
        for i in range(10):
            space.allocate(f"arr{i}", (37,), element_bytes=3)
        assert not space.overlapping()

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.allocate("x", (4,))
        with pytest.raises(ValueError):
            space.allocate("x", (4,))

    def test_bad_shapes_rejected(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.allocate("bad", (0,))
        with pytest.raises(ValueError):
            space.allocate("bad", (4,), element_bytes=0)

    def test_array_address_row_major(self):
        spec = ArraySpec("m", base=1000, element_bytes=2, shape=(4, 8))
        assert spec.address(0, 0) == 1000
        assert spec.address(1, 0) == 1000 + 16
        assert spec.address(2, 3) == 1000 + 2 * 16 + 6
        assert spec.row_stride_bytes() == 16
        assert spec.row_address(3) == 1000 + 48

    def test_array_address_bounds(self):
        spec = ArraySpec("m", base=0, element_bytes=1, shape=(2, 2))
        with pytest.raises(IndexError):
            spec.address(2, 0)
        with pytest.raises(ValueError):
            spec.address(1)

    def test_lookup_helpers(self):
        space = AddressSpace()
        spec = space.allocate("data", (16,))
        assert "data" in space
        assert space["data"] is spec
        assert space.get("missing") is None
        assert list(space) == [spec]
        assert space.footprint_bytes >= spec.size_bytes

    @given(st.lists(st.tuples(st.integers(1, 50), st.integers(1, 8)),
                    min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_allocations_never_overlap(self, shapes):
        space = AddressSpace()
        for index, (count, width) in enumerate(shapes):
            space.allocate(f"a{index}", (count,), element_bytes=width)
        assert not space.overlapping()


class TestVectorPlanDeduplication:
    """``VectorCache.plan`` dedups line addresses with a seen-set (O(VL)).

    The seed implementation ran an O(VL**2) ``line not in lines`` scan per
    element; the property test pins the replacement to the same observable
    behaviour — first-appearance order, no duplicates — against a naive
    reference, including the long strided requests where the quadratic
    scan used to hurt.
    """

    def make(self):
        return VectorCache(size_bytes=4096, assoc=2, line_bytes=64,
                           banks=2, port_words=4)

    @staticmethod
    def naive_lines(cache, base, stride, vl):
        lines = []
        for i in range(vl):
            line = cache.cache.line_address(base + i * stride)
            if line not in lines:
                lines.append(line)
        return lines

    @given(base=st.integers(min_value=0, max_value=1 << 20),
           stride=st.integers(min_value=-512, max_value=512).filter(bool),
           vl=st.integers(min_value=1, max_value=256))
    @settings(max_examples=200, deadline=None)
    def test_plan_matches_naive_reference(self, base, stride, vl):
        # keep every element address non-negative for negative strides
        base += 512 * vl
        cache = self.make()
        plan = cache.plan(base, stride, vl)
        assert list(plan.line_addresses) == self.naive_lines(cache, base,
                                                             stride, vl)

    def test_long_strided_request(self):
        cache = self.make()
        # a 4096-element stride-48 request: repeated same-line runs and
        # far-apart revisits, the pattern the quadratic scan was worst at
        plan = cache.plan(0x40000, stride_bytes=48, vector_length=4096)
        assert list(plan.line_addresses) == self.naive_lines(
            cache, 0x40000, 48, 4096)
        assert len(set(plan.line_addresses)) == len(plan.line_addresses)

    def test_revisiting_a_line_is_not_duplicated(self):
        cache = self.make()
        # stride wraps within one pair of lines: 0, 72, 144 -> lines 0, 64, 128
        # then back into line 64's neighbourhood
        plan = cache.plan(0, stride_bytes=72, vector_length=4)
        assert list(plan.line_addresses) == self.naive_lines(cache, 0, 72, 4)


class TestVectorRequestStats:
    """Request-level vs line-level counters of the vector cache.

    One VL-element request that touches four lines bumps the tag-store
    (line-level) counters four times; the request-level counters count it
    once, as a hit only when every line was resident.  The paper's figures
    consume neither directly (they derive from RunStats cycles); both
    levels are reported side by side by ``MemoryHierarchy.statistics``.
    """

    def make(self):
        return MemoryHierarchy(MemoryConfig(), l1_ports=1, l2_port_words=4)

    def test_one_request_many_line_touches(self):
        hierarchy = self.make()
        # 32 stride-one 64-bit elements = 256 bytes = 4 lines of 64 B
        hierarchy.vector_access(0x8000, stride_bytes=8, vector_length=32)
        assert hierarchy.l2.stats.accesses == 4       # line level
        assert hierarchy.l2.request_stats.requests == 1
        assert hierarchy.l2.request_stats.hits == 0   # cold: all lines missed

    def test_request_hit_requires_every_line(self):
        hierarchy = self.make()
        hierarchy.preload(0x8000, 128)                # first 2 of 4 lines
        hierarchy.vector_access(0x8000, stride_bytes=8, vector_length=32)
        assert hierarchy.l2.stats.hits == 2           # two lines were resident
        assert hierarchy.l2.request_stats.hits == 0   # ... but not the request
        hierarchy.vector_access(0x8000, stride_bytes=8, vector_length=32)
        assert hierarchy.l2.request_stats.requests == 2
        assert hierarchy.l2.request_stats.hits == 1   # now fully resident

    def test_request_hit_rate_denominator_is_requests(self):
        hierarchy = self.make()
        hierarchy.preload(0x8000, 4096)
        for _ in range(4):
            hierarchy.vector_access(0x8000, stride_bytes=8, vector_length=32)
        stats = hierarchy.statistics()
        assert stats["l2_requests"]["requests"] == 4
        assert stats["l2_requests"]["hit_rate"] == 1.0
        # the line-level denominator keeps growing with the footprint
        assert stats["l2"]["accesses"] == 16

    def test_batched_path_matches_serial(self):
        serial, batched = self.make(), self.make()
        bases = np.array([0x8000, 0x8000, 0x9000], dtype=np.int64)
        for base in bases.tolist():
            serial.vector_access(base, stride_bytes=8, vector_length=32)
        batched.vector_access_batch(bases, stride_bytes=8, vector_length=32)
        assert (serial.l2.request_stats.snapshot()
                == batched.l2.request_stats.snapshot())
        assert serial.statistics() == batched.statistics()

    def test_reset_clears_request_counters(self):
        hierarchy = self.make()
        hierarchy.vector_access(0x8000, stride_bytes=8, vector_length=8)
        hierarchy.reset_stats()
        assert hierarchy.l2.request_stats.requests == 0
        assert hierarchy.l2.request_stats.hit_rate == 0.0

    def test_preload_does_not_count_requests(self):
        hierarchy = self.make()
        hierarchy.preload(0x8000, 4096)
        assert hierarchy.l2.request_stats.requests == 0


class TestCoherencyWritebackPath:
    """The write-back charged when coherency invalidates a dirty line.

    Covers both mechanisms: the hierarchy path (a vector access finding the
    line dirty in the L1 pays ``COHERENCY_WRITEBACK_PENALTY`` and charges
    exactly one ``coherency_writebacks``) and the tag-store primitive the
    batched engine uses (a store probe on a dirty line returns code 2 and
    the caller charges exactly one write-back;
    ``SetAssociativeCache.invalidate`` returns the dirty bit).
    """

    def make(self):
        return MemoryHierarchy(MemoryConfig(), l1_ports=1, l2_port_words=4)

    def test_exactly_one_writeback_per_dirty_line(self):
        hierarchy = self.make()
        hierarchy.preload(0x6000, 512)
        hierarchy.scalar_access(0x6000, is_store=True)      # line 0x6000 dirty
        result = hierarchy.vector_access(0x6000, stride_bytes=8,
                                         vector_length=16)  # touches 2 lines
        assert hierarchy.stats.coherency_writebacks == 1
        assert result.coherency_penalty == COHERENCY_WRITEBACK_PENALTY
        assert hierarchy.l1.stats.invalidations == 1
        # the dirty copy is gone: repeating the access charges nothing more
        again = hierarchy.vector_access(0x6000, stride_bytes=8,
                                        vector_length=16)
        assert again.coherency_penalty == 0
        assert hierarchy.stats.coherency_writebacks == 1

    def test_two_dirty_lines_charge_two_writebacks(self):
        hierarchy = self.make()
        hierarchy.preload(0x6000, 512)
        hierarchy.scalar_access(0x6000, is_store=True)
        hierarchy.scalar_access(0x6040, is_store=True)      # second L2 line
        result = hierarchy.vector_access(0x6000, stride_bytes=8,
                                         vector_length=16)
        assert hierarchy.stats.coherency_writebacks == 2
        assert result.coherency_penalty == 2 * COHERENCY_WRITEBACK_PENALTY

    def test_clean_l1_line_costs_no_writeback(self):
        hierarchy = self.make()
        hierarchy.preload(0x6000, 512)
        hierarchy.scalar_access(0x6000)                     # clean L1 copy
        result = hierarchy.vector_access(0x6000, stride_bytes=8,
                                         vector_length=8, is_store=True)
        assert result.coherency_penalty == 0
        assert hierarchy.stats.coherency_writebacks == 0
        assert hierarchy.l1.stats.invalidations == 1        # exclusive bit

    def test_vector_cache_invalidate_reports_dirty(self):
        hierarchy = self.make()
        hierarchy.preload(0x8000, 4096)
        hierarchy.vector_access(0x8000, stride_bytes=8, vector_length=8,
                                is_store=True)              # dirty in L2-vector
        line = hierarchy.l2.cache.line_address(0x8000)
        assert hierarchy.l2.cache.is_dirty(line)
        assert hierarchy.l2.invalidate(line) is True        # dirty bit returned
        assert hierarchy.l2.invalidate(line) is False
        assert hierarchy.l2.stats.invalidations == 1

    def test_store_probe_on_dirty_l2_line_charges_one_writeback(self):
        # the batched engine's primitive: a store probe that invalidates a
        # dirty line returns code 2 and the *caller* charges the write-back
        hierarchy = self.make()
        hierarchy.preload(0x8000, 4096)
        hierarchy.vector_access(0x8000, stride_bytes=8, vector_length=8,
                                is_store=True)
        line = hierarchy.l2.cache.line_address(0x8000)
        codes = hierarchy.l2.cache.replay_events(
            np.array([line, line], dtype=np.int64),
            stores=np.array([True, True]),
            coherency=np.array([True, True]))
        assert codes.tolist() == [2, 0]                     # dirty once, then gone
        writebacks = int((codes == 2).sum())
        assert writebacks == 1
        assert hierarchy.l2.stats.invalidations == 1

    def test_store_probe_on_clean_line_charges_nothing(self):
        cache = SetAssociativeCache(1024, 2, 32, name="probe")
        cache.access(0x40)                                  # clean resident line
        codes = cache.replay_events(np.array([0x40], dtype=np.int64),
                                    stores=np.array([True]),
                                    coherency=np.array([True]))
        assert codes.tolist() == [1]                        # invalidated, clean
        assert int((codes == 2).sum()) == 0

    def test_batched_stream_matches_serial_on_dirty_lines(self):
        serial, batched = self.make(), self.make()
        for hierarchy in (serial, batched):
            hierarchy.preload(0x6000, 512)
        ops = (StreamOp(is_vector=False, is_store=True),
               StreamOp(is_vector=True, is_store=False,
                        stride_bytes=8, vector_length=16))
        op_index = np.array([0, 0, 1], dtype=np.int64)
        addresses = np.array([0x6000, 0x6040, 0x6000], dtype=np.int64)
        serial.scalar_access(0x6000, is_store=True)
        serial.scalar_access(0x6040, is_store=True)
        expected = serial.vector_access(0x6000, stride_bytes=8,
                                        vector_length=16)
        result = batched.replay_stream(AccessStream(
            ops=ops, op_index=op_index, addresses=addresses))
        assert result.latencies.tolist()[-1] == expected.latency
        assert serial.stats.coherency_writebacks == 2
        assert serial.statistics() == batched.statistics()
