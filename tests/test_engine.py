"""Tests for the parallel, cached experiment engine.

Covers the three guarantees the engine makes:

* the content-addressed compile cache hits for structurally identical
  programs (including ones rebuilt from scratch) and never changes results;
* ``jobs=1`` and ``jobs=N`` produce byte-identical statistics;
* result merging is deterministic regardless of shard arrival order.
"""

import pytest

from repro.compiler.cache import (
    CompileCache,
    fingerprint_config,
    fingerprint_latency_model,
    fingerprint_program,
)
from repro.core.runner import execute_requests, run_benchmark, run_benchmarks
from repro.experiments.evaluation import SuiteEvaluation
from repro.machine.config import get_config
from repro.machine.latency import LatencyModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.fast import ExecutionEngine, execute_program
from repro.sim.plan import ExperimentPlan, ExperimentSweep, RunRequest
from repro.sim.stats import RunStats, merge_run_maps
from repro.workloads.suite import SuiteParameters, build_benchmark
from tests.test_sim import build_streaming_program

#: A small, fast slice of the suite used by the parallel-equality tests.
SMALL_BENCHMARKS = ("gsm_enc", "gsm_dec")
SMALL_CONFIGS = ("vliw-2w", "usimd-2w", "vector2-2w")


def small_specs(params=None):
    params = params or SuiteParameters.tiny()
    return {name: build_benchmark(name, params) for name in SMALL_BENCHMARKS}


class TestCompileCache:
    def test_miss_then_identity_hit(self, vector2_2w):
        cache = CompileCache()
        program = build_streaming_program()
        first = cache.get(program, vector2_2w)
        second = cache.get(program, vector2_2w)
        assert first is second
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.rebinds == 0

    def test_content_hit_rebinds_fresh_program(self, vector2_2w):
        cache = CompileCache()
        first_program = build_streaming_program()
        second_program = build_streaming_program()  # same IR, new objects
        first = cache.get(first_program, vector2_2w)
        second = cache.get(second_program, vector2_2w)
        assert cache.stats.misses == 1
        assert cache.stats.rebinds == 1
        assert second is not first
        assert second.program is second_program
        # the rebound schedules reference the new program's own segments
        for segment in second_program.segments():
            schedule = second.schedule_for(segment)
            assert schedule.segment is segment

    def test_rebound_compilation_runs_identically(self, vector2_2w):
        cache = CompileCache()
        baseline_program = build_streaming_program()
        rebuilt_program = build_streaming_program()
        baseline = cache.get(baseline_program, vector2_2w)
        rebound = cache.get(rebuilt_program, vector2_2w)
        stats_a = ExecutionEngine(
            baseline, MemoryHierarchy(vector2_2w.memory, perfect=True)).run()
        stats_b = ExecutionEngine(
            rebound, MemoryHierarchy(vector2_2w.memory, perfect=True)).run()
        assert stats_a.canonical_json() == stats_b.canonical_json()

    def test_different_config_misses(self, vector2_2w):
        cache = CompileCache()
        program = build_streaming_program()
        cache.get(program, vector2_2w)
        cache.get(program, get_config("vector1-2w"))
        assert cache.stats.misses == 2

    def test_same_name_config_variant_is_not_aliased(self, vector2_2w):
        """A replace()-derived config keeps its name but must not share
        the original's schedule (the design-space sweeps rely on this)."""
        import dataclasses
        cache = CompileCache()
        program = build_streaming_program(vl=8)
        wide = cache.get(program, vector2_2w)
        narrow = cache.get(program,
                           dataclasses.replace(vector2_2w, vector_lanes=1))
        assert cache.stats.misses == 2
        segment = next(s for s in program.segments() if s.operations)
        assert (narrow.schedule_for(segment).initiation_interval
                > wide.schedule_for(segment).initiation_interval)

    def test_lru_eviction_bounds_memory(self, vector2_2w):
        cache = CompileCache(max_entries=2)
        programs = [build_streaming_program(iterations=n) for n in (1, 2, 3)]
        for program in programs:
            cache.get(program, vector2_2w)
        assert len(cache._by_content) == 2
        assert len(cache._by_identity) == 2
        # the evicted program recompiles correctly instead of aliasing
        again = cache.get(programs[0], vector2_2w)
        assert again.program is programs[0]

    def test_different_latency_model_misses(self, vector2_2w):
        cache = CompileCache()
        program = build_streaming_program()
        cache.get(program, vector2_2w)
        cache.get(program, vector2_2w,
                  LatencyModel().with_overrides(vector_load=9))
        assert cache.stats.misses == 2

    def test_in_place_latency_mutation_recompiles(self, vector2_2w):
        """Mutating a latency model's table must invalidate, as the seed's
        always-recompile path did."""
        cache = CompileCache()
        program = build_streaming_program(vl=8)
        model = LatencyModel()
        slow = cache.get(program, vector2_2w, model)
        model.flow_latencies["vector_load"] = 11
        fast = cache.get(program, vector2_2w, model)
        assert cache.stats.misses == 2
        segment = next(s for s in program.segments() if s.operations)
        assert (fast.schedule_for(segment).initiation_interval
                != slow.schedule_for(segment).initiation_interval)

    def test_clear_resets(self, vector2_2w):
        cache = CompileCache()
        cache.get(build_streaming_program(), vector2_2w)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0


class TestFingerprints:
    def test_stable_across_rebuilds(self):
        assert (fingerprint_program(build_streaming_program())
                == fingerprint_program(build_streaming_program()))

    def test_sensitive_to_structure(self):
        assert (fingerprint_program(build_streaming_program(vl=8))
                != fingerprint_program(build_streaming_program(vl=4)))
        assert (fingerprint_program(build_streaming_program(iterations=8))
                != fingerprint_program(build_streaming_program(iterations=4)))

    def test_config_and_latency_fingerprints(self, vector2_2w):
        assert fingerprint_config(vector2_2w) != fingerprint_config(
            get_config("vector2-4w"))
        assert fingerprint_latency_model(LatencyModel()) != fingerprint_latency_model(
            LatencyModel().with_overrides(int_mul=5))


class TestPerfectMemoryFastPath:
    def test_analytic_collapse_matches_full_walk(self, vector2_2w, monkeypatch):
        """The perfect-memory loop collapse must be exact, not approximate."""
        program = build_streaming_program(vl=8, iterations=16)
        collapsed = execute_program(program, vector2_2w, perfect_memory=True)
        # force the engine to walk every iteration despite the perfect hierarchy
        monkeypatch.setattr(ExecutionEngine, "_invariant_subtree",
                            ExecutionEngine._memory_free_subtree)
        walked = execute_program(program, vector2_2w, perfect_memory=True)
        assert collapsed.canonical_json() == walked.canonical_json()

    def test_hierarchy_counters_scale_exactly(self, vector2_2w, monkeypatch):
        program = build_streaming_program(vl=8, iterations=16)
        fast = MemoryHierarchy(vector2_2w.memory, perfect=True)
        execute_program(program, vector2_2w, hierarchy=fast)
        monkeypatch.setattr(ExecutionEngine, "_invariant_subtree",
                            ExecutionEngine._memory_free_subtree)
        slow = MemoryHierarchy(vector2_2w.memory, perfect=True)
        execute_program(program, vector2_2w, hierarchy=slow)
        assert fast.stats.snapshot() == slow.stats.snapshot()


class TestPlans:
    def test_plan_dedup_preserves_order(self):
        plan = ExperimentPlan([
            RunRequest("a", "vliw-2w"), RunRequest("b", "vliw-2w"),
            RunRequest("a", "vliw-2w"),
        ])
        assert plan.requests == (RunRequest("a", "vliw-2w"),
                                 RunRequest("b", "vliw-2w"))
        assert plan.benchmarks() == ("a", "b")

    def test_without(self):
        plan = ExperimentPlan.from_sweep(["a"], ["vliw-2w", "usimd-2w"])
        remaining = plan.without([RunRequest("a", "vliw-2w")])
        assert remaining.requests == (RunRequest("a", "usimd-2w"),)

    def test_sweep_expansion_defaults(self):
        sweep = ExperimentSweep(memory_modes=(True,))
        requests = sweep.requests(["x"], ["vliw-2w"])
        assert requests == (RunRequest("x", "vliw-2w", True),)

    def test_execute_plan_requires_specs(self):
        plan = ExperimentPlan([RunRequest("nope", "vliw-2w")])
        with pytest.raises(KeyError):
            execute_requests(plan, {})


class TestParallelCutover:
    """Small batches fall back to serial execution with a recorded reason."""

    def test_small_batch_falls_back_to_serial(self):
        from repro.core.runner import PARALLEL_MIN_PENDING, last_dispatch
        specs = small_specs()
        plan = ExperimentPlan.from_sweep(SMALL_BENCHMARKS, SMALL_CONFIGS,
                                         memory_modes=(False,))
        assert len(plan) < PARALLEL_MIN_PENDING
        execute_requests(plan, specs, jobs=4)
        decision = last_dispatch()
        assert decision["mode"] == "serial"
        assert "cutover" in decision["reason"]
        assert decision["jobs"] == 4
        assert decision["pending"] == len(plan)

    def test_zero_cutover_forces_the_pool(self):
        from repro.core.runner import last_dispatch
        specs = small_specs()
        plan = ExperimentPlan.from_sweep(SMALL_BENCHMARKS, SMALL_CONFIGS,
                                         memory_modes=(False,))
        execute_requests(plan, specs, jobs=2, min_parallel_runs=0)
        decision = last_dispatch()
        assert decision["mode"] == "parallel"
        assert decision["pending"] == len(plan)

    def test_serial_request_is_recorded(self):
        from repro.core.runner import last_dispatch
        specs = small_specs()
        plan = ExperimentPlan.from_sweep(SMALL_BENCHMARKS, SMALL_CONFIGS,
                                         memory_modes=(False,))
        execute_requests(plan, specs, jobs=1)
        assert last_dispatch()["mode"] == "serial"


class TestParallelEquality:
    @pytest.fixture(scope="class")
    def specs(self):
        return small_specs()

    def test_jobs_equal_serial(self, specs):
        plan = ExperimentPlan.from_sweep(SMALL_BENCHMARKS, SMALL_CONFIGS,
                                         memory_modes=(False, True))
        serial = execute_requests(plan, specs, jobs=1)
        parallel = execute_requests(plan, specs, jobs=2, min_parallel_runs=0)
        assert list(serial) == list(parallel) == list(plan.requests)
        for request in plan:
            assert (serial[request].canonical_json()
                    == parallel[request].canonical_json())

    def test_run_benchmarks_matches_run_benchmark(self, specs):
        batched = run_benchmarks(specs, config_names=SMALL_CONFIGS, jobs=2)
        for name, spec in specs.items():
            single = run_benchmark(spec, config_names=SMALL_CONFIGS)
            for config in SMALL_CONFIGS:
                assert (batched[name][config].canonical_json()
                        == single[config].canonical_json())

    def test_evaluation_jobs_equal_serial(self):
        params = SuiteParameters.tiny()
        serial = SuiteEvaluation(parameters=params,
                                 benchmark_names=SMALL_BENCHMARKS,
                                 config_names=SMALL_CONFIGS, jobs=1)
        parallel = SuiteEvaluation(parameters=params,
                                   benchmark_names=SMALL_BENCHMARKS,
                                   config_names=SMALL_CONFIGS, jobs=2)
        serial.prefetch()
        parallel.prefetch()
        assert sorted(serial._runs) == sorted(parallel._runs)
        for key, stats in serial._runs.items():
            assert stats.canonical_json() == parallel._runs[key].canonical_json()


class TestMergeDeterminism:
    @staticmethod
    def run_stats(name, cycles):
        stats = RunStats(name, "vliw-2w", "scalar")
        stats.region("R0").add_segment(cycles, 1, 1, 0, 0)
        return stats

    def test_shard_order_irrelevant(self):
        a = {RunRequest("a", "vliw-2w"): self.run_stats("a", 10)}
        b = {RunRequest("b", "vliw-2w"): self.run_stats("b", 20)}
        order = (RunRequest("b", "vliw-2w"), RunRequest("a", "vliw-2w"))
        merged_ab = merge_run_maps([a, b], order=order)
        merged_ba = merge_run_maps([b, a], order=order)
        assert list(merged_ab) == list(merged_ba) == list(order)

    def test_identical_duplicates_tolerated(self):
        key = RunRequest("a", "vliw-2w")
        merged = merge_run_maps([{key: self.run_stats("a", 10)},
                                 {key: self.run_stats("a", 10)}])
        assert len(merged) == 1

    def test_conflicting_duplicates_raise(self):
        key = RunRequest("a", "vliw-2w")
        with pytest.raises(ValueError):
            merge_run_maps([{key: self.run_stats("a", 10)},
                            {key: self.run_stats("a", 11)}])

    def test_unordered_merge_sorts_by_repr(self):
        a = {RunRequest("zeta", "vliw-2w"): self.run_stats("zeta", 1)}
        b = {RunRequest("alpha", "vliw-2w"): self.run_stats("alpha", 2)}
        merged = merge_run_maps([a, b])
        assert list(merged)[0].benchmark == "alpha"

    def test_round_trip_serialisation(self):
        stats = self.run_stats("a", 10)
        clone = RunStats.from_dict(stats.to_dict())
        assert clone.canonical_json() == stats.canonical_json()
