"""Tests for the IR, the builder, dependence analysis and the scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.builder import KernelBuilder
from repro.compiler.dataflow import (DependenceKind, build_dependence_graph,
                                     loop_carried_registers)
from repro.compiler.ir import (
    AddressExpr,
    ISAFlavor,
    LoopVar,
    Operation,
    Segment,
)
from repro.compiler.regalloc import check_register_pressure, segment_pressure
from repro.compiler.scheduler import compile_program, schedule_segment
from repro.isa.operations import Opcode
from repro.isa.registers import RegisterClass
from repro.machine.config import get_config
from repro.memory.layout import AddressSpace
from repro.sim.vliw import verify_schedule


# ---------------------------------------------------------------------------
# IR
# ---------------------------------------------------------------------------

class TestAddressExpr:
    def test_constant(self):
        assert AddressExpr(base=100).evaluate({}) == 100

    def test_affine_terms(self):
        i = LoopVar.fresh("i")
        j = LoopVar.fresh("j")
        expr = AddressExpr(base=1000).with_term(i, 64).with_term(j, 2)
        assert expr.evaluate({i: 3, j: 5}) == 1000 + 192 + 10

    def test_unbound_variable_raises(self):
        i = LoopVar.fresh("i")
        with pytest.raises(KeyError):
            AddressExpr(base=0).with_term(i, 4).evaluate({})

    def test_wrap_bytes(self):
        i = LoopVar.fresh("i")
        expr = AddressExpr(base=1000, wrap_bytes=64).with_term(i, 48)
        assert expr.evaluate({i: 3}) == 1000 + (144 % 64)

    def test_shifted_and_structural_equality(self):
        i = LoopVar.fresh("i")
        a = AddressExpr(base=10).with_term(i, 4)
        assert a.shifted(6).base == 16
        assert a.structurally_equal(AddressExpr(base=10, terms=((i, 4),)))
        assert not a.structurally_equal(a.shifted(1))

    def test_zero_coefficient_dropped(self):
        i = LoopVar.fresh("i")
        assert AddressExpr(base=0).with_term(i, 0).terms == ()


class TestOperation:
    def test_memory_operation_requires_address(self):
        with pytest.raises(ValueError):
            Operation(Opcode.LOAD)

    def test_micro_ops_delegated(self):
        op = Operation(Opcode.VADDB, vector_length=8)
        assert op.micro_ops() == 64

    def test_classification(self):
        load = Operation(Opcode.VLOAD, address=AddressExpr(0), vector_length=4)
        assert load.is_memory and load.is_vector_memory and load.is_vector
        assert not load.is_store
        store = Operation(Opcode.STORE, address=AddressExpr(0))
        assert store.is_store and store.is_memory

    def test_invalid_vector_length(self):
        with pytest.raises(ValueError):
            Operation(Opcode.VADDW, vector_length=0)


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------

def build_small_vector_kernel():
    space = AddressSpace()
    data = space.allocate("data", (64,), element_bytes=8)
    out = space.allocate("out", (64,), element_bytes=8)
    b = KernelBuilder("k", ISAFlavor.VECTOR, address_space=space)
    with b.region("R1", "kernel", vectorizable=True):
        with b.loop(4, name="i") as i:
            b.setvl(8)
            v = b.vload(b.addr(data, (i, 64)), vl=8)
            r = b.vop(Opcode.VADDW, v, vl=8)
            b.vstore(b.addr(out, (i, 64)), r, vl=8)
    return b.program()


class TestBuilder:
    def test_program_structure(self):
        program = build_small_vector_kernel()
        assert program.flavor is ISAFlavor.VECTOR
        assert program.region_names() == ["R1"]
        assert program.address_space is not None
        segments = program.segments()
        assert len(segments) == 1
        # setvl + vload + vop + vstore + 3 loop-control ops
        assert len(segments[0]) == 7

    def test_dynamic_counts_scale_with_trip_count(self):
        program = build_small_vector_kernel()
        assert program.dynamic_operation_count() == 4 * 7
        assert program.dynamic_micro_op_count() > program.dynamic_operation_count()

    def test_vector_op_in_scalar_program_rejected(self):
        b = KernelBuilder("bad", ISAFlavor.SCALAR)
        with pytest.raises(ValueError):
            b.vop(Opcode.VADDW, vl=4)

    def test_simd_op_in_scalar_program_rejected(self):
        b = KernelBuilder("bad", ISAFlavor.SCALAR)
        with pytest.raises(ValueError):
            b.simd(Opcode.PADDB)

    def test_simd_allowed_in_vector_program(self):
        b = KernelBuilder("ok", ISAFlavor.VECTOR)
        b.simd(Opcode.PADDB)
        assert len(b.program().segments()[0]) == 1

    def test_loop_without_control(self):
        b = KernelBuilder("k", ISAFlavor.SCALAR)
        with b.loop(4, control=False):
            b.iop(Opcode.ADD)
        assert len(b.program().segments()[0]) == 1

    def test_unbalanced_loop_detected(self):
        b = KernelBuilder("k", ISAFlavor.SCALAR)
        ctx = b.loop(4)
        ctx.__enter__()
        with pytest.raises(RuntimeError):
            b.program()

    def test_region_counts(self):
        b = KernelBuilder("k", ISAFlavor.SCALAR)
        b.iop(Opcode.ADD)
        with b.region("R1", "vec", vectorizable=True):
            b.iop(Opcode.ADD)
        program = b.program()
        counts = program.dynamic_counts_by_region()
        assert counts["R0"] == (1, 1)
        assert counts["R1"] == (1, 1)

    def test_dependent_chain_and_independent_ops(self):
        b = KernelBuilder("k", ISAFlavor.SCALAR)
        b.dependent_chain(5)
        b.independent_ops(3)
        ops = b.program().segments()[0].operations
        assert len(ops) == 1 + 5 + 3

    def test_table_lookup_wraps_in_table(self):
        space = AddressSpace()
        table = space.allocate("table", (256,), element_bytes=4)
        b = KernelBuilder("k", ISAFlavor.SCALAR)
        index = b.iop(Opcode.MOV)
        b.table_lookup(table, index)
        op = b.program().segments()[0].operations[-1]
        assert op.address.wrap_bytes == table.size_bytes

    def test_concatenated_programs(self):
        first = build_small_vector_kernel()
        second = build_small_vector_kernel()
        combined = first.concatenated(second)
        assert combined.dynamic_operation_count() == 2 * first.dynamic_operation_count()
        scalar = KernelBuilder("s", ISAFlavor.SCALAR).program()
        with pytest.raises(ValueError):
            first.concatenated(scalar)


# ---------------------------------------------------------------------------
# dataflow
# ---------------------------------------------------------------------------

class TestDataflow:
    def test_raw_edge(self):
        b = KernelBuilder("k", ISAFlavor.SCALAR)
        x = b.iop(Opcode.ADD)
        b.iop(Opcode.SUB, srcs=(x,))
        graph = build_dependence_graph(b.program().segments()[0])
        assert any(e.kind is DependenceKind.RAW for e in graph.edges)

    def test_waw_and_war_edges_for_accumulator(self):
        b = KernelBuilder("k", ISAFlavor.VECTOR)
        acc = b.acc_clear()
        v = b.vop(Opcode.VADDW, vl=4)
        b.vsad(acc, v, v, vl=4)
        b.vsad(acc, v, v, vl=4)
        graph = build_dependence_graph(b.program().segments()[0])
        kinds = {e.kind for e in graph.edges}
        assert DependenceKind.RAW in kinds
        assert DependenceKind.WAW in kinds

    def test_memory_ordering_same_address(self):
        space = AddressSpace()
        buf = space.allocate("buf", (8,), element_bytes=8)
        b = KernelBuilder("k", ISAFlavor.SCALAR)
        value = b.iop(Opcode.MOV)
        b.store(b.addr(buf), value)
        b.load(b.addr(buf))
        graph = build_dependence_graph(b.program().segments()[0])
        assert any(e.kind is DependenceKind.MEMORY for e in graph.edges)

    def test_no_memory_edge_for_disambiguated_addresses(self):
        space = AddressSpace()
        a = space.allocate("a", (8,), element_bytes=8)
        c = space.allocate("c", (8,), element_bytes=8)
        b = KernelBuilder("k", ISAFlavor.SCALAR)
        value = b.iop(Opcode.MOV)
        b.store(b.addr(a), value)
        b.load(b.addr(c))
        graph = build_dependence_graph(b.program().segments()[0])
        assert not any(e.kind is DependenceKind.MEMORY for e in graph.edges)

    def test_edges_point_forward(self):
        program = build_small_vector_kernel()
        graph = build_dependence_graph(program.segments()[0])
        assert all(e.producer < e.consumer for e in graph.edges)

    def test_loop_carried_registers_detects_induction_variable(self):
        b = KernelBuilder("k", ISAFlavor.SCALAR)
        with b.loop(4):
            b.iop(Opcode.ADD)
        carried = loop_carried_registers(b.program().segments()[0])
        assert carried  # the loop index register

    def test_loop_carried_accumulator(self):
        b = KernelBuilder("k", ISAFlavor.VECTOR)
        acc = b.accum_reg()
        v = b.vop(Opcode.VADDW, vl=4)
        b.emit(Operation(Opcode.VSAD, dests=(acc,), srcs=(acc, v, v), vector_length=4))
        carried = loop_carried_registers(b.program().segments()[0])
        assert any(cls is RegisterClass.ACCUM for _, cls in carried.values())


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------

def random_segment_strategy():
    """Hypothesis strategy producing small random vector/scalar segments."""
    opcode = st.sampled_from([Opcode.ADD, Opcode.MUL, Opcode.PADDW, Opcode.PSADBW,
                              Opcode.VADDW, Opcode.VMULLW, Opcode.LOAD, Opcode.MLOAD,
                              Opcode.VLOAD, Opcode.STORE])
    return st.lists(st.tuples(opcode, st.integers(1, 16), st.booleans()),
                    min_size=1, max_size=16)


def build_segment_from_spec(spec):
    builder = KernelBuilder("random", ISAFlavor.VECTOR)
    space = AddressSpace()
    data = space.allocate("data", (4096,), element_bytes=8)
    previous = None
    for opcode, vl, use_previous in spec:
        srcs = (previous,) if (use_previous and previous is not None) else ()
        if opcode in (Opcode.LOAD, Opcode.MLOAD):
            previous = (builder.load if opcode is Opcode.LOAD else builder.mload)(
                builder.addr(data))
        elif opcode is Opcode.VLOAD:
            previous = builder.vload(builder.addr(data), vl=vl)
        elif opcode is Opcode.STORE:
            value = previous if previous is not None else builder.iop(Opcode.MOV)
            builder.store(builder.addr(data), value)
        elif opcode in (Opcode.VADDW, Opcode.VMULLW):
            previous = builder.vop(opcode, *srcs, vl=vl)
        elif opcode in (Opcode.PADDW, Opcode.PSADBW):
            previous = builder.simd(opcode, *srcs)
        else:
            previous = builder.iop(opcode, srcs=srcs)
    return builder.program().segments()[0]


class TestScheduler:
    def test_empty_segment(self, vector2_2w):
        schedule = schedule_segment(Segment(), vector2_2w)
        assert schedule.initiation_interval == 0

    def test_issue_width_limits_parallelism(self, vliw_2w):
        b = KernelBuilder("k", ISAFlavor.SCALAR)
        b.independent_ops(8)
        schedule = schedule_segment(b.program().segments()[0], vliw_2w)
        assert schedule.initiation_interval >= 4  # 8 ops / 2-issue

    def test_wider_machine_schedules_faster(self):
        b = KernelBuilder("k", ISAFlavor.SCALAR)
        b.independent_ops(16)
        segment = b.program().segments()[0]
        narrow = schedule_segment(segment, get_config("vliw-2w")).initiation_interval
        wide = schedule_segment(segment, get_config("vliw-8w")).initiation_interval
        assert wide < narrow

    def test_dependence_chain_bounds_schedule(self, vliw_2w):
        b = KernelBuilder("k", ISAFlavor.SCALAR)
        b.dependent_chain(10, opcode=Opcode.MUL)
        schedule = schedule_segment(b.program().segments()[0], vliw_2w)
        # ten dependent multiplies of latency 4 behind the seeding move
        assert schedule.initiation_interval >= 1 + 4 * 9

    def test_chaining_allows_overlap(self, vector2_2w, latency_model):
        b = KernelBuilder("k", ISAFlavor.VECTOR)
        space = AddressSpace()
        data = space.allocate("data", (64,), element_bytes=8)
        v = b.vload(b.addr(data), vl=16)
        b.vop(Opcode.VADDW, v, vl=16)
        schedule = schedule_segment(b.program().segments()[0], vector2_2w, latency_model)
        cycles = {e.operation.opcode: e.cycle for e in schedule.entries}
        # chained: the dependent vector op starts after the load's flow
        # latency (5), well before its full completion (5 + ceil(15/4) = 9)
        assert cycles["vaddw"] - cycles["vload"] == latency_model.chain_latency(
            Opcode.VLOAD, vector2_2w)

    def test_accumulator_dependency_not_chained(self, vector2_2w, latency_model):
        b = KernelBuilder("k", ISAFlavor.VECTOR)
        acc = b.acc_clear()
        v = b.vop(Opcode.VADDW, vl=16)
        b.vsad(acc, v, v, vl=16)
        b.vsum(acc)
        schedule = schedule_segment(b.program().segments()[0], vector2_2w, latency_model)
        cycles = {e.operation.opcode: e.cycle for e in schedule.entries}
        vsad_latency = latency_model.result_latency(Opcode.VSAD, 16, vector2_2w)
        assert cycles["vsum"] >= cycles["vsad"] + vsad_latency

    def test_recurrence_bounds_initiation_interval(self, vector2_2w):
        b = KernelBuilder("k", ISAFlavor.VECTOR)
        acc = b.accum_reg()
        v = b.vop(Opcode.VADDW, vl=16)
        b.emit(Operation(Opcode.VSAD, dests=(acc,), srcs=(acc, v, v), vector_length=16))
        schedule = schedule_segment(b.program().segments()[0], vector2_2w)
        assert schedule.recurrence_interval > 0
        assert schedule.initiation_interval >= schedule.recurrence_interval

    def test_figure4_kernel_matches_paper_shape(self, vector2_2w):
        from repro.workloads.mpeg2.motion import build_sad_kernel_program
        program = build_sad_kernel_program(ISAFlavor.VECTOR)
        assert program.dynamic_operation_count() == 16
        schedule = schedule_segment(program.segments()[0], vector2_2w)
        assert 14 <= schedule.initiation_interval <= 24
        assert verify_schedule(schedule, vector2_2w) == []

    def test_schedules_are_legal_for_all_workload_kernels(self, vector2_2w):
        program = build_small_vector_kernel()
        compiled = compile_program(program, vector2_2w)
        for schedule in compiled.schedules.values():
            assert verify_schedule(schedule, vector2_2w) == []

    @given(random_segment_strategy())
    @settings(max_examples=25, deadline=None)
    def test_random_segments_schedule_legally(self, spec):
        segment = build_segment_from_spec(spec)
        config = get_config("vector2-2w")
        schedule = schedule_segment(segment, config)
        assert len(schedule.entries) == len(segment.operations)
        assert verify_schedule(schedule, config) == []

    @given(random_segment_strategy())
    @settings(max_examples=15, deadline=None)
    def test_wider_vector_machine_never_slower(self, spec):
        segment = build_segment_from_spec(spec)
        narrow = schedule_segment(segment, get_config("vector2-2w")).initiation_interval
        wide = schedule_segment(segment, get_config("vector2-4w")).initiation_interval
        assert wide <= narrow


# ---------------------------------------------------------------------------
# register pressure
# ---------------------------------------------------------------------------

class TestRegisterPressure:
    def test_segment_pressure_counts_classes(self):
        program = build_small_vector_kernel()
        pressure = segment_pressure(program.segments()[0])
        assert pressure[RegisterClass.VECTOR] >= 1
        assert pressure[RegisterClass.INT] >= 1

    def test_workload_programs_fit_register_files(self, vector2_2w):
        program = build_small_vector_kernel()
        report = check_register_pressure(program, vector2_2w)
        assert report.ok, report.violations

    def test_violation_detected_for_missing_file(self, vliw_2w):
        b = KernelBuilder("k", ISAFlavor.USIMD)
        b.simd(Opcode.PADDB)
        report = check_register_pressure(b.program(), vliw_2w)
        assert not report.ok

    def test_merge_reports(self):
        from repro.compiler.regalloc import RegisterPressureReport
        first = RegisterPressureReport(max_live={RegisterClass.INT: 3})
        second = RegisterPressureReport(max_live={RegisterClass.INT: 5})
        first.merge(second)
        assert first.max_live[RegisterClass.INT] == 5
