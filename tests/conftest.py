"""Shared fixtures for the test-suite.

The heavy fixtures (the tiny-input suite evaluation) are session scoped so
the integration and experiment tests share one sweep of the simulator.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.evaluation import SuiteEvaluation
from repro.machine.config import get_config
from repro.machine.latency import LatencyModel
from repro.workloads.suite import (
    EXTENDED_BENCHMARK_NAMES,
    SuiteParameters,
    build_suite,
)


@pytest.fixture(scope="session", autouse=True)
def _isolate_result_store():
    """Keep the unit tests blind to a developer's ``REPRO_STORE``.

    Several tests assert *equivalences* (trace == interpreter, parallel ==
    serial) that a shared persistent store would satisfy trivially — the
    second run would be served from entries the first just wrote — besides
    polluting the user's store.  Tests that need the variable set it
    explicitly with ``monkeypatch.setenv``.  (The ``benchmarks/`` lane is
    not covered: its evaluations intentionally use the CI-cached store.)
    """
    saved = os.environ.pop("REPRO_STORE", None)
    try:
        yield
    finally:
        if saved is not None:
            os.environ["REPRO_STORE"] = saved


@pytest.fixture(scope="session")
def tiny_parameters() -> SuiteParameters:
    """Reduced input sizes used by every integration test."""
    return SuiteParameters.tiny()


@pytest.fixture(scope="session")
def tiny_suite(tiny_parameters):
    """The extended ten-benchmark suite with tiny inputs (three flavours)."""
    return build_suite(tiny_parameters, names=EXTENDED_BENCHMARK_NAMES)


@pytest.fixture(scope="session")
def tiny_evaluation(tiny_parameters) -> SuiteEvaluation:
    """A shared, memoised evaluation over the tiny suite.

    ``store=None`` pins the unit tests store-free: a developer's
    ``REPRO_STORE`` must never feed stale persisted results into the
    golden-hash report lock (or any other assertion) — these tests are
    exactly the guard that detects when a schema bump is needed.
    """
    return SuiteEvaluation(parameters=tiny_parameters, store=None)


@pytest.fixture
def latency_model() -> LatencyModel:
    return LatencyModel()


@pytest.fixture
def vector2_2w():
    return get_config("vector2-2w")


@pytest.fixture
def usimd_2w():
    return get_config("usimd-2w")


@pytest.fixture
def vliw_2w():
    return get_config("vliw-2w")
