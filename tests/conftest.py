"""Shared fixtures for the test-suite.

The heavy fixtures (the tiny-input suite evaluation) are session scoped so
the integration and experiment tests share one sweep of the simulator.
"""

from __future__ import annotations

import pytest

from repro.experiments.evaluation import SuiteEvaluation
from repro.machine.config import get_config
from repro.machine.latency import LatencyModel
from repro.workloads.suite import SuiteParameters, build_suite


@pytest.fixture(scope="session")
def tiny_parameters() -> SuiteParameters:
    """Reduced input sizes used by every integration test."""
    return SuiteParameters.tiny()


@pytest.fixture(scope="session")
def tiny_suite(tiny_parameters):
    """The six benchmarks built with tiny inputs (all three flavours)."""
    return build_suite(tiny_parameters)


@pytest.fixture(scope="session")
def tiny_evaluation(tiny_parameters) -> SuiteEvaluation:
    """A shared, memoised evaluation over the tiny suite."""
    return SuiteEvaluation(parameters=tiny_parameters)


@pytest.fixture
def latency_model() -> LatencyModel:
    return LatencyModel()


@pytest.fixture
def vector2_2w():
    return get_config("vector2-2w")


@pytest.fixture
def usimd_2w():
    return get_config("usimd-2w")


@pytest.fixture
def vliw_2w():
    return get_config("vliw-2w")
