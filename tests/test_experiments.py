"""Tests of the experiment harness (tables and figures of the paper)."""

import pytest

from repro.experiments import (figure1, figure3, figure4, figure5, figure6, figure7,
                               table1, table2, table3)


class TestStaticExperiments:
    def test_table2_has_ten_rows_matching_paper(self):
        rows = table2.generate()
        assert len(rows) == 10
        by_name = {row["name"]: row for row in rows}
        assert by_name["vector2-4w"]["vector_units"] == "4 x4"
        assert by_name["usimd-8w"]["simd_units"] == 8
        assert by_name["vector1-2w"]["l2_ports"] == "1 x4"
        assert "VLIW" in table2.render()

    def test_figure3_descriptor_formulas(self):
        rows = figure3.generate()
        by_key = {(r["operation"], r["vector_length"]): r for r in rows}
        assert by_key[("scalar alu", 16)]["latest_write"] == 1
        assert by_key[("vector alu", 16)]["latest_write"] == 2 + 4   # L + ceil(15/4)
        assert by_key[("vector load", 8)]["latest_write"] == 5 + 2
        assert by_key[("vector alu", 1)]["latest_read"] == 0
        assert "Figure 3" in figure3.render()

    def test_figure4_reproduces_operation_counts(self):
        data = figure4.generate()
        assert data["vector_operations"] == figure4.PAPER_VECTOR_OPS
        # the µSIMD count should be within ~25 % of the paper's 172
        assert abs(data["usimd_operations"] - figure4.PAPER_USIMD_OPS) <= 45
        assert data["scalar_operations"] > data["usimd_operations"]
        assert 14 <= data["schedule_cycles"] <= 24
        assert "cycle" in data["listing"]
        assert "Figure 4" in figure4.render()


class TestSuiteExperiments:
    def test_table1_percentages(self, tiny_evaluation):
        rows = {r["benchmark"]: r for r in table1.generate(tiny_evaluation)}
        assert set(rows) == set(tiny_evaluation.benchmark_names)
        # mpeg2_enc is the most vectorised benchmark, gsm_dec the least
        assert rows["mpeg2_enc"]["measured_percent"] > rows["jpeg_dec"]["measured_percent"]
        assert rows["gsm_dec"]["measured_percent"] < 10.0
        for row in rows.values():
            assert 0.0 <= row["measured_percent"] <= 100.0
        assert "Table 1" in table1.render(tiny_evaluation)

    def test_figure1_scalar_regions_saturate(self, tiny_evaluation):
        summary = figure1.average_scalability(tiny_evaluation)
        scalar_4w = summary["usimd-4w"]["scalar"]
        scalar_8w = summary["usimd-8w"]["scalar"]
        vector_8w = summary["usimd-8w"]["vector"]
        # scalar regions gain little beyond 4-issue; vector regions keep gaining
        assert scalar_8w - scalar_4w < 0.25
        assert vector_8w > scalar_8w
        assert summary["usimd-2w"]["application"] == pytest.approx(1.0)

    def test_figure5_perfect_vs_realistic(self, tiny_evaluation):
        perfect = figure5.average_speedups(tiny_evaluation, perfect_memory=True)
        realistic = figure5.average_speedups(tiny_evaluation, perfect_memory=False)
        # vector configurations dominate the same-width µSIMD in vector regions
        assert perfect["vector2-2w"] > perfect["usimd-2w"]
        assert perfect["vector2-2w"] > perfect["usimd-8w"]
        assert realistic["vector2-2w"] > realistic["usimd-2w"]
        # the 2-issue vector machine also beats the 8-issue plain VLIW
        assert realistic["vector2-2w"] > realistic["vliw-8w"]

    def test_figure5_mpeg2_enc_degrades_most(self, tiny_evaluation):
        degradation = figure5.memory_degradation(tiny_evaluation)
        worst = max(degradation, key=degradation.get)
        assert worst == "mpeg2_enc"
        assert degradation["mpeg2_enc"] > 1.2
        assert degradation["jpeg_enc"] < degradation["mpeg2_enc"]

    def test_figure6_average_ordering(self, tiny_evaluation):
        averages = figure6.average_speedups(tiny_evaluation)
        assert averages["vliw-2w"] == pytest.approx(1.0)
        # µSIMD beats plain VLIW, vector beats µSIMD of the same width
        assert averages["usimd-2w"] > averages["vliw-2w"]
        assert averages["vector2-2w"] > averages["usimd-2w"]
        assert averages["vector2-4w"] > averages["vector2-2w"]
        # the 4-issue Vector2 is at least on par with the 8-issue µSIMD
        assert averages["vector2-4w"] >= 0.95 * averages["usimd-8w"]

    def test_figure6_wider_issue_never_slower(self, tiny_evaluation):
        averages = figure6.average_speedups(tiny_evaluation)
        assert averages["vliw-4w"] >= averages["vliw-2w"]
        assert averages["vliw-8w"] >= averages["vliw-4w"]
        assert averages["usimd-8w"] >= averages["usimd-4w"] >= averages["usimd-2w"]

    def test_figure7_operation_reduction(self, tiny_evaluation):
        rows = figure7.generate(tiny_evaluation)
        by_key = {(r["benchmark"], r["config"]): r for r in rows}
        for benchmark in tiny_evaluation.benchmark_names:
            vliw_total = by_key[(benchmark, "vliw-2w")]["normalized_total"]
            usimd_total = by_key[(benchmark, "usimd-2w")]["normalized_total"]
            vector_total = by_key[(benchmark, "vector2-2w")]["normalized_total"]
            assert vliw_total == pytest.approx(1.0)
            assert vector_total <= usimd_total <= vliw_total
        reduction = figure7.vector_region_op_reduction(tiny_evaluation)
        assert 0.5 <= reduction <= 0.98   # paper: 84 %

    def test_table3_structure_and_trends(self, tiny_evaluation):
        rows = {r["config"]: r for r in table3.generate(tiny_evaluation)}
        assert set(rows) == set(tiny_evaluation.config_names)
        # vector machines: fewer ops fetched per cycle but far more micro-ops
        assert rows["vector2-2w"]["vector_uopc"] > rows["usimd-2w"]["vector_uopc"]
        assert rows["vector2-2w"]["vector_opc"] < rows["usimd-2w"]["vector_opc"]
        # scalar-region speed-up at 8-issue stays modest
        assert rows["usimd-8w"]["scalar_speedup"] < 2.0
        assert rows["vliw-2w"]["app_speedup"] == pytest.approx(1.0)
        assert "Table 3" in table3.render(tiny_evaluation)

    def test_evaluation_memoises_runs(self, tiny_evaluation):
        first = tiny_evaluation.run("gsm_dec", "vliw-2w")
        second = tiny_evaluation.run("gsm_dec", "vliw-2w")
        assert first is second

    def test_runs_for_benchmark_subset(self, tiny_evaluation):
        runs = tiny_evaluation.runs_for_benchmark("gsm_dec",
                                                  config_names=["vliw-2w", "usimd-2w"])
        assert set(runs) == {"vliw-2w", "usimd-2w"}


class TestReportOutputLock:
    """Regression lock on the rendered evaluation.

    The satellite counters of the vector cache (request level vs line
    level) and the persistent result store must not change a single byte
    of the figures and tables.  This golden hash was recorded from the
    tiny-input report before those changes; anything that alters simulated
    timing — intentionally or not — trips it.  When a change is *meant* to
    alter results, regenerate the hash (see the command below) and bump
    ``repro.sim.stats.STATS_SCHEMA_VERSION`` so persistent stores are
    invalidated with it.
    """

    # PYTHONPATH=src python -c "import hashlib; \
    #   from repro.experiments.report import full_report; \
    #   from repro.experiments.evaluation import SuiteEvaluation; \
    #   from repro.workloads.suite import SuiteParameters; \
    #   print(hashlib.sha256(full_report(SuiteEvaluation( \
    #     parameters=SuiteParameters.tiny(), store=None)).encode()).hexdigest())"
    # regenerated after two emit-side fixes: the µSIMD dot product gained
    # its missing accumulate dependence (acc += now consumes the pmaddwd
    # pair-sum, as the scalar and vector flavours always did) and the
    # vector dot product models the remainder words of a non-vector-
    # aligned operand; STATS_SCHEMA_VERSION was bumped to 2 alongside
    TINY_REPORT_SHA256 = (
        "13e2b119a67d761c2e5244b7c7486eb64464d765b48935866db241f57e0069fa")

    def test_tiny_report_is_byte_locked(self, tiny_evaluation):
        import hashlib

        from repro.experiments.report import full_report

        text = full_report(tiny_evaluation)
        digest = hashlib.sha256(text.encode()).hexdigest()
        assert digest == self.TINY_REPORT_SHA256, (
            "the rendered tiny report changed; if intentional, update "
            "TINY_REPORT_SHA256 and bump STATS_SCHEMA_VERSION")
