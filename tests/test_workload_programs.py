"""Tests of the benchmark kernel programs (the timing models)."""

import pytest

from repro.compiler.ir import ISAFlavor
from repro.compiler.regalloc import check_register_pressure
from repro.core.architecture import VectorMicroSimdVliwMachine
from repro.core.runner import flavor_for_config, run_benchmark
from repro.machine.config import get_config
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    EXTENDED_BENCHMARK_NAMES,
    build_benchmark,
    build_suite,
)

FLAVORS = (ISAFlavor.SCALAR, ISAFlavor.USIMD, ISAFlavor.VECTOR)

#: Vector-region names per benchmark: the paper's six follow Table 1; the
#: extended-suite kernels each pair one vector region with the serial R0.
EXPECTED_REGIONS = {
    "jpeg_enc": {"R0", "R1", "R2", "R3"},
    "jpeg_dec": {"R0", "R1", "R2"},
    "mpeg2_enc": {"R0", "R1", "R2", "R3"},
    "mpeg2_dec": {"R0", "R1", "R2", "R3"},
    "gsm_enc": {"R0", "R1", "R2"},
    "gsm_dec": {"R0", "R1"},
    "viterbi_dec": {"R0", "R1"},
    "fir_bank": {"R0", "R1"},
    "sobel_edge": {"R0", "R1"},
    "adpcm_codec": {"R0", "R1"},
}


@pytest.fixture(scope="module")
def suite(tiny_parameters):
    return build_suite(tiny_parameters, names=EXTENDED_BENCHMARK_NAMES)


class TestProgramConstruction:
    @pytest.mark.parametrize("name", EXTENDED_BENCHMARK_NAMES)
    def test_all_flavours_build(self, suite, name):
        spec = suite[name]
        assert set(spec.programs) == set(FLAVORS)
        for program in spec.programs.values():
            assert program.dynamic_operation_count() > 0

    @pytest.mark.parametrize("name", EXTENDED_BENCHMARK_NAMES)
    def test_region_structure_matches_table1(self, suite, name):
        for program in suite[name].programs.values():
            assert set(program.region_names()) == EXPECTED_REGIONS[name]

    @pytest.mark.parametrize("name", EXTENDED_BENCHMARK_NAMES)
    def test_scalar_region_identical_across_flavours(self, suite, name):
        """R0 is shared code: its dynamic op count must not depend on the flavour."""
        counts = {flavor: spec_counts.get("R0", (0, 0))[0]
                  for flavor, spec_counts in
                  ((f, suite[name].programs[f].dynamic_counts_by_region())
                   for f in FLAVORS)}
        assert counts[ISAFlavor.SCALAR] == counts[ISAFlavor.USIMD] == counts[ISAFlavor.VECTOR]

    @pytest.mark.parametrize("name", EXTENDED_BENCHMARK_NAMES)
    def test_vector_regions_need_fewer_operations(self, suite, name):
        """Figure-7 property: scalar > µSIMD > vector dynamic op counts."""
        def vector_region_ops(flavor):
            counts = suite[name].programs[flavor].dynamic_counts_by_region()
            return sum(ops for region, (ops, _) in counts.items() if region != "R0")

        scalar_ops = vector_region_ops(ISAFlavor.SCALAR)
        usimd_ops = vector_region_ops(ISAFlavor.USIMD)
        vector_ops = vector_region_ops(ISAFlavor.VECTOR)
        assert scalar_ops > usimd_ops > vector_ops

    @pytest.mark.parametrize("name", EXTENDED_BENCHMARK_NAMES)
    def test_vector_program_packs_more_micro_ops_per_op(self, suite, name):
        vector_program = suite[name].programs[ISAFlavor.VECTOR]
        usimd_program = suite[name].programs[ISAFlavor.USIMD]
        vector_ratio = (vector_program.dynamic_micro_op_count()
                        / vector_program.dynamic_operation_count())
        usimd_ratio = (usimd_program.dynamic_micro_op_count()
                       / usimd_program.dynamic_operation_count())
        assert vector_ratio > usimd_ratio

    @pytest.mark.parametrize("name", EXTENDED_BENCHMARK_NAMES)
    def test_register_pressure_fits_target_machines(self, suite, name):
        for config_name in ("vliw-2w", "usimd-2w", "vector1-2w", "vector2-4w"):
            config = get_config(config_name)
            program = suite[name].program_for(config)
            report = check_register_pressure(program, config)
            assert report.ok, (name, config_name, report.violations)

    def test_invalid_benchmark_name(self):
        with pytest.raises(KeyError):
            build_benchmark("mp3_dec")

    def test_vector_flavour_models_non_aligned_remainders(self):
        """Vector programs must charge the tail words of operands that are
        not a whole number of vectors (regression: they used to drop them,
        inflating vector speed-ups on non-aligned sizes)."""
        from repro.workloads.fir.programs import FirBankParameters, build_fir_bank_program
        from repro.workloads.sobel.programs import SobelParameters, build_sobel_edge_program

        def region_micro_ops(program, region="R1"):
            return program.dynamic_counts_by_region()[region][1]

        # fir: 96 taps = one 16-word vector chunk + an 8-word tail; the
        # vector region must carry ~1.5x the µops of the aligned 64-tap
        # build (a truncating emitter would charge both the same chunk)
        aligned = build_fir_bank_program(
            ISAFlavor.VECTOR, FirBankParameters(bands=1, taps=64, samples=16))
        with_tail = build_fir_bank_program(
            ISAFlavor.VECTOR, FirBankParameters(bands=1, taps=96, samples=16))
        ratio = region_micro_ops(with_tail) / region_micro_ops(aligned)
        assert 1.3 < ratio < 1.7

        # sobel: 200-pixel rows are 25 words = 16 + a 9-word tail vs the
        # aligned 32-word rows of width 256 (a truncating emitter charges
        # 16/32 = 0.5; the correct ratio is ~25/32)
        aligned = build_sobel_edge_program(
            ISAFlavor.VECTOR, SobelParameters(width=256, height=8))
        with_tail = build_sobel_edge_program(
            ISAFlavor.VECTOR, SobelParameters(width=200, height=8))
        ratio = region_micro_ops(with_tail) / region_micro_ops(aligned)
        assert 0.65 < ratio < 0.9

    def test_parameter_validation(self):
        from repro.workloads.jpeg.programs import JpegParameters
        from repro.workloads.mpeg2.programs import Mpeg2Parameters
        from repro.workloads.gsm.programs import GsmParameters
        with pytest.raises(ValueError):
            JpegParameters(width=20, height=20)
        with pytest.raises(ValueError):
            Mpeg2Parameters(width=24, height=24)
        with pytest.raises(ValueError):
            Mpeg2Parameters(search_radius=-1)
        with pytest.raises(ValueError):
            GsmParameters(frames=0)

    def test_extended_parameter_validation(self):
        from repro.workloads.adpcm.programs import AdpcmParameters
        from repro.workloads.fir.programs import FirBankParameters
        from repro.workloads.sobel.programs import SobelParameters
        from repro.workloads.viterbi.programs import ViterbiParameters
        with pytest.raises(ValueError):
            ViterbiParameters(bits=2)
        with pytest.raises(ValueError):
            ViterbiParameters(frames=0)
        with pytest.raises(ValueError):
            FirBankParameters(taps=6)
        with pytest.raises(ValueError):
            FirBankParameters(bands=0)
        with pytest.raises(ValueError):
            SobelParameters(width=30)
        with pytest.raises(ValueError):
            SobelParameters(height=2)
        with pytest.raises(ValueError):
            AdpcmParameters(block_samples=12)
        with pytest.raises(ValueError):
            AdpcmParameters(blocks=0)


class TestProgramExecution:
    def test_flavor_for_config(self):
        assert flavor_for_config(get_config("vliw-4w")) is ISAFlavor.SCALAR
        assert flavor_for_config(get_config("usimd-8w")) is ISAFlavor.USIMD
        assert flavor_for_config(get_config("vector1-2w")) is ISAFlavor.VECTOR

    def test_run_benchmark_subset(self, suite):
        result = run_benchmark(suite["gsm_dec"], config_names=["vliw-2w", "vector2-2w"])
        assert set(result.config_names()) == {"vliw-2w", "vector2-2w"}
        assert result["vliw-2w"].total_cycles > 0
        assert result.speedup_over("vector2-2w", "vliw-2w") >= 1.0

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_usimd_and_vector_never_slower_than_vliw(self, tiny_evaluation, name):
        base = tiny_evaluation.run(name, "vliw-2w")
        for config in ("usimd-2w", "vector2-2w"):
            assert tiny_evaluation.run(name, config).speedup_over(base) >= 1.0

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_vector_beats_usimd_in_vector_regions(self, tiny_evaluation, name):
        usimd = tiny_evaluation.vector_region_speedup(name, "usimd-2w")
        vector = tiny_evaluation.vector_region_speedup(name, "vector2-2w")
        assert vector > usimd

    def test_mpeg2_enc_has_highest_vectorization(self, tiny_evaluation):
        fractions = {name: tiny_evaluation.vectorization_percentage(name)
                     for name in BENCHMARK_NAMES}
        assert max(fractions, key=fractions.get) == "mpeg2_enc"
        assert min(fractions, key=fractions.get) == "gsm_dec"

    def test_gsm_dec_vectorization_is_tiny(self, tiny_evaluation):
        assert tiny_evaluation.vectorization_percentage("gsm_dec") < 10.0

    @pytest.mark.parametrize("name", EXTENDED_BENCHMARK_NAMES[len(BENCHMARK_NAMES):])
    def test_new_kernels_never_slower_than_vliw(self, tiny_evaluation, name):
        base = tiny_evaluation.run(name, "vliw-2w")
        for config in ("usimd-2w", "vector2-2w"):
            assert tiny_evaluation.run(name, config).speedup_over(base) >= 1.0

    @pytest.mark.parametrize("name", EXTENDED_BENCHMARK_NAMES[len(BENCHMARK_NAMES):])
    def test_new_kernels_vector_beats_usimd_in_vector_regions(self,
                                                              tiny_evaluation,
                                                              name):
        usimd = tiny_evaluation.vector_region_speedup(name, "usimd-2w")
        vector = tiny_evaluation.vector_region_speedup(name, "vector2-2w")
        assert vector > usimd

    def test_adpcm_is_the_anti_vector_workload(self, tiny_evaluation):
        """adpcm_codec ships to stress the scalar/µSIMD gap: lowest
        vectorisation of the extended suite, and near-flat speed-up."""
        fractions = {name: tiny_evaluation.vectorization_percentage(name)
                     for name in EXTENDED_BENCHMARK_NAMES}
        assert min(fractions, key=fractions.get) in ("adpcm_codec", "gsm_dec")
        assert fractions["adpcm_codec"] < 10.0
        speedup = tiny_evaluation.application_speedup("adpcm_codec", "vector2-2w")
        assert speedup < 1.5  # hugs 1x by construction

    def test_streaming_kernels_vectorise_heavily(self, tiny_evaluation):
        for name in ("fir_bank", "sobel_edge"):
            assert tiny_evaluation.vectorization_percentage(name) > 50.0

    def test_machine_rejects_wrong_flavor(self, suite):
        machine = VectorMicroSimdVliwMachine.from_name("vliw-2w")
        vector_program = suite["jpeg_enc"].programs[ISAFlavor.VECTOR]
        with pytest.raises(ValueError):
            machine.run(vector_program)

    def test_spec_falls_back_to_scalar(self, tiny_parameters):
        spec = build_benchmark("gsm_dec", tiny_parameters, flavors=[ISAFlavor.SCALAR])
        program = spec.program_for(get_config("vector2-2w"))
        assert program.flavor is ISAFlavor.SCALAR

    def test_spec_requires_scalar_program(self, suite):
        from repro.core.runner import BenchmarkSpec
        with pytest.raises(ValueError):
            BenchmarkSpec(name="broken",
                          programs={ISAFlavor.USIMD:
                                    suite["gsm_dec"].programs[ISAFlavor.USIMD]})


@pytest.mark.slow
class TestNewKernelsFullSize:
    """Default-size runs of the extended-suite kernels (slow lane only).

    The fast lane covers the tiny sizes; these lock the full
    (published-report) sizes through both engines so a report over
    ``tag:mediabench-plus`` is exercised end to end before CI renders one.
    """

    @pytest.mark.parametrize("name", EXTENDED_BENCHMARK_NAMES[len(BENCHMARK_NAMES):])
    def test_full_size_engines_identical(self, name):
        spec = build_benchmark(name)  # default (full) sizes
        for config_name in ("vliw-2w", "vector2-2w"):
            config = get_config(config_name)
            machine = VectorMicroSimdVliwMachine(config)
            program = spec.program_for(config)
            traced = machine.run(program, engine="trace")
            interpreted = machine.run(program, engine="interpreter")
            assert traced.to_dict() == interpreted.to_dict()
            assert traced.total_cycles > 0
