"""Lease files: acquisition, staleness, reclaim fencing, heartbeats, scrub.

The protocol tests use an injectable clock so staleness is deterministic;
the heartbeat tests use short real TTLs because heartbeats run on real
threads.  The cooperative-sweep tests at the bottom drive
``run_exploration(coordinate=True)`` end to end, including the takeover
of a crashed participant's stale lease.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import faults
from repro.explore import DesignSpace, run_exploration
from repro.store import Lease, LeaseManager, ResultStore
from repro.workloads.suite import SuiteParameters

pytestmark = pytest.mark.faults


class Clock:
    """A settable wall clock shared by every manager in a test."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(autouse=True)
def _no_leftover_fault_plan():
    yield
    faults.clear_plan()


@pytest.fixture
def clock() -> Clock:
    return Clock()


def manager(tmp_path, owner: str, clock: Clock, ttl: float = 10.0) -> LeaseManager:
    return LeaseManager(tmp_path, owner=owner, ttl=ttl, clock=clock)


class TestAcquireRelease:
    def test_acquire_returns_a_lease_on_disk(self, tmp_path, clock):
        a = manager(tmp_path, "a", clock)
        lease = a.acquire("shard-1")
        assert isinstance(lease, Lease)
        assert lease.owner == "a"
        record = a.read("shard-1")
        assert record["owner"] == "a"
        assert record["heartbeat"] == clock.now

    def test_live_lease_blocks_peers(self, tmp_path, clock):
        manager(tmp_path, "a", clock).acquire("shard-1")
        assert manager(tmp_path, "b", clock).acquire("shard-1") is None

    def test_release_frees_the_key(self, tmp_path, clock):
        a = manager(tmp_path, "a", clock)
        lease = a.acquire("shard-1")
        a.release(lease)
        assert manager(tmp_path, "b", clock).acquire("shard-1") is not None

    def test_release_of_a_lost_lease_is_a_noop(self, tmp_path, clock):
        a = manager(tmp_path, "a", clock)
        lease = a.acquire("shard-1")
        clock.advance(11.0)
        b = manager(tmp_path, "b", clock)
        assert b.acquire("shard-1") is not None
        a.release(lease)  # must not unlink b's lease
        assert b.read("shard-1")["owner"] == "b"

    def test_default_owner_is_unique_per_manager(self, tmp_path, clock):
        first = LeaseManager(tmp_path, clock=clock)
        second = LeaseManager(tmp_path, clock=clock)
        assert first.owner != second.owner

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            LeaseManager(tmp_path, ttl=0.0)


class TestStaleReclaim:
    def test_stale_lease_is_reclaimed(self, tmp_path, clock):
        manager(tmp_path, "a", clock).acquire("shard-1")
        clock.advance(10.5)
        lease = manager(tmp_path, "b", clock).acquire("shard-1")
        assert lease is not None and lease.owner == "b"

    def test_lease_at_exactly_ttl_is_still_live(self, tmp_path, clock):
        a = manager(tmp_path, "a", clock)
        a.acquire("shard-1")
        clock.advance(10.0)  # staleness is strict: *older* than the TTL
        assert manager(tmp_path, "b", clock).acquire("shard-1") is None

    def test_undecodable_lease_is_reclaimable(self, tmp_path, clock):
        a = manager(tmp_path, "a", clock)
        lease = a.acquire("shard-1")
        lease.path.write_text("{ torn")
        assert a.read("shard-1") is None
        fresh = manager(tmp_path, "b", clock).acquire("shard-1")
        assert fresh is not None and fresh.owner == "b"

    def test_renew_after_loss_reports_false(self, tmp_path, clock):
        a = manager(tmp_path, "a", clock)
        lease = a.acquire("shard-1")
        clock.advance(11.0)
        manager(tmp_path, "b", clock).acquire("shard-1")
        assert a.renew(lease) is False

    def test_renew_refreshes_the_heartbeat(self, tmp_path, clock):
        a = manager(tmp_path, "a", clock)
        lease = a.acquire("shard-1")
        clock.advance(8.0)
        assert a.renew(lease) is True
        clock.advance(8.0)  # 16s since acquire, 8s since renewal
        assert manager(tmp_path, "b", clock).acquire("shard-1") is None

    def test_exclusive_create_race_has_one_winner(self, tmp_path, clock):
        managers = [manager(tmp_path, f"racer-{i}", clock) for i in range(8)]
        results = [None] * len(managers)
        barrier = threading.Barrier(len(managers))

        def race(index: int) -> None:
            barrier.wait()
            results[index] = managers[index].acquire("contended")

        threads = [threading.Thread(target=race, args=(i,))
                   for i in range(len(managers))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        winners = [lease for lease in results if lease is not None]
        assert len(winners) == 1

    def test_stale_reclaim_race_has_one_winner(self, tmp_path, clock):
        manager(tmp_path, "crashed", clock).acquire("contended")
        clock.advance(11.0)
        managers = [manager(tmp_path, f"racer-{i}", clock) for i in range(8)]
        results = [None] * len(managers)
        barrier = threading.Barrier(len(managers))

        def race(index: int) -> None:
            barrier.wait()
            results[index] = managers[index].acquire("contended")

        threads = [threading.Thread(target=race, args=(i,))
                   for i in range(len(managers))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        winners = [lease for lease in results if lease is not None]
        assert len(winners) == 1


class TestHeartbeat:
    def test_heartbeat_keeps_the_lease_live(self, tmp_path):
        import time

        a = LeaseManager(tmp_path, owner="a", ttl=0.4)
        b = LeaseManager(tmp_path, owner="b", ttl=0.4)
        lease = a.acquire("shard-1")
        with a.heartbeat(lease, interval=0.05) as lost:
            time.sleep(0.8)  # twice the TTL: dead without renewals
            assert b.acquire("shard-1") is None
        assert not lost.is_set()

    def test_stalled_heartbeat_lets_a_peer_reclaim(self, tmp_path):
        import time

        a = LeaseManager(tmp_path, owner="a", ttl=0.3)
        b = LeaseManager(tmp_path, owner="b", ttl=0.3)
        lease = a.acquire("shard-1")
        with faults.injected(faults.FaultPlan(stall_heartbeats=True)):
            with a.heartbeat(lease, interval=0.05):
                time.sleep(0.5)
                stolen = b.acquire("shard-1")
        assert stolen is not None and stolen.owner == "b"


class TestScrub:
    def test_scrub_removes_stale_leases_only(self, tmp_path, clock):
        a = manager(tmp_path, "a", clock)
        a.acquire("old-shard")
        clock.advance(11.0)
        b = manager(tmp_path, "b", clock)
        b.acquire("fresh-shard")
        removed = manager(tmp_path, "janitor", clock).scrub()
        assert removed == ["old-shard"]
        assert a.read("old-shard") is None
        assert b.read("fresh-shard")["owner"] == "b"

    def test_scrub_sweeps_reclaim_tombstones(self, tmp_path, clock):
        a = manager(tmp_path, "a", clock)
        a.acquire("shard-1")
        # a reclaimer that died after the rename leaves a tombstone behind
        tombstone = a.directory / ".shard-1.lease.reclaim-deadbeef"
        (a.directory / "shard-1.lease").rename(tombstone)
        manager(tmp_path, "janitor", clock).scrub()
        assert not tombstone.exists()

    def test_leases_skips_undecodable_files(self, tmp_path, clock):
        a = manager(tmp_path, "a", clock)
        a.acquire("good")
        (a.directory / "bad.lease").write_text("not json")
        records = a.leases()
        assert [record["key"] for record in records] == ["good"]

    def test_wrong_version_reads_as_none(self, tmp_path, clock):
        a = manager(tmp_path, "a", clock)
        lease = a.acquire("shard-1")
        record = json.loads(lease.path.read_text())
        record["version"] = "repro-lease/999"
        lease.path.write_text(json.dumps(record))
        assert a.read("shard-1") is None


class TestCooperativeExploration:
    def _explore(self, store_root, **kwargs):
        return run_exploration(space=DesignSpace.smoke(),
                               benchmarks=("gsm_enc",),
                               parameters=SuiteParameters.tiny(),
                               store=ResultStore(store_root),
                               shard_size=4, coordinate=True, **kwargs)

    def test_coordinate_requires_a_store(self):
        with pytest.raises(ValueError, match="store"):
            run_exploration(space=DesignSpace.smoke(), store=None,
                            coordinate=True)

    def test_coordinated_sweep_completes_and_releases(self, tmp_path):
        result = self._explore(tmp_path, owner="solo")
        assert result.complete
        assert result.simulated_runs == len(result.runs)
        # every lease was released on the way out
        assert LeaseManager(tmp_path).leases() == []
        # a second coordinated pass is pure store reads
        warm = self._explore(tmp_path, owner="second")
        assert warm.complete and warm.simulated_runs == 0

    def test_stale_lease_of_a_crashed_peer_is_taken_over(self, tmp_path):
        import time as real_time

        from repro.explore.sweep import (BASELINE_CONFIG, _sweep_scope)
        from repro.explore.space import generate_configs
        from repro.sim.plan import ExperimentPlan, RunRequest

        # reconstruct the first shard's lease key the way the sweep does
        space = DesignSpace.smoke()
        parameters = SuiteParameters.tiny()
        config_names = (BASELINE_CONFIG,) + tuple(generate_configs(space))
        plan = ExperimentPlan(RunRequest("gsm_enc", config, False)
                              for config in config_names)
        shard = plan.shards(4)[0]
        scope = _sweep_scope(("gsm_enc",), parameters, ("baseline",))
        key = f"{scope}-{shard.fingerprint()[:40]}"

        # a "crashed" participant: lease exists, heartbeat far in the past
        crashed = LeaseManager(tmp_path, owner="crashed", ttl=0.2,
                               clock=lambda: real_time.time() - 60.0)
        assert crashed.acquire(key) is not None

        result = self._explore(tmp_path, owner="survivor", lease_ttl=0.2)
        assert result.complete
        assert LeaseManager(tmp_path).read(key) is None  # released after takeover

    def test_two_cooperating_participants_both_complete(self, tmp_path):
        results = [None, None]
        errors = []

        def participant(index: int) -> None:
            try:
                results[index] = self._explore(tmp_path,
                                               owner=f"peer-{index}",
                                               lease_ttl=5.0)
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=participant, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(result is not None and result.complete
                   for result in results)
        # the fleet simulated each shard at most... once in the common case,
        # but duplicated work is *allowed* (advisory fencing); what must
        # hold is that both saw every run and the store holds one entry per
        # fingerprint with identical bytes
        first, second = results
        assert set(first.runs) == set(second.runs)
        for request in first.runs:
            assert (first.runs[request].canonical_json()
                    == second.runs[request].canonical_json())
