"""Crash safety under injected faults: worker kills, torn writes, I/O errors.

Every test here arms a :class:`repro.faults.FaultPlan` and asserts the
system *recovers* — the counterpart of the fuzz lane's "inject the bug,
watch it get caught" discipline, applied to process death and sick
filesystems.  The final class is the acceptance scenario of the
crash-safety work: one worker SIGKILLed and one store write torn
mid-exploration must cost nothing observable.
"""

from __future__ import annotations

import errno
import logging

import pytest

from repro import faults
from repro.core.runner import execute_requests, last_dispatch, last_quarantine
from repro.explore import DesignSpace, run_exploration
from repro.sim.plan import ExperimentPlan, RunRequest
from repro.sim.stats import RunStats
from repro.store import ResultStore
from repro.workloads.suite import SuiteParameters

pytestmark = pytest.mark.faults


@pytest.fixture(autouse=True)
def _no_leftover_fault_plan():
    yield
    faults.clear_plan()


def _example_stats() -> RunStats:
    run = RunStats(program_name="prog", config_name="cfg", flavor="vector")
    region = run.region("R1", vectorizable=True)
    region.cycles = 1234
    region.operations = 99
    run.region("R0").cycles = 777
    return run


def _assert_byte_identical(actual, expected) -> None:
    assert set(actual) == set(expected)
    for request in expected:
        assert (actual[request].canonical_json()
                == expected[request].canonical_json())


class TestWorkerDeath:
    """A SIGKILLed pool worker must cost retries, never a hang or a loss."""

    PLAN = ExperimentPlan(RunRequest("gsm_enc", config, perfect)
                          for perfect in (False, True)
                          for config in ("vliw-2w", "usimd-2w", "vector1-2w",
                                         "vector2-2w", "vector2-4w"))

    def test_sigkilled_worker_does_not_hang_and_results_match_serial(
            self, tiny_suite, tmp_path):
        serial = execute_requests(self.PLAN, tiny_suite)
        plan = faults.FaultPlan(kill_worker_after_runs=1,
                                kill_once_marker=str(tmp_path / "kill.marker"))
        with faults.injected(plan):
            parallel = execute_requests(self.PLAN, tiny_suite, jobs=2,
                                        min_parallel_runs=0)
        assert (tmp_path / "kill.marker").exists()  # somebody really died
        dispatch = last_dispatch()
        assert dispatch["mode"] == "parallel"
        assert dispatch["pool_recovered"] is True
        assert dispatch["quarantined"] == 0
        _assert_byte_identical(parallel, serial)

    def test_poison_request_is_quarantined_and_the_rest_complete(
            self, tiny_suite, tmp_path):
        # no kill_once_marker: every worker that runs jpeg_enc dies, so the
        # isolation pass proves the request poison and gives up on it —
        # while the innocent gsm_enc runs all complete
        mixed = ExperimentPlan(RunRequest(benchmark, config, False)
                               for config in ("vliw-2w", "usimd-2w",
                                              "vector1-2w", "vector2-2w")
                               for benchmark in ("gsm_enc", "jpeg_enc"))
        plan = faults.FaultPlan(kill_benchmark="jpeg_enc")
        with faults.injected(plan):
            results = execute_requests(mixed, tiny_suite, jobs=2,
                                       min_parallel_runs=0, max_attempts=2,
                                       retry_base_delay=0.01)
        survivors = {request for request in mixed
                     if request.benchmark == "gsm_enc"}
        assert set(results) == survivors
        quarantined = last_quarantine()
        assert {q.request.benchmark for q in quarantined} == {"jpeg_enc"}
        assert all(q.attempts == 2 for q in quarantined)
        assert last_dispatch()["quarantined"] == len(quarantined) == 4

    def test_store_write_back_survives_worker_death(self, tiny_suite,
                                                    tmp_path):
        store = ResultStore(tmp_path / "store")
        plan = faults.FaultPlan(kill_worker_after_runs=1,
                                kill_once_marker=str(tmp_path / "kill.marker"))
        with faults.injected(plan):
            execute_requests(self.PLAN, tiny_suite, jobs=2,
                             min_parallel_runs=0, store=store)
        assert len(store) == len(self.PLAN)  # every recovered run persisted
        warm = ResultStore(tmp_path / "store")
        reread = execute_requests(self.PLAN, tiny_suite, store=warm)
        assert warm.stats.hits == len(self.PLAN)
        assert len(reread) == len(self.PLAN)


class TestTransientPutFailures:
    def test_transient_error_is_retried_once_and_succeeds(self, tmp_path):
        store = ResultStore(tmp_path)
        plan = faults.FaultPlan(fail_put_index=0, fail_put_errno=errno.EIO,
                                fail_put_times=1)
        with faults.injected(plan):
            store.put("ab" * 32, _example_stats())
        assert store.stats.put_retries == 1
        assert store.stats.writes == 1
        assert store.get("ab" * 32) is not None

    def test_persistent_transient_error_propagates_after_retry(self, tmp_path):
        store = ResultStore(tmp_path)
        plan = faults.FaultPlan(fail_put_index=0, fail_put_errno=errno.ESTALE,
                                fail_put_times=2)
        with faults.injected(plan):
            with pytest.raises(OSError) as excinfo:
                store.put("ab" * 32, _example_stats())
        assert excinfo.value.errno == errno.ESTALE
        assert store.stats.put_retries == 1
        assert store.get("ab" * 32) is None

    def test_non_transient_error_propagates_immediately(self, tmp_path):
        store = ResultStore(tmp_path)
        plan = faults.FaultPlan(fail_put_index=0, fail_put_errno=errno.ENOSPC,
                                fail_put_times=1)
        with faults.injected(plan):
            with pytest.raises(OSError) as excinfo:
                store.put("ab" * 32, _example_stats())
        assert excinfo.value.errno == errno.ENOSPC
        assert store.stats.put_retries == 0  # a full disk does not heal

    def test_failed_write_back_never_discards_computed_stats(
            self, tiny_suite, tmp_path, caplog):
        plan_requests = ExperimentPlan([
            RunRequest("gsm_enc", "vliw-2w", False),
            RunRequest("gsm_enc", "vector2-2w", False),
        ])
        store = ResultStore(tmp_path)
        fault = faults.FaultPlan(fail_put_index=0, fail_put_errno=errno.EIO,
                                 fail_put_times=2)  # both attempts fail
        with faults.injected(fault):
            with caplog.at_level(logging.WARNING, logger="repro.runner"):
                results = execute_requests(plan_requests, tiny_suite,
                                           store=store)
        # the caller got every result; only the first entry's persistence
        # was lost, and the loss was reported
        assert set(results) == set(plan_requests)
        assert len(store) == len(plan_requests) - 1
        assert any("write-back failed" in record.message
                   for record in caplog.records)
        # the next sweep re-simulates the lost entry and heals the store
        again = execute_requests(plan_requests, tiny_suite,
                                 store=ResultStore(tmp_path))
        assert set(again) == set(plan_requests)
        assert len(ResultStore(tmp_path)) == len(plan_requests)


class TestTornWrites:
    def test_torn_entry_is_quarantined_on_first_get(self, tmp_path, caplog):
        store = ResultStore(tmp_path)
        with faults.injected(faults.FaultPlan(tear_put_index=0)):
            path = store.put("cd" * 32, _example_stats())
        assert path.read_bytes() == path.read_bytes()[:16]  # really torn
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            assert store.get("cd" * 32) is None
        assert store.stats.corrupt == 1
        assert store.stats.quarantined == 1
        assert not path.exists()
        assert list(store.corrupt_dir.iterdir())
        quarantine_logs = [record for record in caplog.records
                           if "quarantined" in record.message]
        assert len(quarantine_logs) == 1
        # the second miss is silent: the file is out of the lookup path
        caplog.clear()
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            assert store.get("cd" * 32) is None
        assert store.stats.quarantined == 1
        assert not caplog.records
        # a fresh put repairs the entry
        store.put("cd" * 32, _example_stats())
        assert store.get("cd" * 32) is not None

    def test_verify_finds_and_quarantines_a_torn_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("11" * 32, _example_stats())
        with faults.injected(faults.FaultPlan(tear_put_index=0)):
            store.put("22" * 32, _example_stats())
        report = ResultStore(tmp_path).verify()
        assert report.total == 2
        assert report.ok == 1
        assert report.corrupt == 1
        assert len(report.quarantined) == 1
        assert "1 corrupt" in report.summary()
        # the walk repaired the store: a second verify is clean
        clean = ResultStore(tmp_path).verify()
        assert clean.total == 1 and clean.corrupt == 0


class TestAcceptanceScenario:
    """The issue's bar: kill one worker, tear one write, lose nothing."""

    def _explore(self, store_root, **kwargs):
        return run_exploration(space=DesignSpace.smoke(),
                               benchmarks=("gsm_enc",),
                               parameters=SuiteParameters.tiny(),
                               store=ResultStore(store_root), **kwargs)

    def test_kill_and_tear_mid_exploration(self, tmp_path, capsys):
        from repro.__main__ import main

        baseline = self._explore(tmp_path / "clean")
        assert baseline.complete

        marker = tmp_path / "kill.marker"
        fault = faults.FaultPlan(kill_worker_after_runs=1,
                                 kill_once_marker=str(marker),
                                 tear_put_index=2)
        store_root = tmp_path / "faulty"
        with faults.injected(fault):
            result = self._explore(store_root, jobs=2, min_parallel_runs=0,
                                   coordinate=True, owner="acceptance")
        assert result.complete
        assert marker.exists()  # the SIGKILL really landed

        # the exploration's in-memory outcome is byte-identical to the
        # undisturbed serial baseline
        _assert_byte_identical(result.runs, baseline.runs)
        assert result.frontier() == baseline.frontier()

        # `store verify` finds the torn entry, quarantines it, exits 0
        code = main(["store", "verify", "--store", str(store_root)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 corrupt" in out
        assert "quarantined" in out
        assert (store_root / "corrupt").is_dir()

        # the healed store serves everything but the quarantined entry
        warm = self._explore(store_root)
        assert warm.complete
        assert warm.simulated_runs == 1
        assert warm.stored_runs == len(warm.runs) - 1
        _assert_byte_identical(warm.runs, baseline.runs)
