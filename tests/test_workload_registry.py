"""Tests of the pluggable workload registry (repro.workloads.registry).

Covers the registration API, the CLI-style selectors, the round trip of a
user-registered workload through ``build_suite`` and the experiment
engine — including re-registration in pool workers — and the extended
(``mediabench-plus``) suite flowing through both execution engines and
the persistent result store unchanged.
"""

from dataclasses import dataclass

import pytest

from repro.compiler.builder import KernelBuilder
from repro.compiler.ir import ISAFlavor
from repro.core import runner as runner_module
from repro.core.runner import execute_requests
from repro.isa.operations import Opcode
from repro.memory.layout import AddressSpace
from repro.sim.plan import RunRequest
from repro.store import ResultStore, run_fingerprint
from repro.workloads import common
from repro.workloads.registry import (
    WorkloadDefinition,
    get_workload,
    register_workload,
    register_workload_definition,
    registered_workloads,
    select_benchmarks,
    unregister_workload,
    user_workload_definitions,
    workload_names,
)
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    EXTENDED_BENCHMARK_NAMES,
    SYNTHETIC_BENCHMARK_NAMES,
    SuiteParameters,
    build_benchmark,
    build_suite,
)


@dataclass(frozen=True)
class ToyParameters:
    samples: int = 256

    def __post_init__(self) -> None:
        if self.samples < 32 or self.samples % 32:
            raise ValueError("samples must be a positive multiple of 32")


_TOY_SCALAR = ((Opcode.ADD, 2), (Opcode.SHR, 1))
_TOY_PACKED = ((Opcode.PADDW, 2), (Opcode.PSHIFT, 1))
_TOY_VECTOR = ((Opcode.VADDW, 2), (Opcode.VSHIFT, 1))


def build_toy_program(flavor: ISAFlavor, params: ToyParameters = ToyParameters()):
    """A minimal three-flavour streaming kernel (module-level: must pickle)."""
    space = AddressSpace()
    source = space.allocate("source", (1, params.samples), element_bytes=2)
    sink = space.allocate("sink", (1, params.samples), element_bytes=2)
    builder = KernelBuilder("toy_stream", flavor, address_space=space)
    with builder.region("R1", "Toy stream", vectorizable=True):
        emit = {ISAFlavor.SCALAR: (common.emit_elementwise_scalar, _TOY_SCALAR),
                ISAFlavor.USIMD: (common.emit_elementwise_usimd, _TOY_PACKED),
                ISAFlavor.VECTOR: (common.emit_elementwise_vector, _TOY_VECTOR)}
        emitter, mix = emit[flavor]
        emitter(builder, [source], [sink], 1, params.samples, mix,
                element_bytes=2, label="toy")
    return builder.program()


def _toy_definition(name: str = "toy_stream") -> WorkloadDefinition:
    return WorkloadDefinition(
        name=name, family="toy", builder=build_toy_program,
        params_type=ToyParameters, default_params=ToyParameters(),
        tiny_params=ToyParameters(samples=64),
        description="toy streaming kernel", tags=("test", "streaming"))


@pytest.fixture
def toy_workload():
    """A registered user workload, unregistered again afterwards."""
    definition = register_workload_definition(_toy_definition())
    yield definition
    unregister_workload(definition.name)


class TestRegistryBasics:
    def test_builtin_names_and_order(self):
        names = workload_names()
        assert names[:len(BENCHMARK_NAMES)] == BENCHMARK_NAMES
        assert names == EXTENDED_BENCHMARK_NAMES + SYNTHETIC_BENCHMARK_NAMES

    def test_mediabench_plus_is_the_extended_suite(self):
        assert workload_names("mediabench") == BENCHMARK_NAMES
        assert workload_names("mediabench-plus") == EXTENDED_BENCHMARK_NAMES

    def test_get_workload_unknown_name(self):
        with pytest.raises(KeyError, match="jpeg_enc"):
            get_workload("mp3_dec")

    def test_definitions_are_complete(self):
        for name, definition in registered_workloads().items():
            assert definition.name == name
            assert definition.description
            assert definition.tags
            assert isinstance(definition.default_params, definition.params_type)
            assert isinstance(definition.tiny_params, definition.params_type)

    def test_builtins_cannot_be_shadowed_or_removed(self):
        with pytest.raises(ValueError, match="shipped"):
            register_workload_definition(_toy_definition(name="jpeg_enc"))
        with pytest.raises(ValueError, match="shipped"):
            unregister_workload("gsm_dec")

    def test_shipped_family_contracts_are_protected(self):
        hijack = WorkloadDefinition(
            name="toy_jpeg", family="jpeg", builder=build_toy_program,
            params_type=ToyParameters, default_params=ToyParameters(),
            tiny_params=ToyParameters(samples=64))
        # not even overwrite=True may re-contract a shipped family — the
        # shipped builders would crash on the foreign dataclass
        with pytest.raises(ValueError, match="shipped parameter family"):
            register_workload_definition(hijack, overwrite=True)

    def test_family_contract_protected_while_siblings_use_it(self, toy_workload):
        sibling = WorkloadDefinition(
            name="toy_sibling", family="toy", builder=build_toy_program,
            params_type=ToyParameters, default_params=ToyParameters(),
            tiny_params=ToyParameters(samples=64))
        register_workload_definition(sibling)
        try:
            recontract = WorkloadDefinition(
                name="toy_sibling", family="toy", builder=build_toy_program,
                params_type=ToyParameters,
                default_params=ToyParameters(samples=96),
                tiny_params=ToyParameters(samples=96))
            with pytest.raises(ValueError, match="still"):
                register_workload_definition(recontract, overwrite=True)
        finally:
            unregister_workload("toy_sibling")

    def test_duplicate_user_registration(self, toy_workload):
        # identical definition: a no-op; different one: an error
        register_workload_definition(_toy_definition())
        different = WorkloadDefinition(
            name="toy_stream", family="toy", builder=build_toy_program,
            params_type=ToyParameters, default_params=ToyParameters(),
            tiny_params=ToyParameters(samples=96), description="different")
        with pytest.raises(ValueError, match="overwrite"):
            register_workload_definition(different)
        register_workload_definition(different, overwrite=True)
        assert get_workload("toy_stream").tiny_params.samples == 96
        register_workload_definition(_toy_definition(), overwrite=True)

    def test_definition_validation(self):
        with pytest.raises(TypeError, match="tiny"):
            WorkloadDefinition(name="bad", family="toy",
                               builder=build_toy_program,
                               params_type=ToyParameters,
                               default_params=ToyParameters(),
                               tiny_params=object())
        with pytest.raises(TypeError, match="callable"):
            WorkloadDefinition(name="bad", family="toy", builder="nope",
                               params_type=ToyParameters,
                               default_params=ToyParameters(),
                               tiny_params=ToyParameters())
        with pytest.raises(ValueError, match="family"):
            WorkloadDefinition(name="bad", family="",
                               builder=build_toy_program,
                               params_type=ToyParameters,
                               default_params=ToyParameters(),
                               tiny_params=ToyParameters())

    def test_decorator_returns_builder_unchanged(self):
        decorated = register_workload(
            "toy_decorated", family="toy_decorated", params=ToyParameters,
            tags=("test",))(build_toy_program)
        try:
            assert decorated is build_toy_program
            definition = get_workload("toy_decorated")
            # default/tiny fall back to the dataclass defaults
            assert definition.default_params == ToyParameters()
            assert definition.tiny_params == ToyParameters()
        finally:
            unregister_workload("toy_decorated")


class TestSelectors:
    def test_names_tags_and_all(self):
        assert select_benchmarks(["gsm_dec", "jpeg_enc"]) == ("jpeg_enc", "gsm_dec")
        assert select_benchmarks(["tag:mediabench-plus"]) == EXTENDED_BENCHMARK_NAMES
        assert select_benchmarks(["all"]) == workload_names()

    def test_selection_is_deduplicated_and_ordered(self):
        chosen = select_benchmarks(["sobel_edge", "tag:image", "jpeg_dec"])
        assert chosen == ("jpeg_enc", "jpeg_dec", "sobel_edge")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            select_benchmarks(["mp3_dec"])

    def test_empty_tag_raises(self):
        with pytest.raises(ValueError, match="known tags"):
            select_benchmarks(["tag:nope"])


class TestSuiteIntegration:
    def test_tiny_parameters_come_from_the_registry(self):
        tiny = SuiteParameters.tiny()
        for name in EXTENDED_BENCHMARK_NAMES:
            definition = get_workload(name)
            assert tiny.for_family(definition.family) == definition.tiny_params

    def test_build_suite_extended(self, tiny_parameters):
        suite = build_suite(tiny_parameters, names=EXTENDED_BENCHMARK_NAMES)
        assert tuple(suite) == EXTENDED_BENCHMARK_NAMES
        for spec in suite.values():
            assert set(spec.programs) == {ISAFlavor.SCALAR, ISAFlavor.USIMD,
                                          ISAFlavor.VECTOR}

    def test_user_workload_round_trip(self, toy_workload):
        params = SuiteParameters.tiny().with_family("toy",
                                                    ToyParameters(samples=128))
        spec = build_benchmark("toy_stream", params)
        assert spec.description == "toy streaming kernel"
        assert set(spec.programs) == {ISAFlavor.SCALAR, ISAFlavor.USIMD,
                                      ISAFlavor.VECTOR}

    def test_user_family_defaults_to_registered_sizes(self, toy_workload):
        # no extras entry: the registry's default/tiny sizes apply
        assert (SuiteParameters.default().for_family("toy")
                == ToyParameters())
        assert (SuiteParameters.tiny().for_family("toy")
                == ToyParameters(samples=64))

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError, match="family"):
            SuiteParameters.default().for_family("nope")

    def test_unregister_releases_the_family_contract(self):
        register_workload_definition(_toy_definition())
        unregister_workload("toy_stream")
        # the family name is reusable with a different contract, and
        # tiny() carries no phantom extras for the removed family
        assert not any(name == "toy" for name, _ in SuiteParameters.tiny().extras)
        redefined = WorkloadDefinition(
            name="toy_two", family="toy", builder=build_toy_program,
            params_type=ToyParameters, default_params=ToyParameters(samples=96),
            tiny_params=ToyParameters(samples=32))
        register_workload_definition(redefined)  # must not raise
        unregister_workload("toy_two")

    def test_tiny_instance_stays_tiny_for_late_registrations(self):
        # a tiny SuiteParameters built *before* the registration (the
        # session-scoped fixture pattern) must still resolve the family
        # to its registered tiny sizes, not the full-size defaults
        tiny_before = SuiteParameters.tiny()
        register_workload_definition(_toy_definition())
        try:
            assert tiny_before.for_family("toy") == ToyParameters(samples=64)
            assert SuiteParameters.default().for_family("toy") == ToyParameters()
        finally:
            unregister_workload("toy_stream")


class TestPoolRoundTrip:
    def test_user_workload_definitions_excludes_builtins(self, toy_workload):
        user = user_workload_definitions()
        assert set(user) == {"toy_stream"}

    def test_worker_init_re_registers(self, toy_workload):
        """Simulate a spawn worker: strip the registration, re-init."""
        definition = get_workload("toy_stream")
        unregister_workload("toy_stream")
        with pytest.raises(KeyError):
            get_workload("toy_stream")
        runner_module._worker_init({}, None, None,
                                   extra_workloads={"toy_stream": definition})
        assert get_workload("toy_stream") == definition

    def test_parallel_matches_serial(self, toy_workload):
        spec = build_benchmark("toy_stream", SuiteParameters.tiny())
        requests = [RunRequest("toy_stream", config, False)
                    for config in ("vliw-2w", "usimd-2w", "vector2-2w")]
        serial = execute_requests(requests, {"toy_stream": spec}, jobs=1)
        parallel = execute_requests(requests, {"toy_stream": spec}, jobs=2,
                                    min_parallel_runs=0)
        assert {r: s.to_dict() for r, s in serial.items()} \
            == {r: s.to_dict() for r, s in parallel.items()}


class TestStoreKeying:
    def test_registry_name_is_part_of_the_store_key(self, tiny_suite):
        from repro.machine.config import get_config
        config = get_config("vector2-2w")
        program = tiny_suite["gsm_enc"].program_for(config)
        anonymous = run_fingerprint(program, config)
        named = run_fingerprint(program, config, benchmark="gsm_enc")
        renamed = run_fingerprint(program, config, benchmark="gsm_enc_v2")
        assert len({anonymous, named, renamed}) == 3

    def test_user_workload_results_persist(self, toy_workload, tmp_path,
                                           monkeypatch):
        spec = build_benchmark("toy_stream", SuiteParameters.tiny())
        request = RunRequest("toy_stream", "vector2-2w", False)
        store = ResultStore(tmp_path)
        cold = execute_requests([request], {"toy_stream": spec}, store=store)
        assert store.stats.writes == 1
        monkeypatch.setattr(
            runner_module, "execute_plan",
            lambda *a, **k: pytest.fail("store should have answered"))
        warm = execute_requests([request], {"toy_stream": spec},
                                store=ResultStore(tmp_path))
        assert warm[request].to_dict() == cold[request].to_dict()


class TestExtendedSuiteEquivalence:
    """The acceptance path: ten benchmarks, both engines, warm store."""

    CONFIGS = ("vliw-2w", "usimd-2w", "vector2-2w")

    def test_extended_suite_engines_byte_identical(self, tiny_parameters):
        from repro.experiments.evaluation import SuiteEvaluation

        sweeps = {}
        for engine in ("trace", "interpreter"):
            evaluation = SuiteEvaluation(
                parameters=tiny_parameters,
                benchmark_names=EXTENDED_BENCHMARK_NAMES,
                config_names=self.CONFIGS, engine=engine, store=None)
            evaluation.prefetch()
            sweeps[engine] = {
                (name, config, perfect):
                    evaluation.run(name, config, perfect).to_dict()
                for name in EXTENDED_BENCHMARK_NAMES
                for config in self.CONFIGS
                for perfect in (False, True)}
        assert sweeps["trace"] == sweeps["interpreter"]

    def test_extended_suite_warm_store_zero_simulations(self, tiny_parameters,
                                                        tmp_path):
        from repro.experiments.evaluation import SuiteEvaluation

        def evaluate():
            evaluation = SuiteEvaluation(
                parameters=tiny_parameters,
                benchmark_names=EXTENDED_BENCHMARK_NAMES,
                config_names=self.CONFIGS, store=ResultStore(tmp_path))
            evaluation.prefetch()
            return evaluation

        cold = evaluate()
        assert cold.simulated_runs == len(EXTENDED_BENCHMARK_NAMES) * len(self.CONFIGS) * 2
        warm = evaluate()
        assert warm.simulated_runs == 0


class TestSyntheticFamily:
    """Registry coverage of the seeded synthetic workloads (PR 6)."""

    def test_registered_with_tags_and_sizes(self):
        for name in SYNTHETIC_BENCHMARK_NAMES:
            definition = get_workload(name)
            assert definition.has_tag("synthetic")
            assert definition.tiny_params != definition.default_params
        assert select_benchmarks(["tag:synthetic"]) == SYNTHETIC_BENCHMARK_NAMES

    def test_seed_determinism_byte_identical(self):
        from repro.compiler.cache import fingerprint_program
        from repro.workloads.synthetic import (
            SyntheticParameters,
            build_synthetic_program,
            canonical_spec_json,
            generate_spec,
        )

        params = SyntheticParameters(seed=7, statements=6, footprint_kb=2)
        assert (canonical_spec_json(generate_spec(params))
                == canonical_spec_json(generate_spec(params)))
        first = build_synthetic_program(ISAFlavor.VECTOR, params)
        second = build_synthetic_program(ISAFlavor.VECTOR, params)
        # fresh virtual-register ids differ, but the normalized compile
        # fingerprint -- the store's keying -- must be identical
        assert fingerprint_program(first) == fingerprint_program(second)
        other = build_synthetic_program(
            ISAFlavor.VECTOR, SyntheticParameters(seed=8, statements=6,
                                                  footprint_kb=2))
        assert fingerprint_program(first) != fingerprint_program(other)

    def test_synthetic_parallel_matches_serial(self):
        spec = build_benchmark("synthetic_stream", SuiteParameters.tiny())
        requests = [RunRequest("synthetic_stream", config, False)
                    for config in ("vliw-2w", "vector2-2w")]
        serial = execute_requests(requests, {"synthetic_stream": spec}, jobs=1)
        parallel = execute_requests(requests, {"synthetic_stream": spec},
                                    jobs=2)
        assert {r: s.to_dict() for r, s in serial.items()} \
            == {r: s.to_dict() for r, s in parallel.items()}

    def test_store_key_stable_across_processes(self):
        import subprocess
        import sys
        from pathlib import Path

        from repro.machine.config import get_config

        script = (
            "from repro.compiler.ir import ISAFlavor\n"
            "from repro.machine.config import get_config\n"
            "from repro.store import run_fingerprint\n"
            "from repro.workloads.registry import get_workload\n"
            "d = get_workload('synthetic_gather')\n"
            "program = d.builder(ISAFlavor.VECTOR, d.tiny_params)\n"
            "print(run_fingerprint(program, get_config('vector2-2w'),\n"
            "                      benchmark='synthetic_gather'))\n")
        src = Path(__file__).resolve().parent.parent / "src"
        child = subprocess.run([sys.executable, "-c", script],
                               capture_output=True, text=True,
                               env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"})
        assert child.returncode == 0, child.stderr
        definition = get_workload("synthetic_gather")
        program = definition.builder(ISAFlavor.VECTOR, definition.tiny_params)
        parent_key = run_fingerprint(program, get_config("vector2-2w"),
                                     benchmark="synthetic_gather")
        assert child.stdout.strip() == parent_key
