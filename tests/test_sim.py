"""Tests for the execution engines and the statistics layer."""

import pytest

from repro.compiler.builder import KernelBuilder
from repro.compiler.ir import ISAFlavor
from repro.compiler.scheduler import compile_program
from repro.core.architecture import VectorMicroSimdVliwMachine
from repro.isa.operations import Opcode
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.layout import AddressSpace
from repro.sim.fast import ExecutionEngine, execute_program
from repro.sim.stats import RegionStats, RunStats
from repro.sim.vliw import CycleAccurateEngine


def build_streaming_program(vl=8, iterations=8, stride_bytes=8):
    space = AddressSpace()
    data = space.allocate("data", (4096,), element_bytes=8)
    out = space.allocate("out", (4096,), element_bytes=8)
    b = KernelBuilder("stream", ISAFlavor.VECTOR, address_space=space)
    with b.region("R1", "stream", vectorizable=True):
        with b.loop(iterations, name="i") as i:
            b.setvl(vl)
            v = b.vload(b.addr(data, (i, vl * 8)), vl=vl, stride_bytes=stride_bytes)
            r = b.vop(Opcode.VADDW, v, vl=vl)
            b.vstore(b.addr(out, (i, vl * 8)), r, vl=vl, stride_bytes=stride_bytes)
    return b.program()


def build_compute_only_program(iterations=100):
    b = KernelBuilder("compute", ISAFlavor.SCALAR)
    with b.loop(iterations, name="i"):
        b.independent_ops(6)
    return b.program()


class TestFastExecutor:
    def test_compute_only_loop_scales_analytically(self, vliw_2w):
        program = build_compute_only_program(iterations=100)
        stats = execute_program(program, vliw_2w)
        per_iteration = stats.total_cycles / 100
        assert stats.total_operations == 100 * 9  # 6 ops + 3 loop-control
        assert 4 <= per_iteration <= 8

    def test_cycles_scale_with_trip_count(self, vliw_2w):
        small = execute_program(build_compute_only_program(10), vliw_2w)
        large = execute_program(build_compute_only_program(100), vliw_2w)
        assert large.total_cycles == pytest.approx(10 * small.total_cycles, rel=0.01)

    def test_perfect_memory_faster_than_cold(self, vector2_2w):
        program = build_streaming_program()
        perfect = execute_program(program, vector2_2w, perfect_memory=True)
        cold = execute_program(program, vector2_2w, perfect_memory=False)
        assert perfect.total_cycles < cold.total_cycles
        assert perfect.total_stall_cycles == 0

    def test_warm_hierarchy_removes_most_stalls(self, vector2_2w):
        machine = VectorMicroSimdVliwMachine(vector2_2w)
        program = build_streaming_program()
        warm = machine.run(program, warm=True)
        cold = machine.run(program, warm=False)
        assert warm.total_stall_cycles < cold.total_stall_cycles
        assert warm.total_cycles < cold.total_cycles

    def test_non_unit_stride_stalls(self, vector2_2w):
        machine = VectorMicroSimdVliwMachine(vector2_2w)
        unit = machine.run(build_streaming_program(stride_bytes=8))
        strided = machine.run(build_streaming_program(stride_bytes=256))
        assert strided.total_stall_cycles > unit.total_stall_cycles
        assert strided.total_cycles > unit.total_cycles

    def test_region_accounting(self, vector2_2w):
        program = build_streaming_program()
        stats = execute_program(program, vector2_2w, perfect_memory=True)
        assert set(stats.regions) == {"R0", "R1"}
        assert stats.regions["R1"].vectorizable
        assert stats.vector_region_cycles == stats.regions["R1"].cycles
        assert stats.regions["R1"].operations == program.dynamic_operation_count()

    def test_opc_and_uopc(self, vector2_2w):
        program = build_streaming_program()
        stats = execute_program(program, vector2_2w, perfect_memory=True)
        assert stats.opc > 0
        assert stats.uopc > stats.opc  # vector ops pack many micro-ops

    def test_same_program_same_result_is_deterministic(self, vector2_2w):
        program = build_streaming_program()
        first = execute_program(program, vector2_2w)
        second = execute_program(program, vector2_2w)
        assert first.total_cycles == second.total_cycles


class TestCycleAccurateEngine:
    def test_matches_fast_executor_for_one_iteration(self, vector2_2w):
        program = build_streaming_program(iterations=1)
        compiled = compile_program(program, vector2_2w)
        segment = program.segments()[0]
        schedule = compiled.schedule_for(segment)

        fast_hierarchy = MemoryHierarchy(vector2_2w.memory, perfect=True)
        fast_stats = ExecutionEngine(compiled, fast_hierarchy).run()

        loop = next(node for node in program.body if hasattr(node, "var"))
        engine = CycleAccurateEngine(vector2_2w)
        trace = engine.run_segment(schedule,
                                   MemoryHierarchy(vector2_2w.memory, perfect=True),
                                   env={loop.var: 0})
        # the loop body is the only segment with operations; the fast model
        # charges II + stalls, the cycle engine additionally drains.
        assert trace.issue_cycles - trace.stall_cycles == schedule.initiation_interval
        assert fast_stats.regions["R1"].cycles == schedule.initiation_interval

    def test_stall_events_recorded(self, vector2_2w):
        program = build_streaming_program(iterations=1, stride_bytes=512)
        compiled = compile_program(program, vector2_2w)
        segment = [s for s in program.segments() if s.operations][0]
        schedule = compiled.schedule_for(segment)
        loop = next(node for node in program.body if hasattr(node, "var"))
        hierarchy = MemoryHierarchy(vector2_2w.memory)
        trace = CycleAccurateEngine(vector2_2w).run_segment(schedule, hierarchy,
                                                            env={loop.var: 0})
        assert trace.stall_cycles > 0
        assert any("stall" in text for _, text in trace.events)
        assert "total:" in trace.format_log()


class TestStats:
    def test_region_stats_rates(self):
        region = RegionStats("R1", vectorizable=True)
        region.add_segment(cycles=10, operations=20, micro_ops=40,
                           stall_cycles=2, memory_accesses=4)
        assert region.opc == 2.0
        assert region.uopc == 4.0

    def test_region_merge(self):
        a = RegionStats("R1", cycles=10, operations=5)
        b = RegionStats("R1", cycles=20, operations=15)
        merged = a.merged_with(b)
        assert merged.cycles == 30 and merged.operations == 20
        with pytest.raises(ValueError):
            a.merged_with(RegionStats("R2"))

    def test_run_stats_aggregation(self):
        run = RunStats("bench", "vliw-2w", "scalar")
        run.region("R0", vectorizable=False).add_segment(100, 150, 150, 0, 10)
        run.region("R1", vectorizable=True).add_segment(50, 200, 800, 5, 20)
        assert run.total_cycles == 150
        assert run.vector_region_cycles == 50
        assert run.scalar_region_cycles == 100
        assert run.vectorization_fraction == pytest.approx(1 / 3)
        assert run.vector_opc() == 4.0
        assert run.scalar_opc() == 1.5
        assert run.summary()["cycles"] == 150

    def test_speedups(self):
        base = RunStats("b", "vliw-2w", "scalar")
        base.region("R1", True).add_segment(100, 10, 10, 0, 0)
        fast = RunStats("b", "vector2-2w", "vector")
        fast.region("R1", True).add_segment(25, 10, 10, 0, 0)
        assert fast.speedup_over(base) == 4.0
        assert fast.vector_region_speedup_over(base) == 4.0
        assert fast.normalized_operations(base) == 1.0

    def test_empty_run_stats(self):
        run = RunStats("b", "c", "scalar")
        assert run.opc == 0.0
        assert run.vectorization_fraction == 0.0
        assert run.speedup_over(run) == 0.0
