"""Differential tests of the composable scheduler strategies.

Every registered strategy (baseline, packed, unroll, modulo) is driven
over the extended ten-kernel suite on two machine shapes and held to the
schedule-quality contract:

* every schedule passes the independent static verifier
  (:mod:`repro.analysis`) — including the software-pipelining checks
  (REP209);
* the trace and interpreter tiers agree field-for-field under every
  strategy;
* a strategy may change *timing* only — per-region operations, micro-ops
  and memory accesses are byte-identical to the baseline compilation;
* the packed strategy never models more cycles than baseline (it falls
  back to the baseline schedule when packing does not win).

Hypothesis properties pin the two degenerate corners (unroll factor 1 is
the identity transform; a modulo II never undercuts the loop-carried
recurrence bound), negative tests hand-corrupt pipelined schedules to
prove the verifier actually rejects them, and the cache/staleness tests
show a pre-strategy (3-tuple) cache entry can never answer a
strategy-aware lookup.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.analyzer import verify_compiled
from repro.compiler.cache import (
    CompileCache,
    _latency_table_key,
    compile_cached,
    fingerprint_config,
    fingerprint_program,
)
from repro.compiler.ir import ISAFlavor
from repro.compiler.scheduler import compile_program
from repro.compiler.strategies import (
    DEFAULT_STRATEGY,
    UnrollStrategy,
    get_strategy,
    strategy_names,
    unroll_program,
)
from repro.experiments.report import resolve_strategies
from repro.machine.config import get_config
from repro.machine.latency import LatencyModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.engines import make_engine
from repro.store.result_store import run_fingerprint
from repro.workloads.suite import (
    EXTENDED_BENCHMARK_NAMES,
    SuiteParameters,
    build_suite,
)
from repro.workloads.synthetic import generate_spec
from repro.workloads.synthetic.generator import params_for_seed
from repro.workloads.synthetic.spec import build_program

STRATEGIES = ("baseline", "packed", "unroll", "modulo")
CONFIGS = ("vliw-2w", "vector2-2w")


def _run(compiled, engine_name):
    config = compiled.config
    hierarchy = MemoryHierarchy(config.memory, l1_ports=config.l1_ports,
                                l2_port_words=config.l2_port_words)
    return make_engine(engine_name, compiled, hierarchy).run()


def _functional(stats):
    """The strategy-invariant slice: work per region, timing excluded."""
    return {
        name: (region.vectorizable, region.operations, region.micro_ops,
               region.memory_accesses)
        for name, region in stats.regions.items()
    }


def _modeled_cycles(compiled):
    """Static cycle model: initiation interval times the dynamic trip count.

    The same quantity the fast and trace engines charge per segment
    execution (stalls aside), summed over the whole program — the metric
    the schedule-quality bar is stated in.
    """
    total = 0
    for segment, loops in compiled.program.walk_segments():
        trips = 1
        for loop in loops:
            trips *= loop.trip_count
        total += compiled.schedules[id(segment)].initiation_interval * trips
    return total


@pytest.fixture(scope="module")
def strategy_runs(tiny_suite):
    """Compiled program + trace/interpreter stats per (kernel, config, strategy)."""
    runs = {}
    for config_name in CONFIGS:
        config = get_config(config_name)
        for name in EXTENDED_BENCHMARK_NAMES:
            program = tiny_suite[name].program_for(config)
            for strategy in STRATEGIES:
                compiled = compile_cached(program, config, strategy=strategy)
                runs[(name, config_name, strategy)] = (
                    compiled,
                    _run(compiled, "trace"),
                    _run(compiled, "interpreter"),
                )
    return runs


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class TestRegistry:

    def test_all_strategies_registered(self):
        assert set(STRATEGIES) <= set(strategy_names())
        assert DEFAULT_STRATEGY == "baseline"

    def test_unknown_strategy_raises_with_catalog(self):
        with pytest.raises(KeyError, match="baseline"):
            get_strategy("no-such-strategy")

    def test_resolve_strategies(self):
        assert resolve_strategies(None) == ("baseline",)
        assert resolve_strategies([]) == ("baseline",)
        assert resolve_strategies("modulo") == ("modulo",)
        assert resolve_strategies(["packed", "packed"]) == ("packed",)
        assert set(resolve_strategies(["all"])) == set(strategy_names())
        with pytest.raises(KeyError):
            resolve_strategies(["bogus"])


# ---------------------------------------------------------------------------
# The differential contract: verifier-clean, tier-equal, work-preserving
# ---------------------------------------------------------------------------

class TestDifferentialContract:

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_schedule_is_verifier_clean(self, strategy_runs, strategy):
        for (name, config_name, strat), (compiled, _, _) in strategy_runs.items():
            if strat != strategy:
                continue
            report = verify_compiled(compiled, benchmark=name)
            assert not report.has_errors, (
                f"{name}/{config_name}/{strategy}: "
                + "; ".join(d.format() for d in report.errors))

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_trace_matches_interpreter(self, strategy_runs, strategy):
        for (name, config_name, strat), (_, traced, interp) in strategy_runs.items():
            if strat != strategy:
                continue
            assert traced.to_dict() == interp.to_dict(), (
                f"{name}/{config_name}/{strategy}: tier divergence")

    @pytest.mark.parametrize("strategy", [s for s in STRATEGIES
                                          if s != "baseline"])
    def test_functional_fields_identical_to_baseline(self, strategy_runs,
                                                     strategy):
        for config_name in CONFIGS:
            for name in EXTENDED_BENCHMARK_NAMES:
                _, base, _ = strategy_runs[(name, config_name, "baseline")]
                _, run, _ = strategy_runs[(name, config_name, strategy)]
                assert _functional(run) == _functional(base), (
                    f"{name}/{config_name}/{strategy}: strategy changed the "
                    "work performed, not just the timing")

    def test_packed_never_models_more_cycles_than_baseline(self, strategy_runs):
        for config_name in CONFIGS:
            for name in EXTENDED_BENCHMARK_NAMES:
                base = strategy_runs[(name, config_name, "baseline")][0]
                packed = strategy_runs[(name, config_name, "packed")][0]
                assert _modeled_cycles(packed) <= _modeled_cycles(base), (
                    f"{name}/{config_name}: packed regressed over baseline")

    def test_no_strategy_regresses_any_benchmark(self, strategy_runs):
        for (name, config_name, strategy), (compiled, _, _) in strategy_runs.items():
            base = strategy_runs[(name, config_name, "baseline")][0]
            assert _modeled_cycles(compiled) <= _modeled_cycles(base), (
                f"{name}/{config_name}/{strategy}: modeled cycles regressed")

    def test_modulo_pipelines_at_least_one_suite_segment(self, strategy_runs):
        pipelined = [
            key for key, (compiled, _, _) in strategy_runs.items()
            if key[2] == "modulo"
            and any(s.pipelined_interval is not None
                    for s in compiled.schedules.values())
        ]
        assert pipelined, "modulo never fired on the whole suite"


# ---------------------------------------------------------------------------
# Schedule-quality bar (the acceptance numbers recorded in BENCH)
# ---------------------------------------------------------------------------

class TestScheduleQualityBar:
    """Modeled-cycle speedups on the realistic (full-size) suite.

    IR size does not grow with the input sizes, so compiling the full-size
    programs and evaluating the static cycle model is fast — no simulation
    is needed to state the bar.
    """

    @pytest.fixture(scope="class")
    def full_size_cycles(self):
        config = get_config("vliw-2w")
        suite = build_suite(SuiteParameters.default(),
                            names=EXTENDED_BENCHMARK_NAMES)
        cycles = {}
        for name in EXTENDED_BENCHMARK_NAMES:
            program = suite[name].program_for(config)
            for strategy in STRATEGIES:
                compiled = compile_cached(program, config, strategy=strategy)
                cycles[(name, strategy)] = _modeled_cycles(compiled)
        return cycles

    def test_geomean_speedup_meets_the_bar(self, full_size_cycles):
        geomeans = {}
        for strategy in STRATEGIES[1:]:
            log_sum = 0.0
            for name in EXTENDED_BENCHMARK_NAMES:
                ratio = (full_size_cycles[(name, "baseline")]
                         / full_size_cycles[(name, strategy)])
                assert ratio >= 1.0, (
                    f"{name}/{strategy}: full-size modeled regression")
                log_sum += math.log(ratio)
            geomeans[strategy] = math.exp(
                log_sum / len(EXTENDED_BENCHMARK_NAMES))
        assert max(geomeans.values()) >= 1.15, (
            f"no strategy reaches the 15% geomean bar on vliw-2w: {geomeans}")


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------

class TestProperties:

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=80))
    def test_unroll_factor_one_is_the_identity(self, seed):
        spec = generate_spec(params_for_seed(seed, "tiny"))
        program = build_program(spec, ISAFlavor.SCALAR)
        assert unroll_program(program, 1) is program
        config = get_config("vliw-2w")
        model = LatencyModel()
        unrolled = UnrollStrategy(factor=1).compile(program, config, model)
        baseline = compile_program(program, config, model, verify=False)
        assert unrolled.program is program
        for segment, _ in program.walk_segments():
            ours = unrolled.schedules[id(segment)]
            theirs = baseline.schedules[id(segment)]
            assert [e.cycle for e in ours.entries] \
                == [e.cycle for e in theirs.entries]
            assert ours.initiation_interval == theirs.initiation_interval

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=80),
           flavor=st.sampled_from([ISAFlavor.SCALAR, ISAFlavor.VECTOR]))
    def test_modulo_interval_respects_the_recurrence_bound(self, seed, flavor):
        spec = generate_spec(params_for_seed(seed, "tiny"))
        program = build_program(spec, flavor)
        # the VLIW machine cannot execute vector operations
        config = get_config("vliw-2w" if flavor is ISAFlavor.SCALAR
                            else "vector2-2w")
        compiled = compile_program(program, config, strategy="modulo",
                                   verify=False)
        for schedule in compiled.schedules.values():
            if schedule.pipelined_interval is None:
                continue
            assert schedule.pipelined_interval \
                >= max(1, schedule.recurrence_interval)
        assert not verify_compiled(compiled).has_errors


# ---------------------------------------------------------------------------
# REP209: the verifier rejects corrupted pipelined schedules
# ---------------------------------------------------------------------------

def _fresh_modulo_compilation():
    """An uncached modulo compilation with at least one pipelined segment.

    Uncached on purpose: these tests mutate the schedule map, which must
    never poison the process-wide compile cache.
    """
    config = get_config("vliw-2w")
    suite = build_suite(SuiteParameters.tiny(),
                        names=EXTENDED_BENCHMARK_NAMES)
    for name in EXTENDED_BENCHMARK_NAMES:
        program = suite[name].program_for(config)
        compiled = compile_program(program, config, strategy="modulo",
                                   verify=False)
        for segment, loops in program.walk_segments():
            schedule = compiled.schedules[id(segment)]
            if schedule.pipelined_interval is not None:
                return compiled, segment, schedule
    raise AssertionError("no pipelined segment in the tiny suite")


class TestRep209Negative:

    def test_interval_below_one_is_rejected(self):
        compiled, segment, schedule = _fresh_modulo_compilation()
        compiled.schedules[id(segment)] = dataclasses.replace(
            schedule, pipelined_interval=0)
        report = verify_compiled(compiled)
        assert any(d.code == "REP209" for d in report.errors)

    def test_interval_below_the_carried_bound_is_rejected(self):
        from repro.analysis import carried_recurrence_bound
        from repro.compiler.builder import KernelBuilder

        config = get_config("vector2-2w")
        model = LatencyModel()
        b = KernelBuilder("carried", ISAFlavor.VECTOR)
        with b.loop(4, "i") as i:
            b.setvl(8)
            acc = b.acc_clear()
            v1 = b.vload(b.addr(0x1000, (i, 64)), vl=8)
            v2 = b.vload(b.addr(0x2000, (i, 64)), vl=8)
            acc = b.vsad(acc, v1, v2, vl=8)
            total = b.vsum(acc)
            b.store(b.addr(0x3000, (i, 8)), total)
        program = b.program()
        compiled = compile_program(program, config, model, verify=False)
        segment = program.segments()[0]
        bound = carried_recurrence_bound(segment, config, model)
        assert bound >= 2  # the accumulator chain guarantees this
        schedule = compiled.schedule_for(segment)
        compiled.schedules[id(segment)] = dataclasses.replace(
            schedule, pipelined_interval=bound - 1)
        report = verify_compiled(compiled)
        assert any(d.code == "REP209" and "recurrence bound" in d.message
                   for d in report.errors)

    def test_pipelining_outside_a_repeating_loop_is_rejected(self):
        from repro.compiler.builder import KernelBuilder

        # a top-level (loop-free) segment: pipelining it is meaningless
        config = get_config("vliw-2w")
        model = LatencyModel()
        b = KernelBuilder("straightline", ISAFlavor.SCALAR)
        b.load(b.addr(0x100))
        b.load(b.addr(0x200))
        program = b.program()
        compiled = compile_program(program, config, model, verify=False)
        segment = program.segments()[0]
        schedule = compiled.schedule_for(segment)
        compiled.schedules[id(segment)] = dataclasses.replace(
            schedule, pipelined_interval=max(1, schedule.initiation_interval))
        report = verify_compiled(compiled)
        assert any(d.code == "REP209" and "sole body" in d.message
                   for d in report.errors)


# ---------------------------------------------------------------------------
# Cache keys and store fingerprints: staleness is structurally impossible
# ---------------------------------------------------------------------------

class TestStrategyKeying:

    def test_legacy_three_tuple_entries_miss_cleanly(self, tiny_suite):
        """A pre-strategy cache entry can never answer a strategy lookup.

        Before the strategy axis, cache keys were 3-tuples; the regression
        this pins down is a stale baseline schedule being served for a
        ``strategy="modulo"`` request after an upgrade (e.g. a long-lived
        process whose cache was seeded by old code).
        """
        config = get_config("vliw-2w")
        model = LatencyModel()
        program = tiny_suite["gsm_enc"].program_for(config)
        cache = CompileCache()
        baseline = cache.get(program, config, model, verify=False)
        # forge legacy-format entries the way pre-strategy code keyed them
        legacy_identity = (id(program), config, _latency_table_key(model))
        legacy_content = (fingerprint_program(program),
                          fingerprint_config(config),
                          _latency_table_key(model))
        cache._by_identity[legacy_identity] = baseline
        cache._by_content[legacy_content] = baseline
        misses_before = cache.stats.misses
        modulo = cache.get(program, config, model, verify=False,
                           strategy="modulo")
        assert cache.stats.misses == misses_before + 1
        assert modulo is not baseline
        assert all(modulo.schedules[key] is not baseline.schedules[key]
                   for key in baseline.schedules)

    def test_cache_keys_are_per_strategy(self, tiny_suite):
        config = get_config("vliw-2w")
        model = LatencyModel()
        program = tiny_suite["fir_bank"].program_for(config)
        cache = CompileCache()
        compiled = {s: cache.get(program, config, model, verify=False,
                                 strategy=s) for s in STRATEGIES}
        assert len({id(c) for c in compiled.values()}) == len(STRATEGIES)
        # second lookups all hit
        hits_before = cache.stats.hits
        for s in STRATEGIES:
            assert cache.get(program, config, model, verify=False,
                             strategy=s) is compiled[s]
        assert cache.stats.hits == hits_before + len(STRATEGIES)

    def test_run_fingerprint_separates_strategies(self, tiny_suite):
        config = get_config("vliw-2w")
        program = tiny_suite["gsm_enc"].program_for(config)
        prints = {run_fingerprint(program, config, strategy=s)
                  for s in STRATEGIES}
        assert len(prints) == len(STRATEGIES)
        assert run_fingerprint(program, config) \
            == run_fingerprint(program, config, strategy="baseline")


# ---------------------------------------------------------------------------
# The fuzz lane under strategies
# ---------------------------------------------------------------------------

class TestFuzzLane:

    def test_fuzz_sweep_all_strategies_clean(self):
        from repro.fuzz import run_fuzz
        result = run_fuzz(6, strategies=strategy_names())
        assert result.ok, result.mismatches
        assert result.comparisons \
            == 6 * 3 * 2 * len(strategy_names())  # flavors x modes x strategies

    def test_injected_functional_divergence_is_caught(self, tmp_path):
        """A strategy that alters the work performed must fail the oracle."""
        from repro.compiler.strategies import (_REGISTRY, PackedStrategy,
                                               register_strategy)
        from repro.fuzz import compare_spec

        class DroppingStrategy(PackedStrategy):
            """Packs, then silently drops the last segment's schedule work."""
            name = "dropping"
            transforms_program = True  # keep it out of the content cache

            def compile(self, program, config, latency_model):
                import copy
                pruned = copy.deepcopy(program)
                for segment, _ in pruned.walk_segments():
                    if segment.operations:
                        del segment.operations[-1]
                        break
                return super().compile(pruned, config, latency_model)

        register_strategy(DroppingStrategy())
        try:
            spec = generate_spec(params_for_seed(0, "tiny"))
            detail = compare_spec(spec, ISAFlavor.SCALAR, "vliw-2w",
                                  strategy="dropping")
            assert detail is not None
        finally:
            _REGISTRY.pop("dropping", None)

    def test_reproducer_roundtrips_the_strategy(self, tmp_path):
        from repro.fuzz import load_reproducer, write_reproducer
        spec = generate_spec(params_for_seed(3, "tiny"))
        path = write_reproducer(tmp_path, spec=spec, flavor=ISAFlavor.SCALAR,
                                config="vliw-2w", perfect=False, seed=3,
                                detail="synthetic", strategy="modulo")
        data = load_reproducer(path)
        assert data["strategy"] == "modulo"
        # pre-strategy files (no key) default to baseline
        baseline_path = write_reproducer(tmp_path, spec=spec,
                                         flavor=ISAFlavor.SCALAR,
                                         config="vliw-2w", perfect=False,
                                         seed=3, detail="synthetic")
        assert load_reproducer(baseline_path)["strategy"] == "baseline"


# ---------------------------------------------------------------------------
# Golden per-strategy report locks
# ---------------------------------------------------------------------------

class TestStrategyReportLocks:
    """Byte-locks on the tiny report rendered under each strategy.

    The baseline hash is locked in ``tests/test_experiments.py`` (and must
    never move when strategies change); these pin the other three.  To
    regenerate after an intentional scheduling change::

        PYTHONPATH=src python -c "import hashlib; \\
          from repro.experiments.report import full_report; \\
          from repro.experiments.evaluation import SuiteEvaluation; \\
          from repro.workloads.suite import SuiteParameters; \\
          print(hashlib.sha256(full_report(SuiteEvaluation( \\
            parameters=SuiteParameters.tiny(), store=None, \\
            strategy='modulo')).encode()).hexdigest())"

    and bump ``repro.sim.stats.STATS_SCHEMA_VERSION``.
    """

    STRATEGY_REPORT_SHA256 = {
        "packed":
            "3fbc7f8ae97c3406a6b18a2d1d49ecfa82f56441c923b95c1ab1e8c25205810a",
        "unroll":
            "e1b1696bf2e64f4a463f4148dc6910c9a37b3dde621aab5b0fe06e68e1f3cf83",
        "modulo":
            "3b28cf66b4e8d51ad512f463a94ab797722e363db5dd26d8d959a6228ec3dd8f",
    }

    @pytest.mark.parametrize("strategy", sorted(STRATEGY_REPORT_SHA256))
    def test_tiny_report_is_byte_locked(self, tiny_parameters, strategy):
        from repro.experiments.evaluation import SuiteEvaluation
        from repro.experiments.report import full_report

        evaluation = SuiteEvaluation(parameters=tiny_parameters, store=None,
                                     strategy=strategy)
        digest = hashlib.sha256(
            full_report(evaluation).encode()).hexdigest()
        assert digest == self.STRATEGY_REPORT_SHA256[strategy], (
            f"the {strategy} tiny report changed; if intentional, update "
            "STRATEGY_REPORT_SHA256 and bump STATS_SCHEMA_VERSION")


# ---------------------------------------------------------------------------
# Full-size simulated differential (slow lane)
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestFullSizeDifferential:
    """Default-size simulated runs under every strategy (slow lane only)."""

    @pytest.mark.parametrize("name", ("gsm_enc", "jpeg_enc"))
    def test_full_size_strategies_functionally_equivalent(self, name):
        config = get_config("vliw-2w")
        suite = build_suite(SuiteParameters.default(), names=[name])
        program = suite[name].program_for(config)
        baseline = None
        for strategy in STRATEGIES:
            compiled = compile_cached(program, config, strategy=strategy)
            assert not verify_compiled(compiled, benchmark=name).has_errors
            traced = _run(compiled, "trace")
            interpreted = _run(compiled, "interpreter")
            assert traced.to_dict() == interpreted.to_dict()
            if strategy == "baseline":
                baseline = traced
            else:
                assert _functional(traced) == _functional(baseline)
                assert traced.total_cycles <= baseline.total_cycles
