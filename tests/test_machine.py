"""Tests for the machine configurations, latency model and reservation tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.operations import Opcode
from repro.machine.config import (ArchitectureFamily, MachineConfig, MemoryConfig,
                                  PAPER_CONFIGS, PAPER_CONFIG_ORDER, baseline_config,
                                  get_config, usimd_configs, vector_configs, vliw_configs)
from repro.machine.latency import DEFAULT_FLOW_LATENCIES, LatencyDescriptor, LatencyModel
from repro.machine.resources import (ReservationTable, ResourceKind, ResourceRequest,
                                     UnschedulableOperationError, capacities_for,
                                     requests_for)


class TestConfigurations:
    def test_all_ten_configs_present(self):
        assert len(PAPER_CONFIGS) == 10
        assert set(PAPER_CONFIG_ORDER) == set(PAPER_CONFIGS)

    @pytest.mark.parametrize("name,issue,int_units,simd_units,vector_units,l1_ports", [
        ("vliw-2w", 2, 2, 0, 0, 1),
        ("vliw-4w", 4, 4, 0, 0, 2),
        ("vliw-8w", 8, 8, 0, 0, 3),
        ("usimd-2w", 2, 2, 2, 0, 1),
        ("usimd-4w", 4, 4, 4, 0, 2),
        ("usimd-8w", 8, 8, 8, 0, 3),
        ("vector1-2w", 2, 2, 0, 1, 1),
        ("vector1-4w", 4, 4, 0, 2, 1),
        ("vector2-2w", 2, 2, 0, 2, 1),
        ("vector2-4w", 4, 4, 0, 4, 2),
    ])
    def test_table2_resources(self, name, issue, int_units, simd_units,
                              vector_units, l1_ports):
        config = get_config(name)
        assert config.issue_width == issue
        assert config.int_units == int_units
        assert config.simd_units == simd_units
        assert config.vector_units == vector_units
        assert config.l1_ports == l1_ports

    def test_table2_register_files(self):
        assert get_config("vliw-8w").int_regs == 128
        assert get_config("usimd-4w").simd_regs == 96
        assert get_config("vector1-2w").vector_regs == 20
        assert get_config("vector2-4w").vector_regs == 32
        assert get_config("vector2-4w").accum_regs == 6

    def test_vector_configs_have_wide_l2_port(self):
        for config in vector_configs():
            assert config.l2_ports == 1
            assert config.l2_port_words == 4
            assert config.vector_lanes == 4

    def test_family_capabilities(self):
        assert not get_config("vliw-2w").has_usimd
        assert get_config("usimd-2w").has_usimd
        assert not get_config("usimd-2w").has_vector
        assert get_config("vector1-4w").has_vector

    def test_unknown_config_raises(self):
        with pytest.raises(KeyError):
            get_config("superscalar-4w")

    def test_baseline_is_2wide_vliw(self):
        assert baseline_config().name == "vliw-2w"

    def test_family_groupings(self):
        assert [c.issue_width for c in vliw_configs()] == [2, 4, 8]
        assert [c.issue_width for c in usimd_configs()] == [2, 4, 8]
        assert len(vector_configs()) == 4

    def test_memory_defaults_match_paper(self):
        memory = MemoryConfig()
        assert memory.l1_size == 16 * 1024
        assert memory.l2_size == 256 * 1024
        assert memory.l3_size == 1024 * 1024
        assert (memory.l1_latency, memory.l2_latency,
                memory.l3_latency, memory.memory_latency) == (1, 5, 12, 500)
        assert memory.l2_banks == 2

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(name="bad", family=ArchitectureFamily.VECTOR1,
                          issue_width=2, int_units=2, vector_units=0, l2_ports=1)
        with pytest.raises(ValueError):
            MachineConfig(name="bad", family=ArchitectureFamily.VLIW,
                          issue_width=0, int_units=2)
        with pytest.raises(ValueError):
            MachineConfig(name="bad", family=ArchitectureFamily.VLIW,
                          issue_width=2, int_units=2, simd_units=2)

    def test_peak_micro_ops(self):
        assert get_config("vliw-2w").peak_micro_ops_per_cycle() == 2
        assert get_config("usimd-2w").peak_micro_ops_per_cycle() == 2 + 2 * 8
        assert get_config("vector2-2w").peak_micro_ops_per_cycle() == 2 + 2 * 4 * 8

    def test_register_files_mapping(self):
        files = get_config("vector2-2w").register_files()
        from repro.isa.registers import RegisterClass
        assert files[RegisterClass.VECTOR].words_per_register == 16
        assert files[RegisterClass.ACCUM].width_bits == 192

    def test_with_memory_replaces_only_memory(self):
        config = get_config("vliw-2w")
        other = config.with_memory(MemoryConfig(memory_latency=100))
        assert other.memory.memory_latency == 100
        assert other.issue_width == config.issue_width


class TestLatencyModel:
    def test_scalar_descriptor(self, latency_model, vector2_2w):
        d = latency_model.descriptor(Opcode.ADD, 1, vector2_2w)
        assert (d.earliest_read, d.latest_read, d.earliest_write) == (0, 0, 0)
        assert d.latest_write == 1

    @pytest.mark.parametrize("vl,expected_tail", [(1, 0), (4, 1), (5, 1), (8, 2),
                                                  (13, 3), (16, 4)])
    def test_vector_alu_descriptor_formula(self, latency_model, vector2_2w, vl, expected_tail):
        d = latency_model.descriptor(Opcode.VADDW, vl, vector2_2w)
        assert d.latest_read == expected_tail
        assert d.latest_write == DEFAULT_FLOW_LATENCIES["vector_alu"] + expected_tail

    def test_vector_memory_descriptor_uses_port_width(self, latency_model, vector2_2w):
        d = latency_model.descriptor(Opcode.VLOAD, 8, vector2_2w)
        # 5-cycle vector cache + ceil((8-1)/4) extra
        assert d.latest_write == 5 + 2

    def test_occupancy_vector_compute(self, latency_model, vector2_2w):
        assert latency_model.occupancy(Opcode.VADDW, 16, vector2_2w) == 4
        assert latency_model.occupancy(Opcode.VADDW, 4, vector2_2w) == 1

    def test_occupancy_vector_memory_stride(self, latency_model, vector2_2w):
        assert latency_model.occupancy(Opcode.VLOAD, 16, vector2_2w, stride_one=True) == 4
        assert latency_model.occupancy(Opcode.VLOAD, 16, vector2_2w, stride_one=False) == 16

    def test_occupancy_scalar_is_one(self, latency_model, vliw_2w):
        assert latency_model.occupancy(Opcode.MUL, 1, vliw_2w) == 1

    def test_chain_latency_is_flow_latency(self, latency_model, vector2_2w):
        assert latency_model.chain_latency(Opcode.VLOAD, vector2_2w) == 5
        assert latency_model.chain_latency(Opcode.VADDW, vector2_2w) == 2

    def test_overrides(self, vector2_2w):
        model = LatencyModel().with_overrides(vector_load=9)
        assert model.flow_latency(Opcode.VLOAD, vector2_2w) == 9
        with pytest.raises(KeyError):
            LatencyModel().with_overrides(nonexistent=3)

    def test_descriptor_validation(self):
        with pytest.raises(ValueError):
            LatencyDescriptor(0, -1, 0, 3)
        with pytest.raises(ValueError):
            LatencyDescriptor(0, 0, 2, 1)

    @given(st.integers(min_value=1, max_value=16))
    @settings(max_examples=20)
    def test_descriptor_monotone_in_vl(self, vl):
        model = LatencyModel()
        config = get_config("vector2-2w")
        small = model.descriptor(Opcode.VADDW, vl, config).latest_write
        larger = model.descriptor(Opcode.VADDW, min(16, vl + 1), config).latest_write
        assert larger >= small


class TestResources:
    def test_capacities(self, vector2_2w):
        caps = capacities_for(vector2_2w)
        assert caps[ResourceKind.ISSUE] == 2
        assert caps[ResourceKind.VECTOR_UNIT] == 2
        assert caps[ResourceKind.L2_PORT] == 1

    def test_requests_scalar_alu(self, vliw_2w, latency_model):
        kinds = {r.kind for r in requests_for(Opcode.ADD, 1, vliw_2w, latency_model)}
        assert kinds == {ResourceKind.ISSUE, ResourceKind.INT_UNIT}

    def test_requests_memory(self, vliw_2w, latency_model):
        kinds = {r.kind for r in requests_for(Opcode.LOAD, 1, vliw_2w, latency_model)}
        assert kinds == {ResourceKind.ISSUE, ResourceKind.L1_PORT}

    def test_requests_simd_on_usimd_machine(self, usimd_2w, latency_model):
        kinds = {r.kind for r in requests_for(Opcode.PADDB, 1, usimd_2w, latency_model)}
        assert ResourceKind.SIMD_UNIT in kinds

    def test_requests_simd_on_vector_machine_uses_vector_unit(self, vector2_2w, latency_model):
        kinds = {r.kind for r in requests_for(Opcode.PADDB, 1, vector2_2w, latency_model)}
        assert ResourceKind.VECTOR_UNIT in kinds

    def test_requests_vector_occupancy(self, vector2_2w, latency_model):
        requests = requests_for(Opcode.VADDW, 16, vector2_2w, latency_model)
        vector_request = next(r for r in requests if r.kind is ResourceKind.VECTOR_UNIT)
        assert vector_request.duration == 4

    def test_simd_on_plain_vliw_rejected(self, vliw_2w, latency_model):
        with pytest.raises(UnschedulableOperationError):
            requests_for(Opcode.PADDB, 1, vliw_2w, latency_model)

    def test_vector_on_usimd_rejected(self, usimd_2w, latency_model):
        with pytest.raises(UnschedulableOperationError):
            requests_for(Opcode.VLOAD, 8, usimd_2w, latency_model)

    def test_reservation_table_fits_and_reserves(self, vector2_2w):
        table = ReservationTable(capacities_for(vector2_2w))
        request = [ResourceRequest(ResourceKind.ISSUE, 1), ResourceRequest(ResourceKind.INT_UNIT, 1)]
        assert table.fits(0, request)
        table.reserve(0, request)
        table.reserve(0, request)  # two issue slots, two int units
        assert not table.fits(0, request)
        assert table.earliest_fit(0, request) == 1

    def test_reservation_table_duration(self, vector2_2w):
        table = ReservationTable(capacities_for(vector2_2w))
        long_request = [ResourceRequest(ResourceKind.L2_PORT, duration=4)]
        table.reserve(0, long_request)
        assert table.earliest_fit(0, long_request) == 4

    def test_reservation_table_zero_capacity(self, vliw_2w):
        table = ReservationTable(capacities_for(vliw_2w))
        with pytest.raises(UnschedulableOperationError):
            table.earliest_fit(0, [ResourceRequest(ResourceKind.VECTOR_UNIT, 1)])

    def test_reserve_without_fit_raises(self, vliw_2w):
        table = ReservationTable(capacities_for(vliw_2w))
        request = [ResourceRequest(ResourceKind.ISSUE, 1)]
        table.reserve(0, request)
        table.reserve(0, request)
        with pytest.raises(ValueError):
            table.reserve(0, request)

    def test_high_water_mark(self, vector2_2w):
        table = ReservationTable(capacities_for(vector2_2w))
        table.reserve(3, [ResourceRequest(ResourceKind.ISSUE, 1)])
        assert table.high_water_mark()[ResourceKind.ISSUE] == 1

    def test_resource_request_validation(self):
        with pytest.raises(ValueError):
            ResourceRequest(ResourceKind.ISSUE, duration=0)
        with pytest.raises(ValueError):
            ResourceRequest(ResourceKind.ISSUE, count=0)
