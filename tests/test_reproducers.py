"""Replay checked-in fuzz reproducers as permanent regression cases.

When ``python -m repro fuzz`` finds and shrinks an engine divergence, the
minimized reproducer file gets checked in under ``tests/reproducers/``
(see that directory's README).  Every file there replays here: the two
execution tiers must agree on it field for field — forever.  The
directory ships empty except for its README; the parametrization is
empty-safe.
"""

from pathlib import Path

import pytest

from repro.fuzz import check_reproducer

REPRODUCER_DIR = Path(__file__).resolve().parent / "reproducers"
REPRODUCER_FILES = sorted(REPRODUCER_DIR.glob("*.json"))


def test_reproducer_directory_exists():
    """Keeps this module meaningful (and collectable) when no finds are
    checked in yet."""
    assert REPRODUCER_DIR.is_dir()
    assert (REPRODUCER_DIR / "README.md").is_file()


@pytest.mark.parametrize("path", REPRODUCER_FILES,
                         ids=lambda p: p.name)
def test_reproducer_replays_clean(path):
    detail = check_reproducer(path)
    assert detail is None, (
        f"{path.name}: the engines diverge again on a previously fixed "
        f"reproducer — {detail}")
