"""IR lints (REP1xx) and memory-footprint lints (REP3xx).

These checks look at a :class:`KernelProgram` before (or independently of)
scheduling:

* **REP101** — a memory address references a loop variable no enclosing
  loop binds, so the affine trace lowering (and the simulator's address
  generation) cannot evaluate it;
* **REP102** — a register is written twice with no intervening read and is
  never read anywhere in the program: the earlier write is dead.  Values
  that are written once and never read are *not* flagged — the builders
  deliberately emit independent filler operations;
* **REP103** — a vector operation consumes more elements than the
  in-segment producer of its vector register wrote (a remainder-handling
  bug: the consumer would read stale lane contents);
* **REP104** — a loop has a zero trip count (informational: the body is
  dead, which synthetic shrinking produces legitimately);
* **REP106** — a vector length exceeds the architectural maximum or the
  configured vector register size;
* **REP301** — a store and another memory access of the same segment can
  touch the same element address *in the same iteration* of the enclosing
  nest, yet the structural alias test draws no ordering edge between them.
  Derived from the affine address lattices: the difference of two affine
  addresses is affine, so its value range over the nest decides whether
  the two access footprints can meet;
* **REP302** — a memory access can fall below byte address zero somewhere
  in the nest (an off-by-one in an address expression).
"""

from __future__ import annotations

from dataclasses import replace
from math import gcd
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, SourceLocation, diag
from repro.compiler.ir import (
    AddressExpr,
    KernelProgram,
    LoopNode,
    Operation,
)
from repro.isa.operations import MAX_VECTOR_LENGTH
from repro.isa.registers import RegisterClass
from repro.machine.config import MachineConfig

__all__ = ["lint_program"]


def _loop_nodes(nodes) -> List[LoopNode]:
    """Every loop node in the program tree, in program order."""
    found: List[LoopNode] = []
    for node in nodes:
        if isinstance(node, LoopNode):
            found.append(node)
            found.extend(_loop_nodes(node.body))
    return found


def _unbound_vars(address: AddressExpr, bound: Set[int]) -> List[str]:
    return sorted(var.name for var, coef in address.terms
                  if coef and var.ident not in bound)


# -- affine footprints -------------------------------------------------------

def _access_extent(op: Operation) -> Tuple[int, int]:
    """Element-address extent ``[lo, hi)`` relative to the base address.

    The lattice works at *element address* granularity — each access
    contributes its element start addresses, not padded byte ranges —
    because that is what the cache model consumes, and because the kernels
    legitimately interleave sub-word data at spacings narrower than the
    64-bit machine word (e.g. packed 16-bit DCT coefficients 2 bytes
    apart): byte-extent overlap would drown the lint in false positives.
    """
    if op.is_vector_memory:
        vl = max(1, int(op.vector_length))
        span = op.stride_bytes * (vl - 1)
        return min(0, span), max(0, span) + 1
    return 0, 1


def _offset_range(address: AddressExpr,
                  trips: Dict[int, int]) -> Tuple[int, int]:
    """Range of the variable part of ``address`` over the loop nest.

    Every loop variable spans ``[0, trip - 1]``; the address's variable
    part is a sum of independent terms, so its range is the sum of the
    per-term ranges.  Wrapped (data-dependent) addresses span the whole
    table ``[0, wrap - 1]`` by construction.
    """
    if address.wrap_bytes:
        return 0, address.wrap_bytes - 1
    lo = hi = 0
    for var, coef in address.terms:
        reach = coef * (trips[var.ident] - 1)
        lo += min(0, reach)
        hi += max(0, reach)
    return lo, hi


def _same_iteration_overlap(store: Operation, other: Operation,
                            trips: Dict[int, int]) -> bool:
    """Can the two accesses touch the same byte with identical loop indices?

    The difference ``store.address - other.address`` is itself affine over
    the nest; interval arithmetic gives its value range, and the footprints
    meet iff some difference value puts the two byte extents in contact.
    Wrapped addresses are not affine — fall back to a whole-nest footprint
    intersection, which is conservative but only reached for accesses into
    *different* tables (same-table pairs already alias structurally).
    """
    a, b = store.address, other.address
    assert a is not None and b is not None
    a_lo, a_hi = _access_extent(store)
    b_lo, b_hi = _access_extent(other)
    if a.wrap_bytes or b.wrap_bytes:
        a_off = _offset_range(a, trips)
        b_off = _offset_range(b, trips)
        a_span = (a.base + a_off[0] + a_lo, a.base + a_off[1] + a_hi - 1)
        b_span = (b.base + b_off[0] + b_lo, b.base + b_off[1] + b_hi - 1)
        return a_span[0] <= b_span[1] and b_span[0] <= a_span[1]
    coefs: Dict[int, int] = {}
    for var, coef in a.terms:
        coefs[var.ident] = coefs.get(var.ident, 0) + coef
    for var, coef in b.terms:
        coefs[var.ident] = coefs.get(var.ident, 0) - coef
    diff_lo = diff_hi = a.base - b.base
    for ident, coef in coefs.items():
        reach = coef * (trips[ident] - 1)
        diff_lo += min(0, reach)
        diff_hi += max(0, reach)
    # interval test: exists d in [diff_lo, diff_hi] with
    #   d + a_lo <= b_hi - 1  and  d + a_hi - 1 >= b_lo
    if not (diff_lo + a_lo <= b_hi - 1 and diff_hi + a_hi - 1 >= b_lo):
        return False
    # lattice test: every achievable address difference has the form
    #   (base_a - base_b) + sum(coef_i * n_i) + stride_a*k_a - stride_b*k_b
    # so a collision (difference zero) requires the constant part to be
    # divisible by the gcd of the generators.  This separates interleaved
    # strided streams (e.g. two VL=16/stride-32 stores offset by 8 bytes)
    # that the interval test alone cannot tell apart.
    generators: List[int] = [coef for ident, coef in coefs.items()
                             if coef and trips[ident] > 1]
    for op in (store, other):
        if op.is_vector_memory and op.vector_length > 1 and op.stride_bytes:
            generators.append(op.stride_bytes)
    if generators:
        lattice = 0
        for generator in generators:
            lattice = gcd(lattice, generator)
        return (a.base - b.base) % lattice == 0
    return True


def _addresses_structurally_equal(a: AddressExpr, b: AddressExpr) -> bool:
    if a.base != b.base or a.wrap_bytes != b.wrap_bytes:
        return False
    return (sorted((var.ident, coef) for var, coef in a.terms)
            == sorted((var.ident, coef) for var, coef in b.terms))


def _has_alias_edge(a: Operation, b: Operation) -> bool:
    """Would the dependence rules draw a memory edge between these two?"""
    assert a.address is not None and b.address is not None
    if _addresses_structurally_equal(a.address, b.address):
        return True
    return bool(a.address.wrap_bytes and b.address.wrap_bytes
                and a.address.base == b.address.base)


# -- the linter --------------------------------------------------------------

def lint_program(program: KernelProgram,
                 config: Optional[MachineConfig] = None,
                 location: Optional[SourceLocation] = None,
                 ) -> List[Diagnostic]:
    """Lint ``program``; return every REP1xx/REP3xx finding.

    ``config`` sharpens the vector-length bound (REP106) when given; all
    other checks are configuration-independent.
    """
    base = location or SourceLocation()
    if not base.program:
        base = replace(base, program=program.name,
                       flavor=program.flavor.value)
    findings: List[Diagnostic] = []

    # REP104: zero-trip loops anywhere in the tree
    for loop in _loop_nodes(program.body):
        if loop.trip_count == 0:
            findings.append(diag(
                "REP104",
                f"loop {loop.var.name!r} in region {loop.region} has a zero "
                f"trip count; its body never executes",
                replace(base, region=loop.region)))

    # program-wide register read/write census for REP102
    read_anywhere: Set[int] = set()
    for segment, _ in program.walk_segments():
        for op in segment.operations:
            for src in op.srcs:
                read_anywhere.add(src.ident)

    vl_limit = MAX_VECTOR_LENGTH
    if config is not None and config.vector_reg_words:
        vl_limit = min(vl_limit, config.vector_reg_words)

    for seg_index, (segment, loops) in enumerate(program.walk_segments()):
        bound = {loop.var.ident for loop in loops}
        trips = {loop.var.ident: loop.trip_count for loop in loops}
        dead_nest = any(loop.trip_count == 0 for loop in loops)
        at = lambda i=None, opcode="", seg=segment: replace(  # noqa: E731
            base, region=seg.region, segment=seg_index,
            operation=i, opcode=opcode)

        last_write: Dict[int, Tuple[int, Operation]] = {}
        vector_producer_vl: Dict[int, Tuple[int, int]] = {}  # reg -> (index, VL)
        addressable: List[Tuple[int, Operation]] = []  # fully-bound memory ops

        for index, op in enumerate(segment.operations):
            # REP101: unbound loop variables in the address
            if op.address is not None:
                missing = _unbound_vars(op.address, bound)
                if missing:
                    findings.append(diag(
                        "REP101",
                        f"address of {op.opcode} references loop variables "
                        f"{missing} not bound by an enclosing loop",
                        at(index, op.opcode)))
                else:
                    addressable.append((index, op))

            # REP102: dead earlier writes of never-read registers
            for src in op.srcs:
                last_write.pop(src.ident, None)
            for dest in op.dests:
                previous = last_write.get(dest.ident)
                if previous is not None and dest.ident not in read_anywhere:
                    prev_index, prev_op = previous
                    findings.append(diag(
                        "REP102",
                        f"{prev_op.opcode} writes {dest.name or dest.ident} "
                        f"at operation {prev_index} but the value is "
                        f"overwritten at operation {index} and never read",
                        at(prev_index, prev_op.opcode)))
                last_write[dest.ident] = (index, op)

            # REP103 / REP106: vector-length consistency
            if op.is_vector:
                vl = max(1, int(op.vector_length))
                if vl > vl_limit:
                    findings.append(diag(
                        "REP106",
                        f"{op.opcode} uses VL={vl} but the "
                        f"{'configured register size' if config else 'architectural maximum'} "
                        f"is {vl_limit}", at(index, op.opcode)))
                for src in op.srcs:
                    if src.reg_class is not RegisterClass.VECTOR:
                        continue
                    producer = vector_producer_vl.get(src.ident)
                    if producer is not None and vl > producer[1]:
                        findings.append(diag(
                            "REP103",
                            f"{op.opcode} reads {vl} elements of "
                            f"{src.name or src.ident} but its producer at "
                            f"operation {producer[0]} wrote only "
                            f"{producer[1]}", at(index, op.opcode)))
                for dest in op.dests:
                    if dest.reg_class is RegisterClass.VECTOR:
                        vector_producer_vl[dest.ident] = (index, vl)
            else:
                # a scalar write to a vector register resets our knowledge
                for dest in op.dests:
                    vector_producer_vl.pop(dest.ident, None)

        # REP301 / REP302: affine footprint checks (skip dead nests — their
        # accesses never execute, and zero trips break the interval math)
        if dead_nest:
            continue
        for index, op in addressable:
            assert op.address is not None
            off_lo, _ = _offset_range(op.address, trips)
            ext_lo, _ = _access_extent(op)
            if op.address.base + off_lo + ext_lo < 0:
                findings.append(diag(
                    "REP302",
                    f"{op.opcode} can reach byte address "
                    f"{op.address.base + off_lo + ext_lo} (< 0) inside the "
                    f"nest", at(index, op.opcode)))
        for i in range(len(addressable)):
            for j in range(i + 1, len(addressable)):
                index_a, op_a = addressable[i]
                index_b, op_b = addressable[j]
                if not (op_a.is_store or op_b.is_store):
                    continue
                if _has_alias_edge(op_a, op_b):
                    continue
                store, other = (op_a, op_b) if op_a.is_store else (op_b, op_a)
                if _same_iteration_overlap(store, other, trips):
                    findings.append(diag(
                        "REP301",
                        f"{op_a.opcode} (operation {index_a}) and "
                        f"{op_b.opcode} (operation {index_b}) may touch the "
                        f"same address in one iteration but carry no "
                        f"ordering edge", at(index_b, op_b.opcode)))
    return findings
