"""Schedule verification (REP2xx): check a ``Schedule`` against the spec.

Given a schedule, the target configuration and the latency model, this
module answers "is this timing actually legal?" without trusting anything
the scheduler recorded along the way:

* dependences come from :mod:`repro.analysis.depgraph` (an independent
  reconstruction, not the scheduler's adjacency);
* per-cycle resource usage is re-tallied from operation classes and
  :meth:`MachineConfig.resource_capacities` — the scheduler's
  ``ReservationTable`` is never consulted;
* the recorded per-entry metadata (``assumed_latency``, ``occupancy``) is
  cross-checked against :class:`LatencyModel`, because the simulator
  charges stalls from those numbers — a schedule with legal cycles but
  wrong metadata still corrupts results.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.analysis.depgraph import carried_recurrence_bound, reconstruct_edges
from repro.analysis.diagnostics import Diagnostic, SourceLocation, diag
from repro.compiler.ir import Operation
from repro.compiler.scheduler import Schedule
from repro.isa.operations import OpClass
from repro.machine.config import MachineConfig
from repro.machine.latency import LatencyModel

__all__ = ["check_schedule"]

#: Human-readable resource names for REP202 messages.
_RESOURCE_TITLES: Dict[str, str] = {
    "issue": "issue slots",
    "int_unit": "integer units",
    "simd_unit": "µSIMD units",
    "vector_unit": "vector units",
    "l1_port": "L1 cache ports",
    "l2_port": "L2 vector-cache ports",
}


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _unit_demand(op: Operation, config: MachineConfig,
                 ) -> Tuple[Optional[Tuple[str, int]], Optional[str]]:
    """Functional-unit/port demand of ``op`` beyond its issue slot.

    Returns ``((resource name, busy cycles), None)`` on success or
    ``(None, reason)`` when the operation cannot execute on ``config`` at
    all (REP207).  Re-derives the classification from the operation class
    and the raw configuration fields — deliberately not calling
    ``repro.machine.resources.requests_for``.
    """
    cls = op.op_class
    vl = max(1, int(op.vector_length))
    if cls in (OpClass.INT_ALU, OpClass.INT_MUL, OpClass.BRANCH,
               OpClass.VECTOR_SETUP):
        return ("int_unit", 1), None
    if cls is OpClass.NOP:
        return None, None
    if cls in (OpClass.LOAD, OpClass.STORE):
        if config.l1_ports < 1:
            return None, f"{op.opcode} needs an L1 port but {config.name} has none"
        return ("l1_port", 1), None
    if cls.is_simd:
        if config.simd_units:
            return ("simd_unit", 1), None
        if config.vector_units:
            # vector ISA is a superset of µSIMD: packed ops run VL=1 on a
            # vector unit
            return ("vector_unit", 1), None
        return None, (f"µSIMD operation {op.opcode} needs a µSIMD or vector "
                      f"unit but {config.name} has neither")
    if cls.is_vector:
        if not config.vector_units:
            return None, (f"vector operation {op.opcode} needs a vector unit "
                          f"but {config.name} has none")
        return ("vector_unit", _ceil_div(vl, max(1, config.vector_lanes))), None
    if cls.is_vector_memory:
        if not config.l2_ports:
            return None, (f"vector memory operation {op.opcode} needs an L2 "
                          f"vector-cache port but {config.name} has none")
        return ("l2_port", _ceil_div(vl, max(1, config.l2_port_words))), None
    return None, f"unhandled operation class {cls} for {op.opcode}"


def check_schedule(schedule: Schedule, config: MachineConfig,
                   latency_model: LatencyModel,
                   location: Optional[SourceLocation] = None,
                   ) -> List[Diagnostic]:
    """Verify one segment schedule; return every REP2xx finding."""
    base = location or SourceLocation()
    findings: List[Diagnostic] = []
    segment = schedule.segment
    seg_ops = list(segment.operations)

    def at(index: Optional[int] = None, opcode: str = "",
           cycle: Optional[int] = None) -> SourceLocation:
        return replace(base, region=segment.region or base.region,
                       operation=index, opcode=opcode, cycle=cycle)

    # --- REP203: the entries must cover the segment exactly -----------------
    index_of = {id(op): i for i, op in enumerate(seg_ops)}
    covered: Dict[int, int] = {}
    mismatched = False
    for entry in schedule.entries:
        op_id = id(entry.operation)
        index = index_of.get(op_id)
        if index is None:
            findings.append(diag(
                "REP203",
                f"scheduled operation {entry.operation.opcode} is not part of "
                f"the segment it claims to schedule",
                at(opcode=entry.operation.opcode, cycle=entry.cycle)))
            mismatched = True
        elif index in covered:
            findings.append(diag(
                "REP203",
                f"operation {index} ({entry.operation.opcode}) appears "
                f"{covered[index] + 1} times in the schedule",
                at(index, entry.operation.opcode)))
            covered[index] += 1
            mismatched = True
        else:
            covered[index] = 1
    missing = [i for i in range(len(seg_ops)) if i not in covered]
    if missing:
        names = ", ".join(f"{i}({seg_ops[i].opcode})" for i in missing[:4])
        suffix = "..." if len(missing) > 4 else ""
        findings.append(diag(
            "REP203",
            f"{len(missing)} segment operation(s) have no schedule entry: "
            f"{names}{suffix}", at()))
        mismatched = True
    if mismatched:
        # the index mapping below would be meaningless
        return findings

    cycles: Dict[int, int] = {index_of[id(e.operation)]: e.cycle
                              for e in schedule.entries}

    # --- per-entry checks: REP208 / REP204 / REP205 / REP207 ----------------
    demands: Dict[int, Optional[Tuple[str, int]]] = {}
    for entry in schedule.entries:
        op = entry.operation
        index = index_of[id(op)]
        if entry.cycle < 0:
            findings.append(diag(
                "REP208",
                f"operation {index} ({op.opcode}) issued at cycle "
                f"{entry.cycle}", at(index, op.opcode, entry.cycle)))
        expected_latency = latency_model.result_latency(
            op.opcode, op.vector_length, config)
        if entry.assumed_latency != expected_latency:
            findings.append(diag(
                "REP204",
                f"operation {index} ({op.opcode}, VL={op.vector_length}) "
                f"records assumed latency {entry.assumed_latency} but the "
                f"latency model says {expected_latency}",
                at(index, op.opcode, entry.cycle)))
        expected_occupancy = latency_model.occupancy(
            op.opcode, op.vector_length, config)
        if entry.occupancy != expected_occupancy:
            findings.append(diag(
                "REP205",
                f"operation {index} ({op.opcode}, VL={op.vector_length}) "
                f"records occupancy {entry.occupancy} but the latency model "
                f"says {expected_occupancy}",
                at(index, op.opcode, entry.cycle)))
        demand, reason = _unit_demand(op, config)
        demands[index] = demand
        if reason is not None:
            findings.append(diag("REP207", reason,
                                 at(index, op.opcode, entry.cycle)))

    # --- REP201: every reconstructed dependence edge must be honoured -------
    for edge in reconstruct_edges(segment, config, latency_model):
        gap = cycles[edge.consumer] - cycles[edge.producer]
        if gap < edge.min_distance:
            producer_op = seg_ops[edge.producer]
            consumer_op = seg_ops[edge.consumer]
            findings.append(diag(
                "REP201",
                f"{edge.kind} dependence {edge.producer}"
                f"({producer_op.opcode}) -> {edge.consumer}"
                f"({consumer_op.opcode}) needs {edge.min_distance} cycle(s) "
                f"but the schedule allows {gap} "
                f"(cycles {cycles[edge.producer]} -> {cycles[edge.consumer]})",
                at(edge.consumer, consumer_op.opcode, cycles[edge.consumer])))

    # --- REP202: re-tally per-cycle resource usage --------------------------
    # With a software-pipelined (modulo) schedule, every in-flight iteration
    # contributes the same usage pattern shifted by a multiple of the II, so
    # steady-state usage is the flat pattern folded modulo the II.
    pipelined = schedule.pipelined_interval
    if pipelined is not None and pipelined < 1:
        findings.append(diag(
            "REP209",
            f"pipelined initiation interval {pipelined} is not positive",
            at()))
        pipelined = None

    def fold(cycle: int) -> int:
        return cycle % pipelined if pipelined is not None else cycle

    capacities = config.resource_capacities()
    usage: Dict[Tuple[str, int], int] = {}
    for entry in schedule.entries:
        index = index_of[id(entry.operation)]
        issue_key = ("issue", fold(entry.cycle))
        usage[issue_key] = usage.get(issue_key, 0) + 1
        demand = demands.get(index)
        if demand is not None:
            resource, busy = demand
            for offset in range(max(1, busy)):
                key = (resource, fold(entry.cycle + offset))
                usage[key] = usage.get(key, 0) + 1
    reported: set = set()
    for (resource, cycle), used in sorted(usage.items()):
        capacity = capacities.get(resource, 0)
        if used > capacity and (resource, cycle) not in reported:
            reported.add((resource, cycle))
            findings.append(diag(
                "REP202",
                f"{_RESOURCE_TITLES.get(resource, resource)} oversubscribed "
                f"at cycle {cycle}: {used} in use, capacity {capacity}",
                at(cycle=cycle)))

    # --- REP206: loop-carried recurrence bound ------------------------------
    bound = carried_recurrence_bound(segment, config, latency_model)
    if schedule.recurrence_interval < bound:
        findings.append(diag(
            "REP206",
            f"recurrence interval {schedule.recurrence_interval} is below "
            f"the loop-carried bound {bound}", at()))

    # --- REP209: software-pipelining contract -------------------------------
    if pipelined is not None:
        if pipelined < bound:
            findings.append(diag(
                "REP209",
                f"pipelined initiation interval {pipelined} is below the "
                f"loop-carried recurrence bound {bound}", at()))
        findings.extend(_check_carried_timing(schedule, seg_ops, cycles,
                                              pipelined, config,
                                              latency_model, at))

    return findings


def _check_carried_timing(schedule: Schedule, seg_ops: List[Operation],
                          cycles: Dict[int, int], interval: int,
                          config: MachineConfig,
                          latency_model: LatencyModel, at) -> List[Diagnostic]:
    """Cross-iteration RAW timing of a modulo schedule (REP209).

    A read of a loop-carried register's *incoming* value — one with no
    earlier write in the same iteration — consumes what the previous
    iteration's last write produced.  Overlapped iterations start
    ``interval`` cycles apart, so the write at flat cycle ``w`` with result
    latency ``L`` must satisfy ``w + L <= p + interval`` for every such
    read at flat cycle ``p``.  Derived straight from the IR and the latency
    model, independently of what the scheduler believed.
    """
    findings: List[Diagnostic] = []
    last_write: Dict[int, int] = {}
    for index, op in enumerate(seg_ops):
        for dest in op.dests:
            last_write[dest.ident] = index
    written: set = set()
    for index, op in enumerate(seg_ops):
        for src in op.srcs:
            if src.ident in written:
                continue
            writer = last_write.get(src.ident)
            if writer is None:
                continue
            latency = latency_model.result_latency(
                seg_ops[writer].opcode, seg_ops[writer].vector_length, config)
            ready = cycles[writer] + latency
            available = cycles[index] + interval
            if ready > available:
                findings.append(diag(
                    "REP209",
                    f"carried value of {src!r} is produced by operation "
                    f"{writer} ({seg_ops[writer].opcode}) at cycle "
                    f"{cycles[writer]}+{latency} but the next iteration "
                    f"reads it at cycle {cycles[index]}+II({interval})",
                    at(index, op.opcode, cycles[index])))
        for dest in op.dests:
            written.add(dest.ident)
    return findings
