"""Typed diagnostics shared by the static analyzer and the compiler.

Every finding the analyzer (or a compiler validation pass) reports is a
:class:`Diagnostic`: a stable code, a severity, a human-readable message and
a :class:`SourceLocation` that pins the finding to a benchmark / program /
segment / operation / cycle.  Codes are grouped by subsystem:

* ``REP1xx`` — IR lints (malformed or suspicious kernel programs);
* ``REP2xx`` — schedule verification (a ``Schedule`` that violates the
  dependences or resources it was built from);
* ``REP3xx`` — memory-footprint lints (overlap and range findings derived
  from the affine address lattices).

The catalog below is the single source of truth for codes and their default
severities; ``docs/analysis.md`` renders the same table for humans.  Codes
are append-only — retiring or renumbering one breaks the mutation tests and
any CI grep that keys on it.

Validation passes that *raise* instead of reporting (the builder's address
check, trace lowering) use :class:`DiagnosticError` subclasses so the
exception carries the same typed code/location payload while remaining a
``ValueError`` for existing callers.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "Severity",
    "SourceLocation",
    "Diagnostic",
    "CODE_CATALOG",
    "catalog_entry",
    "diag",
    "DiagnosticReport",
    "DiagnosticError",
    "IRValidationError",
    "ScheduleVerificationError",
]


class Severity(enum.Enum):
    """How bad a finding is.  Only errors gate CLI exit codes / ``verify=True``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class SourceLocation:
    """Where a diagnostic points.  Empty / ``None`` fields are unknown."""

    benchmark: str = ""
    program: str = ""
    flavor: str = ""
    config: str = ""
    region: str = ""
    segment: Optional[int] = None
    operation: Optional[int] = None
    opcode: str = ""
    cycle: Optional[int] = None

    def describe(self) -> str:
        """Compact ``key=value`` rendering of the known fields."""
        parts: List[str] = []
        for name in ("benchmark", "program", "flavor", "config", "region"):
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={value}")
        if self.segment is not None:
            parts.append(f"segment={self.segment}")
        if self.operation is not None:
            op = f"op={self.operation}"
            if self.opcode:
                op += f"({self.opcode})"
            parts.append(op)
        elif self.opcode:
            parts.append(f"opcode={self.opcode}")
        if self.cycle is not None:
            parts.append(f"cycle={self.cycle}")
        return " ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping of the known fields only."""
        out: Dict[str, Any] = {}
        for name in ("benchmark", "program", "flavor", "config", "region",
                     "segment", "operation", "opcode", "cycle"):
            value = getattr(self, name)
            if value or isinstance(value, int):
                out[name] = value
        return out


#: The diagnostic-code catalog: ``code -> (default severity, title)``.
#: Append-only; ``docs/analysis.md`` documents every entry.
CODE_CATALOG: Dict[str, Tuple[Severity, str]] = {
    # --- REP1xx: IR lints --------------------------------------------------
    "REP101": (Severity.ERROR,
               "memory address references a loop variable not bound by an "
               "enclosing loop"),
    "REP102": (Severity.WARNING,
               "register value is overwritten before it is ever read"),
    "REP103": (Severity.ERROR,
               "vector consumer reads more elements than its producer wrote"),
    "REP104": (Severity.INFO, "loop has a zero trip count (body never runs)"),
    "REP105": (Severity.ERROR,
               "program is outside the affine trace-lowering contract"),
    "REP106": (Severity.ERROR,
               "vector length exceeds the architectural or configured maximum"),
    # --- REP2xx: schedule verification ------------------------------------
    "REP201": (Severity.ERROR,
               "schedule violates a dependence edge (consumer issued too early)"),
    "REP202": (Severity.ERROR,
               "per-cycle resource usage exceeds the machine's capacity"),
    "REP203": (Severity.ERROR,
               "schedule entries do not cover the segment's operations"),
    "REP204": (Severity.ERROR,
               "recorded assumed latency disagrees with the latency model"),
    "REP205": (Severity.ERROR,
               "recorded occupancy disagrees with the latency model"),
    "REP206": (Severity.ERROR,
               "recurrence interval is below the loop-carried recurrence bound"),
    "REP207": (Severity.ERROR,
               "operation cannot execute on this machine configuration"),
    "REP208": (Severity.ERROR, "operation issued at a negative cycle"),
    "REP209": (Severity.ERROR,
               "software-pipelined schedule violates the pipelining contract "
               "(loop context, interval bound, or loop-carried timing)"),
    # --- REP3xx: memory-footprint lints ------------------------------------
    "REP301": (Severity.WARNING,
               "store may touch the same address as another access in the "
               "same iteration without an ordering edge"),
    "REP302": (Severity.ERROR,
               "memory access can fall below address zero inside the nest"),
}


def catalog_entry(code: str) -> Tuple[Severity, str]:
    """Severity and title of ``code`` (unknown codes raise ``KeyError``)."""
    try:
        return CODE_CATALOG[code]
    except KeyError as exc:
        raise KeyError(f"unknown diagnostic code {code!r}") from exc


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    message: str
    location: SourceLocation = field(default_factory=SourceLocation)

    def format(self) -> str:
        """One-line rendering: ``REP201 error: message [location]``."""
        where = self.location.describe()
        suffix = f" [{where}]" if where else ""
        return f"{self.code} {self.severity.value}: {self.message}{suffix}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location.to_dict(),
        }


def diag(code: str, message: str,
         location: Optional[SourceLocation] = None,
         severity: Optional[Severity] = None) -> Diagnostic:
    """Build a diagnostic, defaulting the severity from the catalog."""
    default_severity, _ = catalog_entry(code)
    return Diagnostic(code=code,
                      severity=severity or default_severity,
                      message=message,
                      location=location or SourceLocation())


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with query/rendering helpers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def codes(self) -> List[str]:
        """Distinct codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def sorted(self) -> List[Diagnostic]:
        """Stable severity-then-code ordering for presentation."""
        return sorted(self.diagnostics,
                      key=lambda d: (d.severity.rank, d.code))

    def summary(self) -> str:
        """``"2 errors, 1 warning, 0 info (REP201, REP202, REP301)"``."""
        errors = len(self.errors)
        warnings = len(self.warnings)
        info = len(self.diagnostics) - errors - warnings
        text = (f"{errors} error{'s' if errors != 1 else ''}, "
                f"{warnings} warning{'s' if warnings != 1 else ''}, "
                f"{info} info")
        codes = self.codes()
        if codes:
            text += f" ({', '.join(codes)})"
        return text

    def format_text(self, limit: Optional[int] = None) -> str:
        """Multi-line rendering: sorted findings then the summary line."""
        entries = self.sorted()
        shown = entries if limit is None else entries[:limit]
        lines = [d.format() for d in shown]
        if limit is not None and len(entries) > limit:
            lines.append(f"... {len(entries) - limit} more finding(s) elided")
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        payload = {
            "format": "repro-diagnostics/1",
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "total": len(self.diagnostics),
                "codes": self.codes(),
            },
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)


class DiagnosticError(Exception):
    """An exception carrying a typed :class:`Diagnostic`.

    Validation passes that must abort (the builder's address check, trace
    lowering) raise subclasses of this so callers get both a normal Python
    exception *and* the structured code/location payload.  Constructible
    from a bare message for backwards compatibility: the diagnostic is then
    synthesised from :attr:`default_code`.
    """

    #: Catalog code used when no explicit diagnostic is supplied.
    default_code = "REP105"

    def __init__(self, message: str,
                 diagnostic: Optional[Diagnostic] = None) -> None:
        super().__init__(message)
        if diagnostic is None:
            diagnostic = diag(self.default_code, str(message))
        self.diagnostic = diagnostic

    @property
    def code(self) -> str:
        return self.diagnostic.code


class IRValidationError(DiagnosticError, ValueError):
    """A kernel program failed IR validation (builder-time REP1xx)."""

    default_code = "REP101"


class ScheduleVerificationError(DiagnosticError, RuntimeError):
    """A compiled schedule failed verification (``verify=True`` post-pass).

    Carries the full :class:`DiagnosticReport`; :attr:`diagnostic` is the
    first (most severe) error for the common single-finding case.
    """

    default_code = "REP201"

    def __init__(self, message: str,
                 report: Optional[DiagnosticReport] = None) -> None:
        self.report = report or DiagnosticReport()
        errors = self.report.errors
        first = errors[0] if errors else None
        super().__init__(message, diagnostic=first)
