"""Analyzer entry points: lint programs, verify compiled schedules.

Three layers of API, from narrow to broad:

* :func:`analyze_program` — IR + memory lints of one program (REP1xx/3xx);
* :func:`verify_compiled` — full verification of one
  :class:`CompiledProgram`: IR lints plus independent schedule checking of
  every segment (REP2xx).  :func:`check_or_raise` is the raising form used
  by ``compile_program(..., verify=True)``;
* :func:`analyze_benchmarks` / :func:`analyze_fuzz_seeds` — drive the
  above over registered workloads × machine configurations, or over
  deterministic synthetic seed programs — the engine behind
  ``python -m repro lint``.

Imports of the workload registry and the synthetic generator happen inside
the driver functions: workload builders import ``repro.analysis`` (through
the builder's typed exceptions), so importing them at module level would be
circular.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import replace
from typing import Callable, Optional, Sequence, Tuple

from repro.analysis.diagnostics import (
    DiagnosticReport,
    ScheduleVerificationError,
    SourceLocation,
    diag,
)
from repro.analysis.ir_lint import lint_program
from repro.analysis.schedule_check import check_schedule
from repro.compiler.ir import KernelProgram
from repro.compiler.scheduler import CompiledProgram
from repro.machine.config import MachineConfig
from repro.machine.latency import LatencyModel

__all__ = [
    "analyze_program",
    "verify_compiled",
    "check_or_raise",
    "verification_enabled",
    "analyze_benchmarks",
    "analyze_fuzz_seeds",
]

#: Environment variable that turns the ``verify=True`` post-pass on by
#: default for every compilation (used by the sweep-timing benchmark and
#: available to CI lanes).
VERIFY_ENV = "REPRO_VERIFY"


def verification_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve a three-state ``verify`` argument against ``REPRO_VERIFY``.

    ``True``/``False`` win outright; ``None`` means "whatever the
    environment says", with unset / ``0`` / ``false`` / ``no`` / ``off``
    counting as disabled.
    """
    if explicit is not None:
        return bool(explicit)
    value = os.environ.get(VERIFY_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


def analyze_program(program: KernelProgram,
                    config: Optional[MachineConfig] = None,
                    benchmark: str = "") -> DiagnosticReport:
    """IR and memory lints of one program (no schedule required)."""
    base = SourceLocation(benchmark=benchmark, program=program.name,
                          flavor=program.flavor.value,
                          config=config.name if config else "")
    report = DiagnosticReport()
    report.extend(lint_program(program, config, base))
    return report


def verify_compiled(compiled: CompiledProgram, benchmark: str = "",
                    include_ir: bool = True,
                    report: Optional[DiagnosticReport] = None,
                    ) -> DiagnosticReport:
    """Verify every segment schedule of ``compiled`` against the IR.

    Reconstructs dependences and resource usage independently of the
    scheduler (see :mod:`repro.analysis.depgraph` /
    :mod:`repro.analysis.schedule_check`); with ``include_ir`` the program
    itself is linted too, so one call covers REP1xx/2xx/3xx.
    """
    program = compiled.program
    config = compiled.config
    latency_model = compiled.latency_model or LatencyModel()
    base = SourceLocation(benchmark=benchmark, program=program.name,
                          flavor=program.flavor.value, config=config.name)
    report = report if report is not None else DiagnosticReport()
    if include_ir:
        report.extend(lint_program(program, config, base))
    for seg_index, (segment, loops) in enumerate(program.walk_segments()):
        schedule = compiled.schedules.get(id(segment))
        location = replace(base, segment=seg_index, region=segment.region)
        if schedule is None:
            report.add(diag(
                "REP203",
                f"segment {seg_index} (region {segment.region}) has no "
                f"schedule", location))
            continue
        if schedule.pipelined_interval is not None:
            # a software-pipelined schedule overlaps loop iterations, so it
            # is only meaningful for the sole body of a repeating innermost
            # loop — only this walk knows the loop context, hence the check
            # lives here rather than in check_schedule
            innermost = loops[-1] if loops else None
            if (innermost is None or innermost.trip_count <= 1
                    or len(innermost.body) != 1
                    or innermost.body[0] is not segment):
                report.add(diag(
                    "REP209",
                    f"segment {seg_index} (region {segment.region}) carries "
                    f"a software-pipelined schedule but is not the sole body "
                    f"of a repeating innermost loop", location))
        report.extend(check_schedule(schedule, config, latency_model,
                                     location))
    return report


#: Content keys of verifications that already passed in this process.
#: Verification is pure — same program IR, configuration, latency table and
#: schedule timing always produce the same report — so re-checking a
#: byte-identical compilation (a recompile after a cache clear, a sibling
#: worker's program, a rebind) is redundant work.  Bounded LRU.
_PASSED_MEMO: "OrderedDict[Tuple[object, ...], bool]" = OrderedDict()
_PASSED_MEMO_LIMIT = 4096


def _verification_key(compiled: CompiledProgram,
                      program_fingerprint: Optional[str] = None,
                      ) -> Optional[Tuple[object, ...]]:
    """Content key a passed verification can be memoised under.

    Covers everything the checker reads: the normalised IR fingerprint, the
    (value-hashed) configuration, the latency table, and per segment the
    recurrence interval plus each entry's (operation position, cycle,
    occupancy, assumed latency).  Returns ``None`` — never memoisable —
    when a schedule is missing or an entry points at an operation that is
    not the segment's own (the defect classes whose identity the timing
    tuple alone cannot capture).

    ``program_fingerprint`` lets the compile cache share the
    :func:`~repro.compiler.cache.fingerprint_program` it just computed for
    its own content key (hashing the IR is the expensive part); it must
    have been derived from this program's current content.
    """
    from repro.compiler.cache import _latency_table_key, fingerprint_program

    latency_model = compiled.latency_model or LatencyModel()
    parts = []
    for segment, _loops in compiled.program.walk_segments():
        schedule = compiled.schedules.get(id(segment))
        if schedule is None:
            return None
        positions = {id(op): index
                     for index, op in enumerate(segment.operations)}
        entry_keys = []
        for entry in schedule.entries:
            position = positions.get(id(entry.operation))
            if position is None:
                return None
            entry_keys.append((position, entry.cycle, entry.occupancy,
                               entry.assumed_latency))
        parts.append((segment.region, schedule.config_name,
                      schedule.recurrence_interval,
                      schedule.pipelined_interval, tuple(entry_keys)))
    if program_fingerprint is None:
        program_fingerprint = fingerprint_program(compiled.program)
    return (program_fingerprint, compiled.config,
            _latency_table_key(latency_model), tuple(parts))


def check_or_raise(compiled: CompiledProgram, benchmark: str = "",
                   program_fingerprint: Optional[str] = None) -> None:
    """Raise :class:`ScheduleVerificationError` if verification finds errors.

    This is the ``verify=True`` post-pass of ``compile_program`` /
    ``compile_cached``.  Warnings and infos never raise.  A compiled
    program that passed once is stamped (``_analysis_verified``) so cache
    hits do not pay for re-verification, and its content key is memoised so
    recompiling the identical program — after a cache clear, in a worker
    process forked later, or via a rebind — pays one fingerprint, not a
    full re-analysis.
    """
    if getattr(compiled, "_analysis_verified", False):
        return
    key = _verification_key(compiled, program_fingerprint)
    if key is not None and key in _PASSED_MEMO:
        _PASSED_MEMO.move_to_end(key)
        compiled._analysis_verified = True
        return
    report = verify_compiled(compiled, benchmark=benchmark)
    if report.has_errors:
        raise ScheduleVerificationError(
            f"schedule verification failed for {compiled.program.name} on "
            f"{compiled.config.name}: {report.summary()}", report=report)
    compiled._analysis_verified = True
    if key is not None:
        _PASSED_MEMO[key] = True
        _PASSED_MEMO.move_to_end(key)
        while len(_PASSED_MEMO) > _PASSED_MEMO_LIMIT:
            _PASSED_MEMO.popitem(last=False)


# ---------------------------------------------------------------------------
# Batch drivers (the `lint` CLI engine)
# ---------------------------------------------------------------------------

def analyze_benchmarks(names: Sequence[str],
                       config_names: Optional[Sequence[str]] = None,
                       tiny: bool = False,
                       progress: Optional[Callable[[str], None]] = None,
                       strategies: Sequence[str] = ("baseline",),
                       ) -> DiagnosticReport:
    """Lint + verify every (benchmark, configuration, strategy) triple.

    For each benchmark every requested configuration compiles the program
    flavour it would actually execute (the same pairing the experiment
    runner uses) under every requested scheduler strategy, and the compiled
    result is fully verified.  Flavours no configuration selects are still
    linted standalone so REP1xx findings cannot hide in an unexecuted
    program version.
    """
    from repro.compiler.cache import compile_cached
    from repro.machine.config import PAPER_CONFIG_ORDER, get_config
    from repro.workloads.suite import SuiteParameters, build_benchmark

    configs = [get_config(name) for name in
               (config_names or PAPER_CONFIG_ORDER)]
    parameters = SuiteParameters.tiny() if tiny else SuiteParameters.default()
    report = DiagnosticReport()
    for name in names:
        spec = build_benchmark(name, parameters)
        analyzed_flavors = set()
        for config in configs:
            program = spec.program_for(config)
            analyzed_flavors.add(program.flavor)
            for strategy in strategies:
                compiled = compile_cached(program, config, strategy=strategy)
                before = len(report)
                verify_compiled(compiled, benchmark=name, report=report)
                if progress is not None:
                    found = len(report) - before
                    note = f" ({found} finding(s))" if found else ""
                    suffix = f" [{strategy}]" if strategy != "baseline" else ""
                    progress(f"{name} × {config.name}: "
                             f"{program.flavor.value}{suffix}{note}")
        for flavor, program in spec.programs.items():
            if flavor not in analyzed_flavors:
                report.extend(lint_program(
                    program, None,
                    SourceLocation(benchmark=name, program=program.name,
                                   flavor=flavor.value)))
    return report


def analyze_fuzz_seeds(seeds: int, start_seed: int = 0, scale: str = "tiny",
                       config_names: Sequence[str] = ("vector2-2w",),
                       progress: Optional[Callable[[str], None]] = None,
                       strategies: Sequence[str] = ("baseline",),
                       ) -> DiagnosticReport:
    """Lint + verify the synthetic programs of ``seeds`` deterministic seeds.

    Every seed builds all three ISA flavours (the same programs the fuzz
    lane compares) and verifies each on every requested configuration and
    scheduler strategy.
    """
    from repro.compiler.cache import compile_cached
    from repro.compiler.ir import ISAFlavor
    from repro.machine.config import get_config
    from repro.machine.resources import UnschedulableOperationError
    from repro.workloads.synthetic import generate_spec
    from repro.workloads.synthetic.generator import params_for_seed
    from repro.workloads.synthetic.spec import build_program

    configs = [get_config(name) for name in config_names]
    report = DiagnosticReport()
    for seed in range(start_seed, start_seed + seeds):
        spec = generate_spec(params_for_seed(seed, scale))
        label = f"seed:{seed}"
        for flavor in (ISAFlavor.SCALAR, ISAFlavor.USIMD, ISAFlavor.VECTOR):
            program = build_program(spec, flavor)
            for config in configs:
                for strategy in strategies:
                    try:
                        compiled = compile_cached(program, config,
                                                  strategy=strategy)
                    except UnschedulableOperationError:
                        # the compiler itself refuses flavour/configuration
                        # pairs the machine cannot execute (e.g. µSIMD on a
                        # plain VLIW) — nothing for the checker to check
                        continue
                    verify_compiled(compiled, benchmark=label, report=report)
        if progress is not None and (seed - start_seed) % 10 == 9:
            progress(f"analyzed {seed - start_seed + 1}/{seeds} seeds "
                     f"({len(report)} finding(s))")
    return report
