"""Static analysis of kernel IR and compiled schedules.

An independent checker for everything the compiler produces: the dependence
graph is reconstructed from the IR (not borrowed from the scheduler),
per-cycle resource usage is re-tallied from the machine configuration (not
read back from the reservation table), and the IR itself is linted for
unbound loop variables, dead values, vector-length mismatches and memory
overlap.  Findings are typed diagnostics with stable ``REPxxx`` codes —
see ``docs/analysis.md`` for the catalog and CLI usage
(``python -m repro lint``).
"""

from repro.analysis.diagnostics import (
    CODE_CATALOG,
    Diagnostic,
    DiagnosticError,
    DiagnosticReport,
    IRValidationError,
    ScheduleVerificationError,
    Severity,
    SourceLocation,
    diag,
)
from repro.analysis.depgraph import (
    CheckedEdge,
    carried_recurrence_bound,
    reconstruct_edges,
)
from repro.analysis.ir_lint import lint_program
from repro.analysis.schedule_check import check_schedule
from repro.analysis.analyzer import (
    analyze_benchmarks,
    analyze_fuzz_seeds,
    analyze_program,
    check_or_raise,
    verification_enabled,
    verify_compiled,
)

__all__ = [
    "CODE_CATALOG",
    "Diagnostic",
    "DiagnosticError",
    "DiagnosticReport",
    "IRValidationError",
    "ScheduleVerificationError",
    "Severity",
    "SourceLocation",
    "diag",
    "CheckedEdge",
    "carried_recurrence_bound",
    "reconstruct_edges",
    "lint_program",
    "check_schedule",
    "analyze_benchmarks",
    "analyze_fuzz_seeds",
    "analyze_program",
    "check_or_raise",
    "verification_enabled",
    "verify_compiled",
]
