"""Independent dependence reconstruction for the static analyzer.

This module re-derives, from segment IR alone, every ordering constraint a
correct schedule must honour.  It deliberately does **not** import
:mod:`repro.compiler.dataflow` or reuse the scheduler's adjacency — the
whole point of the analyzer is to be a second, independently-written
implementation of the dependence rules, so a bug in the scheduler's graph
construction shows up as a disagreement instead of being silently shared.

The rules implemented here (the specification both sides answer to):

* **RAW**: an operation that reads a register depends on that register's
  most recent writer.
* **WAW**: an operation that writes a register depends on the previous
  writer of the same register.
* **WAR**: an operation that writes a register depends on every reader of
  the current value (readers since the last write).
* An operation that both reads and writes a register (accumulators,
  induction variables) never depends on itself.
* **MEMORY**: a memory operation depends on every earlier *store* in the
  segment that may alias it.  May-alias is conservative: structurally equal
  affine addresses, or two wrapped (data-dependent) accesses into the same
  table.  Earlier stores are never retired — the paper's disambiguation is
  purely structural, not a fence model.

Each reconstructed edge carries the minimum issue-cycle distance obtained
from :meth:`repro.machine.latency.LatencyModel.dependence_latency` (the
latency *spec*; the scheduler computes its edge weights separately).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler.ir import Operation, Segment
from repro.isa.registers import RegisterClass
from repro.machine.config import MachineConfig
from repro.machine.latency import LatencyModel

__all__ = ["CheckedEdge", "reconstruct_edges", "carried_recurrence_bound"]


@dataclass(frozen=True)
class CheckedEdge:
    """One reconstructed ordering constraint between two segment operations.

    ``consumer`` may not issue earlier than ``min_distance`` cycles after
    ``producer`` (both are indices into the segment's operation list).
    """

    producer: int
    consumer: int
    kind: str  # "raw" | "war" | "waw" | "memory"
    min_distance: int
    register: Optional[int] = None  # virtual register ident, None for memory


def _addresses_structurally_equal(a, b) -> bool:
    """Structural equality of two affine address expressions.

    Re-implemented here (rather than calling ``AddressExpr.structurally_equal``)
    so the alias test is independent of the IR helper the compiler itself
    uses: same base, same wrap, same multiset of ``(loop var, coefficient)``
    terms.
    """
    if a.base != b.base or a.wrap_bytes != b.wrap_bytes:
        return False
    left = sorted((var.ident, coef) for var, coef in a.terms)
    right = sorted((var.ident, coef) for var, coef in b.terms)
    return left == right


def _may_alias(a: Operation, b: Operation) -> bool:
    """Conservative may-alias: structural equality or same wrapped table."""
    if a.address is None or b.address is None:
        return True
    if _addresses_structurally_equal(a.address, b.address):
        return True
    return bool(a.address.wrap_bytes and b.address.wrap_bytes
                and a.address.base == b.address.base)


def reconstruct_edges(segment: Segment, config: MachineConfig,
                      latency_model: LatencyModel) -> List[CheckedEdge]:
    """Rebuild every dependence edge of ``segment`` with its minimum distance.

    Duplicate constraints between the same pair (e.g. an operation reading
    the same register twice) are collapsed to the strongest distance.
    """
    ops = list(segment.operations)
    # (producer, consumer, kind, register) -> min_distance (strongest wins)
    strongest: Dict[Tuple[int, int, str, Optional[int]], int] = {}

    def constrain(producer: int, consumer: int, kind: str,
                  register_class: Optional[RegisterClass],
                  register: Optional[int]) -> None:
        producer_op = ops[producer]
        distance = latency_model.dependence_latency(
            kind, producer_op.opcode, producer_op.vector_length,
            register_class, config)
        key = (producer, consumer, kind, register)
        if distance > strongest.get(key, -1):
            strongest[key] = distance

    last_writer: Dict[int, int] = {}
    readers_since_write: Dict[int, List[int]] = {}
    pending_stores: List[int] = []

    for index, op in enumerate(ops):
        for src in op.srcs:
            writer = last_writer.get(src.ident)
            if writer is not None and writer != index:
                constrain(writer, index, "raw", src.reg_class, src.ident)
            readers_since_write.setdefault(src.ident, []).append(index)
        for dest in op.dests:
            writer = last_writer.get(dest.ident)
            if writer is not None and writer != index:
                constrain(writer, index, "waw", dest.reg_class, dest.ident)
            for reader in readers_since_write.get(dest.ident, ()):
                if reader < index:
                    constrain(reader, index, "war", dest.reg_class, dest.ident)
            last_writer[dest.ident] = index
            readers_since_write[dest.ident] = []

        if op.is_memory:
            for store_index in pending_stores:
                if _may_alias(ops[store_index], op):
                    constrain(store_index, index, "memory", None, None)
            if op.is_store:
                pending_stores.append(index)

    return [CheckedEdge(producer=p, consumer=c, kind=kind,
                        min_distance=distance, register=reg)
            for (p, c, kind, reg), distance in sorted(strongest.items(),
                                                      key=lambda item: item[0][:2])]


def carried_recurrence_bound(segment: Segment, config: MachineConfig,
                             latency_model: LatencyModel) -> int:
    """Lower bound on the initiation interval from loop-carried registers.

    A register is loop-carried when its first read in program order is at or
    before its last write — the read consumes the previous iteration's
    value, so consecutive iterations may not start closer together than the
    writer's result latency.  Independent re-statement of the rule the
    scheduler applies via ``loop_carried_registers``.
    """
    ops = list(segment.operations)
    first_read: Dict[int, int] = {}
    last_write: Dict[int, int] = {}
    for index, op in enumerate(ops):
        for src in op.srcs:
            first_read.setdefault(src.ident, index)
        for dest in op.dests:
            last_write[dest.ident] = index
    bound = 0
    for reg, read_index in first_read.items():
        write_index = last_write.get(reg)
        if write_index is None or write_index < read_index:
            continue
        writer = ops[write_index]
        latency = latency_model.result_latency(
            writer.opcode, writer.vector_length, config)
        if latency > bound:
            bound = latency
    return bound
