"""Table 1 — vector regions and the fraction of execution time they take.

The paper measures the percentage on the 2-issue µSIMD-VLIW configuration.
``PAPER_PERCENTAGES`` records the published values so the report can show
paper-vs-measured side by side.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.metrics import format_table
from repro.experiments.evaluation import SuiteEvaluation, TABLE1_CONFIG
from repro.sim.plan import ExperimentSweep

__all__ = ["PAPER_PERCENTAGES", "VECTOR_REGION_DESCRIPTIONS", "SWEEP",
           "generate", "render"]

#: Every benchmark on the 2-issue µSIMD machine, realistic memory.
SWEEP = ExperimentSweep(config_names=(TABLE1_CONFIG,), memory_modes=(False,))

#: Percent of execution time in the vector regions (paper, Table 1).
PAPER_PERCENTAGES: Dict[str, float] = {
    "jpeg_enc": 29.56,
    "jpeg_dec": 18.46,
    "mpeg2_enc": 52.29,
    "mpeg2_dec": 23.11,
    "gsm_enc": 18.66,
    "gsm_dec": 0.91,
}

#: The vector regions the paper lists per benchmark (Table 1).  The
#: extended-suite kernels (tag ``mediabench-plus``) post-date the paper,
#: so their regions are described here and their paper column renders "-".
VECTOR_REGION_DESCRIPTIONS: Dict[str, Tuple[str, ...]] = {
    "jpeg_enc": ("RGB to YCC color conversion", "Forward DCT", "Quantification"),
    "jpeg_dec": ("YCC to RGB color conversion", "H2v2 up-sample"),
    "mpeg2_enc": ("Motion estimation", "Forward DCT", "Inverse DCT"),
    "mpeg2_dec": ("Form component prediction", "Inverse DCT", "Add block"),
    "gsm_enc": ("LTP parameters", "Autocorrelation"),
    "gsm_dec": ("Long term filtering",),
    "viterbi_dec": ("Branch metrics and ACS",),
    "fir_bank": ("FIR filter bank",),
    "sobel_edge": ("3x3 gradient stencil",),
    "adpcm_codec": ("Block de-interleave",),
}


def generate(evaluation: SuiteEvaluation) -> List[Dict[str, object]]:
    """One row per benchmark: measured vs paper vectorisation percentage."""
    evaluation.ensure(SWEEP)
    rows: List[Dict[str, object]] = []
    for benchmark in evaluation.benchmark_names:
        measured = evaluation.vectorization_percentage(benchmark, TABLE1_CONFIG)
        rows.append({
            "benchmark": benchmark,
            "measured_percent": measured,
            # None for benchmarks beyond the paper's six (no published value)
            "paper_percent": PAPER_PERCENTAGES.get(benchmark),
            "regions": ", ".join(VECTOR_REGION_DESCRIPTIONS.get(benchmark, ())),
        })
    return rows


def render(evaluation: SuiteEvaluation) -> str:
    """Text rendering of the reproduced Table 1."""
    rows = generate(evaluation)
    table_rows = [
        [row["benchmark"], row["measured_percent"],
         row["paper_percent"] if row["paper_percent"] is not None else "-",
         row["regions"]]
        for row in rows
    ]
    return format_table(
        ["benchmark", "%vect (measured)", "%vect (paper)", "vector regions"],
        table_rows,
        title=f"Table 1 — vector regions (% of execution time on {TABLE1_CONFIG})",
    )
