"""Table 2 — the ten processor configurations.

This table is static (it documents the machine models rather than a
measurement); rendering it from :mod:`repro.machine.config` ensures the code
and the paper's table stay in sync, and the unit tests assert the published
resource counts.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.metrics import format_table
from repro.machine.config import PAPER_CONFIG_ORDER, get_config

__all__ = ["generate", "render"]


def generate() -> List[Dict[str, object]]:
    """One row per configuration with the Table-2 resource counts."""
    rows: List[Dict[str, object]] = []
    for name in PAPER_CONFIG_ORDER:
        config = get_config(name)
        rows.append({
            "name": name,
            "label": config.label,
            "issue_width": config.issue_width,
            "int_regs": config.int_regs,
            "simd_regs": config.simd_regs or "-",
            "vector_regs": (f"{config.vector_regs} x{config.vector_reg_words}"
                            if config.vector_regs else "-"),
            "accum_regs": config.accum_regs or "-",
            "int_units": config.int_units,
            "simd_units": config.simd_units or "-",
            "vector_units": (f"{config.vector_units} x{config.vector_lanes}"
                             if config.vector_units else "-"),
            "l1_ports": config.l1_ports,
            "l2_ports": (f"{config.l2_ports} x{config.l2_port_words}"
                         if config.l2_ports else "-"),
        })
    return rows


def render() -> str:
    """Text rendering of Table 2."""
    rows = generate()
    headers = ["config", "issue", "int regs", "SIMD regs", "vector regs", "acc regs",
               "int units", "SIMD units", "vector units", "L1 ports", "L2 ports"]
    table_rows = [
        [r["label"], r["issue_width"], r["int_regs"], r["simd_regs"], r["vector_regs"],
         r["accum_regs"], r["int_units"], r["simd_units"], r["vector_units"],
         r["l1_ports"], r["l2_ports"]]
        for r in rows
    ]
    return format_table(headers, table_rows,
                        title="Table 2 — processor configurations")
