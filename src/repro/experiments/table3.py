"""Table 3 — OPC, µOPC and speed-up per region, averaged over the benchmarks.

For every configuration the paper reports, separately for the scalar
regions, the vector regions and the complete application: operations per
cycle, micro-operations per cycle (for the ISAs with packed operations) and
the speed-up over the 2-issue VLIW.  Averages are arithmetic means over
the evaluation's benchmarks — the paper's six by default, as in the paper
(an extended ``--benchmarks`` selection widens the average).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.metrics import arithmetic_mean, format_table
from repro.experiments.evaluation import SuiteEvaluation
from repro.sim.plan import ExperimentSweep

__all__ = ["PAPER_TABLE3", "SWEEP", "generate", "render"]

#: Every benchmark on every configuration, realistic memory.
SWEEP = ExperimentSweep(memory_modes=(False,))

#: Published Table 3 values keyed by configuration:
#: (scalar OPC, scalar SP, vector OPC, vector µOPC, vector SP, app OPC, app µOPC, app SP)
PAPER_TABLE3: Dict[str, tuple] = {
    "vliw-2w": (1.44, 1.00, 1.80, 1.80, 1.00, 1.59, 1.59, 1.00),
    "usimd-2w": (1.44, 1.00, 1.78, 4.68, 2.88, 1.52, 2.32, 1.47),
    "vector1-2w": (1.44, 1.00, 0.87, 7.91, 9.33, 1.36, 2.12, 1.79),
    "vector2-2w": (1.44, 1.00, 0.98, 10.10, 10.61, 1.37, 2.15, 1.80),
    "vliw-4w": (1.77, 1.24, 3.03, 3.03, 1.66, 2.14, 2.14, 1.34),
    "usimd-4w": (1.78, 1.24, 2.95, 7.80, 4.62, 1.98, 3.05, 1.94),
    "vector1-4w": (1.71, 1.20, 1.24, 11.64, 12.87, 1.63, 2.55, 2.15),
    "vector2-4w": (1.76, 1.23, 1.37, 14.00, 14.09, 1.69, 2.64, 2.22),
    "vliw-8w": (1.84, 1.28, 4.54, 4.54, 2.47, 2.42, 2.42, 1.50),
    "usimd-8w": (1.84, 1.29, 4.47, 12.07, 6.76, 2.18, 3.38, 2.15),
}


def generate(evaluation: SuiteEvaluation) -> List[Dict[str, float]]:
    """One row per configuration with the per-region averages."""
    evaluation.ensure(SWEEP)
    rows: List[Dict[str, float]] = []
    for config_name in evaluation.config_names:
        scalar_opc, scalar_sp = [], []
        vector_opc, vector_uopc, vector_sp = [], [], []
        app_opc, app_uopc, app_sp = [], [], []
        for benchmark in evaluation.benchmark_names:
            run = evaluation.run(benchmark, config_name)
            scalar_opc.append(run.scalar_opc())
            scalar_sp.append(evaluation.scalar_region_speedup(benchmark, config_name))
            vector_opc.append(run.vector_opc())
            vector_uopc.append(run.vector_uopc())
            vector_sp.append(evaluation.vector_region_speedup(benchmark, config_name))
            app_opc.append(run.opc)
            app_uopc.append(run.uopc)
            app_sp.append(evaluation.application_speedup(benchmark, config_name))
        rows.append({
            "config": config_name,
            "scalar_opc": arithmetic_mean(scalar_opc),
            "scalar_speedup": arithmetic_mean(scalar_sp),
            "vector_opc": arithmetic_mean(vector_opc),
            "vector_uopc": arithmetic_mean(vector_uopc),
            "vector_speedup": arithmetic_mean(vector_sp),
            "app_opc": arithmetic_mean(app_opc),
            "app_uopc": arithmetic_mean(app_uopc),
            "app_speedup": arithmetic_mean(app_sp),
        })
    return rows


def render(evaluation: SuiteEvaluation) -> str:
    """Text rendering of the reproduced Table 3 with the paper values."""
    rows = generate(evaluation)
    headers = ["config", "scal OPC", "scal SP", "vec OPC", "vec uOPC", "vec SP",
               "app OPC", "app uOPC", "app SP", "paper vec SP", "paper app SP"]
    table_rows = []
    for row in rows:
        paper = PAPER_TABLE3.get(row["config"])
        table_rows.append([
            row["config"], row["scalar_opc"], row["scalar_speedup"],
            row["vector_opc"], row["vector_uopc"], row["vector_speedup"],
            row["app_opc"], row["app_uopc"], row["app_speedup"],
            paper[4] if paper else "-", paper[7] if paper else "-",
        ])
    return format_table(headers, table_rows,
                        title="Table 3 — OPC / µOPC / speed-up (average over benchmarks)")
