"""Shared evaluation cache for the experiment modules.

Running the six benchmarks over the ten configurations (twice, for perfect
and realistic memory) is the expensive part of regenerating the paper's
evaluation; :class:`SuiteEvaluation` does it lazily and memoises the
per-run :class:`~repro.sim.stats.RunStats`, so each figure/table module only
asks for the runs it needs and repeated queries are free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.core.runner import BenchmarkSpec, flavor_for_config
from repro.core.architecture import VectorMicroSimdVliwMachine
from repro.machine.config import PAPER_CONFIG_ORDER, get_config
from repro.machine.latency import LatencyModel
from repro.sim.stats import RunStats
from repro.workloads.suite import BENCHMARK_NAMES, SuiteParameters, build_suite

__all__ = ["SuiteEvaluation"]

#: The configuration every speed-up in the paper is normalised against.
BASELINE_CONFIG = "vliw-2w"
#: The configuration Table 1's vectorisation percentages are measured on.
TABLE1_CONFIG = "usimd-2w"


@dataclass
class SuiteEvaluation:
    """Lazily evaluated (benchmark × configuration × memory mode) result cache."""

    parameters: SuiteParameters = field(default_factory=SuiteParameters.default)
    benchmark_names: Tuple[str, ...] = BENCHMARK_NAMES
    config_names: Tuple[str, ...] = PAPER_CONFIG_ORDER
    latency_model: Optional[LatencyModel] = None

    def __post_init__(self) -> None:
        self._suite: Dict[str, BenchmarkSpec] = {}
        self._runs: Dict[Tuple[str, str, bool], RunStats] = {}

    # ------------------------------------------------------------------ suite

    def spec(self, benchmark: str) -> BenchmarkSpec:
        """The benchmark spec (three program flavours), built on first use."""
        if benchmark not in self._suite:
            self._suite.update(build_suite(self.parameters, names=[benchmark]))
        return self._suite[benchmark]

    # ------------------------------------------------------------------- runs

    def run(self, benchmark: str, config_name: str,
            perfect_memory: bool = False) -> RunStats:
        """Statistics of one benchmark on one configuration (memoised)."""
        key = (benchmark, config_name, perfect_memory)
        if key not in self._runs:
            spec = self.spec(benchmark)
            config = get_config(config_name)
            machine = VectorMicroSimdVliwMachine(config, latency_model=self.latency_model,
                                                 perfect_memory=perfect_memory)
            program = spec.program_for(config)
            self._runs[key] = machine.run(program)
        return self._runs[key]

    def runs_for_benchmark(self, benchmark: str, perfect_memory: bool = False,
                           config_names: Optional[Iterable[str]] = None
                           ) -> Dict[str, RunStats]:
        """All configurations' statistics for one benchmark."""
        names = tuple(config_names) if config_names is not None else self.config_names
        return {name: self.run(benchmark, name, perfect_memory) for name in names}

    # ------------------------------------------------------------ derived data

    def baseline(self, benchmark: str, perfect_memory: bool = False) -> RunStats:
        """The 2-issue VLIW run every speed-up is normalised against."""
        return self.run(benchmark, BASELINE_CONFIG, perfect_memory)

    def application_speedup(self, benchmark: str, config_name: str,
                            perfect_memory: bool = False) -> float:
        """Whole-application speed-up over the 2-issue VLIW."""
        return self.run(benchmark, config_name, perfect_memory).speedup_over(
            self.baseline(benchmark, perfect_memory))

    def vector_region_speedup(self, benchmark: str, config_name: str,
                              perfect_memory: bool = False) -> float:
        """Vector-region speed-up over the 2-issue VLIW."""
        return self.run(benchmark, config_name, perfect_memory).vector_region_speedup_over(
            self.baseline(benchmark, perfect_memory))

    def scalar_region_speedup(self, benchmark: str, config_name: str,
                              perfect_memory: bool = False) -> float:
        """Scalar-region speed-up over the 2-issue VLIW."""
        return self.run(benchmark, config_name, perfect_memory).scalar_region_speedup_over(
            self.baseline(benchmark, perfect_memory))

    def vectorization_percentage(self, benchmark: str,
                                 config_name: str = TABLE1_CONFIG) -> float:
        """Fraction (percent) of execution time spent in the vector regions."""
        return 100.0 * self.run(benchmark, config_name).vectorization_fraction
