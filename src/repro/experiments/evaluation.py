"""Shared evaluation cache for the experiment modules.

Running the benchmark suite over the ten configurations (twice, for
perfect and realistic memory) is the expensive part of regenerating the
paper's evaluation.  :class:`SuiteEvaluation` memoises the per-run
:class:`~repro.sim.stats.RunStats` and executes the runs through the
experiment engine.  ``benchmark_names`` defaults to the paper's six
applications and accepts any names the workload registry resolves
(:mod:`repro.workloads.registry`) — e.g. the extended ten-benchmark
``mediabench-plus`` suite, or user-registered workloads:

* each figure/table module declares the slice of the sweep it needs as an
  :class:`~repro.sim.plan.ExperimentSweep` (data, not loops) and calls
  :meth:`SuiteEvaluation.ensure` before reading results;
* :meth:`ensure` batches every *missing* run into one
  :class:`~repro.sim.plan.ExperimentPlan` and executes it — serially, or
  over ``jobs`` worker processes via
  :func:`repro.core.runner.execute_requests`;
* compilations are shared through the process-wide compile cache, so the
  ten Table-2 configurations and both memory modes schedule each distinct
  program once.

Parallel and serial execution produce byte-identical statistics (see
``tests/test_engine.py``), so ``jobs`` is purely a wall-clock knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.core.runner import BenchmarkSpec, execute_requests
from repro.machine.config import PAPER_CONFIG_ORDER
from repro.machine.latency import LatencyModel
from repro.sim.plan import ExperimentPlan, ExperimentSweep, RunRequest
from repro.sim.stats import RunStats
from repro.store import ResultStore
from repro.workloads.suite import BENCHMARK_NAMES, SuiteParameters, build_suite

__all__ = ["SuiteEvaluation"]

#: Runs per write-back shard when :meth:`SuiteEvaluation.ensure` executes
#: a batch against a persistent store (``shard_size=None``).  Chosen to
#: match the runner's parallel cutover so sharding never forces a pool
#: onto a batch that would not have used one.
ENSURE_SHARD_SIZE = 64

#: The configuration every speed-up in the paper is normalised against.
BASELINE_CONFIG = "vliw-2w"
#: The configuration Table 1's vectorisation percentages are measured on.
TABLE1_CONFIG = "usimd-2w"


@dataclass
class SuiteEvaluation:
    """Lazily evaluated (benchmark × configuration × memory mode) result cache.

    ``jobs`` controls how many worker processes :meth:`ensure` may use for a
    batch of missing runs; ``jobs=1`` (the default) executes in process.
    ``engine`` selects the execution tier (``"trace"`` by default,
    ``"interpreter"`` for the reference oracle).  Either way, repeated
    queries are free and results are identical.

    ``store`` adds a second, *persistent* memo level below the in-process
    one: a :class:`~repro.store.ResultStore` instance, a directory path, or
    the default ``"auto"``, which opens the store named by the
    ``REPRO_STORE`` environment variable (no store when unset).  Runs
    answered by the store are never simulated, and fresh runs are written
    back — so separate processes, test sessions and CI jobs pointing at one
    store each simulate a given point at most once.  Pass ``store=None``
    to force a store-free evaluation.

    ``shard_size`` chunks store-backed batches so write-backs land
    incrementally (an interrupted prefetch loses at most one shard);
    ``None`` picks :data:`ENSURE_SHARD_SIZE` with a store and no sharding
    without one, ``0`` disables sharding outright.

    ``strategy`` names the scheduler strategy every run of this evaluation
    compiles under (:mod:`repro.compiler.strategies`); speed-ups are then
    strategy-internal — the ``vliw-2w`` baseline is compiled with the same
    strategy.  Explicit :class:`RunRequest` batches may still mix
    strategies; the memo keys on the full request.
    """

    parameters: SuiteParameters = field(default_factory=SuiteParameters.default)
    benchmark_names: Tuple[str, ...] = BENCHMARK_NAMES
    config_names: Tuple[str, ...] = PAPER_CONFIG_ORDER
    latency_model: Optional[LatencyModel] = None
    jobs: int = 1
    engine: Optional[str] = None
    store: Union[ResultStore, str, None] = "auto"
    shard_size: Optional[int] = None
    strategy: str = "baseline"

    def __post_init__(self) -> None:
        self._suite: Dict[str, BenchmarkSpec] = {}
        self._runs: Dict[Tuple[str, str, bool, str], RunStats] = {}
        self.simulated_runs = 0
        if self.store == "auto":
            self.store = ResultStore.from_env()
        elif isinstance(self.store, str):
            self.store = ResultStore(self.store)

    # ------------------------------------------------------------------ suite

    def spec(self, benchmark: str) -> BenchmarkSpec:
        """The benchmark spec (three program flavours), built on first use."""
        if benchmark not in self._suite:
            self._suite.update(build_suite(self.parameters, names=[benchmark]))
        return self._suite[benchmark]

    # --------------------------------------------------------------- batching

    def ensure(self, sweep: Union[ExperimentSweep, ExperimentPlan,
                                  Iterable[RunRequest]]) -> None:
        """Make every run of ``sweep`` available in the memo, batched.

        Accepts an :class:`ExperimentSweep` (``None`` fields expand to this
        evaluation's benchmarks/configurations), an
        :class:`ExperimentPlan`, or any iterable of
        :class:`RunRequest`.  Only missing runs are executed; with
        ``jobs > 1`` they are distributed over worker processes and merged
        deterministically.  When a persistent store is attached, runs the
        store already holds (from any process, ever) are loaded instead of
        simulated; ``simulated_runs`` counts what actually ran.
        """
        if isinstance(sweep, ExperimentSweep):
            requests = sweep.requests(self.benchmark_names, self.config_names,
                                      default_strategies=(self.strategy,))
        elif isinstance(sweep, ExperimentPlan):
            requests = sweep.requests
        else:
            requests = tuple(sweep)
        plan = ExperimentPlan(r for r in requests if r.key() not in self._runs)
        if not len(plan):
            return
        specs = {name: self.spec(name) for name in plan.benchmarks()}
        # With a persistent store the batch runs in shards so each shard's
        # results are written back the moment it completes: interrupting a
        # long ``prefetch`` (ctrl-C, a killed CI job, a crashed host)
        # loses at most one in-flight shard, and the re-run loads the
        # rest.  Store-free evaluations keep the single-batch fast path —
        # there is nothing to persist incrementally.
        size = self.shard_size
        if size is None:
            size = ENSURE_SHARD_SIZE if self.store is not None else 0
        shards = plan.shards(size) if size and len(plan) > size else (plan,)
        for shard in shards:
            store_hits_before = (self.store.stats.hits
                                 if self.store is not None else 0)
            results = execute_requests(shard, specs, jobs=self.jobs,
                                       latency_model=self.latency_model,
                                       engine=self.engine, store=self.store)
            store_hits = (self.store.stats.hits - store_hits_before
                          if self.store is not None else 0)
            self.simulated_runs += len(shard) - store_hits
            for request, stats in results.items():
                self._runs[request.key()] = stats

    def prefetch(self, memory_modes: Tuple[bool, ...] = (False, True)) -> None:
        """Execute the full sweep (all benchmarks × configs × modes) up front."""
        self.ensure(ExperimentSweep(memory_modes=memory_modes))

    # ------------------------------------------------------------------- runs

    def run(self, benchmark: str, config_name: str,
            perfect_memory: bool = False) -> RunStats:
        """Statistics of one benchmark on one configuration (memoised)."""
        key = (benchmark, config_name, perfect_memory, self.strategy)
        if key not in self._runs:
            self.ensure([RunRequest(benchmark, config_name, perfect_memory,
                                    self.strategy)])
        return self._runs[key]

    def runs_for_benchmark(self, benchmark: str, perfect_memory: bool = False,
                           config_names: Optional[Iterable[str]] = None
                           ) -> Dict[str, RunStats]:
        """All configurations' statistics for one benchmark."""
        names = tuple(config_names) if config_names is not None else self.config_names
        self.ensure(RunRequest(benchmark, name, perfect_memory, self.strategy)
                    for name in names)
        return {name: self.run(benchmark, name, perfect_memory) for name in names}

    # ------------------------------------------------------------ derived data

    def baseline(self, benchmark: str, perfect_memory: bool = False) -> RunStats:
        """The 2-issue VLIW run every speed-up is normalised against."""
        return self.run(benchmark, BASELINE_CONFIG, perfect_memory)

    def application_speedup(self, benchmark: str, config_name: str,
                            perfect_memory: bool = False) -> float:
        """Whole-application speed-up over the 2-issue VLIW."""
        return self.run(benchmark, config_name, perfect_memory).speedup_over(
            self.baseline(benchmark, perfect_memory))

    def vector_region_speedup(self, benchmark: str, config_name: str,
                              perfect_memory: bool = False) -> float:
        """Vector-region speed-up over the 2-issue VLIW."""
        return self.run(benchmark, config_name, perfect_memory).vector_region_speedup_over(
            self.baseline(benchmark, perfect_memory))

    def scalar_region_speedup(self, benchmark: str, config_name: str,
                              perfect_memory: bool = False) -> float:
        """Scalar-region speed-up over the 2-issue VLIW."""
        return self.run(benchmark, config_name, perfect_memory).scalar_region_speedup_over(
            self.baseline(benchmark, perfect_memory))

    def vectorization_percentage(self, benchmark: str,
                                 config_name: str = TABLE1_CONFIG) -> float:
        """Fraction (percent) of execution time spent in the vector regions."""
        return 100.0 * self.run(benchmark, config_name).vectorization_fraction
