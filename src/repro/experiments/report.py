"""Regenerate every table and figure in one run.

Usage::

    python -m repro.experiments.report            # default (reduced) inputs
    python -m repro.experiments.report --tiny     # test-sized inputs
    python -m repro.experiments.report --jobs 8   # parallel sweep

(Or, equivalently, ``python -m repro report`` — the unified CLI, which also
enables the persistent result store by default.)

The full sweep (every benchmark × configuration × memory mode) is
prefetched through the experiment engine before rendering, so ``--jobs N``
parallelises all of it at once; the rendered numbers are identical for any
job count.  With ``--store DIR`` (or ``REPRO_STORE``), runs already
persisted by any earlier process are loaded instead of simulated — a warm
store regenerates the whole report with zero simulations, byte-identical
to a cold run.

``--benchmarks`` selects which benchmarks the evaluation sweeps: registry
names, ``tag:<tag>`` selectors, or ``all`` (see
:func:`repro.workloads.registry.select_benchmarks`).  The default is the
paper's six applications, which keeps the published report output
byte-stable; ``--benchmarks tag:mediabench-plus`` renders the extended
ten-benchmark suite through the same figures and tables.

(An ``EXPERIMENTS.md`` transcript of this output once lived in the repo
root; it was retired when the report became cheap to regenerate — run the
command above to reproduce it.)
"""

from __future__ import annotations

import argparse
import contextlib
import cProfile
import io
import os
import pstats
import sys
import time
from typing import Iterator, Optional

from repro.experiments import (figure1, figure3, figure4, figure5, figure6, figure7,
                               table1, table2, table3)
from repro.experiments.evaluation import SuiteEvaluation
from repro.sim.engines import DEFAULT_ENGINE, ENGINE_NAMES
from repro.store import ResultStore
from repro.store.result_store import STORE_ENV_VAR
from repro.workloads.suite import SuiteParameters

__all__ = ["full_report", "add_store_arguments", "add_benchmark_arguments",
           "add_profile_argument", "maybe_profile",
           "add_strategy_argument", "resolve_strategies",
           "resolve_store", "resolve_jobs", "resolve_benchmarks", "main"]


def add_profile_argument(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``--profile [N]`` flag on ``parser``."""
    parser.add_argument("--profile", nargs="?", const=25, type=int,
                        default=None, metavar="N",
                        help="profile the run with cProfile and print the "
                             "top N hot functions by cumulative time to "
                             "stderr (default N: 25)")


@contextlib.contextmanager
def maybe_profile(top: Optional[int]) -> Iterator[None]:
    """Profile the enclosed block when ``top`` is set; no-op otherwise.

    On exit the top ``top`` functions by cumulative time are printed to
    stderr — the working end of ``python -m repro report --profile`` and
    ``sweep --profile``.  Profiling only the sweep/render block keeps
    interpreter start-up and argument parsing out of the listing.
    """
    if top is None:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(top)
        print(stream.getvalue(), file=sys.stderr)


def full_report(evaluation: SuiteEvaluation) -> str:
    """Render every experiment against one shared evaluation cache."""
    evaluation.prefetch()
    sections = [
        table2.render(),
        figure3.render(),
        figure4.render(),
        table1.render(evaluation),
        figure1.render(evaluation),
        figure5.render(evaluation),
        figure6.render(evaluation),
        figure7.render(evaluation),
        table3.render(evaluation),
    ]
    return "\n\n\n".join(sections)


def add_store_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--store`` / ``--no-store`` options."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--store", metavar="DIR", default=None,
                       help="persistent result-store directory (default: "
                            f"${STORE_ENV_VAR}, else the CLI default)")
    group.add_argument("--no-store", action="store_true",
                       help="disable the persistent result store")


def resolve_store(args: argparse.Namespace,
                  default_path: Optional[str] = None) -> Optional[ResultStore]:
    """Open the store the CLI flags select: flag > environment > default."""
    if args.no_store:
        return None
    path = args.store or os.environ.get(STORE_ENV_VAR, "").strip() or default_path
    return ResultStore(path) if path else None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker count a ``--jobs`` value selects: flag > ``$REPRO_JOBS`` > 1.

    The single policy shared by every CLI entry point (``report``,
    ``sweep``, ``explore``).
    """
    if jobs is not None:
        return max(1, jobs)
    from repro.core.runner import default_jobs
    return default_jobs() if os.environ.get("REPRO_JOBS") else 1


def add_benchmark_arguments(parser: argparse.ArgumentParser,
                            default: str = "the paper's six applications"
                            ) -> None:
    """Attach the shared ``--benchmarks`` selector option."""
    parser.add_argument("--benchmarks", nargs="+", metavar="SELECTOR",
                        default=None,
                        help="benchmarks to evaluate: registry names, "
                             "tag:<tag> selectors, or 'all' (see `python -m "
                             f"repro bench list`; default: {default})")


def resolve_benchmarks(selectors, default):
    """Benchmark names a ``--benchmarks`` value selects (None = default)."""
    if not selectors:
        return tuple(default)
    from repro.workloads.registry import select_benchmarks
    return select_benchmarks(selectors)


def add_strategy_argument(parser: argparse.ArgumentParser,
                          plural: bool = False) -> None:
    """Attach the shared ``--strategy`` (or ``--strategies``) option.

    Choices are resolved lazily against the strategy registry
    (:mod:`repro.compiler.strategies`) by :func:`resolve_strategies`, so
    user-registered strategies work; ``all`` expands to every registered
    strategy.
    """
    if plural:
        parser.add_argument("--strategies", nargs="+", metavar="NAME",
                            default=None,
                            help="scheduler strategies to compile under: "
                                 "registered names or 'all' (default: "
                                 "baseline)")
    else:
        parser.add_argument("--strategy", metavar="NAME", default="baseline",
                            help="scheduler strategy to compile under (see "
                                 "`repro.compiler.strategies`; default: "
                                 "baseline)")


def resolve_strategies(names) -> tuple:
    """Strategy names a ``--strategy``/``--strategies`` value selects.

    ``None``/empty means baseline only; ``"all"`` anywhere expands to every
    registered strategy.  Unknown names raise ``KeyError`` with the
    registered list (via :func:`repro.compiler.strategies.get_strategy`).
    """
    from repro.compiler.strategies import get_strategy, strategy_names
    if not names:
        return ("baseline",)
    if isinstance(names, str):
        names = [names]
    out = []
    for name in names:
        if name == "all":
            out.extend(n for n in strategy_names() if n not in out)
            continue
        get_strategy(name)  # raises KeyError with the registered list
        if name not in out:
            out.append(name)
    return tuple(out)


def main(argv=None, default_store: Optional[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="use the small test-sized inputs instead of the defaults")
    add_benchmark_arguments(parser)
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the simulation sweep "
                             "(default: $REPRO_JOBS, else 1)")
    parser.add_argument("--engine", choices=list(ENGINE_NAMES),
                        default=DEFAULT_ENGINE,
                        help="execution tier: the trace-compiled engine "
                             "(default) or the interpreting reference "
                             "engine; the rendered report is identical")
    add_store_arguments(parser)
    add_strategy_argument(parser)
    add_profile_argument(parser)
    args = parser.parse_args(argv)
    parameters = SuiteParameters.tiny() if args.tiny else SuiteParameters.default()
    store = resolve_store(args, default_path=default_store)
    from repro.workloads.suite import BENCHMARK_NAMES
    try:
        benchmarks = resolve_benchmarks(args.benchmarks, BENCHMARK_NAMES)
        strategy = resolve_strategies([args.strategy])[0]
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    evaluation = SuiteEvaluation(parameters=parameters, jobs=resolve_jobs(args.jobs),
                                 benchmark_names=benchmarks,
                                 engine=args.engine, store=store,
                                 strategy=strategy)
    start = time.time()
    with maybe_profile(args.profile):
        text = full_report(evaluation)
    elapsed = time.time() - start
    print(text)
    if store is not None:
        loaded = store.stats.hits
        print(f"[store {store.root}: {loaded} runs loaded, "
              f"{evaluation.simulated_runs} simulated]", file=sys.stderr)
    print(f"[report generated in {elapsed:.1f} s]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
