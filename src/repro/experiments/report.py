"""Regenerate every table and figure in one run.

Usage::

    python -m repro.experiments.report            # default (reduced) inputs
    python -m repro.experiments.report --tiny     # test-sized inputs
    python -m repro.experiments.report --jobs 8   # parallel sweep

The output is the text recorded in EXPERIMENTS.md.  The full sweep (every
benchmark × configuration × memory mode) is prefetched through the
experiment engine before rendering, so ``--jobs N`` parallelises all of it
at once; the rendered numbers are identical for any job count.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (figure1, figure3, figure4, figure5, figure6, figure7,
                               table1, table2, table3)
from repro.experiments.evaluation import SuiteEvaluation
from repro.sim.engines import DEFAULT_ENGINE, ENGINE_NAMES
from repro.workloads.suite import SuiteParameters

__all__ = ["full_report", "main"]


def full_report(evaluation: SuiteEvaluation) -> str:
    """Render every experiment against one shared evaluation cache."""
    evaluation.prefetch()
    sections = [
        table2.render(),
        figure3.render(),
        figure4.render(),
        table1.render(evaluation),
        figure1.render(evaluation),
        figure5.render(evaluation),
        figure6.render(evaluation),
        figure7.render(evaluation),
        table3.render(evaluation),
    ]
    return "\n\n\n".join(sections)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="use the small test-sized inputs instead of the defaults")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the simulation sweep")
    parser.add_argument("--engine", choices=list(ENGINE_NAMES),
                        default=DEFAULT_ENGINE,
                        help="execution tier: the trace-compiled engine "
                             "(default) or the interpreting reference "
                             "engine; the rendered report is identical")
    args = parser.parse_args(argv)
    parameters = SuiteParameters.tiny() if args.tiny else SuiteParameters.default()
    evaluation = SuiteEvaluation(parameters=parameters, jobs=args.jobs,
                                 engine=args.engine)
    start = time.time()
    text = full_report(evaluation)
    elapsed = time.time() - start
    print(text)
    print(f"\n[report generated in {elapsed:.1f} s]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
