"""Experiment harness: one module per table / figure of the paper.

All experiments are derived from a single :class:`SuiteEvaluation` — a cache
of per-benchmark, per-configuration, per-memory-mode runs — so generating
every figure costs one sweep over the suite:

========== =========================================================
module     reproduces
========== =========================================================
table1     Table 1  — vector regions and % of execution time
table2     Table 2  — the ten processor configurations
table3     Table 3  — OPC / µOPC / speed-up per region, averaged
figure1    Figure 1 — scalability of scalar vs vector regions
figure3    Figure 3 — latency descriptors of scalar / vector operations
figure4    Figure 4 — static schedule of the motion-estimation kernel
figure5    Figure 5 — vector-region speed-up, perfect & realistic memory
figure6    Figure 6 — whole-application speed-up
figure7    Figure 7 — normalised dynamic operation count per region
========== =========================================================

``python -m repro report`` (or ``python -m repro.experiments.report``)
regenerates everything.  Every module iterates
``evaluation.benchmark_names``, so an evaluation built over an extended
benchmark set — e.g. ``--benchmarks tag:mediabench-plus``, resolved
through :mod:`repro.workloads.registry` — renders the same figures and
tables with extra rows.  (The report text was once checked in as an
``EXPERIMENTS.md`` file; that file is gone — regenerating is cheap.)
"""

from repro.experiments.evaluation import SuiteEvaluation
from repro.experiments import (
    table1,
    table2,
    table3,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)

__all__ = [
    "SuiteEvaluation",
    "table1",
    "table2",
    "table3",
    "figure1",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
]
