"""Figure 7 — dynamic operation count normalised to the VLIW version.

For every benchmark the paper stacks, per architecture family (VLIW, +µSIMD,
+Vector), the dynamic operation count of each region normalised by the VLIW
total.  The key observations to preserve: the µSIMD and vector versions
execute far fewer operations than the scalar version (the vector version
about 84 % fewer than the µSIMD one in the vector regions), while the scalar
region R0 is identical across the three versions.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.metrics import arithmetic_mean, format_table
from repro.experiments.evaluation import SuiteEvaluation
from repro.sim.plan import ExperimentSweep

__all__ = ["FAMILY_CONFIGS", "SWEEP", "generate", "render",
           "vector_region_op_reduction"]

#: One representative configuration per architecture family (op counts do not
#: depend on the issue width, only on the ISA flavour executed).
FAMILY_CONFIGS = ("vliw-2w", "usimd-2w", "vector2-2w")

#: Every benchmark on one configuration per family, realistic memory.
SWEEP = ExperimentSweep(config_names=FAMILY_CONFIGS, memory_modes=(False,))


def generate(evaluation: SuiteEvaluation) -> List[Dict[str, object]]:
    """One row per (benchmark, family): per-region op counts normalised to VLIW."""
    evaluation.ensure(SWEEP)
    rows: List[Dict[str, object]] = []
    for benchmark in evaluation.benchmark_names:
        baseline_total = evaluation.run(benchmark, FAMILY_CONFIGS[0]).total_operations
        for config_name in FAMILY_CONFIGS:
            run = evaluation.run(benchmark, config_name)
            breakdown = run.region_operation_breakdown()
            normalised = {region: count / baseline_total
                          for region, count in sorted(breakdown.items())}
            rows.append({
                "benchmark": benchmark,
                "config": config_name,
                "flavor": run.flavor,
                "normalized_regions": normalised,
                "normalized_total": run.total_operations / baseline_total,
            })
    return rows


def vector_region_op_reduction(evaluation: SuiteEvaluation) -> float:
    """Average reduction of vector-region operations, vector vs µSIMD (paper: 84 %)."""
    evaluation.ensure(SWEEP)
    reductions = []
    for benchmark in evaluation.benchmark_names:
        usimd = evaluation.run(benchmark, "usimd-2w").vector_region_operations
        vector = evaluation.run(benchmark, "vector2-2w").vector_region_operations
        if usimd:
            reductions.append(1.0 - vector / usimd)
    return arithmetic_mean(reductions)


def render(evaluation: SuiteEvaluation) -> str:
    """Text rendering of Figure 7."""
    rows = generate(evaluation)
    table_rows = []
    for row in rows:
        regions = row["normalized_regions"]
        table_rows.append([
            row["benchmark"], row["flavor"],
            regions.get("R0", 0.0), regions.get("R1", 0.0),
            regions.get("R2", 0.0), regions.get("R3", 0.0),
            row["normalized_total"],
        ])
    text = format_table(
        ["benchmark", "flavor", "R0", "R1", "R2", "R3", "total"],
        table_rows,
        title="Figure 7 — dynamic operation count normalised to the VLIW version")
    reduction = vector_region_op_reduction(evaluation)
    return (f"{text}\n\nvector vs uSIMD operation reduction in the vector regions: "
            f"{100.0 * reduction:.1f}% (paper: 84%)")
