"""Figure 1 — scalability of the scalar and vector regions on µSIMD-VLIW.

For each benchmark the paper plots the speed-up of the 2/4/8-issue
µSIMD-VLIW machines over the 2-issue one, separately for the scalar regions,
the vector regions and the whole application.  The headline observations the
reproduction must preserve: the scalar regions barely improve beyond 4-issue
(paper: 1.24X from 2w→4w, then only 1.03X more to 8w) while the vector
regions keep scaling (2.49X average at 8w).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.metrics import arithmetic_mean, format_table
from repro.experiments.evaluation import SuiteEvaluation
from repro.sim.plan import ExperimentSweep

__all__ = ["USIMD_WIDTH_CONFIGS", "SWEEP", "generate", "render",
           "average_scalability"]

#: The µSIMD-VLIW configurations of the figure, in issue-width order.
USIMD_WIDTH_CONFIGS = ("usimd-2w", "usimd-4w", "usimd-8w")

#: The slice of the evaluation this figure needs, as data: every benchmark
#: on the three µSIMD widths with realistic memory.
SWEEP = ExperimentSweep(config_names=USIMD_WIDTH_CONFIGS, memory_modes=(False,))


def generate(evaluation: SuiteEvaluation) -> List[Dict[str, object]]:
    """One row per (benchmark, config): the three speed-ups over usimd-2w."""
    evaluation.ensure(SWEEP)
    rows: List[Dict[str, object]] = []
    for benchmark in evaluation.benchmark_names:
        reference = evaluation.run(benchmark, USIMD_WIDTH_CONFIGS[0])
        for config_name in USIMD_WIDTH_CONFIGS:
            run = evaluation.run(benchmark, config_name)
            rows.append({
                "benchmark": benchmark,
                "config": config_name,
                "scalar_speedup": run.scalar_region_speedup_over(reference),
                "vector_speedup": run.vector_region_speedup_over(reference),
                "application_speedup": run.speedup_over(reference),
            })
    return rows


def average_scalability(evaluation: SuiteEvaluation) -> Dict[str, Dict[str, float]]:
    """Average speed-up over benchmarks per configuration (the paper's summary)."""
    rows = generate(evaluation)
    summary: Dict[str, Dict[str, float]] = {}
    for config_name in USIMD_WIDTH_CONFIGS:
        config_rows = [r for r in rows if r["config"] == config_name]
        summary[config_name] = {
            "scalar": arithmetic_mean(r["scalar_speedup"] for r in config_rows),
            "vector": arithmetic_mean(r["vector_speedup"] for r in config_rows),
            "application": arithmetic_mean(r["application_speedup"] for r in config_rows),
        }
    return summary


def render(evaluation: SuiteEvaluation) -> str:
    """Text rendering of Figure 1 (per benchmark plus the averages)."""
    rows = generate(evaluation)
    table_rows = [[r["benchmark"], r["config"], r["scalar_speedup"],
                   r["vector_speedup"], r["application_speedup"]] for r in rows]
    summary = average_scalability(evaluation)
    for config_name, values in summary.items():
        table_rows.append(["AVERAGE", config_name, values["scalar"],
                           values["vector"], values["application"]])
    return format_table(
        ["benchmark", "config", "scalar regions", "vector regions", "application"],
        table_rows,
        title="Figure 1 — scalability of scalar vs vector regions (speed-up over usimd-2w)")
