"""Figure 5 — speed-up in the vector regions, perfect and realistic memory.

For every benchmark and every one of the ten configurations the paper plots
the vector-region speed-up over the 2-issue VLIW, once assuming perfect
memory (all accesses hit with their level's latency, Figure 5a) and once
with the full memory hierarchy simulated (Figure 5b).  The qualitative
features to preserve:

* µSIMD and Vector configurations far outperform the plain VLIW of the same
  width;
* the 2-issue Vector2 beats even the 8-issue µSIMD machine;
* mpeg2_enc loses a large fraction of its vector-region performance under
  realistic memory because motion estimation's vector accesses have a
  stride equal to the image width.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.metrics import arithmetic_mean, format_table
from repro.experiments.evaluation import SuiteEvaluation
from repro.sim.plan import ExperimentSweep

__all__ = ["SWEEP", "DEGRADATION_SWEEP", "generate", "render",
           "average_speedups", "memory_degradation"]

#: The figure needs every benchmark on every configuration in both memory
#: modes (panel a: perfect, panel b: realistic).
SWEEP = ExperimentSweep(memory_modes=(True, False))

#: The degradation summary compares the two modes on the 4-issue Vector2.
DEGRADATION_SWEEP = ExperimentSweep(config_names=("vector2-4w",),
                                    memory_modes=(True, False))


def generate(evaluation: SuiteEvaluation, perfect_memory: bool) -> List[Dict[str, object]]:
    """One row per (benchmark, configuration) with the vector-region speed-up."""
    evaluation.ensure(ExperimentSweep(memory_modes=(perfect_memory,)))
    rows: List[Dict[str, object]] = []
    for benchmark in evaluation.benchmark_names:
        for config_name in evaluation.config_names:
            rows.append({
                "benchmark": benchmark,
                "config": config_name,
                "perfect_memory": perfect_memory,
                "vector_region_speedup": evaluation.vector_region_speedup(
                    benchmark, config_name, perfect_memory),
            })
    return rows


def average_speedups(evaluation: SuiteEvaluation, perfect_memory: bool) -> Dict[str, float]:
    """Average vector-region speed-up per configuration."""
    rows = generate(evaluation, perfect_memory)
    out: Dict[str, float] = {}
    for config_name in evaluation.config_names:
        out[config_name] = arithmetic_mean(
            r["vector_region_speedup"] for r in rows if r["config"] == config_name)
    return out


def memory_degradation(evaluation: SuiteEvaluation) -> Dict[str, float]:
    """Per-benchmark slowdown of the vector regions when memory is realistic.

    Computed on the 4-issue Vector2 configuration as
    ``perfect_cycles⁻¹ / realistic_cycles⁻¹`` (values > 1 mean degradation);
    mpeg2_enc should be the clear outlier, as in the paper (close to 3×).
    """
    evaluation.ensure(DEGRADATION_SWEEP)
    out: Dict[str, float] = {}
    for benchmark in evaluation.benchmark_names:
        perfect = evaluation.run(benchmark, "vector2-4w", perfect_memory=True)
        realistic = evaluation.run(benchmark, "vector2-4w", perfect_memory=False)
        if perfect.vector_region_cycles:
            out[benchmark] = realistic.vector_region_cycles / perfect.vector_region_cycles
    return out


def render(evaluation: SuiteEvaluation) -> str:
    """Text rendering of Figures 5a and 5b plus the degradation summary."""
    sections = []
    for perfect in (True, False):
        label = "(a) perfect memory" if perfect else "(b) realistic memory"
        rows = generate(evaluation, perfect)
        table_rows = [[r["benchmark"], r["config"], r["vector_region_speedup"]]
                      for r in rows]
        for config, value in average_speedups(evaluation, perfect).items():
            table_rows.append(["AVERAGE", config, value])
        sections.append(format_table(
            ["benchmark", "config", "vector-region speed-up"],
            table_rows,
            title=f"Figure 5{label} — speed-up in vector regions over vliw-2w"))
    degradation = memory_degradation(evaluation)
    table_rows = [[name, value] for name, value in degradation.items()]
    sections.append(format_table(
        ["benchmark", "realistic / perfect vector-region cycles"],
        table_rows,
        title="Figure 5 — memory degradation of the vector regions (vector2-4w)"))
    return "\n\n".join(sections)
