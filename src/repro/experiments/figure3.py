"""Figure 3 — latency descriptors of scalar and vector operations.

Figure 3 of the paper is analytic: it shows the earliest/latest read and
write descriptors of a fully pipelined scalar operation versus a vector
operation whose completion depends on the vector length and the number of
lanes.  This module evaluates the descriptors from the machine latency model
for a sweep of vector lengths, which doubles as a regression test that the
model implements the formulas of the figure.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.metrics import format_table
from repro.isa.operations import Opcode
from repro.machine.config import get_config
from repro.machine.latency import LatencyModel

__all__ = ["generate", "render"]


def generate(config_name: str = "vector2-2w",
             vector_lengths=(1, 4, 8, 12, 16)) -> List[Dict[str, object]]:
    """Latency descriptors of a scalar ALU op, a vector ALU op and a vector load."""
    config = get_config(config_name)
    model = LatencyModel()
    rows: List[Dict[str, object]] = []
    for vl in vector_lengths:
        for opcode, kind in ((Opcode.ADD, "scalar alu"),
                             (Opcode.VADDW, "vector alu"),
                             (Opcode.VLOAD, "vector load")):
            descriptor = model.descriptor(opcode, vl, config)
            rows.append({
                "operation": kind,
                "vector_length": vl,
                "earliest_read": descriptor.earliest_read,
                "latest_read": descriptor.latest_read,
                "earliest_write": descriptor.earliest_write,
                "latest_write": descriptor.latest_write,
                "occupancy": model.occupancy(opcode, vl, config),
            })
    return rows


def render(config_name: str = "vector2-2w") -> str:
    """Text rendering of the Figure-3 descriptors."""
    rows = generate(config_name)
    table_rows = [[r["operation"], r["vector_length"], r["earliest_read"],
                   r["latest_read"], r["earliest_write"], r["latest_write"],
                   r["occupancy"]] for r in rows]
    return format_table(
        ["operation", "VL", "Ter", "Tlr", "Tew", "Tlw", "occupancy"],
        table_rows,
        title=f"Figure 3 — latency descriptors on {config_name} "
              "(Tlw = L + ceil((VL-1)/LN))")
