"""Figure 4 — static schedule of the motion-estimation (dist1) kernel.

The paper shows the schedule of the Vector-µSIMD version of the SAD kernel
on a 2-issue machine with two vector units and a 4×64-bit vector-cache port:
16 operations in ~18 cycles, against ~172 operations for the µSIMD version
of the same computation.  This module schedules the kernel with this
repository's compiler and reports the listing, the operation counts and the
schedule length.
"""

from __future__ import annotations

from typing import Dict

from repro.compiler.ir import ISAFlavor
from repro.core.architecture import VectorMicroSimdVliwMachine
from repro.workloads.mpeg2.motion import build_sad_kernel_program

__all__ = ["PAPER_VECTOR_OPS", "PAPER_USIMD_OPS", "generate", "render"]

#: Operation counts reported in the paper for this kernel.
PAPER_VECTOR_OPS = 16
PAPER_USIMD_OPS = 172


def generate(config_name: str = "vector2-2w") -> Dict[str, object]:
    """Schedule the kernel and collect the headline numbers."""
    machine = VectorMicroSimdVliwMachine.from_name(config_name)
    vector_program = build_sad_kernel_program(ISAFlavor.VECTOR)
    usimd_program = build_sad_kernel_program(ISAFlavor.USIMD)
    scalar_program = build_sad_kernel_program(ISAFlavor.SCALAR)

    segment = vector_program.segments()[0]
    schedule = machine.schedule_segment(segment)
    return {
        "config": config_name,
        "vector_operations": vector_program.dynamic_operation_count(),
        "usimd_operations": usimd_program.dynamic_operation_count(),
        "scalar_operations": scalar_program.dynamic_operation_count(),
        "schedule_cycles": schedule.initiation_interval,
        "schedule_drain": schedule.drain_cycles,
        "listing": schedule.format_table(),
        "paper_vector_operations": PAPER_VECTOR_OPS,
        "paper_usimd_operations": PAPER_USIMD_OPS,
    }


def render(config_name: str = "vector2-2w") -> str:
    """Text rendering of the Figure-4 reproduction."""
    data = generate(config_name)
    lines = [
        "Figure 4 — scheduling of motion estimation (dist1, 8x16 SAD)",
        f"  vector operations : {data['vector_operations']} "
        f"(paper: {data['paper_vector_operations']})",
        f"  uSIMD operations  : {data['usimd_operations']} "
        f"(paper: ~{data['paper_usimd_operations']})",
        f"  scalar operations : {data['scalar_operations']}",
        f"  schedule length   : {data['schedule_cycles']} cycles "
        f"(+{data['schedule_drain']} drain) on {data['config']}",
        "",
        data["listing"],
    ]
    return "\n".join(lines)
