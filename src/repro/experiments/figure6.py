"""Figure 6 — speed-up for complete applications.

Whole-application speed-up of every configuration over the 2-issue VLIW for
the evaluation's benchmarks plus the average.  ``PAPER_AVERAGE`` records the
average bars of the paper's last panel so the report can compare shapes
directly (with an extended ``--benchmarks`` selection the measured average
spans more benchmarks than the paper's).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.metrics import arithmetic_mean, format_table
from repro.experiments.evaluation import SuiteEvaluation
from repro.sim.plan import ExperimentSweep

__all__ = ["PAPER_AVERAGE", "PAPER_MPEG2_ENC", "SWEEP", "generate", "render",
           "average_speedups"]

#: Every benchmark on every configuration, realistic memory.
SWEEP = ExperimentSweep(memory_modes=(False,))

#: Average whole-application speed-ups from the paper's Figure 6 (last panel).
PAPER_AVERAGE: Dict[str, float] = {
    "vliw-2w": 1.00, "vliw-4w": 1.34, "vliw-8w": 1.50,
    "usimd-2w": 1.47, "usimd-4w": 1.94, "usimd-8w": 2.15,
    "vector1-2w": 1.79, "vector1-4w": 2.15,
    "vector2-2w": 1.80, "vector2-4w": 2.22,
}

#: mpeg2_enc speed-ups from the paper's Figure 6 (its best-scaling benchmark).
PAPER_MPEG2_ENC: Dict[str, float] = {
    "vliw-2w": 1.00, "vliw-4w": 1.43, "vliw-8w": 1.77,
    "usimd-2w": 2.81, "usimd-4w": 3.86, "usimd-8w": 4.47,
    "vector1-2w": 3.93, "vector1-4w": 4.54,
    "vector2-2w": 3.90, "vector2-4w": 4.74,
}


def generate(evaluation: SuiteEvaluation) -> List[Dict[str, object]]:
    """One row per (benchmark, configuration) with the application speed-up."""
    evaluation.ensure(SWEEP)
    rows: List[Dict[str, object]] = []
    for benchmark in evaluation.benchmark_names:
        for config_name in evaluation.config_names:
            rows.append({
                "benchmark": benchmark,
                "config": config_name,
                "application_speedup": evaluation.application_speedup(benchmark,
                                                                      config_name),
            })
    return rows


def average_speedups(evaluation: SuiteEvaluation) -> Dict[str, float]:
    """Average application speed-up per configuration (the paper's last panel)."""
    rows = generate(evaluation)
    return {
        config_name: arithmetic_mean(r["application_speedup"] for r in rows
                                     if r["config"] == config_name)
        for config_name in evaluation.config_names
    }


def render(evaluation: SuiteEvaluation) -> str:
    """Text rendering of Figure 6 with the paper's average bars alongside."""
    rows = generate(evaluation)
    table_rows = [[r["benchmark"], r["config"], r["application_speedup"], "-"]
                  for r in rows]
    for config, value in average_speedups(evaluation).items():
        table_rows.append(["AVERAGE", config, value, PAPER_AVERAGE.get(config, "-")])
    return format_table(
        ["benchmark", "config", "speed-up (measured)", "speed-up (paper, average)"],
        table_rows,
        title="Figure 6 — speed-up in complete applications over vliw-2w")
