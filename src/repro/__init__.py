"""repro — reproduction of the Vector-µSIMD-VLIW architecture (ICPP 2005).

This library rebuilds, in Python, the system evaluated in Esther Salamí and
Mateo Valero, *A Vector-µSIMD-VLIW Architecture for Multimedia
Applications*, ICPP 2005:

* the ISA layer (scalar VLIW, µSIMD packed operations and the MOM-style
  Vector-µSIMD extension with packed accumulators) — :mod:`repro.isa`;
* the ten machine configurations of Table 2 with their latency descriptors
  and resource constraints — :mod:`repro.machine`;
* the memory hierarchy with the two-bank L2 vector cache — :mod:`repro.memory`;
* the static (Trimaran-like) compiler: kernel IR, dependence analysis and
  the VLIW list scheduler with vector chaining — :mod:`repro.compiler`;
* the in-order, stall-on-violation timing simulator — :mod:`repro.sim`;
* the Mediabench-style workloads (JPEG, MPEG-2, GSM) written in the three
  ISA flavours — :mod:`repro.workloads`;
* the experiment harness that regenerates every table and figure of the
  paper's evaluation — :mod:`repro.experiments`.

Quick start::

    from repro import VectorMicroSimdVliwMachine
    from repro.workloads.mpeg2.motion import build_sad_kernel_program

    machine = VectorMicroSimdVliwMachine.from_name("vector2-2w")
    program = build_sad_kernel_program()          # Figure-4 kernel
    stats = machine.run(program)
    print(stats.total_cycles, stats.opc)
"""

from repro.core.architecture import VectorMicroSimdVliwMachine
from repro.core.runner import BenchmarkSpec, BenchmarkResult, run_benchmark
from repro.compiler.ir import ISAFlavor
from repro.compiler.builder import KernelBuilder
from repro.machine.config import PAPER_CONFIGS, PAPER_CONFIG_ORDER, get_config
from repro.machine.latency import LatencyModel

__version__ = "1.0.0"

__all__ = [
    "VectorMicroSimdVliwMachine",
    "BenchmarkSpec",
    "BenchmarkResult",
    "run_benchmark",
    "ISAFlavor",
    "KernelBuilder",
    "PAPER_CONFIGS",
    "PAPER_CONFIG_ORDER",
    "get_config",
    "LatencyModel",
    "__version__",
]
