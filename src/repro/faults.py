"""Deterministic fault injection for the execution/store/sweep layers.

PR 6's fuzz lane proved a robustness claim the only way that counts: by
injecting the failure and watching the system catch it.  This module is
the same discipline for crash safety.  A :class:`FaultPlan` describes a
small repertoire of failures —

* **kill a pool worker** after it completes its N-th run (or a run of a
  named benchmark): ``os.kill(getpid(), SIGKILL)``, the real thing, not a
  raised exception;
* **tear a store write** at a byte offset: the N-th
  :meth:`~repro.store.ResultStore.put` of the process writes a truncated
  payload *directly to the final path*, modelling a crashed writer on a
  filesystem without atomic replace;
* **fail a store put** with a chosen ``errno`` (``EIO``, ``ENOSPC``, …)
  a chosen number of times, modelling transient NFS/disk trouble;
* **stall heartbeats**: lease renewal threads stop renewing, so a peer
  sees the lease go stale and reclaims the shard.

The plan is installed process-wide (:func:`install_plan` /
:func:`clear_plan`, or the :func:`injected` context manager) and rides to
pool workers through ``repro.core.runner._worker_init``, so it works under
``fork`` and ``spawn`` alike.  Counters are **per process**: a worker
counts its own runs, the parent counts its own puts.  Production code
paths only ever call the cheap module-level hook functions, which are
no-ops while no plan is installed — the harness is test-only by
construction, not by build flag.
"""

from __future__ import annotations

import contextlib
import errno
import os
import signal
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "FaultPlan",
    "install_plan",
    "clear_plan",
    "active_plan",
    "injected",
    "note_worker_run",
    "claim_put_index",
    "maybe_fail_put",
    "maybe_tear_write",
    "heartbeats_stalled",
]


@dataclass
class FaultPlan:
    """One deliberate failure scenario, picklable so it rides to workers.

    All indices are 0-based and count events **within one process**.
    ``kill_once_marker`` names a file used as a cross-process mutex
    (``O_CREAT|O_EXCL``): when set, only the first worker to reach its
    kill condition actually dies — the acceptance scenarios kill *one*
    worker, not every worker.  Leave it ``None`` to model a poison
    request that kills every worker that touches it.
    """

    #: SIGKILL the current process after it completes this many runs.
    kill_worker_after_runs: Optional[int] = None
    #: SIGKILL the current process after it completes a run of this
    #: benchmark (a "poison request" when ``kill_once_marker`` is unset).
    kill_benchmark: Optional[str] = None
    #: Path of the at-most-once marker file guarding the kill.
    kill_once_marker: Optional[str] = None

    #: Tear the N-th ``ResultStore.put`` of this process: write the first
    #: ``tear_at_byte`` payload bytes straight to the final entry path.
    tear_put_index: Optional[int] = None
    tear_at_byte: int = 16

    #: Raise ``OSError(fail_put_errno)`` on the N-th put, up to
    #: ``fail_put_times`` attempts of that same put.
    fail_put_index: Optional[int] = None
    fail_put_errno: int = errno.EIO
    fail_put_times: int = 1

    #: Lease heartbeat threads stop renewing while this is set.
    stall_heartbeats: bool = False

    # -- per-process runtime counters (start fresh in every process the
    #    plan is installed in; not meaningful to set from outside) --
    runs_completed: int = field(default=0, repr=False)
    puts_seen: int = field(default=0, repr=False)
    put_failures_injected: int = field(default=0, repr=False)

    def _claim_kill(self) -> bool:
        """True when this process is the one that gets to die."""
        if self.kill_once_marker is None:
            return True
        try:
            fd = os.open(self.kill_once_marker,
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True


_ACTIVE: Optional[FaultPlan] = None


def install_plan(plan: FaultPlan) -> None:
    """Arm ``plan`` in this process (workers are armed by the runner)."""
    global _ACTIVE
    _ACTIVE = plan


def clear_plan() -> None:
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


@contextlib.contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of the block, then disarm it."""
    install_plan(plan)
    try:
        yield plan
    finally:
        clear_plan()


# ---------------------------------------------------------------- hooks
# Each hook is a no-op (one None check) while no plan is installed.

def note_worker_run(benchmark: str) -> None:
    """Called by a pool worker after each completed run; may not return."""
    plan = _ACTIVE
    if plan is None:
        return
    plan.runs_completed += 1
    doomed = False
    if (plan.kill_worker_after_runs is not None
            and plan.runs_completed >= plan.kill_worker_after_runs):
        doomed = True
    if plan.kill_benchmark is not None and benchmark == plan.kill_benchmark:
        doomed = True
    if doomed and plan._claim_kill():
        # the genuine article: no atexit handlers, no finally blocks, no
        # multiprocessing cleanup — exactly what `kill -9` leaves behind
        os.kill(os.getpid(), signal.SIGKILL)


def claim_put_index() -> Optional[int]:
    """Sequence number of the store put about to run (None: no plan)."""
    plan = _ACTIVE
    if plan is None:
        return None
    index = plan.puts_seen
    plan.puts_seen += 1
    return index


def maybe_fail_put(put_index: Optional[int]) -> None:
    """Raise the planned transient ``OSError`` for this put attempt."""
    plan = _ACTIVE
    if plan is None or put_index is None or plan.fail_put_index != put_index:
        return
    if plan.put_failures_injected >= plan.fail_put_times:
        return
    plan.put_failures_injected += 1
    raise OSError(plan.fail_put_errno,
                  f"injected fault: {os.strerror(plan.fail_put_errno)}")


def maybe_tear_write(put_index: Optional[int], path, payload: bytes) -> bool:
    """Tear this put's write if the plan says so; True when torn.

    The truncated payload is written **directly to the final path** — no
    temporary file, no atomic rename — which is what a crash mid-write
    looks like on a filesystem without atomic replace.  The caller must
    then skip its normal publish and report success, because that is what
    the torn writer believed happened.
    """
    plan = _ACTIVE
    if plan is None or put_index is None or plan.tear_put_index != put_index:
        return False
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(payload[:plan.tear_at_byte])
    return True


def heartbeats_stalled() -> bool:
    """True while the plan wants lease renewal threads frozen."""
    plan = _ACTIVE
    return plan is not None and plan.stall_heartbeats
