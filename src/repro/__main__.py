"""Unified command-line interface: ``python -m repro <command>``.

Commands
--------

``report``
    Regenerate every figure and table of the paper's evaluation
    (:mod:`repro.experiments.report`).  With a warm result store this is
    pure rendering — zero simulations.
``sweep``
    Populate the result store with a benchmark × Table-2-configuration ×
    memory-mode grid without rendering anything — the warm-up command for
    CI caches and shared stores.
``explore``
    Design-space exploration beyond Table 2 (:mod:`repro.explore`):
    generate parameterised configurations, sweep them resumably through
    the store, and print Pareto frontiers of speed-up vs issue slots.
``bench``
    Inspect the workload registry (:mod:`repro.workloads.registry`):
    ``bench list`` prints every registered benchmark with its parameter
    family, input sizes and tags.
``lint``
    The static analyzer (:mod:`repro.analysis`): lint every selected
    benchmark's kernel IR and independently verify the schedules the
    compiler produces for it on every requested configuration, printing
    typed ``REPxxx`` diagnostics (``docs/analysis.md`` has the catalog).
    ``--fuzz-seeds N`` additionally analyzes the synthetic programs of
    ``N`` deterministic fuzz seeds.  Exit code 1 when any *error*-severity
    finding exists; warnings and infos are reported but do not gate.
``fuzz``
    The standing trace-vs-interpreter fuzz lane (:mod:`repro.fuzz`):
    sweep synthetic-program seeds through both execution tiers, diff the
    statistics field for field, and on a mismatch shrink the program and
    write a replayable reproducer file.  Exit code 4 on mismatch.
``store``
    Inspect and repair the result store: ``store stats`` (entry counts,
    bytes, lease health), ``store verify`` (walk every entry, decode it,
    quarantine undecodable files to ``corrupt/``) and
    ``store scrub-leases`` (remove stale shard leases left by crashed
    sweep participants).

``report``, ``sweep`` and ``explore`` all take ``--benchmarks`` with the
same selector syntax: registry names, ``tag:<tag>`` (every benchmark
carrying the tag — e.g. ``tag:mediabench-plus`` for the extended
ten-benchmark suite), or ``all``.  ``bench list`` shows what is
selectable.

All simulation commands share the store flags: ``--store DIR`` selects a
persistent result store, ``--no-store`` disables it, and the
``REPRO_STORE`` environment variable supplies the default.  Unlike the
older module entry points, the unified CLI defaults to a store at
``.repro-store`` so repeated invocations get warm-start behaviour out of
the box.  ``--jobs`` (default ``REPRO_JOBS``, else 1) parallelises
simulation; results are byte-identical for any job count.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.experiments.evaluation import SuiteEvaluation
from repro.experiments.report import (
    add_benchmark_arguments,
    add_profile_argument,
    add_store_arguments,
    maybe_profile,
    resolve_benchmarks,
    resolve_jobs,
    resolve_store,
    resolve_strategies,
)
from repro.experiments.report import main as report_main
from repro.sim.engines import DEFAULT_ENGINE, ENGINE_NAMES
from repro.store import DEFAULT_LEASE_TTL
from repro.workloads.registry import registered_workloads, select_benchmarks
from repro.workloads.suite import BENCHMARK_NAMES, SuiteParameters

__all__ = ["main"]

#: Store directory the unified CLI uses when neither ``--store`` nor
#: ``REPRO_STORE`` names one.
DEFAULT_STORE_PATH = ".repro-store"


def _add_common(parser: argparse.ArgumentParser, tiny_flag: bool = True) -> None:
    if tiny_flag:
        parser.add_argument("--tiny", action="store_true",
                            help="test-sized inputs instead of the defaults")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: $REPRO_JOBS, else 1)")
    parser.add_argument("--engine", choices=list(ENGINE_NAMES),
                        default=DEFAULT_ENGINE,
                        help="execution tier (statistics are identical)")
    add_store_arguments(parser)
    add_profile_argument(parser)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sim.plan import ExperimentSweep

    store = resolve_store(args, default_path=DEFAULT_STORE_PATH)
    parameters = SuiteParameters.tiny() if args.tiny else SuiteParameters.default()
    evaluation = SuiteEvaluation(parameters=parameters,
                                 jobs=resolve_jobs(args.jobs),
                                 benchmark_names=tuple(args.benchmarks),
                                 engine=args.engine, store=store)
    start = time.time()
    with maybe_profile(args.profile):
        evaluation.ensure(ExperimentSweep(memory_modes=(False, True),
                                          strategies=tuple(args.strategy)))
    elapsed = time.time() - start
    total = (len(evaluation.benchmark_names) * len(evaluation.config_names)
             * 2 * len(args.strategy))
    loaded = total - evaluation.simulated_runs
    where = store.root if store is not None else "(no store)"
    print(f"swept {total} runs in {elapsed:.1f} s: {loaded} already stored, "
          f"{evaluation.simulated_runs} simulated -> {where}")
    return 0


def _params_summary(params: object) -> str:
    """``field=value`` rendering of a parameter dataclass, compact."""
    pairs = ((f.name, getattr(params, f.name))
             for f in dataclasses.fields(params))
    return " ".join(f"{name}={value}" for name, value in pairs)


def _cmd_bench(args: argparse.Namespace) -> int:
    definitions = registered_workloads()
    if args.selectors is not None:  # already resolved to names by main()
        definitions = {name: definitions[name] for name in args.selectors}
    if not definitions:
        print("no registered benchmarks match")
        return 1
    name_width = max(len("benchmark"), max(len(name) for name in definitions))
    family_width = max(len("family"),
                       max(len(d.family) for d in definitions.values()))
    print(f"{'benchmark':<{name_width}}  {'family':<{family_width}}  "
          f"tags / description / sizes")
    for name, definition in definitions.items():
        pad = " " * (name_width + family_width + 4)
        print(f"{name:<{name_width}}  {definition.family:<{family_width}}  "
              f"[{', '.join(definition.tags)}]")
        if definition.description:
            print(f"{pad}{definition.description}")
        print(f"{pad}default: {_params_summary(definition.default_params)}")
        print(f"{pad}tiny:    {_params_summary(definition.tiny_params)}")
    tags = sorted({tag for d in definitions.values() for tag in d.tags})
    print(f"\n{len(definitions)} benchmarks; tags: {', '.join(tags)}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_benchmarks, analyze_fuzz_seeds

    progress = None
    if args.verbose:
        progress = lambda line: print(line, file=sys.stderr)  # noqa: E731
    report = analyze_benchmarks(
        args.benchmarks,
        config_names=tuple(args.configs) if args.configs else None,
        tiny=args.tiny, progress=progress, strategies=args.strategy)
    if args.fuzz_seeds:
        report.extend(analyze_fuzz_seeds(
            args.fuzz_seeds, scale=args.scale,
            config_names=(tuple(args.configs) if args.configs
                          else ("vector2-2w",)),
            progress=progress, strategies=args.strategy))
    if args.json:
        print(report.to_json())
    else:
        print(report.format_text(limit=args.limit))
    return 1 if report.has_errors else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import DEFAULT_CONFIGS, run_fuzz

    result = run_fuzz(
        args.seeds,
        start_seed=args.start_seed,
        scale=args.scale,
        configs=tuple(args.configs) if args.configs else DEFAULT_CONFIGS,
        budget_seconds=args.budget,
        reproducer_dir=args.reproducer_dir,
        shrink=not args.no_shrink,
        progress=lambda line: print(line, file=sys.stderr),
        strategies=args.strategies,
    )
    note = " (budget exhausted)" if result.budget_exhausted else ""
    print(f"fuzzed {result.seeds_run} seeds, {result.comparisons} engine "
          f"comparisons{note}: {len(result.mismatches)} mismatch(es)")
    for mismatch in result.mismatches:
        where = f" -> {mismatch.reproducer}" if mismatch.reproducer else ""
        print(f"  seed {mismatch.seed} [{mismatch.flavor} {mismatch.config} "
              f"perfect={mismatch.perfect}] shrunk to "
              f"{mismatch.statements} statement(s){where}")
        print(f"    {mismatch.detail[:500]}")
    return 0 if result.ok else 4


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.explore import DesignSpace, run_exploration

    space = DesignSpace.smoke() if args.space == "smoke" else DesignSpace.default()
    store = resolve_store(args, default_path=DEFAULT_STORE_PATH)
    if args.coordinate and store is None:
        print("error: --coordinate needs a store (drop --no-store)",
              file=sys.stderr)
        return 2
    parameters = (SuiteParameters.default() if args.full_inputs
                  else SuiteParameters.tiny())
    start = time.time()
    with maybe_profile(args.profile):
        result = run_exploration(
            space=space,
            benchmarks=tuple(args.benchmarks),
            parameters=parameters,
            store=store,
            jobs=resolve_jobs(args.jobs),
            engine=args.engine,
            shard_size=args.shard_size,
            max_shards=args.max_shards,
            coordinate=args.coordinate,
            lease_ttl=args.lease_ttl,
            progress=lambda line: print(line, file=sys.stderr),
            strategies=args.strategy,
        )
    print(result.summary())
    print(f"[explored in {time.time() - start:.1f} s]", file=sys.stderr)
    return 0 if result.complete else 3


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import LeaseManager

    store = resolve_store(args, default_path=DEFAULT_STORE_PATH)
    if store is None:
        print("error: this command needs a store (pass --store DIR or set "
              "$REPRO_STORE)", file=sys.stderr)
        return 2
    manager = LeaseManager(store.root, ttl=args.lease_ttl)
    if args.store_command == "stats":
        entries = 0
        total_bytes = 0
        by_version: dict = {}
        for version, path in store.iter_entry_paths():
            entries += 1
            by_version[version] = by_version.get(version, 0) + 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
        quarantined = (sum(1 for p in store.corrupt_dir.iterdir()
                           if p.is_file())
                       if store.corrupt_dir.is_dir() else 0)
        records = manager.leases()
        stale = sum(1 for record in records if manager.is_stale(record))
        print(f"store {store.root} (current schema v{store.schema_version})")
        print(f"  entries: {entries} ({total_bytes} bytes)")
        for version in sorted(by_version):
            marker = "  <- current" if version == store.schema_version else ""
            print(f"    v{version}: {by_version[version]}{marker}")
        print(f"  quarantined corrupt files: {quarantined}")
        print(f"  leases: {len(records)} ({stale} stale, "
              f"ttl {manager.ttl:.0f}s)")
        return 0
    if args.store_command == "verify":
        report = store.verify(quarantine=not args.no_quarantine)
        print(report.summary())
        # corrupt entries that were quarantined are *repaired* — exit 0 so
        # CI lanes treat a self-healed store as healthy; --no-quarantine
        # is the "just look" mode and reports damage through the exit code
        return 1 if (args.no_quarantine and report.corrupt) else 0
    if args.store_command == "scrub-leases":
        removed = manager.scrub()
        live = len(manager.leases())
        print(f"scrubbed {len(removed)} stale lease(s); {live} live remain")
        for key in removed:
            print(f"  removed {key}")
        return 0
    raise AssertionError(f"unknown store command {args.store_command!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "report", add_help=False,
        help="regenerate every figure and table (see report --help)")

    sweep = sub.add_parser(
        "sweep", help="populate the result store with the full paper grid")
    _add_common(sweep)
    add_benchmark_arguments(sweep)
    sweep.add_argument("--strategy", nargs="+", default=None, metavar="NAME",
                       help="scheduler strategies to sweep (registered "
                            "names or 'all'; default: baseline)")

    # explore defaults to the tiny inputs already (a 108-point sweep at full
    # size is a long run), so it exposes the opposite flag instead of --tiny
    explore = sub.add_parser(
        "explore", help="sweep generated configurations; print Pareto summary")
    _add_common(explore, tiny_flag=False)
    explore.add_argument("--space", choices=("default", "smoke"),
                         default="default",
                         help="configuration space: the 108-point default "
                              "or an 8-point smoke space")
    add_benchmark_arguments(explore, default="gsm_enc jpeg_enc")
    explore.add_argument("--full-inputs", action="store_true",
                         help="use the full report input sizes (slow); the "
                              "default is the tiny test inputs")
    explore.add_argument("--strategy", nargs="+", default=None, metavar="NAME",
                         help="scheduler strategies as an exploration axis "
                              "(registered names or 'all'; default: "
                              "baseline)")
    explore.add_argument("--shard-size", type=int, default=40, metavar="N",
                         help="runs per resumable shard (default 40)")
    explore.add_argument("--max-shards", type=int, default=None, metavar="N",
                         help="stop after N shards (partial, resumable sweep)")
    explore.add_argument("--coordinate", action="store_true",
                         help="claim shards through store-side leases so "
                              "several processes can share one sweep "
                              "(requires a store)")
    explore.add_argument("--lease-ttl", type=float,
                         default=DEFAULT_LEASE_TTL, metavar="SECS",
                         help="heartbeat staleness threshold for "
                              "--coordinate (default "
                              f"{DEFAULT_LEASE_TTL:.0f}s)")

    lint = sub.add_parser(
        "lint", help="statically verify kernel IR and compiled schedules")
    add_benchmark_arguments(lint, default="all")
    lint.add_argument("--tiny", action="store_true",
                      help="test-sized inputs instead of the defaults")
    lint.add_argument("--configs", nargs="*", default=None, metavar="CONFIG",
                      help="machine configurations to verify on (default: "
                           "the full Table-2 set)")
    lint.add_argument("--fuzz-seeds", type=int, default=0, metavar="N",
                      help="also analyze the synthetic programs of N "
                           "deterministic fuzz seeds (default 0)")
    lint.add_argument("--scale", choices=("tiny", "default"), default="tiny",
                      help="generated sizes for --fuzz-seeds (default: tiny)")
    lint.add_argument("--limit", type=int, default=50, metavar="N",
                      help="findings shown in text mode before eliding "
                           "(default 50)")
    lint.add_argument("--strategy", nargs="+", default=None, metavar="NAME",
                      help="scheduler strategies to verify under "
                           "(registered names or 'all'; default: baseline)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable report on stdout")
    lint.add_argument("--verbose", action="store_true",
                      help="per-pair progress on stderr")

    fuzz = sub.add_parser(
        "fuzz", help="sweep synthetic seeds through both engines and diff")
    fuzz.add_argument("--seeds", type=int, default=50, metavar="N",
                      help="number of consecutive seeds to sweep (default 50)")
    fuzz.add_argument("--start-seed", type=int, default=0, metavar="K",
                      help="first seed of the sweep (default 0)")
    fuzz.add_argument("--budget", type=float, default=None, metavar="SECS",
                      help="wall-clock budget; the sweep stops early when "
                           "it runs out (checked between seeds)")
    fuzz.add_argument("--scale", choices=("tiny", "default"), default="tiny",
                      help="generated program sizes (default: tiny)")
    fuzz.add_argument("--configs", nargs="*", default=None, metavar="CONFIG",
                      help="machine configurations to compare on "
                           "(default: vector2-2w)")
    fuzz.add_argument("--reproducer-dir", default="fuzz-reproducers",
                      metavar="DIR",
                      help="where minimized reproducer files are written "
                           "on mismatch (created lazily; default: "
                           "fuzz-reproducers)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report mismatches without minimizing them")
    fuzz.add_argument("--strategies", nargs="+", default=None, metavar="NAME",
                      help="scheduler strategies to fuzz (registered names "
                           "or 'all'; default: baseline)")

    bench = sub.add_parser(
        "bench", help="inspect the workload registry")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_list = bench_sub.add_parser(
        "list", help="list registered benchmarks (sizes, tags, families)")
    bench_list.add_argument("selectors", nargs="*", metavar="SELECTOR",
                            help="restrict to these names / tag:<tag> "
                                 "selectors (default: every benchmark)")

    store_p = sub.add_parser(
        "store", help="inspect and repair the result store")
    store_sub = store_p.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser(
        "stats", help="entry counts, bytes and lease health")
    store_verify = store_sub.add_parser(
        "verify", help="decode every entry; quarantine undecodable files")
    store_verify.add_argument(
        "--no-quarantine", action="store_true",
        help="report corrupt entries without moving them; exit 1 if any")
    store_scrub = store_sub.add_parser(
        "scrub-leases", help="remove stale leases left by crashed sweeps")
    for sub_parser in (store_stats, store_verify, store_scrub):
        add_store_arguments(sub_parser)
        sub_parser.add_argument(
            "--lease-ttl", type=float, default=DEFAULT_LEASE_TTL,
            metavar="SECS",
            help="staleness threshold for lease reporting/scrubbing "
                 f"(default {DEFAULT_LEASE_TTL:.0f}s)")

    if argv is None:
        argv = sys.argv[1:]
    # `report` keeps its own argument parser (it predates this CLI); pass
    # everything after the subcommand through, adding the store default.
    if argv and argv[0] == "report":
        return report_main(argv[1:], default_store=DEFAULT_STORE_PATH)
    args = parser.parse_args(argv)
    # resolve the benchmark selectors up front (and only them) so a typo
    # is a clean one-line error — the registry's message already lists the
    # known names/tags — while failures inside a long run still traceback
    try:
        # strategy selectors share one vocabulary across the subcommands
        if hasattr(args, "strategy"):
            args.strategy = resolve_strategies(args.strategy)
        if hasattr(args, "strategies"):
            args.strategies = resolve_strategies(args.strategies)
        if args.command == "explore":
            from repro.explore import DEFAULT_BENCHMARKS
            args.benchmarks = list(resolve_benchmarks(args.benchmarks,
                                                      DEFAULT_BENCHMARKS))
        elif args.command == "sweep":
            args.benchmarks = resolve_benchmarks(args.benchmarks,
                                                 BENCHMARK_NAMES)
        elif args.command in ("fuzz", "lint"):
            if args.configs:
                from repro.machine.config import get_config
                for name in args.configs:
                    get_config(name)  # unknown names fail before the sweep
            if args.command == "lint":
                # the checker defaults to *every* registered workload —
                # synthetic presets included — not just the paper's six
                args.benchmarks = (select_benchmarks(args.benchmarks)
                                   if args.benchmarks
                                   else select_benchmarks(["all"]))
        elif args.command == "bench":
            args.selectors = (select_benchmarks(args.selectors)
                              if args.selectors else None)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    return {"sweep": _cmd_sweep, "explore": _cmd_explore,
            "bench": _cmd_bench, "fuzz": _cmd_fuzz, "lint": _cmd_lint,
            "store": _cmd_store}[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
