"""The trace-vs-interpreter fuzz lane: sweep, diff, shrink, reproduce.

``python -m repro fuzz --seeds N`` sweeps synthetic-program seeds through
both execution tiers and diffs their statistics field for field —
:meth:`~repro.sim.stats.RunStats.to_dict` *and* the hierarchy counters —
across ISA flavours, machine configurations and memory modes.  On a
mismatch the driver shrinks the failing
:class:`~repro.workloads.synthetic.spec.ProgramSpec` (drop statements and
loops, reduce trip counts, simplify fields) while the mismatch still
reproduces, then writes a minimal reproducer file that
``tests/test_reproducers.py`` replays as a permanent regression case.

The sweep is deterministic: seed ``k`` always generates the same programs
(see :func:`repro.workloads.synthetic.generator.params_for_seed`), so a
failure report is reproducible from its seed alone, and the reproducer
file pins the minimized spec exactly even if the generator later drifts.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.analyzer import verify_compiled
from repro.compiler.cache import compile_cached
from repro.compiler.ir import ISAFlavor
from repro.machine.config import get_config
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.engines import make_engine
from repro.workloads.synthetic.generator import params_for_seed
from repro.workloads.synthetic.spec import (
    LoopSpec,
    ProgramSpec,
    build_program,
    canonical_spec_json,
    count_statements,
    spec_from_dict,
    spec_to_dict,
)
from repro.workloads.synthetic import generate_spec

__all__ = [
    "DEFAULT_CONFIGS",
    "FLAVORS",
    "REPRODUCER_FORMAT",
    "Mismatch",
    "FuzzResult",
    "compare_spec",
    "shrink_spec",
    "write_reproducer",
    "load_reproducer",
    "check_reproducer",
    "run_fuzz",
]

#: Machine configurations the sweep compares on by default.  The vector
#: machine exercises every operation class of all three program flavours.
DEFAULT_CONFIGS: Tuple[str, ...] = ("vector2-2w",)

#: Program flavours every seed is built and compared in.
FLAVORS: Tuple[ISAFlavor, ...] = (ISAFlavor.SCALAR, ISAFlavor.USIMD,
                                  ISAFlavor.VECTOR)

#: Format tag of reproducer files (bumped on layout changes).
REPRODUCER_FORMAT = "repro-fuzz-reproducer/1"

#: Test-only fault-injection hook: called with ``(spec, stats)`` after the
#: trace tier ran, before the diff.  ``None`` in production.
CorruptHook = Optional[Callable[[ProgramSpec, object], None]]


# ---------------------------------------------------------------------------
# Field-for-field comparison
# ---------------------------------------------------------------------------

def _diff(prefix: str, a: object, b: object, out: List[str]) -> None:
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            _diff(f"{prefix}.{key}", a.get(key), b.get(key), out)
    elif isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            out.append(f"{prefix}: length {len(a)} != {len(b)}")
        else:
            for index, (x, y) in enumerate(zip(a, b)):
                _diff(f"{prefix}[{index}]", x, y, out)
    elif a != b:
        out.append(f"{prefix}: trace={a!r} interpreter={b!r}")


def _functional_fields(stats_dict: dict) -> dict:
    """The strategy-invariant slice of a ``RunStats`` dictionary.

    Scheduling strategies may only change *timing* (cycles, stalls) — the
    work performed per region (operations, micro-ops, memory accesses)
    must be byte-identical to baseline.  ``segment_executions`` is
    excluded: the unroller legitimately trades iteration count for body
    width.
    """
    keep = ("name", "vectorizable", "operations", "micro_ops",
            "memory_accesses")
    out = {}
    for name, region in sorted(stats_dict.get("regions", {}).items()):
        out[name] = {key: region.get(key) for key in keep}
    return out


def compare_spec(spec: ProgramSpec, flavor: ISAFlavor, config_name: str,
                 perfect: bool = False,
                 corrupt: CorruptHook = None,
                 strategy: str = "baseline") -> Optional[str]:
    """Run ``spec`` through both tiers; return a diff summary or ``None``.

    The comparison covers the full :class:`RunStats` dictionary *and* the
    memory-hierarchy counters, so a divergence anywhere in the model —
    cycle totals, per-region break-downs, per-level hit/miss counts —
    surfaces as a named field.

    Before any simulation the static analyzer verifies the compiled
    program (IR lints plus independent schedule checking); error-severity
    findings count as a failure with an ``analysis:``-prefixed detail, so
    a miscompiled seed is caught even when both engines agree on its
    (wrong) statistics.  Warnings do not fail a seed — random synthetic
    programs legitimately trip the heuristic overlap lint.

    With a non-baseline ``strategy`` the program is compiled under that
    strategy for the trace/interpreter diff, and the strategy-compiled
    interpreter run is additionally diffed against the *baseline*
    interpreter oracle on the functional fields (per-region operations,
    micro-ops, memory accesses) — a strategy may change cycles, never the
    work performed.
    """
    program = build_program(spec, flavor)
    config = get_config(config_name)
    compiled = compile_cached(program, config, strategy=strategy)
    # the same compiled program is compared in both memory modes — the
    # verification stamp (shared with check_or_raise) makes analysis
    # once-per-compilation rather than once-per-comparison
    if not getattr(compiled, "_analysis_verified", False):
        analysis = verify_compiled(compiled)
        if analysis.has_errors:
            return ("analysis: "
                    + "; ".join(d.format() for d in analysis.errors))
        compiled._analysis_verified = True
    results = {}
    for engine_name in ("trace", "interpreter"):
        hierarchy = MemoryHierarchy(config.memory, l1_ports=config.l1_ports,
                                    l2_port_words=config.l2_port_words,
                                    perfect=perfect)
        stats = make_engine(engine_name, compiled, hierarchy).run()
        if corrupt is not None and engine_name == "trace":
            corrupt(spec, stats)
        results[engine_name] = (stats.to_dict(), hierarchy.statistics())
    out: List[str] = []
    _diff("stats", results["trace"][0], results["interpreter"][0], out)
    _diff("hierarchy", results["trace"][1], results["interpreter"][1], out)
    if strategy != "baseline" and not out:
        baseline = compile_cached(program, config)
        hierarchy = MemoryHierarchy(config.memory, l1_ports=config.l1_ports,
                                    l2_port_words=config.l2_port_words,
                                    perfect=perfect)
        oracle = make_engine("interpreter", baseline, hierarchy).run()
        _diff(f"functional[{strategy}]",
              _functional_fields(results["interpreter"][0]),
              _functional_fields(oracle.to_dict()), out)
    return "; ".join(out) if out else None


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------

def _transform_at(nodes: Tuple, path: Tuple[int, ...], fn):
    """Rebuild ``nodes`` with ``fn`` applied at ``path`` (None = remove)."""
    index, rest = path[0], path[1:]
    new: List = list(nodes)
    if rest:
        node = new[index]
        new[index] = replace(node, body=_transform_at(node.body, rest, fn))
    else:
        result = fn(new[index])
        if result is None:
            del new[index]
        else:
            new[index] = result
    return tuple(new)


def _paths(nodes: Tuple, prefix: Tuple[int, ...] = ()):
    for index, node in enumerate(nodes):
        path = prefix + (index,)
        yield path, node
        if isinstance(node, LoopSpec):
            yield from _paths(node.body, path)


def _reductions(spec: ProgramSpec):
    """Yield candidate reduced specs, most aggressive first."""
    # 1. drop whole nodes (outer nodes first: one removal can kill a
    #    whole subtree of statements)
    for path, _ in _paths(spec.body):
        yield replace(spec, body=_transform_at(spec.body, path,
                                               lambda node: None))
    # 2. reduce loop trip counts
    for path, node in _paths(spec.body):
        if isinstance(node, LoopSpec) and node.trip > 1:
            for trip in (1, node.trip // 2):
                if trip != node.trip:
                    yield replace(spec, body=_transform_at(
                        spec.body, path,
                        lambda n, t=trip: replace(n, trip=t)))
    # 3. simplify statement fields
    simplifiers = (
        lambda s: replace(s, wrap=0) if s.wrap else None,
        lambda s: replace(s, coefs=()) if any(s.coefs) else None,
        lambda s: replace(s, stride=8) if s.stride != 8 else None,
        lambda s: replace(s, vl=1) if s.vl > 1 else None,
        lambda s: replace(s, length=1) if s.length > 1 else None,
        lambda s: replace(s, offset=0) if s.offset else None,
        lambda s: replace(s, store=False) if s.store else None,
    )
    for path, node in _paths(spec.body):
        if isinstance(node, LoopSpec):
            continue
        for simplify in simplifiers:
            reduced = simplify(node)
            if reduced is not None:
                yield replace(spec, body=_transform_at(
                    spec.body, path, lambda n, r=reduced: r))


def shrink_spec(spec: ProgramSpec,
                still_fails: Callable[[ProgramSpec], bool],
                max_steps: int = 2000) -> ProgramSpec:
    """Greedy delta-debugging: keep the smallest spec that still fails.

    Every accepted reduction strictly shrinks the spec (fewer nodes, a
    smaller trip count, or a simpler field), so the loop terminates; the
    ``max_steps`` cap bounds the number of *candidate evaluations* in the
    worst case.
    """
    current = spec
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _reductions(current):
            steps += 1
            if steps >= max_steps:
                break
            try:
                if still_fails(candidate):
                    current = candidate
                    improved = True
                    break
            except Exception:
                # a reduction that makes the program unbuildable or
                # unrunnable is simply not taken
                continue
    return current


# ---------------------------------------------------------------------------
# Reproducer files
# ---------------------------------------------------------------------------

def write_reproducer(directory: Path, *, spec: ProgramSpec,
                     flavor: ISAFlavor, config: str, perfect: bool,
                     seed: Optional[int], detail: str,
                     strategy: str = "baseline") -> Path:
    """Write a replayable reproducer JSON file; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": REPRODUCER_FORMAT,
        "seed": seed,
        "flavor": flavor.value,
        "config": config,
        "perfect": perfect,
        "detail": detail,
        "spec": spec_to_dict(spec),
    }
    # the strategy key is optional (absent = baseline) so pre-strategy
    # reproducer files replay unchanged without a format bump
    if strategy != "baseline":
        payload["strategy"] = strategy
    digest = hashlib.sha256(
        canonical_spec_json(spec).encode("utf-8")
        + f"|{flavor.value}|{config}|{perfect}|{strategy}".encode("utf-8")
    ).hexdigest()[:12]
    path = directory / f"reproducer_{digest}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_reproducer(path: Path) -> dict:
    """Decode a reproducer file into its replay ingredients."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("format") != REPRODUCER_FORMAT:
        raise ValueError(f"{path}: unsupported reproducer format "
                         f"{data.get('format')!r}")
    data["spec"] = spec_from_dict(data["spec"])
    data["flavor"] = ISAFlavor(data["flavor"])
    data["strategy"] = data.get("strategy", "baseline")
    return data


def check_reproducer(path: Path, corrupt: CorruptHook = None) -> Optional[str]:
    """Replay one reproducer; return the diff summary or ``None`` if fixed."""
    data = load_reproducer(path)
    return compare_spec(data["spec"], data["flavor"], data["config"],
                        perfect=bool(data["perfect"]), corrupt=corrupt,
                        strategy=data["strategy"])


# ---------------------------------------------------------------------------
# The sweep driver
# ---------------------------------------------------------------------------

@dataclass
class Mismatch:
    """One engine divergence, after shrinking."""

    seed: int
    flavor: str
    config: str
    perfect: bool
    detail: str
    statements: int
    reproducer: Optional[str] = None
    strategy: str = "baseline"


@dataclass
class FuzzResult:
    """Outcome of one :func:`run_fuzz` sweep."""

    seeds_run: int = 0
    comparisons: int = 0
    budget_exhausted: bool = False
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def run_fuzz(seeds: int, *, start_seed: int = 0, scale: str = "tiny",
             configs: Sequence[str] = DEFAULT_CONFIGS,
             flavors: Sequence[ISAFlavor] = FLAVORS,
             perfect_modes: Sequence[bool] = (False, True),
             strategies: Sequence[str] = ("baseline",),
             budget_seconds: Optional[float] = None,
             reproducer_dir: Optional[Path] = None,
             corrupt: CorruptHook = None,
             shrink: bool = True,
             progress: Optional[Callable[[str], None]] = None) -> FuzzResult:
    """Sweep ``seeds`` consecutive seeds through both tiers and diff.

    Stops early when ``budget_seconds`` runs out (checked between seeds).
    Each seed is compared under every ``strategies`` entry; non-baseline
    strategies additionally diff the functional fields against the
    baseline interpreter oracle (see :func:`compare_spec`).  On a
    mismatch: shrinks the failing spec while the same (flavor, config,
    memory-mode, strategy) combination still diverges, writes a
    reproducer into ``reproducer_dir`` (if given), records the find, and
    moves on to the next seed.
    """
    result = FuzzResult()
    started = time.monotonic()
    for seed in range(start_seed, start_seed + seeds):
        if budget_seconds is not None \
                and time.monotonic() - started >= budget_seconds:
            result.budget_exhausted = True
            break
        spec = generate_spec(params_for_seed(seed, scale))
        result.seeds_run += 1
        failure = None
        for flavor in flavors:
            for config in configs:
                for perfect in perfect_modes:
                    for strategy in strategies:
                        result.comparisons += 1
                        detail = compare_spec(spec, flavor, config,
                                              perfect=perfect,
                                              corrupt=corrupt,
                                              strategy=strategy)
                        if detail is not None:
                            failure = (flavor, config, perfect, strategy,
                                       detail)
                            break
                    if failure:
                        break
                if failure:
                    break
            if failure:
                break
        if failure is None:
            if progress is not None and (seed - start_seed) % 25 == 24:
                progress(f"seed {seed}: clean "
                         f"({result.comparisons} comparisons)")
            continue
        flavor, config, perfect, strategy, detail = failure
        if progress is not None:
            progress(f"seed {seed}: MISMATCH [{flavor.value} {config} "
                     f"perfect={perfect} strategy={strategy}] {detail[:200]}")
        if shrink:
            spec = shrink_spec(
                spec,
                lambda candidate: compare_spec(
                    candidate, flavor, config, perfect=perfect,
                    corrupt=corrupt, strategy=strategy) is not None)
            detail = compare_spec(spec, flavor, config, perfect=perfect,
                                  corrupt=corrupt, strategy=strategy) or detail
        mismatch = Mismatch(seed=seed, flavor=flavor.value, config=config,
                            perfect=perfect, detail=detail,
                            statements=count_statements(spec),
                            strategy=strategy)
        if reproducer_dir is not None:
            path = write_reproducer(Path(reproducer_dir), spec=spec,
                                    flavor=flavor, config=config,
                                    perfect=perfect, seed=seed, detail=detail,
                                    strategy=strategy)
            mismatch.reproducer = str(path)
            if progress is not None:
                progress(f"seed {seed}: shrunk to "
                         f"{mismatch.statements} statement(s) -> {path}")
        result.mismatches.append(mismatch)
    return result
