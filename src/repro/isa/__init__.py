"""Instruction-set layer of the Vector-µSIMD-VLIW reproduction.

This package provides three things:

* :mod:`repro.isa.packed` — the functional (NumPy based) semantics of the
  µSIMD sub-word operations.  These mirror the 67 MMX/SSE-integer style
  opcodes the paper adds to the HPL-PD base ISA: packed 8/16/32-bit
  arithmetic with wrap-around and saturating variants, packed compares,
  min/max, averages, sum-of-absolute-differences, pack/unpack and shifts.
* :mod:`repro.isa.vectorops` — the Vector-µSIMD (MOM-style) extension:
  vector registers of up to 16 packed 64-bit words, vector load/store with a
  stride register, element-wise vector forms of every packed operation and
  the 192-bit packed accumulators used for reductions.
* :mod:`repro.isa.operations` / :mod:`repro.isa.registers` — the *metadata*
  view of the same ISA used by the compiler and the timing simulator:
  opcode classes, functional-unit requirements, micro-operation accounting
  and register-file descriptions.

The functional layer is what the paper calls the "emulation library": media
kernels are written against it once per ISA flavour, and the tests verify
that the scalar, µSIMD and Vector-µSIMD versions of every kernel compute
bit-identical results.
"""

from repro.isa import packed, vectorops
from repro.isa.operations import (
    OpClass,
    Opcode,
    OperationDescriptor,
    OPCODE_TABLE,
    micro_ops_for,
)
from repro.isa.registers import (
    RegisterClass,
    RegisterFileSpec,
    SpecialRegister,
    VectorRegisterValue,
    AccumulatorValue,
)

__all__ = [
    "packed",
    "vectorops",
    "OpClass",
    "Opcode",
    "OperationDescriptor",
    "OPCODE_TABLE",
    "micro_ops_for",
    "RegisterClass",
    "RegisterFileSpec",
    "SpecialRegister",
    "VectorRegisterValue",
    "AccumulatorValue",
]
