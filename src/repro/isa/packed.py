"""Functional semantics of the µSIMD (sub-word SIMD) operations.

The µSIMD-VLIW machine of the paper extends a 64-bit VLIW core with packed
registers: a single 64-bit register holds eight 8-bit, four 16-bit or two
32-bit elements, and the functional units operate on all elements in
parallel.  This module implements those operations functionally on NumPy
arrays so that media kernels can be written exactly the way the paper's
"emulation library" versions were written, and so that the µSIMD and
Vector-µSIMD versions of each kernel can be checked against the plain scalar
reference for bit-exactness.

Conventions
-----------
* A *packed word* is represented by a NumPy array whose **last axis** is the
  sub-word (lane) axis: shape ``(..., 8)`` for 8-bit data, ``(..., 4)`` for
  16-bit data and ``(..., 2)`` for 32-bit data.  All operations broadcast
  over the leading axes, which is what lets the Vector-µSIMD layer reuse
  them unchanged with a leading vector-length axis.
* Wrap-around ("modular") operations keep the input dtype and wrap exactly
  like the hardware would.
* Saturating operations clamp to the representable range of the *output*
  dtype (signed or unsigned), mirroring MMX/SSE2 semantics.
* Widening operations (e.g. :func:`pmulhw`, :func:`psadbw`) return wider
  dtypes; callers that need to repack use the ``pack*`` helpers.

The element-count constants :data:`LANES_8`, :data:`LANES_16` and
:data:`LANES_32` document the shape contract; they are also used by the
timing layer to account micro-operations.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "LANES_8",
    "LANES_16",
    "LANES_32",
    "WORD_BITS",
    "ensure_lanes",
    "saturate",
    # packed arithmetic
    "paddb",
    "paddw",
    "paddd",
    "paddsb",
    "paddsw",
    "paddusb",
    "paddusw",
    "psubb",
    "psubw",
    "psubd",
    "psubsb",
    "psubsw",
    "psubusb",
    "psubusw",
    "pmullw",
    "pmulhw",
    "pmaddwd",
    "pavgb",
    "pavgw",
    "pabsb",
    "pabsw",
    "pabsdiffb",
    "psadbw",
    "pminub",
    "pmaxub",
    "pminsw",
    "pmaxsw",
    # compares / logical
    "pcmpeqb",
    "pcmpeqw",
    "pcmpgtb",
    "pcmpgtw",
    "pand",
    "pandn",
    "por",
    "pxor",
    # shifts
    "psllw",
    "psrlw",
    "psraw",
    "pslld",
    "psrld",
    "psrad",
    # pack / unpack / shuffle
    "packuswb",
    "packsswb",
    "packssdw",
    "punpcklbw",
    "punpckhbw",
    "punpcklwd",
    "punpckhwd",
    "unpack_u8_to_s16",
    "pack_s16_to_u8",
    "pshufw",
    # conversions between packed words and flat element streams
    "to_packed",
    "from_packed",
]

#: Number of 8-bit lanes in a 64-bit packed word.
LANES_8 = 8
#: Number of 16-bit lanes in a 64-bit packed word.
LANES_16 = 4
#: Number of 32-bit lanes in a 64-bit packed word.
LANES_32 = 2
#: Width of a µSIMD register in bits.
WORD_BITS = 64

_SIGNED_RANGES = {
    np.dtype(np.int8): (-128, 127),
    np.dtype(np.int16): (-32768, 32767),
    np.dtype(np.int32): (-(2 ** 31), 2 ** 31 - 1),
}
_UNSIGNED_RANGES = {
    np.dtype(np.uint8): (0, 255),
    np.dtype(np.uint16): (0, 65535),
    np.dtype(np.uint32): (0, 2 ** 32 - 1),
}


def ensure_lanes(array: np.ndarray, lanes: int) -> np.ndarray:
    """Validate that ``array`` ends with a lane axis of length ``lanes``.

    Raises
    ------
    ValueError
        If the trailing axis does not match the expected lane count.  This is
        the packed-word shape contract described in the module docstring.
    """
    arr = np.asarray(array)
    if arr.ndim == 0 or arr.shape[-1] != lanes:
        raise ValueError(
            f"expected a packed word with {lanes} lanes on the last axis, "
            f"got shape {arr.shape}"
        )
    return arr


def saturate(values: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Clamp ``values`` to the representable range of ``dtype`` and cast.

    This is the single saturation primitive shared by every saturating
    opcode; the ranges are looked up from the dtype so that new element
    widths only need a table entry.
    """
    dtype = np.dtype(dtype)
    if dtype in _SIGNED_RANGES:
        lo, hi = _SIGNED_RANGES[dtype]
    elif dtype in _UNSIGNED_RANGES:
        lo, hi = _UNSIGNED_RANGES[dtype]
    else:  # pragma: no cover - defensive
        raise TypeError(f"unsupported saturation dtype {dtype}")
    return np.clip(np.asarray(values, dtype=np.int64), lo, hi).astype(dtype)


def _wrap_binary(a: np.ndarray, b: np.ndarray, op, dtype) -> np.ndarray:
    """Apply ``op`` with wrap-around semantics in ``dtype``."""
    a = np.asarray(a, dtype=dtype)
    b = np.asarray(b, dtype=dtype)
    with np.errstate(over="ignore"):
        return op(a, b).astype(dtype)


# ---------------------------------------------------------------------------
# Packed addition / subtraction
# ---------------------------------------------------------------------------

def paddb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed 8-bit add with wrap-around (eight lanes)."""
    return _wrap_binary(a, b, np.add, np.uint8)


def paddw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed 16-bit add with wrap-around (four lanes)."""
    return _wrap_binary(a, b, np.add, np.int16)


def paddd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed 32-bit add with wrap-around (two lanes)."""
    return _wrap_binary(a, b, np.add, np.int32)


def paddsb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed signed 8-bit add with saturation."""
    wide = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
    return saturate(wide, np.int8)


def paddsw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed signed 16-bit add with saturation."""
    wide = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
    return saturate(wide, np.int16)


def paddusb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed unsigned 8-bit add with saturation."""
    wide = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
    return saturate(wide, np.uint8)


def paddusw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed unsigned 16-bit add with saturation."""
    wide = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
    return saturate(wide, np.uint16)


def psubb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed 8-bit subtract with wrap-around."""
    return _wrap_binary(a, b, np.subtract, np.uint8)


def psubw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed 16-bit subtract with wrap-around."""
    return _wrap_binary(a, b, np.subtract, np.int16)


def psubd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed 32-bit subtract with wrap-around."""
    return _wrap_binary(a, b, np.subtract, np.int32)


def psubsb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed signed 8-bit subtract with saturation."""
    wide = np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64)
    return saturate(wide, np.int8)


def psubsw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed signed 16-bit subtract with saturation."""
    wide = np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64)
    return saturate(wide, np.int16)


def psubusb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed unsigned 8-bit subtract with saturation (clamps at zero)."""
    wide = np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64)
    return saturate(wide, np.uint8)


def psubusw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed unsigned 16-bit subtract with saturation (clamps at zero)."""
    wide = np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64)
    return saturate(wide, np.uint16)


# ---------------------------------------------------------------------------
# Packed multiplication and multiply-accumulate
# ---------------------------------------------------------------------------

def pmullw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed 16-bit multiply, low 16 bits of each product."""
    wide = np.asarray(a, dtype=np.int32) * np.asarray(b, dtype=np.int32)
    return (wide & 0xFFFF).astype(np.uint16).astype(np.int16)


def pmulhw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed signed 16-bit multiply, high 16 bits of each product."""
    wide = np.asarray(a, dtype=np.int32) * np.asarray(b, dtype=np.int32)
    return (wide >> 16).astype(np.int16)


def pmaddwd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed multiply-add: 4×16-bit products summed pairwise per word.

    ``result[..., j] = a[..., 2j]*b[..., 2j] + a[..., 2j+1]*b[..., 2j+1]``

    The arithmetic is carried out in 64-bit so the pairwise dot product is
    exact for every 16-bit input, including the MMX corner case where two
    ``(-32768)²`` products sum to ``2³¹`` and would wrap a 32-bit result.
    The paper's machine feeds these partial sums into wide (192-bit) packed
    accumulators, so no saturation or wrap-around is applied.
    """
    a = ensure_lanes(np.asarray(a, dtype=np.int64), LANES_16)
    b = ensure_lanes(np.asarray(b, dtype=np.int64), LANES_16)
    prod = a * b
    return prod[..., 0::2] + prod[..., 1::2]


# ---------------------------------------------------------------------------
# Averages, absolute values and sum of absolute differences
# ---------------------------------------------------------------------------

def pavgb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed unsigned 8-bit average with rounding: ``(a + b + 1) >> 1``."""
    wide = np.asarray(a, dtype=np.int32) + np.asarray(b, dtype=np.int32) + 1
    return (wide >> 1).astype(np.uint8)


def pavgw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed unsigned 16-bit average with rounding."""
    wide = np.asarray(a, dtype=np.int32) + np.asarray(b, dtype=np.int32) + 1
    return (wide >> 1).astype(np.uint16)


def pabsb(a: np.ndarray) -> np.ndarray:
    """Packed 8-bit absolute value (signed input, unsigned result)."""
    return np.abs(np.asarray(a, dtype=np.int16)).astype(np.uint8)


def pabsw(a: np.ndarray) -> np.ndarray:
    """Packed 16-bit absolute value (signed input, unsigned result)."""
    return np.abs(np.asarray(a, dtype=np.int32)).astype(np.uint16)


def pabsdiffb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed 8-bit absolute difference, one result per lane (no reduction)."""
    wide = np.abs(np.asarray(a, dtype=np.int32) - np.asarray(b, dtype=np.int32))
    return wide.astype(np.uint8)


def psadbw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sum of absolute differences of eight unsigned bytes.

    Returns one integer per packed word (the leading axes are preserved and
    the lane axis is reduced), exactly what the paper's SAD operation feeds
    into the packed accumulator.
    """
    a = ensure_lanes(np.asarray(a, dtype=np.int32), LANES_8)
    b = ensure_lanes(np.asarray(b, dtype=np.int32), LANES_8)
    return np.abs(a - b).sum(axis=-1).astype(np.int64)


def pminub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed unsigned 8-bit minimum."""
    return np.minimum(np.asarray(a, dtype=np.uint8), np.asarray(b, dtype=np.uint8))


def pmaxub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed unsigned 8-bit maximum."""
    return np.maximum(np.asarray(a, dtype=np.uint8), np.asarray(b, dtype=np.uint8))


def pminsw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed signed 16-bit minimum."""
    return np.minimum(np.asarray(a, dtype=np.int16), np.asarray(b, dtype=np.int16))


def pmaxsw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed signed 16-bit maximum."""
    return np.maximum(np.asarray(a, dtype=np.int16), np.asarray(b, dtype=np.int16))


# ---------------------------------------------------------------------------
# Compares and logical operations
# ---------------------------------------------------------------------------

def _cmp_mask(mask: np.ndarray, dtype) -> np.ndarray:
    """Convert a boolean mask to the all-ones/all-zeros lane mask format."""
    info = np.iinfo(dtype)
    ones = np.array(info.max if info.min == 0 else -1, dtype=dtype)
    return np.where(mask, ones, np.array(0, dtype=dtype)).astype(dtype)


def pcmpeqb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed 8-bit compare-equal producing 0xFF / 0x00 lane masks."""
    return _cmp_mask(np.asarray(a, dtype=np.uint8) == np.asarray(b, dtype=np.uint8), np.uint8)


def pcmpeqw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed 16-bit compare-equal producing lane masks."""
    return _cmp_mask(np.asarray(a, dtype=np.int16) == np.asarray(b, dtype=np.int16), np.int16)


def pcmpgtb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed signed 8-bit compare-greater-than producing lane masks."""
    return _cmp_mask(np.asarray(a, dtype=np.int8) > np.asarray(b, dtype=np.int8), np.uint8)


def pcmpgtw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed signed 16-bit compare-greater-than producing lane masks."""
    return _cmp_mask(np.asarray(a, dtype=np.int16) > np.asarray(b, dtype=np.int16), np.int16)


def pand(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise AND of packed words (lane width agnostic)."""
    return np.bitwise_and(a, b)


def pandn(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise AND-NOT: ``(~a) & b`` (MMX ``pandn`` semantics)."""
    return np.bitwise_and(np.bitwise_not(a), b)


def por(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise OR of packed words."""
    return np.bitwise_or(a, b)


def pxor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise XOR of packed words."""
    return np.bitwise_xor(a, b)


# ---------------------------------------------------------------------------
# Shifts
# ---------------------------------------------------------------------------

def psllw(a: np.ndarray, count: int) -> np.ndarray:
    """Packed 16-bit logical shift left by an immediate count."""
    wide = np.asarray(a, dtype=np.int32) << int(count)
    return (wide & 0xFFFF).astype(np.uint16).astype(np.int16)


def psrlw(a: np.ndarray, count: int) -> np.ndarray:
    """Packed 16-bit logical shift right by an immediate count."""
    return (np.asarray(a, dtype=np.uint16) >> int(count)).astype(np.uint16)


def psraw(a: np.ndarray, count: int) -> np.ndarray:
    """Packed 16-bit arithmetic shift right by an immediate count."""
    return (np.asarray(a, dtype=np.int16) >> int(count)).astype(np.int16)


def pslld(a: np.ndarray, count: int) -> np.ndarray:
    """Packed 32-bit logical shift left by an immediate count."""
    wide = np.asarray(a, dtype=np.int64) << int(count)
    return (wide & 0xFFFFFFFF).astype(np.uint32).astype(np.int32)


def psrld(a: np.ndarray, count: int) -> np.ndarray:
    """Packed 32-bit logical shift right by an immediate count."""
    return (np.asarray(a, dtype=np.uint32) >> int(count)).astype(np.uint32)


def psrad(a: np.ndarray, count: int) -> np.ndarray:
    """Packed 32-bit arithmetic shift right by an immediate count."""
    return (np.asarray(a, dtype=np.int32) >> int(count)).astype(np.int32)


# ---------------------------------------------------------------------------
# Pack / unpack / shuffle
# ---------------------------------------------------------------------------

def packuswb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pack two 4×16-bit words into one 8×8-bit word with unsigned saturation."""
    a = ensure_lanes(a, LANES_16)
    b = ensure_lanes(b, LANES_16)
    joined = np.concatenate([np.asarray(a, np.int64), np.asarray(b, np.int64)], axis=-1)
    return saturate(joined, np.uint8)


def packsswb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pack two 4×16-bit words into one 8×8-bit word with signed saturation."""
    a = ensure_lanes(a, LANES_16)
    b = ensure_lanes(b, LANES_16)
    joined = np.concatenate([np.asarray(a, np.int64), np.asarray(b, np.int64)], axis=-1)
    return saturate(joined, np.int8)


def packssdw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pack two 2×32-bit words into one 4×16-bit word with signed saturation."""
    a = ensure_lanes(a, LANES_32)
    b = ensure_lanes(b, LANES_32)
    joined = np.concatenate([np.asarray(a, np.int64), np.asarray(b, np.int64)], axis=-1)
    return saturate(joined, np.int16)


def punpcklbw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Interleave the low four bytes of ``a`` and ``b``."""
    a = ensure_lanes(a, LANES_8)
    b = ensure_lanes(b, LANES_8)
    out = np.empty(a.shape, dtype=np.result_type(a, b))
    out[..., 0::2] = a[..., :4]
    out[..., 1::2] = b[..., :4]
    return out


def punpckhbw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Interleave the high four bytes of ``a`` and ``b``."""
    a = ensure_lanes(a, LANES_8)
    b = ensure_lanes(b, LANES_8)
    out = np.empty(a.shape, dtype=np.result_type(a, b))
    out[..., 0::2] = a[..., 4:]
    out[..., 1::2] = b[..., 4:]
    return out


def punpcklwd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Interleave the low two 16-bit lanes of ``a`` and ``b``."""
    a = ensure_lanes(a, LANES_16)
    b = ensure_lanes(b, LANES_16)
    out = np.empty(a.shape, dtype=np.result_type(a, b))
    out[..., 0::2] = a[..., :2]
    out[..., 1::2] = b[..., :2]
    return out


def punpckhwd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Interleave the high two 16-bit lanes of ``a`` and ``b``."""
    a = ensure_lanes(a, LANES_16)
    b = ensure_lanes(b, LANES_16)
    out = np.empty(a.shape, dtype=np.result_type(a, b))
    out[..., 0::2] = a[..., 2:]
    out[..., 1::2] = b[..., 2:]
    return out


def unpack_u8_to_s16(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Zero-extend an 8×u8 word into two 4×s16 words ``(low, high)``.

    This is the idiomatic MMX "punpcklbw/punpckhbw with zero" sequence used
    by every kernel that promotes pixels to 16 bits before arithmetic.
    """
    a = ensure_lanes(np.asarray(a, dtype=np.uint8), LANES_8)
    wide = a.astype(np.int16)
    return wide[..., :4], wide[..., 4:]


def pack_s16_to_u8(low: np.ndarray, high: np.ndarray) -> np.ndarray:
    """Pack two 4×s16 words into one 8×u8 word with unsigned saturation."""
    return packuswb(low, high)


def pshufw(a: np.ndarray, order: Tuple[int, int, int, int]) -> np.ndarray:
    """Shuffle the four 16-bit lanes of ``a`` according to ``order``."""
    a = ensure_lanes(a, LANES_16)
    idx = np.asarray(order, dtype=np.intp)
    if idx.shape != (LANES_16,):
        raise ValueError("pshufw order must have exactly four entries")
    return a[..., idx]


# ---------------------------------------------------------------------------
# Packing helpers between flat element streams and packed-word layout
# ---------------------------------------------------------------------------

def to_packed(flat: np.ndarray, lanes: int) -> np.ndarray:
    """Reshape a flat element stream into packed words of ``lanes`` elements.

    The stream length must be a multiple of ``lanes``; kernels pad their
    buffers to packed-word boundaries the same way the hand-written
    emulation-library codes in the paper do.
    """
    flat = np.asarray(flat)
    if flat.shape[-1] % lanes != 0:
        raise ValueError(
            f"stream of {flat.shape[-1]} elements is not a multiple of {lanes} lanes"
        )
    return flat.reshape(flat.shape[:-1] + (flat.shape[-1] // lanes, lanes))


def from_packed(packed_words: np.ndarray) -> np.ndarray:
    """Flatten packed words back into a contiguous element stream."""
    packed_words = np.asarray(packed_words)
    return packed_words.reshape(packed_words.shape[:-2] + (-1,))
