"""Functional semantics of the Vector-µSIMD (MOM-style) extension.

The Vector-µSIMD ISA of the paper is "a conventional vector ISA where each
operation is an MMX-like operation": a vector register holds up to
:data:`MAX_VL` 64-bit packed words (so up to a 16×8 matrix of bytes), vector
loads and stores move packed words between memory and the vector register
file under the control of two special registers (vector length ``VL`` and
vector stride ``VS``), and every µSIMD computation opcode has a vector form
that applies it to all ``VL`` words.  Reductions use 192-bit *packed
accumulators* (modelled after MDMX): a SAD or multiply-accumulate vector
operation adds one partial result per vector element into the accumulator,
and a final ``SUM`` operation collapses the accumulator into a scalar.

This module provides the functional layer only; timing is handled by
:mod:`repro.machine` and :mod:`repro.sim`.  Values follow the same NumPy
shape conventions as :mod:`repro.isa.packed`: a vector register value is an
array of shape ``(VL, lanes)``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.isa import packed

__all__ = [
    "MAX_VL",
    "VectorState",
    "vload",
    "vstore",
    "vload_words",
    "vstore_words",
    "vmap",
    "vmap2",
    "vaddw",
    "vsubw",
    "vaddb",
    "vsubb",
    "vmullw",
    "vmulhw",
    "vmaddwd",
    "vpavgb",
    "vpabsdiffb",
    "vpackuswb",
    "vunpack_u8_to_s16",
    "vsad_accumulate",
    "vmac_accumulate",
    "accumulator_sum",
    "accumulator_zero",
]

#: Maximum vector length (packed 64-bit words per vector register).
MAX_VL = 16


class VectorState:
    """Architectural state of the vector extension used by functional kernels.

    Holds the two special registers the ISA requires (vector length and
    vector stride).  Kernels set them before issuing vector memory or
    computation operations, mirroring the way the emulation library sets the
    ``VL``/``VS`` registers in the paper's hand-written codes.
    """

    def __init__(self, vl: int = MAX_VL, vs: int = 1) -> None:
        self.vl = vl
        self.vs = vs

    @property
    def vl(self) -> int:
        """Current vector length in packed words (1..16)."""
        return self._vl

    @vl.setter
    def vl(self, value: int) -> None:
        value = int(value)
        if not 1 <= value <= MAX_VL:
            raise ValueError(f"vector length must be in [1, {MAX_VL}], got {value}")
        self._vl = value

    @property
    def vs(self) -> int:
        """Current vector stride in packed 64-bit words (>= 1)."""
        return self._vs

    @vs.setter
    def vs(self, value: int) -> None:
        value = int(value)
        if value < 1:
            raise ValueError(f"vector stride must be >= 1, got {value}")
        self._vs = value


# ---------------------------------------------------------------------------
# Vector memory operations
# ---------------------------------------------------------------------------

def vload_words(memory: np.ndarray, base_word: int, vl: int, vs: int) -> np.ndarray:
    """Load ``vl`` packed words from ``memory`` starting at ``base_word``.

    ``memory`` is an array of packed words (shape ``(n_words, lanes)``);
    ``vs`` is the stride between consecutive vector elements, measured in
    packed words, exactly as the ``VS`` register defines it.
    """
    memory = np.asarray(memory)
    idx = base_word + vs * np.arange(vl)
    if idx[-1] >= memory.shape[0] or base_word < 0:
        raise IndexError(
            f"vector load out of bounds: base={base_word} stride={vs} vl={vl} "
            f"memory has {memory.shape[0]} words"
        )
    return memory[idx].copy()


def vstore_words(memory: np.ndarray, base_word: int, value: np.ndarray, vs: int) -> None:
    """Store the ``(VL, lanes)`` value into ``memory`` with stride ``vs`` words."""
    memory = np.asarray(memory)
    value = np.asarray(value)
    vl = value.shape[0]
    idx = base_word + vs * np.arange(vl)
    if idx[-1] >= memory.shape[0] or base_word < 0:
        raise IndexError(
            f"vector store out of bounds: base={base_word} stride={vs} vl={vl} "
            f"memory has {memory.shape[0]} words"
        )
    memory[idx] = value


def vload(memory: np.ndarray, base_word: int, state: VectorState) -> np.ndarray:
    """Vector load using the current ``VL``/``VS`` special registers."""
    return vload_words(memory, base_word, state.vl, state.vs)


def vstore(memory: np.ndarray, base_word: int, value: np.ndarray, state: VectorState) -> None:
    """Vector store using the current ``VS`` special register."""
    vstore_words(memory, base_word, value, state.vs)


# ---------------------------------------------------------------------------
# Element-wise vector computation (vector forms of the µSIMD opcodes)
# ---------------------------------------------------------------------------

def vmap(op: Callable[[np.ndarray], np.ndarray], a: np.ndarray) -> np.ndarray:
    """Apply a unary packed operation to every element of a vector register.

    Because the packed operations broadcast over leading axes, this is just a
    call with the ``(VL, lanes)`` value; the helper exists to make kernel
    code read like the ISA ("one vector op = VL packed sub-operations").
    """
    return op(np.asarray(a))


def vmap2(op: Callable[[np.ndarray, np.ndarray], np.ndarray], a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Apply a binary packed operation element-wise over two vector registers."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape[0] != b.shape[0]:
        raise ValueError(
            f"vector length mismatch: {a.shape[0]} vs {b.shape[0]} packed words"
        )
    return op(a, b)


def vaddw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vector packed 16-bit add (wrap-around)."""
    return vmap2(packed.paddw, a, b)


def vsubw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vector packed 16-bit subtract (wrap-around)."""
    return vmap2(packed.psubw, a, b)


def vaddb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vector packed unsigned 8-bit add with saturation."""
    return vmap2(packed.paddusb, a, b)


def vsubb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vector packed unsigned 8-bit subtract with saturation."""
    return vmap2(packed.psubusb, a, b)


def vmullw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vector packed 16-bit multiply (low halves)."""
    return vmap2(packed.pmullw, a, b)


def vmulhw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vector packed 16-bit multiply (high halves)."""
    return vmap2(packed.pmulhw, a, b)


def vmaddwd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vector packed multiply-add (4×16-bit → 2×32-bit per element)."""
    return vmap2(packed.pmaddwd, a, b)


def vpavgb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vector packed unsigned 8-bit rounded average."""
    return vmap2(packed.pavgb, a, b)


def vpabsdiffb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vector packed 8-bit absolute difference."""
    return vmap2(packed.pabsdiffb, a, b)


def vpackuswb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vector pack: per element, pack two 4×16 words into one 8×u8 word."""
    return vmap2(packed.packuswb, a, b)


def vunpack_u8_to_s16(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vector unpack: per element, widen 8×u8 into two 4×s16 halves."""
    a = np.asarray(a, dtype=np.uint8)
    wide = a.astype(np.int16)
    return wide[..., :4], wide[..., 4:]


# ---------------------------------------------------------------------------
# Packed accumulators (192-bit, MDMX style)
# ---------------------------------------------------------------------------

def accumulator_zero(lanes: int = packed.LANES_8) -> np.ndarray:
    """Return a zeroed packed accumulator with one wide slot per lane.

    The hardware accumulator is 192 bits wide (24 bits per 8-bit lane or 48
    bits per 16-bit lane); an ``int64`` per lane comfortably covers that
    range in the functional model while tests assert the 192-bit bound is
    never exceeded by the kernels.
    """
    return np.zeros(lanes, dtype=np.int64)


def vsad_accumulate(acc: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vector SAD into a packed accumulator.

    For every vector element (packed word) the eight absolute byte
    differences are added lane-wise into the accumulator.  This is the
    ``A = SAD(V1, V2)`` operation of the Figure-4 motion-estimation kernel.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    diffs = np.abs(a - b)
    return acc + diffs.sum(axis=0)


def vmac_accumulate(acc: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vector multiply-accumulate of 16-bit lanes into a packed accumulator.

    Used by the dot-product style kernels (autocorrelation, LTP parameter
    search) where each lane accumulates the product of corresponding 16-bit
    lanes over all vector elements.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    prods = a * b
    return acc + prods.sum(axis=0)


def accumulator_sum(acc: np.ndarray) -> int:
    """Reduce a packed accumulator to a scalar (the final ``SUM`` operation).

    In hardware only one lane performs this final cross-lane reduction (the
    paper adds a limited inter-lane connection for it); functionally it is a
    plain sum.
    """
    return int(np.asarray(acc, dtype=np.int64).sum())
