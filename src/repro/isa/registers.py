"""Register-file descriptions and functional register values.

The scheduler needs to know how many registers of each class a machine
configuration provides (Table 2 of the paper) so it can refuse schedules
that would over-subscribe a register file, and the functional simulator
needs simple containers for vector register and accumulator values.  Both
live here so that the ISA, the machine model and the compiler agree on the
register classes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.isa import packed

__all__ = [
    "RegisterClass",
    "RegisterFileSpec",
    "SpecialRegister",
    "VectorRegisterValue",
    "AccumulatorValue",
]


class RegisterClass(enum.Enum):
    """Architectural register classes of the Vector-µSIMD-VLIW machine."""

    #: 64-bit scalar integer registers (also hold addresses).
    INT = "int"
    #: 64-bit µSIMD registers (one packed word each).
    SIMD = "simd"
    #: Vector registers: 16 packed 64-bit words each, striped across lanes.
    VECTOR = "vector"
    #: 192-bit packed accumulators for reductions.
    ACCUM = "accum"
    #: One-bit predicate registers (used by compare/branch sequences).
    PRED = "pred"
    #: The VL / VS special registers.
    SPECIAL = "special"


@dataclass(frozen=True)
class RegisterFileSpec:
    """Size and geometry of one register file in a machine configuration.

    ``words_per_register`` is 1 for scalar/µSIMD files and up to 16 for the
    vector file; ``lanes`` records how many physical lanes the file is
    striped over (4 in every vector configuration of the paper), which the
    latency model uses to derive the per-element issue rate.
    """

    reg_class: RegisterClass
    count: int
    width_bits: int = 64
    words_per_register: int = 1
    lanes: int = 1

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("register count cannot be negative")
        if self.words_per_register < 1:
            raise ValueError("words_per_register must be >= 1")
        if self.lanes < 1:
            raise ValueError("lanes must be >= 1")

    @property
    def total_bits(self) -> int:
        """Total storage capacity of the file in bits."""
        return self.count * self.width_bits * self.words_per_register


class SpecialRegister(enum.Enum):
    """The two control registers of the vector extension."""

    VL = "vl"
    VS = "vs"


class VectorRegisterValue:
    """Functional value of one vector register (``VL`` packed words).

    Thin wrapper over a ``(VL, lanes)`` NumPy array that remembers the data
    width it was written with so that debugging output and the functional
    tests can render it meaningfully.
    """

    __slots__ = ("data", "element_bits")

    def __init__(self, data: np.ndarray, element_bits: int = 8) -> None:
        self.data = np.asarray(data)
        if self.data.ndim != 2:
            raise ValueError("vector register value must be 2-D (VL, lanes)")
        if self.data.shape[0] > 16:
            raise ValueError("vector length cannot exceed 16 packed words")
        self.element_bits = element_bits

    @property
    def vector_length(self) -> int:
        """Number of packed words currently held."""
        return self.data.shape[0]

    @property
    def lanes(self) -> int:
        """Sub-word elements per packed word."""
        return self.data.shape[1]

    def as_matrix(self) -> np.ndarray:
        """Return the value as the VL×lanes element matrix the ISA defines."""
        return self.data.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"VectorRegisterValue(vl={self.vector_length}, "
                f"lanes={self.lanes}, bits={self.element_bits})")


class AccumulatorValue:
    """Functional value of one 192-bit packed accumulator.

    The accumulator holds one guard-extended slot per sub-word lane (24 bits
    per 8-bit lane, 48 bits per 16-bit lane).  :meth:`check_range` verifies
    that the functional value still fits in the architected width, which the
    property-based tests use to show the media kernels never overflow it.
    """

    __slots__ = ("slots", "element_bits")

    TOTAL_BITS = 192

    def __init__(self, lanes: int = packed.LANES_8, element_bits: int = 8) -> None:
        self.slots = np.zeros(lanes, dtype=np.int64)
        self.element_bits = element_bits

    @property
    def slot_bits(self) -> int:
        """Architected width of each accumulator slot."""
        return self.TOTAL_BITS // len(self.slots)

    def clear(self) -> None:
        """Zero the accumulator (the ``A = 0`` operation of Figure 4)."""
        self.slots[:] = 0

    def accumulate(self, values: np.ndarray) -> None:
        """Add one packed word (or a reduced partial result) lane-wise."""
        self.slots += np.asarray(values, dtype=np.int64)

    def check_range(self) -> bool:
        """Return True if the value fits in the architected slot width."""
        limit = 1 << (self.slot_bits - 1)
        return bool(np.all(self.slots < limit) and np.all(self.slots >= -limit))

    def reduce(self) -> int:
        """Cross-lane sum (the final ``SUM`` reduction)."""
        return int(self.slots.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AccumulatorValue(slots={self.slots.tolist()})"
