"""Opcode metadata shared by the compiler and the timing simulator.

The functional semantics of the ISA live in :mod:`repro.isa.packed` and
:mod:`repro.isa.vectorops`; this module describes the *shape* of each
operation as the scheduler and the cycle simulator see it:

* which operation class it belongs to (integer ALU, µSIMD ALU, vector memory,
  ...), which determines the functional unit and ports it reserves;
* how many micro-operations it performs, which is the unit the paper uses
  for the µOPC metric of Table 3 (a µSIMD add on 8-bit data is 8 µops, a
  vector µSIMD add with ``VL=16`` on 8-bit data is 128 µops);
* whether it is a memory operation, and on which level of the hierarchy the
  compiler assumes it hits (scalar/µSIMD accesses are scheduled as L1 hits,
  vector accesses bypass the L1 and are scheduled as stride-1 L2 hits).

The table is intentionally a plain dictionary so workload code can register
additional opcodes (a handful of kernels add fused helper ops) without
touching this module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = [
    "OpClass",
    "Opcode",
    "OperationDescriptor",
    "OPCODE_TABLE",
    "register_opcode",
    "descriptor_for",
    "micro_ops_for",
    "MAX_VECTOR_LENGTH",
]

#: Maximum architectural vector length (packed words per vector register).
MAX_VECTOR_LENGTH = 16


class OpClass(enum.Enum):
    """Operation classes; each maps onto one functional-unit/port type."""

    #: Scalar integer ALU operation (add, sub, logical, compare, shifts).
    INT_ALU = "int_alu"
    #: Scalar integer multiply / divide (long latency, uses an integer unit).
    INT_MUL = "int_mul"
    #: Control transfer; occupies an issue slot and an integer unit.
    BRANCH = "branch"
    #: Scalar or µSIMD load through the first-level data cache.
    LOAD = "load"
    #: Scalar or µSIMD store through the first-level data cache.
    STORE = "store"
    #: Packed (sub-word) ALU operation on a 64-bit µSIMD register.
    SIMD_ALU = "simd_alu"
    #: Packed multiply / multiply-add.
    SIMD_MUL = "simd_mul"
    #: Packed sum-of-absolute-differences (reduction within a word).
    SIMD_SAD = "simd_sad"
    #: Vector-µSIMD ALU operation (VL packed sub-operations).
    VECTOR_ALU = "vector_alu"
    #: Vector-µSIMD multiply / multiply-accumulate.
    VECTOR_MUL = "vector_mul"
    #: Vector-µSIMD SAD into a packed accumulator.
    VECTOR_SAD = "vector_sad"
    #: Vector load: bypasses the L1 and accesses the L2 vector cache.
    VECTOR_LOAD = "vector_load"
    #: Vector store: bypasses the L1 and accesses the L2 vector cache.
    VECTOR_STORE = "vector_store"
    #: Cross-lane reduction of a packed accumulator to a scalar.
    VECTOR_REDUCE = "vector_reduce"
    #: Writes to the VL/VS special registers (integer unit, 1 cycle).
    VECTOR_SETUP = "vector_setup"
    #: Explicit no-operation (fills unused issue slots in traces).
    NOP = "nop"

    # The classification predicates below (``is_vector`` & friends) are plain
    # per-member attributes precomputed right after the class body; the
    # scheduler and the dependence analysis query them millions of times per
    # sweep, and an attribute read avoids a set-membership test (and the enum
    # ``__hash__`` behind it) on every call.
    is_vector: bool
    is_vector_memory: bool
    is_simd: bool
    is_memory: bool
    is_store: bool


for _cls in OpClass:
    #: True for operations executed on the vector functional units.
    _cls.is_vector = _cls.value in ("vector_alu", "vector_mul", "vector_sad",
                                    "vector_reduce")
    #: True for vector loads/stores (the L2 vector-cache path).
    _cls.is_vector_memory = _cls.value in ("vector_load", "vector_store")
    #: True for µSIMD (single packed word) computation operations.
    _cls.is_simd = _cls.value in ("simd_alu", "simd_mul", "simd_sad")
    #: True for any operation that touches the memory hierarchy.
    _cls.is_memory = _cls.value in ("load", "store", "vector_load",
                                    "vector_store")
    #: True for operations that write to memory.
    _cls.is_store = _cls.value in ("store", "vector_store")
del _cls


class Opcode(str, enum.Enum):
    """Canonical opcode names used by the kernel builders.

    The enum inherits from :class:`str` so IR code can use either the enum
    member or its string value interchangeably; the scheduler only ever
    looks at the :class:`OperationDescriptor` resolved from the name.
    """

    # --- scalar integer ---------------------------------------------------
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    CMP = "cmp"
    MOV = "mov"
    LOAD = "load"
    LOAD8 = "load8"
    STORE = "store"
    STORE8 = "store8"
    BRANCH = "branch"
    NOP = "nop"
    # --- µSIMD (packed word) ----------------------------------------------
    PADDB = "paddb"
    PADDW = "paddw"
    PSUBB = "psubb"
    PSUBW = "psubw"
    PADDUSB = "paddusb"
    PSUBUSB = "psubusb"
    PMULLW = "pmullw"
    PMULHW = "pmulhw"
    PMADDWD = "pmaddwd"
    PAVGB = "pavgb"
    PSADBW = "psadbw"
    PMINMAX = "pminmax"
    PCMP = "pcmp"
    PLOGICAL = "plogical"
    PSHIFT = "pshift"
    PACK = "pack"
    UNPACK = "unpack"
    PSHUFW = "pshufw"
    MLOAD = "mload"
    MSTORE = "mstore"
    # --- Vector-µSIMD ------------------------------------------------------
    SETVL = "setvl"
    SETVS = "setvs"
    VADDB = "vaddb"
    VADDW = "vaddw"
    VSUBB = "vsubb"
    VSUBW = "vsubw"
    VMULLW = "vmullw"
    VMULHW = "vmulhw"
    VMADDWD = "vmaddwd"
    VPAVGB = "vpavgb"
    VSAD = "vsad"
    VMAC = "vmac"
    VPACK = "vpack"
    VUNPACK = "vunpack"
    VSHIFT = "vshift"
    VLOGICAL = "vlogical"
    VLOAD = "vload"
    VSTORE = "vstore"
    VSUM = "vsum"
    ACCCLEAR = "accclear"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class OperationDescriptor:
    """Static description of one opcode as seen by the timing model.

    Attributes
    ----------
    name:
        Canonical opcode name.
    op_class:
        The :class:`OpClass` that determines functional unit and port usage.
    subwords:
        Number of sub-word elements processed per packed word (1 for scalar
        ops, 8/4/2 for packed ops).  Together with the vector length this
        gives the micro-operation count.
    latency_class:
        Key into the machine latency model (:mod:`repro.machine.latency`);
        ``None`` means "use the default for the op class".
    notes:
        Free-form description used by the pretty printers.
    """

    name: str
    op_class: OpClass
    subwords: int = 1
    latency_class: Optional[str] = None
    notes: str = ""


def _d(name: str, op_class: OpClass, subwords: int = 1, latency_class: Optional[str] = None,
       notes: str = "") -> OperationDescriptor:
    return OperationDescriptor(name=name, op_class=op_class, subwords=subwords,
                               latency_class=latency_class, notes=notes)


#: The default opcode table.  Subword counts reflect the most common data
#: width each opcode is used with in the media kernels (8-bit for pixel
#: arithmetic, 16-bit for transform arithmetic); kernels can override the
#: subword count per operation instance when they use a different width.
OPCODE_TABLE: Dict[str, OperationDescriptor] = {}


def register_opcode(descriptor: OperationDescriptor, overwrite: bool = False) -> OperationDescriptor:
    """Add an opcode descriptor to the global table.

    Workload modules use this to register fused helper opcodes; attempting
    to silently redefine an existing opcode is an error unless ``overwrite``
    is passed.
    """
    if descriptor.name in OPCODE_TABLE and not overwrite:
        raise ValueError(f"opcode {descriptor.name!r} is already registered")
    OPCODE_TABLE[descriptor.name] = descriptor
    return descriptor


for _desc in [
    # scalar integer
    _d(Opcode.ADD, OpClass.INT_ALU),
    _d(Opcode.SUB, OpClass.INT_ALU),
    _d(Opcode.MUL, OpClass.INT_MUL, latency_class="int_mul"),
    _d(Opcode.DIV, OpClass.INT_MUL, latency_class="int_div"),
    _d(Opcode.AND, OpClass.INT_ALU),
    _d(Opcode.OR, OpClass.INT_ALU),
    _d(Opcode.XOR, OpClass.INT_ALU),
    _d(Opcode.SHL, OpClass.INT_ALU),
    _d(Opcode.SHR, OpClass.INT_ALU),
    _d(Opcode.CMP, OpClass.INT_ALU),
    _d(Opcode.MOV, OpClass.INT_ALU),
    _d(Opcode.LOAD, OpClass.LOAD, notes="scalar load, scheduled as an L1 hit"),
    _d(Opcode.LOAD8, OpClass.LOAD, notes="scalar byte load"),
    _d(Opcode.STORE, OpClass.STORE),
    _d(Opcode.STORE8, OpClass.STORE),
    _d(Opcode.BRANCH, OpClass.BRANCH),
    _d(Opcode.NOP, OpClass.NOP),
    # µSIMD
    _d(Opcode.PADDB, OpClass.SIMD_ALU, subwords=8),
    _d(Opcode.PADDW, OpClass.SIMD_ALU, subwords=4),
    _d(Opcode.PSUBB, OpClass.SIMD_ALU, subwords=8),
    _d(Opcode.PSUBW, OpClass.SIMD_ALU, subwords=4),
    _d(Opcode.PADDUSB, OpClass.SIMD_ALU, subwords=8),
    _d(Opcode.PSUBUSB, OpClass.SIMD_ALU, subwords=8),
    _d(Opcode.PMULLW, OpClass.SIMD_MUL, subwords=4),
    _d(Opcode.PMULHW, OpClass.SIMD_MUL, subwords=4),
    _d(Opcode.PMADDWD, OpClass.SIMD_MUL, subwords=4),
    _d(Opcode.PAVGB, OpClass.SIMD_ALU, subwords=8),
    _d(Opcode.PSADBW, OpClass.SIMD_SAD, subwords=8),
    _d(Opcode.PMINMAX, OpClass.SIMD_ALU, subwords=8),
    _d(Opcode.PCMP, OpClass.SIMD_ALU, subwords=8),
    _d(Opcode.PLOGICAL, OpClass.SIMD_ALU, subwords=8),
    _d(Opcode.PSHIFT, OpClass.SIMD_ALU, subwords=4),
    _d(Opcode.PACK, OpClass.SIMD_ALU, subwords=8),
    _d(Opcode.UNPACK, OpClass.SIMD_ALU, subwords=8),
    _d(Opcode.PSHUFW, OpClass.SIMD_ALU, subwords=4),
    _d(Opcode.MLOAD, OpClass.LOAD, subwords=8,
       notes="64-bit packed load through the L1 data cache"),
    _d(Opcode.MSTORE, OpClass.STORE, subwords=8),
    # Vector-µSIMD
    _d(Opcode.SETVL, OpClass.VECTOR_SETUP),
    _d(Opcode.SETVS, OpClass.VECTOR_SETUP),
    _d(Opcode.VADDB, OpClass.VECTOR_ALU, subwords=8),
    _d(Opcode.VADDW, OpClass.VECTOR_ALU, subwords=4),
    _d(Opcode.VSUBB, OpClass.VECTOR_ALU, subwords=8),
    _d(Opcode.VSUBW, OpClass.VECTOR_ALU, subwords=4),
    _d(Opcode.VMULLW, OpClass.VECTOR_MUL, subwords=4),
    _d(Opcode.VMULHW, OpClass.VECTOR_MUL, subwords=4),
    _d(Opcode.VMADDWD, OpClass.VECTOR_MUL, subwords=4),
    _d(Opcode.VPAVGB, OpClass.VECTOR_ALU, subwords=8),
    _d(Opcode.VSAD, OpClass.VECTOR_SAD, subwords=8),
    _d(Opcode.VMAC, OpClass.VECTOR_MUL, subwords=4),
    _d(Opcode.VPACK, OpClass.VECTOR_ALU, subwords=8),
    _d(Opcode.VUNPACK, OpClass.VECTOR_ALU, subwords=8),
    _d(Opcode.VSHIFT, OpClass.VECTOR_ALU, subwords=4),
    _d(Opcode.VLOGICAL, OpClass.VECTOR_ALU, subwords=8),
    _d(Opcode.VLOAD, OpClass.VECTOR_LOAD, subwords=8,
       notes="vector load; bypasses L1, scheduled as a stride-1 L2 hit"),
    _d(Opcode.VSTORE, OpClass.VECTOR_STORE, subwords=8),
    _d(Opcode.VSUM, OpClass.VECTOR_REDUCE, subwords=8,
       notes="final cross-lane reduction of a packed accumulator"),
    _d(Opcode.ACCCLEAR, OpClass.VECTOR_ALU, subwords=8,
       notes="clear a packed accumulator"),
]:
    register_opcode(_desc)


def descriptor_for(opcode) -> OperationDescriptor:
    """Resolve an opcode (enum member or plain string) to its descriptor."""
    name = opcode.value if isinstance(opcode, Opcode) else str(opcode)
    try:
        return OPCODE_TABLE[name]
    except KeyError as exc:
        raise KeyError(f"unknown opcode {name!r}; register it first") from exc


#: Memo of :func:`micro_ops_for` keyed on ``(opcode name, VL, subwords)``.
#: Each entry carries the descriptor it was computed from so a re-registered
#: opcode (``register_opcode(..., overwrite=True)``) invalidates by identity.
_MICRO_OPS_MEMO: Dict[tuple, tuple] = {}


def micro_ops_for(opcode, vector_length: int = 1, subwords: Optional[int] = None) -> int:
    """Micro-operation count of one dynamic instance of ``opcode``.

    This implements the accounting behind the paper's µOPC metric:

    * a scalar operation is one micro-operation;
    * a µSIMD operation performs ``subwords`` micro-operations (up to 8);
    * a vector operation performs ``VL × subwords`` micro-operations (up to
      16 × 8 = 128), and a vector memory operation moves ``VL`` packed words.

    ``subwords`` overrides the descriptor default when a kernel uses an
    opcode at a different element width than the table assumes.
    """
    desc = descriptor_for(opcode)
    key = (desc.name, vector_length, subwords)
    cached = _MICRO_OPS_MEMO.get(key)
    if cached is not None and cached[0] is desc:
        return cached[1]
    count = _micro_ops_uncached(desc, vector_length, subwords)
    _MICRO_OPS_MEMO[key] = (desc, count)
    return count


def _micro_ops_uncached(desc: OperationDescriptor, vector_length: int,
                        subwords: Optional[int]) -> int:
    sub = desc.subwords if subwords is None else int(subwords)
    if sub < 1:
        raise ValueError("subwords must be >= 1")
    vl = int(vector_length)
    if vl < 1 or vl > MAX_VECTOR_LENGTH:
        raise ValueError(
            f"vector length must be in [1, {MAX_VECTOR_LENGTH}], got {vl}")
    if desc.op_class.is_vector or desc.op_class.is_vector_memory:
        if desc.op_class is OpClass.VECTOR_REDUCE:
            # the final reduction works on the accumulator lanes only
            return sub
        return vl * sub
    if desc.op_class.is_simd or desc.op_class in {OpClass.LOAD, OpClass.STORE} and sub > 1:
        return sub
    if desc.op_class.is_simd:
        return sub
    return 1
