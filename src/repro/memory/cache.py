"""A set-associative, write-back, write-allocate cache model with LRU.

This is the building block for all three cache levels.  It tracks tags only
(the functional data lives in the workload's NumPy arrays); the timing
simulator only needs hit/miss/eviction behaviour and dirty-line bookkeeping.

The tag store keeps *two* synchronized representations of the same state —
per-set Python rows for the one-access-at-a-time interpreter path, and
``(num_sets, assoc)`` NumPy matrices (tags, LRU generation stamps, dirty
bits) for the batched replay engines.  Conversions happen lazily, only when
an entry point of the other family runs, so neither path pays for the
representation it does not use.

:meth:`SetAssociativeCache.replay_events` resolves a whole event stream
through a tiered pipeline (fastest applicable tier wins; every tier is
exact — state and counters match a one-at-a-time replay):

1. **closed form** — a probe-free, uniform-store, line-monotone stream
   hitting an empty cache (the preload / affine-warm-up shape produced by
   ``compiler/trace.py`` lattices) never needs replay at all: per-set hit,
   eviction and write-back counts and the final tag/stamp/dirty state are
   direct formulas over the per-set run counts;
2. **distance collapse** — a run head whose tag re-occurred within
   ``assoc`` same-set events (no probes in the window) is a guaranteed hit
   and, when its tag re-occurs again later with only guaranteed hits in
   between, it cannot influence any future victim choice either, so it is
   dropped before replay (its store flag is folded into the next
   occurrence);
3. **batched rounds** — the surviving heads are resolved one *generation*
   at a time: round ``r`` takes the ``r``-th pending head of every set and
   resolves all of them with matrix gathers (tag match, first-empty /
   min-stamp victim, probe invalidation) — one vectorised step per round
   instead of one Python iteration per head.  When no set has more than
   one pending head (every L2/L3 stream chunk in practice) the whole call
   is a single round with no Python loop at all;
4. **serial machine** — short or adversarial streams (few heads per round)
   fall back to the original lean Python state machine, which is also the
   *reference path*: ``replay_events(..., engine="reference")``, the
   module-level :func:`force_serial_replay` switch, or the
   ``REPRO_SERIAL_LRU=1`` environment variable force it for debugging.

The LRU policy is expressed with timestamps: every access stamps the line
with a monotonically increasing clock and the victim of an allocation is
the valid way with the smallest stamp.  Timestamps are only ever *compared
within one set*, so batched replay may renumber them (one generation per
round) as long as the relative per-set order is preserved.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

__all__ = ["CacheStats", "SetAssociativeCache", "force_serial_replay"]

#: Tag value of an empty way.  Addresses (and therefore tags) must be
#: non-negative, which every workload allocator guarantees.
_EMPTY = -1

#: Result codes of :meth:`SetAssociativeCache.replay_events`.
#: For access events (``coherency`` False): 0 = miss, 1 = hit.
#: For coherency probes (``coherency`` True): 0 = line absent or clean
#: load (no action), 1 = clean line invalidated by a store probe, 2 =
#: dirty line invalidated (the caller charges the write-back).

#: Below this many surviving run heads the serial machine beats any
#: batched engine (NumPy launch overhead dominates); measured on the dev
#: machine, see docs/performance.md.
_SERIAL_CUTOVER = 48

#: Minimum average heads-per-round for the batched rounds engine to win
#: over the serial machine (each round costs a fixed number of NumPy
#: kernel launches regardless of how many sets participate).
_ROUND_MIN_RATIO = 16

#: When not ``None``, overrides the ``REPRO_SERIAL_LRU`` environment
#: variable (see :func:`force_serial_replay`).
_FORCE_SERIAL_OVERRIDE: Optional[bool] = None


def force_serial_replay(enabled: Optional[bool]) -> None:
    """Force (or stop forcing) the serial reference replay path.

    ``True`` routes every :meth:`SetAssociativeCache.replay_events` call
    through the serial reference machine, ``False`` forces the tiered
    engines even if ``REPRO_SERIAL_LRU`` is set, and ``None`` restores the
    environment-variable default.  Intended for debugging and equivalence
    tests; the paths are exact either way.
    """
    global _FORCE_SERIAL_OVERRIDE
    _FORCE_SERIAL_OVERRIDE = enabled


def _serial_forced() -> bool:
    if _FORCE_SERIAL_OVERRIDE is not None:
        return _FORCE_SERIAL_OVERRIDE
    return os.environ.get("REPRO_SERIAL_LRU", "") not in ("", "0", "false")


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when the cache was never used)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.invalidations = 0

    def snapshot(self) -> Dict[str, float]:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }

    @contextlib.contextmanager
    def stats_frozen(self) -> Iterator["CacheStats"]:
        """Run a block without letting it pollute the counters.

        Accesses performed inside the block still change *cache state*
        (lines move, evict, dirty) but every counter is restored on exit —
        the behaviour warm-up traffic such as
        :meth:`repro.memory.hierarchy.MemoryHierarchy.preload` needs.
        """
        saved = (self.accesses, self.hits, self.misses,
                 self.evictions, self.writebacks, self.invalidations)
        try:
            yield self
        finally:
            (self.accesses, self.hits, self.misses,
             self.evictions, self.writebacks, self.invalidations) = saved


class SetAssociativeCache:
    """Tag-only set-associative cache with true-LRU replacement.

    Parameters
    ----------
    size_bytes, assoc, line_bytes:
        Geometry.  ``size_bytes`` must be a multiple of
        ``assoc * line_bytes``.
    name:
        Used in error messages and statistics reports.
    """

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int,
                 name: str = "cache") -> None:
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry values must be positive")
        if line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a power of two")
        if size_bytes % (assoc * line_bytes):
            raise ValueError(
                f"{name}: size {size_bytes} is not a multiple of "
                f"assoc*line ({assoc}*{line_bytes})")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (assoc * line_bytes)
        self.stats = CacheStats()
        # Dual state representation.  The serial entry points (access,
        # invalidate, the reference replay machine) walk plain Python rows;
        # the batched engines operate on (num_sets, assoc) matrices.  The
        # `_rows_ok` / `_arrays_ok` flags track which family is current;
        # conversion is lazy and only happens when paths are mixed.
        self._tag_rows: List[List[int]] = []
        self._stamp_rows: List[List[int]] = []
        self._dirty_rows: List[List[bool]] = []
        self._tags_a = np.full((self.num_sets, assoc), _EMPTY, dtype=np.int64)
        self._stamps_a = np.zeros((self.num_sets, assoc), dtype=np.int64)
        self._dirty_a = np.zeros((self.num_sets, assoc), dtype=bool)
        # rows are materialised lazily: the batched engines never need them,
        # so a fresh hierarchy costs three ndarray allocations, not
        # O(num_sets) list building
        self._rows_ok = False
        self._arrays_ok = True
        self._clock = 0
        # number of resident lines, maintained by every mutating path: the
        # O(1) emptiness test the closed-form tier's eligibility check needs
        self._resident = 0

    # -- state representation sync --------------------------------------------

    def _ensure_rows(self) -> None:
        if not self._rows_ok:
            self._tag_rows = self._tags_a.tolist()
            self._stamp_rows = self._stamps_a.tolist()
            self._dirty_rows = self._dirty_a.tolist()
            self._rows_ok = True

    def _ensure_arrays(self) -> None:
        if not self._arrays_ok:
            self._tags_a = np.array(self._tag_rows, dtype=np.int64)
            self._stamps_a = np.array(self._stamp_rows, dtype=np.int64)
            self._dirty_a = np.array(self._dirty_rows, dtype=bool)
            self._arrays_ok = True

    # Row views kept under the historical names: external introspection
    # (tests compare `cache._tags` across instances) keeps working no
    # matter which representation is current.
    @property
    def _tags(self) -> List[List[int]]:
        self._ensure_rows()
        return self._tag_rows

    @property
    def _stamps(self) -> List[List[int]]:
        self._ensure_rows()
        return self._stamp_rows

    @property
    def _dirty(self) -> List[List[bool]]:
        self._ensure_rows()
        return self._dirty_rows

    # -- address helpers -----------------------------------------------------

    def line_address(self, address: int) -> int:
        """Address of the first byte of the line containing ``address``."""
        return (address // self.line_bytes) * self.line_bytes

    def _index_tag(self, address: int) -> Tuple[int, int]:
        if address < 0:
            raise ValueError(f"{self.name}: negative address {address}")
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    # -- queries (no state change) -------------------------------------------

    def contains(self, address: int) -> bool:
        """True if the line holding ``address`` is resident."""
        index, tag = self._index_tag(address)
        return tag in self._tags[index]

    def is_dirty(self, address: int) -> bool:
        """True if the line holding ``address`` is resident and dirty."""
        index, tag = self._index_tag(address)
        try:
            way = self._tags[index].index(tag)
        except ValueError:
            return False
        return self._dirty[index][way]

    def resident_lines(self) -> int:
        """Number of lines currently resident (useful for tests)."""
        return sum(1 for row in self._tags for tag in row if tag != _EMPTY)

    def _is_empty(self) -> bool:
        """True when no line is resident (closed-form tier eligibility)."""
        return self._resident == 0

    # -- state-changing operations --------------------------------------------

    def access(self, address: int, is_store: bool = False) -> Tuple[bool, Optional[int]]:
        """Access the line containing ``address``.

        Returns ``(hit, writeback_address)``: ``hit`` is True when the line
        was already resident; ``writeback_address`` is the line address of a
        dirty victim evicted to make room (``None`` otherwise).  Misses
        allocate the line (write-allocate policy).
        """
        index, tag = self._index_tag(address)
        self._ensure_rows()
        self._arrays_ok = False
        stats = self.stats
        stats.accesses += 1
        row = self._tag_rows[index]
        self._clock += 1

        try:
            way = row.index(tag)
        except ValueError:
            way = -1
        if way >= 0:
            stats.hits += 1
            self._stamp_rows[index][way] = self._clock
            if is_store:
                self._dirty_rows[index][way] = True
            return True, None

        stats.misses += 1
        writeback_address: Optional[int] = None
        try:
            way = row.index(_EMPTY)
            self._resident += 1
        except ValueError:
            stamps = self._stamp_rows[index]
            way = stamps.index(min(stamps))
            stats.evictions += 1
            if self._dirty_rows[index][way]:
                stats.writebacks += 1
                writeback_address = (row[way] * self.num_sets + index) * self.line_bytes
        row[way] = tag
        self._dirty_rows[index][way] = is_store
        self._stamp_rows[index][way] = self._clock
        return False, writeback_address

    def invalidate(self, address: int) -> bool:
        """Drop the line containing ``address``; returns True if it was dirty."""
        index, tag = self._index_tag(address)
        self._ensure_rows()
        row = self._tag_rows[index]
        try:
            way = row.index(tag)
        except ValueError:
            return False
        self._arrays_ok = False
        row[way] = _EMPTY
        self._resident -= 1
        self.stats.invalidations += 1
        dirty = self._dirty_rows[index][way]
        self._dirty_rows[index][way] = False
        return dirty

    def flush(self) -> int:
        """Empty the cache; returns the number of dirty lines that were lost."""
        self._ensure_arrays()
        dirty = int(np.count_nonzero((self._tags_a != _EMPTY) & self._dirty_a))
        self._tags_a.fill(_EMPTY)
        self._stamps_a.fill(0)
        self._dirty_a.fill(False)
        self._rows_ok = False
        self._arrays_ok = True
        self._resident = 0
        return dirty

    # -- batched replay --------------------------------------------------------

    def access_batch(self, addresses: np.ndarray,
                     stores: Union[bool, np.ndarray] = False) -> np.ndarray:
        """Access a whole address stream in order; returns the hit mask.

        Semantically identical to calling :meth:`access` once per element of
        ``addresses`` (same final tag/LRU/dirty state, same counters), but
        executed through the vectorised replay engine.
        """
        results = self.replay_events(np.asarray(addresses, dtype=np.int64), stores)
        return results == 1

    def replay_events(self, addresses: np.ndarray,
                      stores: Union[bool, np.ndarray] = False,
                      coherency: Optional[np.ndarray] = None,
                      engine: Optional[str] = None) -> np.ndarray:
        """Replay an in-order event stream against the tag store.

        ``addresses`` are byte addresses in execution order.  ``stores`` is a
        boolean array (or scalar) marking store events.  ``coherency``
        optionally marks events that are *coherency probes* instead of
        accesses: a probe invalidates the addressed line when it is dirty
        (result code 2, the caller charges a write-back) or when it is clean
        but the probing request is a store (code 1); otherwise it does
        nothing (code 0).  Access events return 1 for a hit and 0 for a miss.

        ``engine`` selects the resolution path: ``None`` (or ``"auto"``)
        picks the fastest exact tier — closed form, distance collapse plus
        the batched rounds engine, or the serial machine (see the module
        docstring) — while ``"reference"`` forces the serial reference
        machine over every run head (also forced globally by
        :func:`force_serial_replay` / ``REPRO_SERIAL_LRU=1``).

        Every path is exact: the resulting cache state and counters match a
        one-at-a-time replay of the same events, with LRU stamps possibly
        renumbered per call (per-set relative order is always preserved).
        """
        n = int(addresses.shape[0])
        results = np.zeros(n, dtype=np.uint8)
        if n == 0:
            return results
        if addresses.min() < 0:
            raise ValueError(f"{self.name}: negative address in batch")
        lines = addresses // self.line_bytes
        sets = lines % self.num_sets
        tags = lines // self.num_sets
        scalar_store = isinstance(stores, (bool, np.bool_))
        if engine is None or engine == "auto":
            engine = "reference" if _serial_forced() else "auto"
        elif engine != "reference":
            raise ValueError(f"unknown replay engine {engine!r}")

        # ---- tier 1: closed form for the affine warm-up shape
        if (engine == "auto" and scalar_store
                and (coherency is None or not coherency.any())
                and self._is_empty()
                and bool(np.all(lines[1:] >= lines[:-1]))):
            self._replay_closed_form(lines, sets, tags, bool(stores), results)
            return results

        if coherency is None:
            coherency = np.zeros(n, dtype=bool)
        if scalar_store:
            stores = np.full(n, bool(stores), dtype=bool)

        # group by set, keeping execution order inside each group
        order = np.argsort(sets, kind="stable")
        set_s = sets[order]
        tag_s = tags[order]
        coh_s = coherency[order]
        store_s = stores[order]

        # run heads: first event of each maximal run of same-set same-tag
        # plain accesses.  Coherency probes never collapse (they must observe
        # and mutate state at their exact point in the sequence).
        head = np.ones(n, dtype=bool)
        if n > 1:
            head[1:] = ~((set_s[1:] == set_s[:-1]) & (tag_s[1:] == tag_s[:-1])
                         & ~coh_s[1:] & ~coh_s[:-1])
        head_idx = np.nonzero(head)[0]
        # a run's net dirty contribution: the head allocates (or re-touches)
        # the line and any store in the run leaves it dirty.
        store_any = np.bitwise_or.reduceat(store_s, head_idx)

        result_s = np.ones(n, dtype=np.uint8)  # collapsed tails: guaranteed hits
        access_events = n - int(coh_s.sum())

        hs = set_s[head_idx]
        ht = tag_s[head_idx]
        hc = coh_s[head_idx]
        hst = store_any
        H = int(head_idx.shape[0])

        if engine == "reference" or H < _SERIAL_CUTOVER:
            codes, counters = self._replay_serial(hs, ht, hst, hc)
            result_s[head_idx] = codes
        else:
            # ---- tier 2: distance collapse (guaranteed hits that cannot
            # influence any future victim choice drop out before replay)
            collapsed = self._collapse_distance(hs, ht, hst, hc)
            kept_pos = head_idx
            if collapsed is not None:
                drop, hst = collapsed
                keep = ~drop
                hs, ht, hc, hst = hs[keep], ht[keep], hc[keep], hst[keep]
                kept_pos = head_idx[keep]
                H = int(hs.shape[0])
            if H == 0:
                counters = (0, 0, 0, 0)
            else:
                # per-set head counts (hs is sorted ascending)
                boundary = np.ones(H, dtype=bool)
                boundary[1:] = hs[1:] != hs[:-1]
                starts = np.nonzero(boundary)[0]
                counts = np.diff(np.append(starts, H))
                rounds = int(counts.max())
                if rounds > 1 and H / rounds < _ROUND_MIN_RATIO:
                    codes, counters = self._replay_serial(hs, ht, hst, hc)
                    result_s[kept_pos] = codes
                else:
                    # ---- tier 3: batched generation rounds
                    codes = np.zeros(H, dtype=np.uint8)
                    counters = self._replay_rounds(
                        hs, ht, hst, hc, starts, counts, rounds, codes)
                    result_s[kept_pos] = codes

        misses, evictions, writebacks, invalidations = counters
        stats = self.stats
        stats.accesses += access_events
        stats.hits += access_events - misses
        stats.misses += misses
        stats.evictions += evictions
        stats.writebacks += writebacks
        stats.invalidations += invalidations

        results[order] = result_s
        return results

    # -- replay tiers ----------------------------------------------------------

    def _replay_closed_form(self, lines: np.ndarray, sets: np.ndarray,
                            tags: np.ndarray, store: bool,
                            results: np.ndarray) -> None:
        """Counter/state formulas for a line-monotone stream on an empty cache.

        With non-decreasing line addresses every distinct line is touched in
        one contiguous run and never revisited, so per set the run heads are
        distinct tags in arrival order: the first ``assoc`` fill the ways
        left to right, every further head evicts the oldest way cyclically,
        and all non-head events are hits.  No replay needed — the final
        state is the last ``min(k, assoc)`` lines of each set laid out at
        way ``position % assoc``.
        """
        n = int(lines.shape[0])
        head = np.ones(n, dtype=bool)
        head[1:] = lines[1:] != lines[:-1]
        head_idx = np.nonzero(head)[0]
        H = int(head_idx.shape[0])
        hs = sets[head_idx]
        ht = tags[head_idx]

        self._ensure_arrays()
        self._rows_ok = False
        order = np.argsort(hs, kind="stable")
        hs_s = hs[order]
        ht_s = ht[order]
        boundary = np.ones(H, dtype=bool)
        boundary[1:] = hs_s[1:] != hs_s[:-1]
        starts = np.nonzero(boundary)[0]
        counts = np.diff(np.append(starts, H))
        within = np.arange(H, dtype=np.int64) - np.repeat(starts, counts)
        keep = within >= np.repeat(counts, counts) - self.assoc
        ways = within[keep] % self.assoc
        ksets = hs_s[keep]
        # generation stamps: one per head, ascending in per-set order (the
        # only order LRU comparisons ever observe)
        stamp_vals = self._clock + 1 + np.arange(H, dtype=np.int64)
        self._tags_a[ksets, ways] = ht_s[keep]
        self._stamps_a[ksets, ways] = stamp_vals[keep]
        self._dirty_a[ksets, ways] = store
        self._clock += H

        overflow = counts - self.assoc
        evictions = int(overflow[overflow > 0].sum())
        self._resident += H - evictions
        stats = self.stats
        stats.accesses += n
        stats.misses += H
        stats.hits += n - H
        stats.evictions += evictions
        # evicted lines carry the uniform store flag (write-allocate)
        stats.writebacks += evictions if store else 0

        results.fill(1)
        results[head_idx] = 0

    def _collapse_distance(self, hs: np.ndarray, ht: np.ndarray,
                           hst: np.ndarray,
                           hc: np.ndarray) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Drop run heads that are guaranteed hits with no victim influence.

        A head whose tag already occurred ``d <= assoc`` heads earlier in
        the same set, with no probe anywhere in the window, is a guaranteed
        hit: at most ``d - 1 <= assoc - 1`` distinct other tags are stamped
        after that anchor before the head resolves, so the line can never
        become the LRU victim in between.  Such a head is *dropped* only if
        its tag occurs again later with nothing but guaranteed hits in
        between — then no eviction (the only stamp reader) and no probe
        (the only dirty/residency reader) can observe the skipped re-stamp
        before the next occurrence supersedes it.  Dropped stores are folded
        into that next occurrence, which the same argument makes exact.

        Returns ``(drop_mask, folded_store_flags)`` or ``None`` when nothing
        collapses.
        """
        H = int(hs.shape[0])
        if self.assoc < 2 or H < 3:
            return None
        gh = np.zeros(H, dtype=bool)
        probes = np.cumsum(hc, dtype=np.int64)  # inclusive prefix counts
        for d in range(2, self.assoc + 1):
            if d >= H:
                break
            window = (ht[d:] == ht[:-d]) & (hs[d:] == hs[:-d])
            # no probe in [i-d, i]: inclusive prefix difference is zero
            span = probes[d:].copy()
            span[1:] -= probes[:H - d - 1]
            gh[d:] |= window & (span == 0)
        if not gh.any():
            return None
        # next occurrence of each (set, tag) among the heads
        occ = np.lexsort((ht, hs))  # stable: position-ascending chains
        chain_set = hs[occ]
        chain_tag = ht[occ]
        same = (chain_set[1:] == chain_set[:-1]) & (chain_tag[1:] == chain_tag[:-1])
        nxt = np.full(H, -1, dtype=np.int64)
        nxt[occ[:-1][same]] = occ[1:][same]
        drop = gh & (nxt >= 0)
        candidates = np.nonzero(drop)[0]
        if candidates.size:
            # every head in (i, next(i)] must itself be a guaranteed hit
            bad = np.cumsum(~gh, dtype=np.int64)
            clean = bad[nxt[candidates]] - bad[candidates] == 0
            drop[candidates[~clean]] = False
        if not drop.any():
            return None
        # fold dropped store flags into the next kept occurrence: in chain
        # order, each kept element absorbs the dropped run before it (the
        # last element of every chain is kept, so segments never straddle
        # chains)
        kept_chain = ~drop[occ]
        store_chain = hst[occ]
        kept_q = np.nonzero(kept_chain)[0]
        seg_starts = np.empty(kept_q.shape[0], dtype=np.int64)
        seg_starts[0] = 0
        seg_starts[1:] = kept_q[:-1] + 1
        folded = np.bitwise_or.reduceat(store_chain, seg_starts)
        hst = hst.copy()
        hst[occ[kept_q]] = folded
        return drop, hst

    def _replay_rounds(self, hs: np.ndarray, ht: np.ndarray, hst: np.ndarray,
                       hc: np.ndarray, starts: np.ndarray, counts: np.ndarray,
                       rounds: int, codes: np.ndarray) -> Tuple[int, int, int, int]:
        """Generation-round resolution: one vectorised step per round.

        Round ``r`` resolves the ``r``-th pending head of every set that
        still has one — a conflict-free batch (no two events share a set),
        so tag matching, victim selection, probe invalidation and stamping
        are plain matrix operations.  Stamps are renumbered as generations
        (``clock + round``), preserving per-set relative order.
        """
        self._ensure_arrays()
        self._rows_ok = False
        clock = self._clock
        idx_all = np.arange(int(hs.shape[0]), dtype=np.int64)
        if rounds == 1:
            totals = self._resolve_generation(hs, ht, hst, hc, clock + 1,
                                              codes, idx_all)
        else:
            perm = np.argsort(-counts, kind="stable")
            starts_p = starts[perm]
            group_sets = hs[starts_p]
            counts_p = counts[perm]
            groups = int(counts_p.shape[0])
            # active-group count per round via the count histogram
            cum = np.cumsum(np.bincount(counts_p))
            totals = (0, 0, 0, 0)
            for r in range(rounds):
                k = groups - int(cum[r])
                pick = starts_p[:k] + r
                step = self._resolve_generation(
                    group_sets[:k], ht[pick], hst[pick], hc[pick],
                    clock + r + 1, codes, pick)
                totals = tuple(a + b for a, b in zip(totals, step))
        self._clock = clock + rounds
        return totals

    def _resolve_generation(self, srt: np.ndarray, t: np.ndarray,
                            st: np.ndarray, coh: np.ndarray, gen: int,
                            codes: np.ndarray,
                            idx: np.ndarray) -> Tuple[int, int, int, int]:
        """Resolve one conflict-free batch (each set appears at most once)."""
        tags_a = self._tags_a
        stamps_a = self._stamps_a
        dirty_a = self._dirty_a
        rows = tags_a[srt]
        eq = rows == t[:, None]
        found = eq.any(axis=1)
        way = eq.argmax(axis=1)  # first match, same as list.index
        misses = evictions = writebacks = invalidations = 0
        if coh.any():
            probe_hit = coh & found
            if probe_hit.any():
                psets = srt[probe_hit]
                pways = way[probe_hit]
                pdirty = dirty_a[psets, pways]
                pstore = st[probe_hit]
                kill = pdirty | pstore
                codes[idx[probe_hit]] = np.where(
                    pdirty, 2, np.where(pstore, 1, 0)).astype(np.uint8)
                tags_a[psets[kill], pways[kill]] = _EMPTY
                dirty_a[psets[kill], pways[kill]] = False
                invalidations = int(kill.sum())
            hit = ~coh & found
            miss = ~coh & ~found
        else:
            hit = found
            miss = ~found
        if hit.any():
            hsets = srt[hit]
            hways = way[hit]
            stamps_a[hsets, hways] = gen
            hstore = st[hit]
            if hstore.any():
                dirty_a[hsets[hstore], hways[hstore]] = True
            codes[idx[hit]] = 1
        if miss.any():
            msets = srt[miss]
            empty = rows[miss] == _EMPTY
            has_empty = empty.any(axis=1)
            way_sel = empty.argmax(axis=1)  # first empty way
            if not has_empty.all():
                victim = ~has_empty
                lru = stamps_a[msets].argmin(axis=1)  # first-minimum stamp
                way_sel = np.where(has_empty, way_sel, lru)
                evictions = int(victim.sum())
                writebacks = int(dirty_a[msets[victim],
                                         way_sel[victim]].sum())
            tags_a[msets, way_sel] = t[miss]
            dirty_a[msets, way_sel] = st[miss]
            stamps_a[msets, way_sel] = gen
            misses = int(miss.sum())
        self._resident += (misses - evictions) - invalidations
        return misses, evictions, writebacks, invalidations

    def _replay_serial(self, hs: np.ndarray, ht: np.ndarray, hst: np.ndarray,
                       hc: np.ndarray) -> Tuple[List[int], Tuple[int, int, int, int]]:
        """The serial reference machine over run heads (original PR-2 path).

        Walks Python rows one head at a time — allocations, LRU evictions,
        dirty write-backs, coherency invalidations — exactly as
        :meth:`access`/:meth:`invalidate` would.  Kept both as the fallback
        for streams the batched engines cannot amortize and as the
        debuggable reference path (see :func:`force_serial_replay`).

        When the matrices hold the current state, only the touched sets are
        materialised as rows (and scattered back afterwards): short streams
        then cost O(heads × assoc) instead of a full-cache representation
        flip each time the tier choice alternates.
        """
        if self._rows_ok:
            self._arrays_ok = False
            return self._serial_machine(self._tag_rows, self._stamp_rows,
                                        self._dirty_rows, hs, ht, hst, hc)
        touched = np.unique(hs)
        touched_list = touched.tolist()
        tag_rows = {s: self._tags_a[s].tolist() for s in touched_list}
        stamp_rows = {s: self._stamps_a[s].tolist() for s in touched_list}
        dirty_rows = {s: self._dirty_a[s].tolist() for s in touched_list}
        out = self._serial_machine(tag_rows, stamp_rows, dirty_rows,
                                   hs, ht, hst, hc)
        self._tags_a[touched] = [tag_rows[s] for s in touched_list]
        self._stamps_a[touched] = [stamp_rows[s] for s in touched_list]
        self._dirty_a[touched] = [dirty_rows[s] for s in touched_list]
        return out

    def _serial_machine(self, tag_rows, stamp_rows, dirty_rows,
                        hs: np.ndarray, ht: np.ndarray, hst: np.ndarray,
                        hc: np.ndarray) -> Tuple[List[int], Tuple[int, int, int, int]]:
        """Serial head-at-a-time walk over indexable per-set rows."""
        clock = self._clock
        misses = evictions = writebacks = invalidations = 0
        codes: List[int] = []
        append = codes.append
        for s, t, st, coh in zip(hs.tolist(), ht.tolist(), hst.tolist(),
                                 hc.tolist()):
            row = tag_rows[s]
            try:
                way = row.index(t)
            except ValueError:
                way = -1
            if coh:
                if way >= 0:
                    if dirty_rows[s][way]:
                        row[way] = _EMPTY
                        dirty_rows[s][way] = False
                        invalidations += 1
                        append(2)
                    elif st:
                        row[way] = _EMPTY
                        invalidations += 1
                        append(1)
                    else:
                        append(0)
                else:
                    append(0)
                continue
            clock += 1
            if way >= 0:
                stamp_rows[s][way] = clock
                if st:
                    dirty_rows[s][way] = True
                append(1)
                continue
            misses += 1
            try:
                way = row.index(_EMPTY)
            except ValueError:
                srow = stamp_rows[s]
                way = srow.index(min(srow))
                evictions += 1
                if dirty_rows[s][way]:
                    writebacks += 1
            row[way] = t
            dirty_rows[s][way] = st
            stamp_rows[s][way] = clock
            append(0)
        self._clock = clock
        self._resident += (misses - evictions) - invalidations
        return codes, (misses, evictions, writebacks, invalidations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SetAssociativeCache({self.name!r}, {self.size_bytes}B, "
                f"{self.assoc}-way, {self.line_bytes}B lines)")
