"""A set-associative, write-back, write-allocate cache model with LRU.

This is the building block for all three cache levels.  It tracks tags only
(the functional data lives in the workload's NumPy arrays); the timing
simulator only needs hit/miss/eviction behaviour and dirty-line bookkeeping.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["CacheStats", "SetAssociativeCache", "LineState"]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when the cache was never used)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.invalidations = 0

    def snapshot(self) -> Dict[str, float]:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


@dataclass
class LineState:
    """State of one resident cache line."""

    tag: int
    dirty: bool = False


class SetAssociativeCache:
    """Tag-only set-associative cache with true-LRU replacement.

    Parameters
    ----------
    size_bytes, assoc, line_bytes:
        Geometry.  ``size_bytes`` must be a multiple of
        ``assoc * line_bytes``.
    name:
        Used in error messages and statistics reports.
    """

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int,
                 name: str = "cache") -> None:
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry values must be positive")
        if line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a power of two")
        if size_bytes % (assoc * line_bytes):
            raise ValueError(
                f"{name}: size {size_bytes} is not a multiple of "
                f"assoc*line ({assoc}*{line_bytes})")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (assoc * line_bytes)
        self.stats = CacheStats()
        # each set is an OrderedDict tag -> LineState, LRU order = insertion order
        self._sets: Dict[int, OrderedDict] = {}

    # -- address helpers -----------------------------------------------------

    def line_address(self, address: int) -> int:
        """Address of the first byte of the line containing ``address``."""
        return (address // self.line_bytes) * self.line_bytes

    def _index_tag(self, address: int) -> Tuple[int, int]:
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    # -- queries (no state change) -------------------------------------------

    def contains(self, address: int) -> bool:
        """True if the line holding ``address`` is resident."""
        index, tag = self._index_tag(address)
        return tag in self._sets.get(index, {})

    def is_dirty(self, address: int) -> bool:
        """True if the line holding ``address`` is resident and dirty."""
        index, tag = self._index_tag(address)
        line = self._sets.get(index, {}).get(tag)
        return bool(line and line.dirty)

    def resident_lines(self) -> int:
        """Number of lines currently resident (useful for tests)."""
        return sum(len(s) for s in self._sets.values())

    # -- state-changing operations --------------------------------------------

    def access(self, address: int, is_store: bool = False) -> Tuple[bool, Optional[int]]:
        """Access the line containing ``address``.

        Returns ``(hit, writeback_address)``: ``hit`` is True when the line
        was already resident; ``writeback_address`` is the line address of a
        dirty victim evicted to make room (``None`` otherwise).  Misses
        allocate the line (write-allocate policy).
        """
        index, tag = self._index_tag(address)
        cache_set = self._sets.setdefault(index, OrderedDict())
        self.stats.accesses += 1

        if tag in cache_set:
            self.stats.hits += 1
            line = cache_set.pop(tag)
            if is_store:
                line.dirty = True
            cache_set[tag] = line  # move to MRU position
            return True, None

        self.stats.misses += 1
        writeback_address: Optional[int] = None
        if len(cache_set) >= self.assoc:
            victim_tag, victim = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
                victim_line = (victim_tag * self.num_sets + index) * self.line_bytes
                writeback_address = victim_line
        cache_set[tag] = LineState(tag=tag, dirty=is_store)
        return False, writeback_address

    def invalidate(self, address: int) -> bool:
        """Drop the line containing ``address``; returns True if it was dirty."""
        index, tag = self._index_tag(address)
        cache_set = self._sets.get(index)
        if not cache_set or tag not in cache_set:
            return False
        line = cache_set.pop(tag)
        self.stats.invalidations += 1
        return line.dirty

    def flush(self) -> int:
        """Empty the cache; returns the number of dirty lines that were lost."""
        dirty = sum(1 for s in self._sets.values() for line in s.values() if line.dirty)
        self._sets.clear()
        return dirty

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SetAssociativeCache({self.name!r}, {self.size_bytes}B, "
                f"{self.assoc}-way, {self.line_bytes}B lines)")
