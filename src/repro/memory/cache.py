"""A set-associative, write-back, write-allocate cache model with LRU.

This is the building block for all three cache levels.  It tracks tags only
(the functional data lives in the workload's NumPy arrays); the timing
simulator only needs hit/miss/eviction behaviour and dirty-line bookkeeping.

The tag store is *array based*: three per-set matrices — a tag matrix, an
LRU timestamp matrix and a dirty matrix (``num_sets`` rows of ``assoc``
ways) — instead of the per-set ordered dictionaries of the seed model.  The
row layout is what makes the batched entry point possible:

* :meth:`SetAssociativeCache.access` serves the interpreting executor one
  access at a time, exactly as before;
* :meth:`SetAssociativeCache.replay_events` serves the trace-compiled
  executor a whole *address stream* at once.  The set/tag decomposition, the
  tag-equality lookups for repeated touches of the resident line and the
  counter arithmetic are all vectorised with NumPy; only the genuinely
  serial effects — allocations, LRU evictions, dirty write-backs and
  coherency invalidations, whose outcome feeds the next event of the same
  set — run through a (lean) Python state machine over the matrix rows.

The LRU policy is expressed with timestamps: every access stamps the line
with a monotonically increasing clock and the victim of an allocation is
the valid way with the smallest stamp.  Timestamps are only ever *compared
within one set*, so batched replay may renumber them as long as the
relative per-set order is preserved.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

__all__ = ["CacheStats", "SetAssociativeCache"]

#: Tag value of an empty way.  Addresses (and therefore tags) must be
#: non-negative, which every workload allocator guarantees.
_EMPTY = -1

#: Result codes of :meth:`SetAssociativeCache.replay_events`.
#: For access events (``coherency`` False): 0 = miss, 1 = hit.
#: For coherency probes (``coherency`` True): 0 = line absent or clean
#: load (no action), 1 = clean line invalidated by a store probe, 2 =
#: dirty line invalidated (the caller charges the write-back).


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when the cache was never used)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.invalidations = 0

    def snapshot(self) -> Dict[str, float]:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }

    @contextlib.contextmanager
    def stats_frozen(self) -> Iterator["CacheStats"]:
        """Run a block without letting it pollute the counters.

        Accesses performed inside the block still change *cache state*
        (lines move, evict, dirty) but every counter is restored on exit —
        the behaviour warm-up traffic such as
        :meth:`repro.memory.hierarchy.MemoryHierarchy.preload` needs.
        """
        saved = (self.accesses, self.hits, self.misses,
                 self.evictions, self.writebacks, self.invalidations)
        try:
            yield self
        finally:
            (self.accesses, self.hits, self.misses,
             self.evictions, self.writebacks, self.invalidations) = saved


class SetAssociativeCache:
    """Tag-only set-associative cache with true-LRU replacement.

    Parameters
    ----------
    size_bytes, assoc, line_bytes:
        Geometry.  ``size_bytes`` must be a multiple of
        ``assoc * line_bytes``.
    name:
        Used in error messages and statistics reports.
    """

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int,
                 name: str = "cache") -> None:
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry values must be positive")
        if line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a power of two")
        if size_bytes % (assoc * line_bytes):
            raise ValueError(
                f"{name}: size {size_bytes} is not a multiple of "
                f"assoc*line ({assoc}*{line_bytes})")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (assoc * line_bytes)
        self.stats = CacheStats()
        # tag / LRU-timestamp / dirty matrices: one row of `assoc` ways per
        # set.  Rows are plain Python lists so the serial state machine of
        # replay_events (and the single-access path) runs without per-call
        # NumPy overhead; the batched passes build ndarray views on demand.
        self._tags: List[List[int]] = [[_EMPTY] * assoc for _ in range(self.num_sets)]
        self._stamps: List[List[int]] = [[0] * assoc for _ in range(self.num_sets)]
        self._dirty: List[List[bool]] = [[False] * assoc for _ in range(self.num_sets)]
        self._clock = 0

    # -- address helpers -----------------------------------------------------

    def line_address(self, address: int) -> int:
        """Address of the first byte of the line containing ``address``."""
        return (address // self.line_bytes) * self.line_bytes

    def _index_tag(self, address: int) -> Tuple[int, int]:
        if address < 0:
            raise ValueError(f"{self.name}: negative address {address}")
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    # -- queries (no state change) -------------------------------------------

    def contains(self, address: int) -> bool:
        """True if the line holding ``address`` is resident."""
        index, tag = self._index_tag(address)
        return tag in self._tags[index]

    def is_dirty(self, address: int) -> bool:
        """True if the line holding ``address`` is resident and dirty."""
        index, tag = self._index_tag(address)
        try:
            way = self._tags[index].index(tag)
        except ValueError:
            return False
        return self._dirty[index][way]

    def resident_lines(self) -> int:
        """Number of lines currently resident (useful for tests)."""
        return sum(1 for row in self._tags for tag in row if tag != _EMPTY)

    # -- state-changing operations --------------------------------------------

    def access(self, address: int, is_store: bool = False) -> Tuple[bool, Optional[int]]:
        """Access the line containing ``address``.

        Returns ``(hit, writeback_address)``: ``hit`` is True when the line
        was already resident; ``writeback_address`` is the line address of a
        dirty victim evicted to make room (``None`` otherwise).  Misses
        allocate the line (write-allocate policy).
        """
        index, tag = self._index_tag(address)
        stats = self.stats
        stats.accesses += 1
        row = self._tags[index]
        self._clock += 1

        try:
            way = row.index(tag)
        except ValueError:
            way = -1
        if way >= 0:
            stats.hits += 1
            self._stamps[index][way] = self._clock
            if is_store:
                self._dirty[index][way] = True
            return True, None

        stats.misses += 1
        writeback_address: Optional[int] = None
        try:
            way = row.index(_EMPTY)
        except ValueError:
            stamps = self._stamps[index]
            way = stamps.index(min(stamps))
            stats.evictions += 1
            if self._dirty[index][way]:
                stats.writebacks += 1
                writeback_address = (row[way] * self.num_sets + index) * self.line_bytes
        row[way] = tag
        self._dirty[index][way] = is_store
        self._stamps[index][way] = self._clock
        return False, writeback_address

    def invalidate(self, address: int) -> bool:
        """Drop the line containing ``address``; returns True if it was dirty."""
        index, tag = self._index_tag(address)
        row = self._tags[index]
        try:
            way = row.index(tag)
        except ValueError:
            return False
        row[way] = _EMPTY
        self.stats.invalidations += 1
        dirty = self._dirty[index][way]
        self._dirty[index][way] = False
        return dirty

    def flush(self) -> int:
        """Empty the cache; returns the number of dirty lines that were lost."""
        dirty = sum(1 for row, drow in zip(self._tags, self._dirty)
                    for tag, d in zip(row, drow) if tag != _EMPTY and d)
        assoc = self.assoc
        for index in range(self.num_sets):
            self._tags[index] = [_EMPTY] * assoc
            self._dirty[index] = [False] * assoc
            self._stamps[index] = [0] * assoc
        return dirty

    # -- batched replay --------------------------------------------------------

    def access_batch(self, addresses: np.ndarray,
                     stores: Union[bool, np.ndarray] = False) -> np.ndarray:
        """Access a whole address stream in order; returns the hit mask.

        Semantically identical to calling :meth:`access` once per element of
        ``addresses`` (same final tag/LRU/dirty state, same counters), but
        executed through the vectorised replay engine.
        """
        results = self.replay_events(np.asarray(addresses, dtype=np.int64), stores)
        return results == 1

    def replay_events(self, addresses: np.ndarray,
                      stores: Union[bool, np.ndarray] = False,
                      coherency: Optional[np.ndarray] = None) -> np.ndarray:
        """Replay an in-order event stream against the tag store.

        ``addresses`` are byte addresses in execution order.  ``stores`` is a
        boolean array (or scalar) marking store events.  ``coherency``
        optionally marks events that are *coherency probes* instead of
        accesses: a probe invalidates the addressed line when it is dirty
        (result code 2, the caller charges a write-back) or when it is clean
        but the probing request is a store (code 1); otherwise it does
        nothing (code 0).  Access events return 1 for a hit and 0 for a miss.

        The engine is exact: the resulting cache state and counters match a
        one-at-a-time replay of the same events.  Vectorisation comes from
        *run collapsing* — consecutive touches of one line with no
        intervening event in the same set are hits by construction (only a
        same-set event can displace the line), so only the head of each run
        reaches the serial state machine.
        """
        n = int(addresses.shape[0])
        results = np.zeros(n, dtype=np.uint8)
        if n == 0:
            return results
        if addresses.min() < 0:
            raise ValueError(f"{self.name}: negative address in batch")
        lines = addresses // self.line_bytes
        sets = lines % self.num_sets
        tags = lines // self.num_sets
        if coherency is None:
            coherency = np.zeros(n, dtype=bool)
        if isinstance(stores, (bool, np.bool_)):
            stores = np.full(n, bool(stores), dtype=bool)

        # group by set, keeping execution order inside each group
        order = np.argsort(sets, kind="stable")
        set_s = sets[order]
        tag_s = tags[order]
        coh_s = coherency[order]
        store_s = stores[order]

        # run heads: first event of each maximal run of same-set same-tag
        # plain accesses.  Coherency probes never collapse (they must observe
        # and mutate state at their exact point in the sequence).
        head = np.ones(n, dtype=bool)
        if n > 1:
            head[1:] = ~((set_s[1:] == set_s[:-1]) & (tag_s[1:] == tag_s[:-1])
                         & ~coh_s[1:] & ~coh_s[:-1])
        head_idx = np.nonzero(head)[0]
        # a run's net dirty contribution: the head allocates (or re-touches)
        # the line and any store in the run leaves it dirty.
        store_any = np.bitwise_or.reduceat(store_s, head_idx)

        result_s = np.ones(n, dtype=np.uint8)  # collapsed tails: guaranteed hits

        # serial state machine over run heads (allocations, evictions,
        # invalidations — the effects the next event of the set depends on)
        tags_m, stamps_m, dirty_m = self._tags, self._stamps, self._dirty
        clock = self._clock
        hits = misses = evictions = writebacks = invalidations = 0
        head_out: List[int] = []
        append = head_out.append
        for s, t, st, coh in zip(set_s[head_idx].tolist(), tag_s[head_idx].tolist(),
                                 store_any.tolist(), coh_s[head_idx].tolist()):
            row = tags_m[s]
            try:
                way = row.index(t)
            except ValueError:
                way = -1
            if coh:
                if way >= 0:
                    if dirty_m[s][way]:
                        row[way] = _EMPTY
                        dirty_m[s][way] = False
                        invalidations += 1
                        append(2)
                    elif st:
                        row[way] = _EMPTY
                        invalidations += 1
                        append(1)
                    else:
                        append(0)
                else:
                    append(0)
                continue
            clock += 1
            if way >= 0:
                hits += 1
                stamps_m[s][way] = clock
                if st:
                    dirty_m[s][way] = True
                append(1)
                continue
            misses += 1
            try:
                way = row.index(_EMPTY)
            except ValueError:
                srow = stamps_m[s]
                way = srow.index(min(srow))
                evictions += 1
                if dirty_m[s][way]:
                    writebacks += 1
            row[way] = t
            dirty_m[s][way] = st
            stamps_m[s][way] = clock
            append(0)
        result_s[head_idx] = head_out
        self._clock = clock

        # counters: collapsed tails are all hits of plain accesses
        access_events = n - int(coherency.sum())
        tail_hits = access_events - int((~coh_s[head_idx]).sum())
        stats = self.stats
        stats.accesses += access_events
        stats.hits += hits + tail_hits
        stats.misses += misses
        stats.evictions += evictions
        stats.writebacks += writebacks
        stats.invalidations += invalidations

        results[order] = result_s
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SetAssociativeCache({self.name!r}, {self.size_bytes}B, "
                f"{self.assoc}-way, {self.line_bytes}B lines)")
