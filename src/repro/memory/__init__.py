"""Memory hierarchy of the Vector-µSIMD-VLIW machine.

The paper's machine (§4.2) has three cache levels plus main memory:

* a 16 KB, 4-way, 1-cycle first-level data cache serving scalar and µSIMD
  accesses (pseudo-multi-ported in the wider configurations);
* a 256 KB, 5-cycle, two-bank interleaved *vector cache* at the second
  level.  Vector accesses bypass the L1 and go directly to the vector
  cache, which serves stride-one requests by reading two whole lines (one
  per bank) through a wide 4×64-bit port; any other stride is served at one
  element per cycle;
* a 1 MB, 12-cycle third-level cache and 500-cycle main memory.

Consistency between the scalar (L1) and vector (L2) paths follows an
exclusive-bit plus inclusion policy: a vector access to a line that is dirty
in the L1 forces a write-back and invalidation before the vector cache can
serve it.

The compiler always schedules memory operations as hits (L1 for scalar, L2
stride-one for vector); :class:`repro.memory.hierarchy.MemoryHierarchy`
returns the *actual* completion latency of each access so the simulator can
charge the difference as a pipeline stall.
"""

from repro.memory.cache import SetAssociativeCache, CacheStats
from repro.memory.vector_cache import VectorCache
from repro.memory.hierarchy import MemoryHierarchy, AccessResult, AccessKind
from repro.memory.stream import AccessStream, StreamOp, StreamResult
from repro.memory.layout import ArraySpec, AddressSpace

__all__ = [
    "SetAssociativeCache",
    "CacheStats",
    "VectorCache",
    "MemoryHierarchy",
    "AccessResult",
    "AccessKind",
    "AccessStream",
    "StreamOp",
    "StreamResult",
    "ArraySpec",
    "AddressSpace",
]
