"""The full memory hierarchy: L1 data cache, L2 vector cache, L3 and memory.

Two access paths exist, matching §3.2/§4.2 of the paper:

* **scalar path** (scalar and µSIMD loads/stores): L1 → L2 → L3 → memory,
  with the compiler scheduling every access as a 1-cycle L1 hit;
* **vector path** (vector loads/stores): the L1 is bypassed and the request
  goes straight to the two-bank L2 vector cache, scheduled as a stride-one
  L2 hit that streams ``port_words`` elements per cycle.

The hierarchy returns, for every access, the *actual* number of cycles until
the access completes, so the simulator can charge ``actual − assumed`` as a
stall.  Coherency between the two paths uses an exclusive-bit plus inclusion
policy: before the vector cache serves a line that is dirty in the L1, the
line is written back and invalidated (and vice versa for scalar accesses to
lines the vector path has dirtied in L2 — inclusion means the scalar path
simply finds them in L2).

A *perfect memory* mode reproduces the paper's Figure 5(a) methodology: all
accesses hit in their target level with the corresponding latency and every
vector access streams at the stride-one rate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.machine.config import MemoryConfig
from repro.memory.cache import SetAssociativeCache
from repro.memory.vector_cache import VectorCache

__all__ = ["AccessKind", "AccessResult", "MemoryHierarchy"]

#: Extra cycles charged when a vector access finds the line dirty in the L1
#: and must wait for the write-back/invalidate before the vector cache can
#: respond (one L1→L2 transfer).
COHERENCY_WRITEBACK_PENALTY = 2


class AccessKind(enum.Enum):
    """Which path and direction an access uses."""

    SCALAR_LOAD = "scalar_load"
    SCALAR_STORE = "scalar_store"
    VECTOR_LOAD = "vector_load"
    VECTOR_STORE = "vector_store"

    @property
    def is_store(self) -> bool:
        return self in (AccessKind.SCALAR_STORE, AccessKind.VECTOR_STORE)

    @property
    def is_vector(self) -> bool:
        return self in (AccessKind.VECTOR_LOAD, AccessKind.VECTOR_STORE)


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory access.

    ``latency`` is the number of cycles from issue until the last element is
    delivered (loads) or accepted (stores).  ``level`` names the hierarchy
    level that ultimately served the access ("l1", "l2", "l3", "memory").
    ``stride_one`` and ``bank_conflicts`` are only meaningful for vector
    accesses.
    """

    latency: int
    level: str
    hit: bool
    stride_one: bool = True
    bank_conflicts: int = 0
    coherency_penalty: int = 0


@dataclass
class HierarchyStats:
    """Aggregate counters for one hierarchy instance."""

    scalar_accesses: int = 0
    vector_accesses: int = 0
    vector_non_unit_stride: int = 0
    coherency_writebacks: int = 0
    level_hits: Dict[str, int] = field(default_factory=dict)

    def record_level(self, level: str) -> None:
        self.level_hits[level] = self.level_hits.get(level, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "scalar_accesses": self.scalar_accesses,
            "vector_accesses": self.vector_accesses,
            "vector_non_unit_stride": self.vector_non_unit_stride,
            "coherency_writebacks": self.coherency_writebacks,
            "level_hits": dict(self.level_hits),
        }


class MemoryHierarchy:
    """L1 + L2 vector cache + L3 + main memory with the two access paths."""

    def __init__(self, config: MemoryConfig, l1_ports: int = 1,
                 l2_port_words: int = 4, perfect: bool = False) -> None:
        self.config = config
        self.perfect = perfect
        self.l1_ports = l1_ports
        self.l1 = SetAssociativeCache(
            config.l1_size, config.l1_assoc, config.l1_line_bytes, name="L1")
        self.l2 = VectorCache(
            config.l2_size, config.l2_assoc, config.l2_line_bytes,
            banks=config.l2_banks, port_words=l2_port_words, name="L2-vector")
        self.l3 = SetAssociativeCache(
            config.l3_size, config.l3_assoc, config.l3_line_bytes, name="L3")
        self.stats = HierarchyStats()

    # ------------------------------------------------------------------ utils

    def reset_stats(self) -> None:
        """Zero all counters (cache contents are preserved)."""
        self.l1.stats.reset()
        self.l2.stats.reset()
        self.l3.stats.reset()
        self.stats = HierarchyStats()

    def flush(self) -> None:
        """Empty all cache levels (used between independent benchmark runs)."""
        self.l1.flush()
        self.l2.cache.flush()
        self.l3.flush()

    def preload(self, base_address: int, size_bytes: int,
                include_l1: bool = False) -> None:
        """Install an address range into the L2 vector cache and the L3.

        Models data that the previous pipeline stage of the application just
        produced (file input, an earlier kernel's output): resident in the
        outer levels but not necessarily in the small L1.  The counters are
        left untouched so the pre-load does not pollute the statistics.
        """
        if size_bytes <= 0:
            return
        saved_l2 = self.l2.stats.snapshot()
        saved_l3 = self.l3.stats.snapshot()
        saved_l1 = self.l1.stats.snapshot()
        line = self.l2.cache.line_bytes
        for addr in range(base_address - base_address % line,
                          base_address + size_bytes, line):
            self.l2.cache.access(addr, is_store=False)
            self.l3.access(addr, is_store=False)
            if include_l1:
                self.l1.access(addr, is_store=False)
        for cache, saved in ((self.l2.cache, saved_l2), (self.l3, saved_l3),
                             (self.l1, saved_l1)):
            cache.stats.accesses = int(saved["accesses"])
            cache.stats.hits = int(saved["hits"])
            cache.stats.misses = int(saved["misses"])
            cache.stats.evictions = int(saved["evictions"])
            cache.stats.writebacks = int(saved["writebacks"])
            cache.stats.invalidations = int(saved["invalidations"])

    # ----------------------------------------------------------- scalar path

    def scalar_access(self, address: int, is_store: bool = False,
                      size_bytes: int = 8) -> AccessResult:
        """Access through the L1 path; returns the actual completion latency.

        ``size_bytes`` only matters for accesses that straddle a line
        boundary, which the media kernels avoid by aligning their buffers;
        it is accepted so traces can express byte accesses faithfully.
        """
        self.stats.scalar_accesses += 1
        cfg = self.config
        if self.perfect:
            self.stats.record_level("l1")
            return AccessResult(latency=cfg.l1_latency, level="l1", hit=True)

        hit_l1, _ = self.l1.access(address, is_store=is_store)
        if hit_l1:
            self.stats.record_level("l1")
            return AccessResult(latency=cfg.l1_latency, level="l1", hit=True)

        # L1 miss: look in the L2 (inclusion: vector-path data is found here),
        # then the L3, then memory.  The line is filled into every level on
        # the way back (inclusive hierarchy).
        line = self.l2.cache.line_address(address)
        hit_l2, _ = self.l2.cache.access(line, is_store=False)
        if hit_l2:
            self.stats.record_level("l2")
            return AccessResult(latency=cfg.l2_latency, level="l2", hit=False)

        hit_l3, _ = self.l3.access(address, is_store=False)
        if hit_l3:
            self.stats.record_level("l3")
            return AccessResult(latency=cfg.l3_latency, level="l3", hit=False)

        self.stats.record_level("memory")
        return AccessResult(latency=cfg.memory_latency, level="memory", hit=False)

    # ----------------------------------------------------------- vector path

    def vector_access(self, base_address: int, stride_bytes: int,
                      vector_length: int, is_store: bool = False) -> AccessResult:
        """Access through the vector path (bypasses the L1).

        The returned latency covers the vector-cache pipeline latency, the
        element transfer time (wide port for stride-one, one element per
        cycle otherwise), miss penalties for every line that has to come
        from the L3 or memory, bank conflicts, and any coherency write-back
        needed because the L1 held a dirty copy.
        """
        self.stats.vector_accesses += 1
        cfg = self.config
        plan = self.l2.plan(base_address, stride_bytes, vector_length)
        if not plan.stride_one:
            self.stats.vector_non_unit_stride += 1

        if self.perfect:
            # Perfect memory: every vector access behaves like a stride-one
            # L2 hit streaming at the full port rate (Figure 5a methodology).
            transfer = -(-vector_length // self.l2.port_words)
            latency = cfg.l2_latency + transfer - 1
            self.stats.record_level("l2")
            return AccessResult(latency=latency, level="l2", hit=True,
                                stride_one=True, bank_conflicts=0)

        coherency_penalty = 0
        for line in plan.line_addresses:
            if self.l1.is_dirty(line):
                self.l1.invalidate(line)
                coherency_penalty += COHERENCY_WRITEBACK_PENALTY
                self.stats.coherency_writebacks += 1
            elif self.l1.contains(line) and is_store:
                # exclusive-bit policy: a vector store invalidates clean L1 copies
                self.l1.invalidate(line)

        missing, _ = self.l2.access_lines(plan, is_store=is_store)
        miss_penalty = 0
        worst_level = "l2"
        for line in missing:
            hit_l3, _ = self.l3.access(line, is_store=False)
            if hit_l3:
                miss_penalty += cfg.l3_latency - cfg.l2_latency
                worst_level = "l3" if worst_level == "l2" else worst_level
            else:
                miss_penalty += cfg.memory_latency - cfg.l2_latency
                worst_level = "memory"

        latency = (cfg.l2_latency + plan.transfer_cycles - 1
                   + plan.bank_conflict_cycles + miss_penalty + coherency_penalty)
        level = worst_level if missing else "l2"
        self.stats.record_level(level)
        return AccessResult(
            latency=latency,
            level=level,
            hit=not missing,
            stride_one=plan.stride_one,
            bank_conflicts=plan.bank_conflict_cycles,
            coherency_penalty=coherency_penalty,
        )

    # --------------------------------------------------------------- reports

    def statistics(self) -> Dict[str, object]:
        """All counters of the hierarchy as a nested dictionary."""
        return {
            "l1": self.l1.stats.snapshot(),
            "l2": self.l2.stats.snapshot(),
            "l3": self.l3.stats.snapshot(),
            "paths": self.stats.snapshot(),
            "perfect": self.perfect,
        }
