"""The full memory hierarchy: L1 data cache, L2 vector cache, L3 and memory.

Two access paths exist, matching §3.2/§4.2 of the paper:

* **scalar path** (scalar and µSIMD loads/stores): L1 → L2 → L3 → memory,
  with the compiler scheduling every access as a 1-cycle L1 hit;
* **vector path** (vector loads/stores): the L1 is bypassed and the request
  goes straight to the two-bank L2 vector cache, scheduled as a stride-one
  L2 hit that streams ``port_words`` elements per cycle.

The hierarchy returns, for every access, the *actual* number of cycles until
the access completes, so the simulator can charge ``actual − assumed`` as a
stall.  Coherency between the two paths uses an exclusive-bit plus inclusion
policy: before the vector cache serves a line that is dirty in the L1, the
line is written back and invalidated (and vice versa for scalar accesses to
lines the vector path has dirtied in L2 — inclusion means the scalar path
simply finds them in L2).

A *perfect memory* mode reproduces the paper's Figure 5(a) methodology: all
accesses hit in their target level with the corresponding latency and every
vector access streams at the stride-one rate.
"""

from __future__ import annotations

import contextlib
import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.machine.config import MemoryConfig
from repro.memory.cache import SetAssociativeCache
from repro.memory.stream import (
    AccessStream,
    LEVEL_L2,
    LEVEL_L3,
    LEVEL_MEMORY,
    LEVEL_NAMES,
    StreamOp,
    StreamResult,
)
from repro.memory.vector_cache import VectorCache

__all__ = ["AccessKind", "AccessResult", "MemoryHierarchy"]

#: Extra cycles charged when a vector access finds the line dirty in the L1
#: and must wait for the write-back/invalidate before the vector cache can
#: respond (one L1→L2 transfer).
COHERENCY_WRITEBACK_PENALTY = 2


class AccessKind(enum.Enum):
    """Which path and direction an access uses."""

    SCALAR_LOAD = "scalar_load"
    SCALAR_STORE = "scalar_store"
    VECTOR_LOAD = "vector_load"
    VECTOR_STORE = "vector_store"

    @property
    def is_store(self) -> bool:
        return self in (AccessKind.SCALAR_STORE, AccessKind.VECTOR_STORE)

    @property
    def is_vector(self) -> bool:
        return self in (AccessKind.VECTOR_LOAD, AccessKind.VECTOR_STORE)


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory access.

    ``latency`` is the number of cycles from issue until the last element is
    delivered (loads) or accepted (stores).  ``level`` names the hierarchy
    level that ultimately served the access ("l1", "l2", "l3", "memory").
    ``stride_one`` and ``bank_conflicts`` are only meaningful for vector
    accesses.

    ``hit`` deliberately means *hit in the level the static schedule
    assumed* — the L1 for the scalar path, the L2 vector cache for the
    vector path — not "found in some cache".  A scalar access served by the
    L2 or L3 therefore reports ``hit=False`` (it stalled the pipeline even
    though no memory traffic occurred); ``level`` names the actual server.
    Use :attr:`l1_hit` / :attr:`served_level` when the distinction matters.
    The trace-compiled tier reproduces exactly this accounting.
    """

    latency: int
    level: str
    hit: bool
    stride_one: bool = True
    bank_conflicts: int = 0
    coherency_penalty: int = 0

    @property
    def l1_hit(self) -> bool:
        """True only when the L1 itself served the access."""
        return self.level == "l1" and self.hit

    @property
    def served_level(self) -> str:
        """Alias of ``level``: the hierarchy level that served the access."""
        return self.level


@dataclass
class HierarchyStats:
    """Aggregate counters for one hierarchy instance."""

    scalar_accesses: int = 0
    vector_accesses: int = 0
    vector_non_unit_stride: int = 0
    coherency_writebacks: int = 0
    level_hits: Dict[str, int] = field(default_factory=dict)

    def record_level(self, level: str) -> None:
        self.level_hits[level] = self.level_hits.get(level, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "scalar_accesses": self.scalar_accesses,
            "vector_accesses": self.vector_accesses,
            "vector_non_unit_stride": self.vector_non_unit_stride,
            "coherency_writebacks": self.coherency_writebacks,
            "level_hits": dict(self.level_hits),
        }


class MemoryHierarchy:
    """L1 + L2 vector cache + L3 + main memory with the two access paths."""

    def __init__(self, config: MemoryConfig, l1_ports: int = 1,
                 l2_port_words: int = 4, perfect: bool = False) -> None:
        self.config = config
        self.perfect = perfect
        self.l1_ports = l1_ports
        self.l1 = SetAssociativeCache(
            config.l1_size, config.l1_assoc, config.l1_line_bytes, name="L1")
        self.l2 = VectorCache(
            config.l2_size, config.l2_assoc, config.l2_line_bytes,
            banks=config.l2_banks, port_words=l2_port_words, name="L2-vector")
        self.l3 = SetAssociativeCache(
            config.l3_size, config.l3_assoc, config.l3_line_bytes, name="L3")
        self.stats = HierarchyStats()
        # memo of vector access decompositions: a plan is a pure function of
        # (base alignment within a line*banks window, stride, VL), so the
        # batched path computes each distinct pattern once.
        self._plan_patterns: Dict[Tuple[int, int, int], Tuple[Tuple[int, ...], int, int]] = {}

    # ------------------------------------------------------------------ utils

    def reset_stats(self) -> None:
        """Zero all counters (cache contents are preserved)."""
        self.l1.stats.reset()
        self.l2.stats.reset()
        self.l2.request_stats.reset()
        self.l3.stats.reset()
        self.stats = HierarchyStats()

    def flush(self) -> None:
        """Empty all cache levels (used between independent benchmark runs)."""
        self.l1.flush()
        self.l2.cache.flush()
        self.l3.flush()

    def preload(self, base_address: int, size_bytes: int,
                include_l1: bool = False) -> None:
        """Install an address range into the L2 vector cache and the L3.

        Models data that the previous pipeline stage of the application just
        produced (file input, an earlier kernel's output): resident in the
        outer levels but not necessarily in the small L1.  The counters are
        left untouched so the pre-load does not pollute the statistics.
        """
        self.preload_spans([(base_address, size_bytes)], include_l1=include_l1)

    def preload_spans(self, spans, include_l1: bool = False) -> None:
        """Batched :meth:`preload` of many ``(base, size_bytes)`` ranges.

        All spans are concatenated (in the given order) into one replay per
        cache level, so warming a many-buffer working set costs a handful of
        batched replays instead of two per span.  Identical to calling
        :meth:`preload` span by span: replay order is the concatenation
        order, and the counters stay frozen throughout.
        """
        line = self.l2.cache.line_bytes
        chunks = [np.arange(base - base % line, base + size, line,
                            dtype=np.int64)
                  for base, size in spans if size > 0]
        if not chunks:
            return
        addresses = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        with contextlib.ExitStack() as stack:
            for cache in (self.l1, self.l2.cache, self.l3):
                stack.enter_context(cache.stats.stats_frozen())
            self.l2.cache.access_batch(addresses)
            self.l3.access_batch(addresses)
            if include_l1:
                self.l1.access_batch(addresses)

    # ----------------------------------------------------------- scalar path

    def scalar_access(self, address: int, is_store: bool = False,
                      size_bytes: int = 8) -> AccessResult:
        """Access through the L1 path; returns the actual completion latency.

        ``size_bytes`` only matters for accesses that straddle a line
        boundary, which the media kernels avoid by aligning their buffers;
        it is accepted so traces can express byte accesses faithfully.
        """
        self.stats.scalar_accesses += 1
        cfg = self.config
        if self.perfect:
            self.stats.record_level("l1")
            return AccessResult(latency=cfg.l1_latency, level="l1", hit=True)

        hit_l1, _ = self.l1.access(address, is_store=is_store)
        if hit_l1:
            self.stats.record_level("l1")
            return AccessResult(latency=cfg.l1_latency, level="l1", hit=True)

        # L1 miss: look in the L2 (inclusion: vector-path data is found here),
        # then the L3, then memory.  The line is filled into every level on
        # the way back (inclusive hierarchy).
        line = self.l2.cache.line_address(address)
        hit_l2, _ = self.l2.cache.access(line, is_store=False)
        if hit_l2:
            self.stats.record_level("l2")
            return AccessResult(latency=cfg.l2_latency, level="l2", hit=False)

        hit_l3, _ = self.l3.access(address, is_store=False)
        if hit_l3:
            self.stats.record_level("l3")
            return AccessResult(latency=cfg.l3_latency, level="l3", hit=False)

        self.stats.record_level("memory")
        return AccessResult(latency=cfg.memory_latency, level="memory", hit=False)

    # ----------------------------------------------------------- vector path

    def vector_access(self, base_address: int, stride_bytes: int,
                      vector_length: int, is_store: bool = False) -> AccessResult:
        """Access through the vector path (bypasses the L1).

        The returned latency covers the vector-cache pipeline latency, the
        element transfer time (wide port for stride-one, one element per
        cycle otherwise), miss penalties for every line that has to come
        from the L3 or memory, bank conflicts, and any coherency write-back
        needed because the L1 held a dirty copy.
        """
        self.stats.vector_accesses += 1
        cfg = self.config
        plan = self.l2.plan(base_address, stride_bytes, vector_length)
        if not plan.stride_one:
            self.stats.vector_non_unit_stride += 1

        if self.perfect:
            # Perfect memory: every vector access behaves like a stride-one
            # L2 hit streaming at the full port rate (Figure 5a methodology).
            latency = self.perfect_vector_latency(vector_length)
            self.stats.record_level("l2")
            return AccessResult(latency=latency, level="l2", hit=True,
                                stride_one=True, bank_conflicts=0)

        coherency_penalty = 0
        for line in plan.line_addresses:
            if self.l1.is_dirty(line):
                self.l1.invalidate(line)
                coherency_penalty += COHERENCY_WRITEBACK_PENALTY
                self.stats.coherency_writebacks += 1
            elif self.l1.contains(line) and is_store:
                # exclusive-bit policy: a vector store invalidates clean L1 copies
                self.l1.invalidate(line)

        missing, _ = self.l2.access_lines(plan, is_store=is_store)
        miss_penalty = 0
        worst_level = "l2"
        for line in missing:
            hit_l3, _ = self.l3.access(line, is_store=False)
            if hit_l3:
                miss_penalty += cfg.l3_latency - cfg.l2_latency
                worst_level = "l3" if worst_level == "l2" else worst_level
            else:
                miss_penalty += cfg.memory_latency - cfg.l2_latency
                worst_level = "memory"

        latency = (cfg.l2_latency + plan.transfer_cycles - 1
                   + plan.bank_conflict_cycles + miss_penalty + coherency_penalty)
        level = worst_level if missing else "l2"
        self.stats.record_level(level)
        return AccessResult(
            latency=latency,
            level=level,
            hit=not missing,
            stride_one=plan.stride_one,
            bank_conflicts=plan.bank_conflict_cycles,
            coherency_penalty=coherency_penalty,
        )

    def perfect_vector_latency(self, vector_length: int) -> int:
        """Latency of a vector access under the Figure-5(a) methodology.

        A stride-one L2 hit streaming at the full port rate; the single
        definition shared by the serial path, the batched path and the
        trace engine's closed-form perfect pass.
        """
        transfer = -(-vector_length // self.l2.port_words)
        return self.config.l2_latency + transfer - 1

    # ------------------------------------------------------------ batched path

    def _plan_pattern(self, base: int, stride: int, vl: int) -> Tuple[int, Tuple[int, ...], int, int]:
        """Line-touch pattern of a vector access, memoised by base alignment.

        Returns ``(anchor, relative_lines, transfer_cycles, conflict_cycles)``
        where the absolute line addresses are ``anchor + r`` for each
        relative line ``r``.  Exact because shifting the base by a multiple
        of ``line_bytes * banks`` shifts every touched line by the same
        amount and preserves the bank of every line.
        """
        window = self.l2.cache.line_bytes * self.l2.banks
        canonical = base % window
        key = (canonical, stride, vl)
        pattern = self._plan_patterns.get(key)
        if pattern is None:
            plan = self.l2.plan(canonical, stride, vl)
            pattern = (plan.line_addresses, plan.transfer_cycles,
                       plan.bank_conflict_cycles)
            self._plan_patterns[key] = pattern
        return base - canonical, pattern[0], pattern[1], pattern[2]

    def _record_level_counts(self, counts: Dict[str, int]) -> None:
        """Fold batched per-level counts into ``stats.level_hits``.

        Zero counts are skipped so the populated keys match a
        one-access-at-a-time walk of the same stream.
        """
        for name, count in counts.items():
            if count:
                self.stats.level_hits[name] = (
                    self.stats.level_hits.get(name, 0) + int(count))

    def scalar_access_batch(self, addresses: np.ndarray,
                            is_store: bool = False) -> StreamResult:
        """Batched :meth:`scalar_access`: one in-order stream of L1-path accesses.

        Exact: final cache state and every counter match a serial walk.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        stream = AccessStream(
            ops=(StreamOp(is_vector=False, is_store=is_store),),
            op_index=np.zeros(len(addresses), dtype=np.int64),
            addresses=addresses)
        return self.replay_stream(stream)

    def vector_access_batch(self, base_addresses: np.ndarray, stride_bytes: int,
                            vector_length: int, is_store: bool = False) -> StreamResult:
        """Batched :meth:`vector_access`: one in-order stream of vector accesses."""
        base_addresses = np.asarray(base_addresses, dtype=np.int64)
        stream = AccessStream(
            ops=(StreamOp(is_vector=True, is_store=is_store,
                          stride_bytes=stride_bytes, vector_length=vector_length),),
            op_index=np.zeros(len(base_addresses), dtype=np.int64),
            addresses=base_addresses)
        return self.replay_stream(stream)

    def replay_stream(self, stream: AccessStream) -> StreamResult:
        """Replay a mixed scalar/vector access stream exactly, but batched.

        The stream is processed in three phases that preserve the serial
        semantics because the levels' states are causally layered: the L1
        outcome of every access depends only on earlier L1 traffic (scalar
        accesses plus vector coherency probes), the L2 stream is the L1 miss
        stream interleaved — at the original stream positions — with the
        vector line touches, and the L3 stream is the L2 miss stream.
        Within each phase the set/tag arithmetic and hit classification are
        vectorised (:meth:`repro.memory.cache.SetAssociativeCache.replay_events`);
        eviction/coherency effects run serially per set.
        """
        ops = stream.ops
        op_index = stream.op_index
        addresses = stream.addresses
        n = len(stream)
        latencies = np.zeros(n, dtype=np.int64)
        levels = np.zeros(n, dtype=np.uint8)
        result = StreamResult(latencies=latencies, levels=levels)
        if n == 0:
            return result
        cfg = self.config
        element_bytes = self.l2.element_bytes
        op_vector = np.fromiter((op.is_vector for op in ops), dtype=bool,
                                count=len(ops))
        op_store = np.fromiter((op.is_store for op in ops), dtype=bool,
                               count=len(ops))
        vec_mask = op_vector[op_index]
        vec_pos = np.nonzero(vec_mask)[0]
        scalar_pos = np.nonzero(~vec_mask)[0]
        n_vec = int(vec_pos.shape[0])
        n_scalar = n - n_vec
        self.stats.scalar_accesses += n_scalar
        self.stats.vector_accesses += n_vec
        op_non_unit = np.fromiter(
            (op.is_vector and op.stride_bytes != element_bytes for op in ops),
            dtype=bool, count=len(ops))
        self.stats.vector_non_unit_stride += int(op_non_unit[op_index].sum())

        if self.perfect:
            # Figure-5(a) methodology: constant latencies, no cache state.
            op_latency = np.fromiter(
                (self.perfect_vector_latency(op.vector_length)
                 if op.is_vector else cfg.l1_latency for op in ops),
                dtype=np.int64, count=len(ops))
            latencies[:] = op_latency[op_index]
            levels[vec_pos] = LEVEL_L2
            self._record_level_counts({"l1": n_scalar, "l2": n_vec})
            return result

        # ---- vector access decomposition (static, state independent)
        vec_ops = op_index[vec_pos]
        vec_transfer = np.zeros(n_vec, dtype=np.int64)
        vec_conflicts = np.zeros(n_vec, dtype=np.int64)
        max_lines = 1
        if n_vec:
            # Group the accesses by decomposition pattern: stride and VL are
            # attributes of the op, so (op, base alignment within the
            # line×banks window) fully determines the relative line touches.
            # Only the handful of distinct patterns run Python; the ragged
            # expansion to per-line touches is pure NumPy.
            window = self.l2.cache.line_bytes * self.l2.banks
            vec_bases = addresses[vec_pos]
            canon = vec_bases % window
            anchors = vec_bases - canon
            pattern_key = vec_ops * window + canon
            uniq, inverse = np.unique(pattern_key, return_inverse=True)
            rel_arrays = []
            transfer_u = np.zeros(len(uniq), dtype=np.int64)
            conflict_u = np.zeros(len(uniq), dtype=np.int64)
            nlines_u = np.zeros(len(uniq), dtype=np.int64)
            for u, key in enumerate(uniq.tolist()):
                o, cbase = divmod(key, window)
                op = ops[o]
                _, rel_lines, transfer, conflicts = self._plan_pattern(
                    cbase, op.stride_bytes, op.vector_length)
                rel_arrays.append(np.asarray(rel_lines, dtype=np.int64))
                transfer_u[u] = transfer
                conflict_u[u] = conflicts
                nlines_u[u] = len(rel_lines)
            starts_u = np.concatenate([[0], np.cumsum(nlines_u)])
            rel_flat = np.concatenate(rel_arrays)
            vec_transfer = transfer_u[inverse]
            vec_conflicts = conflict_u[inverse]
            max_lines = max(1, int(nlines_u.max()))
            nl_k = nlines_u[inverse]
            owner = np.repeat(np.arange(n_vec, dtype=np.int64), nl_k)
            total = int(nl_k.sum())
            # line sub-index within each owning access
            sub = (np.arange(total, dtype=np.int64)
                   - np.repeat(np.cumsum(nl_k) - nl_k, nl_k))
            touch_addr_arr = anchors[owner] + rel_flat[starts_u[inverse][owner] + sub]
            touch_owner_arr = owner
            touch_store_arr = op_store[vec_ops][owner]
            sub_radix = max_lines + 1
            # unique ordering key: (stream position, line sub-index)
            touch_key_arr = vec_pos[owner] * sub_radix + sub + 1
        else:
            sub_radix = max_lines + 1
            touch_addr_arr = np.zeros(0, dtype=np.int64)
            touch_owner_arr = np.zeros(0, dtype=np.int64)
            touch_store_arr = np.zeros(0, dtype=bool)
            touch_key_arr = np.zeros(0, dtype=np.int64)

        # ---- phase 1: the L1 sees scalar accesses and vector coherency probes
        l1_addr = np.concatenate([addresses[scalar_pos], touch_addr_arr])
        l1_store = np.concatenate([op_store[op_index[scalar_pos]], touch_store_arr])
        l1_coh = np.concatenate([np.zeros(n_scalar, dtype=bool),
                                 np.ones(len(touch_addr_arr), dtype=bool)])
        l1_key = np.concatenate([scalar_pos * sub_radix, touch_key_arr])
        l1_order = np.argsort(l1_key)
        l1_res_sorted = self.l1.replay_events(
            l1_addr[l1_order], l1_store[l1_order], l1_coh[l1_order])
        l1_res = np.empty(len(l1_key), dtype=np.uint8)
        l1_res[l1_order] = l1_res_sorted
        scalar_hit = l1_res[:n_scalar] == 1
        touch_codes = l1_res[n_scalar:]

        dirty_probe = touch_codes == 2
        coh_counts = np.bincount(touch_owner_arr[dirty_probe],
                                 minlength=max(n_vec, 1))[:n_vec]
        self.stats.coherency_writebacks += int(dirty_probe.sum())

        # ---- phase 2: the L2 sees the L1 miss stream and every vector line
        miss_ord = np.nonzero(~scalar_hit)[0]
        sc_miss_pos = scalar_pos[miss_ord]
        l2_line = self.l2.cache.line_bytes
        sc_miss_lines = (addresses[sc_miss_pos] // l2_line) * l2_line
        l2_addr = np.concatenate([sc_miss_lines, touch_addr_arr])
        l2_store = np.concatenate([np.zeros(len(miss_ord), dtype=bool),
                                   touch_store_arr])
        l2_key = np.concatenate([sc_miss_pos * sub_radix, touch_key_arr])
        l2_order = np.argsort(l2_key)
        l2_res_sorted = self.l2.cache.replay_events(
            l2_addr[l2_order], l2_store[l2_order])
        l2_res = np.empty(len(l2_key), dtype=np.uint8)
        l2_res[l2_order] = l2_res_sorted
        sc_l2_hit = l2_res[:len(miss_ord)] == 1
        touch_l2_miss = l2_res[len(miss_ord):] == 0

        # ---- phase 3: the L3 sees the L2 miss stream
        miss2_ord = miss_ord[~sc_l2_hit]            # scalar ordinals
        sc_miss2_pos = scalar_pos[miss2_ord]
        miss_touch = np.nonzero(touch_l2_miss)[0]   # vector line ordinals
        l3_addr = np.concatenate([addresses[sc_miss2_pos],
                                  touch_addr_arr[miss_touch]])
        l3_key = np.concatenate([sc_miss2_pos * sub_radix,
                                 touch_key_arr[miss_touch]])
        l3_order = np.argsort(l3_key)
        l3_res_sorted = self.l3.replay_events(
            l3_addr[l3_order], np.zeros(len(l3_addr), dtype=bool))
        l3_res = np.empty(len(l3_key), dtype=np.uint8)
        l3_res[l3_order] = l3_res_sorted
        sc_l3_hit = l3_res[:len(miss2_ord)] == 1
        touch_l3_hit = l3_res[len(miss2_ord):] == 1

        # ---- scalar latencies and levels
        scalar_levels = np.zeros(n_scalar, dtype=np.uint8)
        scalar_levels[miss_ord] = LEVEL_L2
        scalar_levels[miss2_ord] = LEVEL_L3
        scalar_levels[miss2_ord[~sc_l3_hit]] = LEVEL_MEMORY
        level_latency = np.array([cfg.l1_latency, cfg.l2_latency,
                                  cfg.l3_latency, cfg.memory_latency],
                                 dtype=np.int64)
        levels[scalar_pos] = scalar_levels
        latencies[scalar_pos] = level_latency[scalar_levels]

        # ---- vector latencies and levels
        if n_vec:
            owners = touch_owner_arr[miss_touch]
            miss_counts = np.bincount(owners, minlength=n_vec)
            # request-level L2 counters: one event per vector request, a hit
            # only when every line of the request was resident (the batched
            # mirror of VectorCache.access_lines)
            self.l2.request_stats.requests += n_vec
            self.l2.request_stats.hits += int((miss_counts == 0).sum())
            l3_served = np.bincount(owners[touch_l3_hit], minlength=n_vec)
            mem_served = miss_counts - l3_served
            miss_penalty = (l3_served * (cfg.l3_latency - cfg.l2_latency)
                            + mem_served * (cfg.memory_latency - cfg.l2_latency))
            vec_levels = np.where(
                miss_counts == 0, LEVEL_L2,
                np.where(mem_served > 0, LEVEL_MEMORY, LEVEL_L3)).astype(np.uint8)
            vec_latency = (cfg.l2_latency + vec_transfer - 1 + vec_conflicts
                           + miss_penalty
                           + coh_counts * COHERENCY_WRITEBACK_PENALTY)
            levels[vec_pos] = vec_levels
            latencies[vec_pos] = vec_latency

        level_counts = np.bincount(levels, minlength=4)
        self._record_level_counts(
            {name: int(level_counts[code])
             for code, name in enumerate(LEVEL_NAMES)})
        return result

    # --------------------------------------------------------------- reports

    def statistics(self) -> Dict[str, object]:
        """All counters of the hierarchy as a nested dictionary."""
        return {
            "l1": self.l1.stats.snapshot(),
            # line level: one event per line touched (denominator grows with
            # the vector request footprint) ...
            "l2": self.l2.stats.snapshot(),
            # ... request level: one event per vector request (a hit only
            # when the whole request was resident).  The paper's figures use
            # neither directly — they derive from RunStats cycle counts.
            "l2_requests": self.l2.request_stats.snapshot(),
            "l3": self.l3.stats.snapshot(),
            "paths": self.stats.snapshot(),
            "perfect": self.perfect,
        }
