"""The two-bank interleaved L2 vector cache.

The vector cache (Quintana et al., adopted in §3.2 of the paper) serves
vector requests directly, bypassing the L1:

* a *stride-one* vector request is satisfied by reading two whole cache
  lines — one per bank — and routing them through an interchange switch, a
  shifter and mask logic, so the port delivers ``port_words`` 64-bit
  elements per cycle;
* a request with any other stride is served one element per cycle;
* two lines needed in the same cycle that live in the same bank conflict and
  serialise (one extra cycle per conflict).

The class wraps a :class:`~repro.memory.cache.SetAssociativeCache` with the
bank mapping and a transfer-time model; miss handling (going to the L3 and
memory) is orchestrated by :class:`repro.memory.hierarchy.MemoryHierarchy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.memory.cache import SetAssociativeCache

__all__ = ["VectorCache", "VectorAccessPlan", "VectorRequestStats"]


@dataclass
class VectorRequestStats:
    """Request-level counters of the vector cache.

    The underlying tag store counts *line touches*: one VL-element request
    that spans four lines bumps ``cache.stats.accesses`` four times, so the
    tag-store hit rate is a *line* hit rate whose denominator grows with the
    request footprint.  These counters count *vector requests*: one
    increment per :meth:`VectorCache.access_lines` call, with a request
    counted as a hit only when **every** line it touches was resident.

    The paper's figures consume neither directly — they are derived from
    :class:`~repro.sim.stats.RunStats` cycle counts, into which the
    hierarchy folds per-line miss penalties — but diagnostics and the
    design-space explorer read both levels, so
    :meth:`repro.memory.hierarchy.MemoryHierarchy.statistics` reports them
    side by side (``"l2"`` = line level, ``"l2_requests"`` = request level).
    """

    requests: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def hit_rate(self) -> float:
        """Fraction of whole requests served entirely from resident lines."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def reset(self) -> None:
        self.requests = 0
        self.hits = 0

    def snapshot(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class VectorAccessPlan:
    """Decomposition of one vector memory request into line touches.

    Attributes
    ----------
    line_addresses:
        Distinct cache-line addresses the request touches, in access order.
    transfer_cycles:
        Cycles the wide port is busy delivering/accepting the elements,
        assuming every line hits (stride-one: ``ceil(VL / port_words)``;
        otherwise ``VL``).
    bank_conflict_cycles:
        Extra cycles lost to same-bank line pairs within the request.
    stride_one:
        Whether the request was recognised as stride-one.
    """

    line_addresses: Tuple[int, ...]
    transfer_cycles: int
    bank_conflict_cycles: int
    stride_one: bool


class VectorCache:
    """Two-bank interleaved vector cache with a wide stride-one port."""

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int,
                 banks: int = 2, port_words: int = 4,
                 element_bytes: int = 8, name: str = "L2-vector") -> None:
        if banks < 1:
            raise ValueError("the vector cache needs at least one bank")
        if port_words < 1:
            raise ValueError("the vector port must be at least one word wide")
        self.cache = SetAssociativeCache(size_bytes, assoc, line_bytes, name=name)
        self.banks = banks
        self.port_words = port_words
        self.element_bytes = element_bytes
        self.name = name
        self.request_stats = VectorRequestStats()

    # -- geometry helpers ----------------------------------------------------

    @property
    def line_bytes(self) -> int:
        """Line size in bytes (delegated to the underlying cache)."""
        return self.cache.line_bytes

    def bank_of(self, line_address: int) -> int:
        """Bank holding the given line (lines are interleaved across banks)."""
        return (line_address // self.line_bytes) % self.banks

    # -- request planning -----------------------------------------------------

    def element_addresses(self, base_address: int, stride_bytes: int,
                          vector_length: int) -> List[int]:
        """Byte addresses of the ``vector_length`` 64-bit elements accessed."""
        if vector_length < 1:
            raise ValueError("vector length must be >= 1")
        if stride_bytes == 0:
            raise ValueError("a vector access stride of zero is not defined")
        return [base_address + i * stride_bytes for i in range(vector_length)]

    def plan(self, base_address: int, stride_bytes: int,
             vector_length: int) -> VectorAccessPlan:
        """Decompose a vector request into line touches and transfer timing."""
        addresses = self.element_addresses(base_address, stride_bytes, vector_length)
        # the element spans two lines only if it straddles a boundary,
        # which aligned 64-bit elements never do; keep the check cheap.
        lines: List[int] = []
        seen: Set[int] = set()
        for addr in addresses:
            line = self.cache.line_address(addr)
            if line not in seen:
                seen.add(line)
                lines.append(line)
        stride_one = stride_bytes == self.element_bytes
        if stride_one:
            transfer = -(-vector_length // self.port_words)
        else:
            transfer = vector_length
        conflicts = self._bank_conflicts(lines, stride_one)
        return VectorAccessPlan(
            line_addresses=tuple(lines),
            transfer_cycles=transfer,
            bank_conflict_cycles=conflicts,
            stride_one=stride_one,
        )

    def _bank_conflicts(self, lines: Sequence[int], stride_one: bool) -> int:
        """Cycles lost to same-bank conflicts among simultaneously needed lines.

        Stride-one requests read lines pairwise (one per bank per cycle); a
        pair mapping to the same bank costs one extra cycle.  Non-unit
        strides are already serialised to one element per cycle, so no extra
        conflict penalty applies.
        """
        if not stride_one:
            return 0
        conflicts = 0
        for first, second in zip(lines[0::2], lines[1::2]):
            if self.bank_of(first) == self.bank_of(second):
                conflicts += 1
        return conflicts

    # -- access ---------------------------------------------------------------

    def access_lines(self, plan: VectorAccessPlan,
                     is_store: bool) -> Tuple[List[int], List[int]]:
        """Access every line of ``plan``; returns (missing_lines, writebacks).

        The underlying tag store counts each line touched; the request-level
        :attr:`request_stats` counts the whole plan once (a hit only when
        every line was resident).  See :class:`VectorRequestStats` for why
        both levels exist.
        """
        missing: List[int] = []
        writebacks: List[int] = []
        for line in plan.line_addresses:
            hit, writeback = self.cache.access(line, is_store=is_store)
            if not hit:
                missing.append(line)
            if writeback is not None:
                writebacks.append(writeback)
        self.request_stats.requests += 1
        if not missing:
            self.request_stats.hits += 1
        return missing, writebacks

    def invalidate(self, line_address: int) -> bool:
        """Invalidate one line (coherency actions from the scalar path)."""
        return self.cache.invalidate(line_address)

    @property
    def stats(self):
        """Hit/miss statistics of the underlying tag store."""
        return self.cache.stats
