"""Address-space layout for workload buffers.

The timing simulator works on addresses, not values, so every kernel needs
its buffers placed somewhere in a flat address space.  :class:`AddressSpace`
hands out aligned, non-overlapping base addresses for named arrays, which
keeps cache behaviour (footprints, set conflicts between arrays, reuse
across kernel invocations) realistic and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

__all__ = ["ArraySpec", "AddressSpace"]


@dataclass(frozen=True)
class ArraySpec:
    """A named, contiguously allocated array in the simulated address space."""

    name: str
    base: int
    element_bytes: int
    shape: Tuple[int, ...]

    @property
    def elements(self) -> int:
        """Total number of elements."""
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    @property
    def size_bytes(self) -> int:
        """Total size in bytes."""
        return self.elements * self.element_bytes

    @property
    def end(self) -> int:
        """First byte address past the array."""
        return self.base + self.size_bytes

    def address(self, *indices: int) -> int:
        """Byte address of the element at ``indices`` (row-major layout)."""
        if len(indices) != len(self.shape):
            raise ValueError(
                f"{self.name}: expected {len(self.shape)} indices, got {len(indices)}")
        offset = 0
        for index, dim in zip(indices, self.shape):
            if not 0 <= index < dim:
                raise IndexError(
                    f"{self.name}: index {index} out of range for dimension {dim}")
            offset = offset * dim + index
        return self.base + offset * self.element_bytes

    def row_address(self, row: int) -> int:
        """Byte address of the first element of ``row`` (2-D arrays)."""
        if len(self.shape) != 2:
            raise ValueError(f"{self.name}: row_address needs a 2-D array")
        return self.address(row, 0)

    def row_stride_bytes(self) -> int:
        """Distance in bytes between consecutive rows (2-D arrays)."""
        if len(self.shape) != 2:
            raise ValueError(f"{self.name}: row_stride_bytes needs a 2-D array")
        return self.shape[1] * self.element_bytes


class AddressSpace:
    """Sequential allocator of aligned arrays in a flat byte address space.

    Allocation starts at ``base`` (default 64 KiB, leaving page zero unused
    so that an accidental address of 0 is easy to spot) and each array is
    aligned to ``alignment`` bytes, which defaults to a cache line so that
    packed and vector accesses never straddle lines unintentionally.
    """

    def __init__(self, base: int = 0x10000, alignment: int = 64) -> None:
        if alignment <= 0 or alignment & (alignment - 1):
            raise ValueError("alignment must be a positive power of two")
        self._next = base
        self.alignment = alignment
        self._arrays: Dict[str, ArraySpec] = {}

    def allocate(self, name: str, shape: Tuple[int, ...] | int,
                 element_bytes: int = 8,
                 alignment: Optional[int] = None) -> ArraySpec:
        """Allocate a named array and return its :class:`ArraySpec`.

        Re-allocating an existing name is an error; kernels that need
        scratch buffers per invocation should allocate them once and reuse
        them, the way a real program reuses its heap buffers.
        """
        if name in self._arrays:
            raise ValueError(f"array {name!r} is already allocated")
        if isinstance(shape, int):
            shape = (shape,)
        if not shape or any(dim <= 0 for dim in shape):
            raise ValueError(f"array {name!r} must have positive dimensions")
        if element_bytes <= 0:
            raise ValueError("element_bytes must be positive")
        align = alignment or self.alignment
        if align & (align - 1):
            raise ValueError("alignment must be a power of two")
        base = (self._next + align - 1) // align * align
        spec = ArraySpec(name=name, base=base, element_bytes=element_bytes,
                         shape=tuple(shape))
        self._next = spec.end
        self._arrays[name] = spec
        return spec

    def __getitem__(self, name: str) -> ArraySpec:
        return self._arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __iter__(self) -> Iterator[ArraySpec]:
        return iter(self._arrays.values())

    def get(self, name: str) -> Optional[ArraySpec]:
        """Look up an array by name (None when absent)."""
        return self._arrays.get(name)

    @property
    def footprint_bytes(self) -> int:
        """Total bytes spanned by all allocations (including alignment gaps)."""
        if not self._arrays:
            return 0
        start = min(spec.base for spec in self._arrays.values())
        end = max(spec.end for spec in self._arrays.values())
        return end - start

    def overlapping(self) -> bool:
        """True if any two arrays overlap (should never happen)."""
        spans = sorted((spec.base, spec.end) for spec in self._arrays.values())
        for (_, prev_end), (next_base, _) in zip(spans, spans[1:]):
            if next_base < prev_end:
                return True
        return False
