"""Address streams: the batched currency between compiler, sim and memory.

A trace-compiled execution does not ask the memory hierarchy one question
per dynamic memory operation; it hands over an :class:`AccessStream` — the
complete, in-order sequence of memory accesses of (a chunk of) a program
run, with the per-operation metadata factored out into a small table — and
receives a :class:`StreamResult` with one latency and one serving level per
access.  The hierarchy replays the stream exactly (same cache state, same
counters as a one-at-a-time walk) but does the address arithmetic, tag
bookkeeping and result aggregation over whole NumPy arrays.

The stream types deliberately know nothing about the compiler IR: a stream
is just "operation *k* of this table touches address *a*, next".  The
trace compiler (:mod:`repro.compiler.trace`) lowers affine address
expressions into these arrays; tests can also write streams by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["StreamOp", "AccessStream", "StreamResult",
           "LEVEL_L1", "LEVEL_L2", "LEVEL_L3", "LEVEL_MEMORY", "LEVEL_NAMES"]

#: Serving-level codes used in :class:`StreamResult.levels`.
LEVEL_L1 = 0
LEVEL_L2 = 1
LEVEL_L3 = 2
LEVEL_MEMORY = 3
LEVEL_NAMES = ("l1", "l2", "l3", "memory")


@dataclass(frozen=True)
class StreamOp:
    """Static facts of one memory operation appearing in a stream.

    Scalar operations (``is_vector`` False) take the L1 path; vector
    operations take the L2 vector-cache path with the given element stride
    and vector length.
    """

    is_vector: bool
    is_store: bool
    stride_bytes: int = 8
    vector_length: int = 1


@dataclass
class AccessStream:
    """An in-order batch of dynamic memory accesses.

    ``op_index[i]`` names the :class:`StreamOp` performing access *i* and
    ``addresses[i]`` its (base) byte address; index order *is* execution
    order.  For vector operations the address is the base of the vector
    access, exactly as :meth:`repro.memory.hierarchy.MemoryHierarchy.vector_access`
    takes it.
    """

    ops: Tuple[StreamOp, ...]
    op_index: np.ndarray
    addresses: np.ndarray

    def __post_init__(self) -> None:
        self.op_index = np.ascontiguousarray(self.op_index, dtype=np.int64)
        self.addresses = np.ascontiguousarray(self.addresses, dtype=np.int64)
        if self.op_index.shape != self.addresses.shape:
            raise ValueError("op_index and addresses must have the same length")
        if self.op_index.size and (int(self.op_index.min()) < 0
                                   or int(self.op_index.max()) >= len(self.ops)):
            raise ValueError("op_index out of range of the operation table")

    def __len__(self) -> int:
        return int(self.op_index.shape[0])


@dataclass
class StreamResult:
    """Per-access outcome of replaying one :class:`AccessStream`.

    ``latencies[i]`` is the actual completion latency of access *i* — the
    value :class:`~repro.memory.hierarchy.AccessResult.latency` would have
    carried — and ``levels[i]`` the serving level as a ``LEVEL_*`` code.
    """

    latencies: np.ndarray
    levels: np.ndarray

    def level_names(self) -> np.ndarray:
        """The serving levels as strings (diagnostic helper)."""
        return np.array(LEVEL_NAMES)[self.levels]
