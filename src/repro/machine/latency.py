"""Latency descriptors for scalar, µSIMD and Vector-µSIMD operations.

The paper's scheduler (Elcor, driven by an HPL-PD machine description)
characterises every operation with four latency descriptors: earliest read
(``Ter``), latest read (``Tlr``), earliest write (``Tew``) and latest write
(``Tlw``).  For a fully pipelined scalar operation with flow latency ``L``
these are ``(0, 0, 0, L)``.  For a vector operation the descriptors also
depend on the dynamic vector length ``VL`` and on the number of parallel
vector lanes ``LN`` (Figure 3 of the paper)::

    Ter = 0
    Tlr = ceil((VL - 1) / LN)
    Tew = 0
    Tlw = L + ceil((VL - 1) / LN)

Vector *memory* operations use the same formulas with ``LN`` replaced by the
width of the L2 vector-cache port in 64-bit elements.

The model also provides two derived quantities the scheduler and simulator
need:

* *occupancy*: how many cycles an operation keeps its functional unit (or
  memory port) busy — ``ceil(VL / LN)`` for vector operations, 1 for fully
  pipelined scalar/µSIMD operations;
* *chain latency*: the earliest a dependent **vector** operation may start
  when the register file supports chaining (§3.3), which is the producer's
  per-element flow latency rather than its full completion time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.operations import OpClass, OperationDescriptor, descriptor_for
from repro.isa.registers import RegisterClass
from repro.machine.config import MachineConfig

__all__ = ["LatencyDescriptor", "LatencyModel", "DEFAULT_FLOW_LATENCIES"]


@dataclass(frozen=True)
class LatencyDescriptor:
    """The four HPL-PD latency descriptors of one operation instance."""

    earliest_read: int
    latest_read: int
    earliest_write: int
    latest_write: int

    def __post_init__(self) -> None:
        if self.latest_read < self.earliest_read:
            raise ValueError("latest read cannot precede earliest read")
        if self.latest_write < self.earliest_write:
            raise ValueError("latest write cannot precede earliest write")

    @property
    def result_latency(self) -> int:
        """Cycles from issue until the full result is architecturally visible."""
        return self.latest_write


#: Default flow latencies (cycles) per latency class.  Scalar latencies are
#: modelled on the Itanium2 (paper §4.2); the 2-cycle vector/µSIMD ALU and
#: the 5-cycle vector-cache latency are the values used in the paper's
#: Figure-4 scheduling example.
DEFAULT_FLOW_LATENCIES: Dict[str, int] = {
    "int_alu": 1,
    "int_mul": 4,
    "int_div": 12,
    "branch": 1,
    "load": 1,
    "store": 1,
    "simd_alu": 2,
    "simd_mul": 4,
    "simd_sad": 3,
    "vector_alu": 2,
    "vector_mul": 4,
    "vector_sad": 3,
    "vector_load": 5,
    "vector_store": 5,
    "vector_reduce": 2,
    "vector_setup": 1,
    "nop": 1,
}

#: Mapping from operation class to the default latency class.
_CLASS_TO_LATENCY: Dict[OpClass, str] = {
    OpClass.INT_ALU: "int_alu",
    OpClass.INT_MUL: "int_mul",
    OpClass.BRANCH: "branch",
    OpClass.LOAD: "load",
    OpClass.STORE: "store",
    OpClass.SIMD_ALU: "simd_alu",
    OpClass.SIMD_MUL: "simd_mul",
    OpClass.SIMD_SAD: "simd_sad",
    OpClass.VECTOR_ALU: "vector_alu",
    OpClass.VECTOR_MUL: "vector_mul",
    OpClass.VECTOR_SAD: "vector_sad",
    OpClass.VECTOR_LOAD: "vector_load",
    OpClass.VECTOR_STORE: "vector_store",
    OpClass.VECTOR_REDUCE: "vector_reduce",
    OpClass.VECTOR_SETUP: "vector_setup",
    OpClass.NOP: "nop",
}


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class _FlowTable(dict):
    """Flow-latency table that invalidates its owner's memo on mutation.

    The scheduler resolves the same handful of ``(opcode, VL, config)``
    triples tens of thousands of times per sweep, so :class:`LatencyModel`
    memoises descriptors and occupancies per configuration.  Experiments are
    allowed to mutate ``flow_latencies`` in place (the compile cache keys on
    the table's *content* for exactly that reason), so every mutating dict
    operation drops the memo.
    """

    __slots__ = ("_owner",)

    def _touch(self) -> None:
        owner = getattr(self, "_owner", None)
        if owner is not None:
            owner._drop_memos()

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        self._touch()

    def __delitem__(self, key):
        super().__delitem__(key)
        self._touch()

    def update(self, *args, **kwargs):
        super().update(*args, **kwargs)
        self._touch()

    def pop(self, *args):
        result = super().pop(*args)
        self._touch()
        return result

    def popitem(self):
        result = super().popitem()
        self._touch()
        return result

    def clear(self):
        super().clear()
        self._touch()

    def setdefault(self, key, default=None):
        result = super().setdefault(key, default)
        self._touch()
        return result


@dataclass
class LatencyModel:
    """Resolves opcodes to flow latencies, descriptors and occupancies.

    The model is parameterised by a flow-latency table so experiments can
    explore alternative pipelines (one of the ablation benchmarks sweeps the
    vector-cache latency); the defaults reproduce the paper's values.

    Lookups are memoised per configuration object: the answers depend only
    on the opcode's descriptor, the vector length, the configuration and the
    flow-latency table, and both mutation paths (rebinding the
    ``flow_latencies`` attribute and in-place edits of the table) drop the
    memo, so cached entries can never go stale.
    """

    flow_latencies: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_FLOW_LATENCIES))

    def __setattr__(self, name, value):
        if name == "flow_latencies":
            table = _FlowTable(value)
            table._owner = self
            object.__setattr__(self, name, table)
            self._drop_memos()
            return
        object.__setattr__(self, name, value)

    def _drop_memos(self) -> None:
        # keyed id(config) -> (config, {inner key -> (descriptor, value)});
        # the strong config reference pins the id for the entry's lifetime.
        object.__setattr__(self, "_memo_by_config", {})

    def _memo_for(self, config) -> Dict[tuple, tuple]:
        entry = self._memo_by_config.get(id(config))
        if entry is None:
            entry = (config, {})
            self._memo_by_config[id(config)] = entry
        return entry[1]

    def flow_latency(self, opcode, config: MachineConfig) -> int:
        """Per-(sub-)operation flow latency ``L`` of ``opcode``."""
        desc = self._descriptor(opcode)
        memo = self._memo_for(config)
        key = ("flow", desc.name)
        cached = memo.get(key)
        if cached is not None and cached[0] is desc:
            return cached[1]
        lat_key = desc.latency_class or _CLASS_TO_LATENCY[desc.op_class]
        latency = self.flow_latencies[lat_key]
        if lat_key == "load" and config is not None:
            latency = max(latency, config.memory.l1_latency)
        elif lat_key == "vector_load" and config is not None:
            latency = max(latency, config.memory.l2_latency)
        memo[key] = (desc, latency)
        return latency

    @staticmethod
    def _descriptor(opcode) -> OperationDescriptor:
        if isinstance(opcode, OperationDescriptor):
            return opcode
        return descriptor_for(opcode)

    # -- rates ---------------------------------------------------------------

    def element_rate(self, opcode, config: MachineConfig) -> int:
        """Packed words processed per cycle once the operation is streaming.

        Vector computation operations initiate ``vector_lanes`` sub-operations
        per cycle; vector memory operations transfer ``l2_port_words`` packed
        words per cycle when the stride is one; everything else completes in
        a single initiation.
        """
        desc = self._descriptor(opcode)
        if desc.op_class.is_vector:
            return max(1, config.vector_lanes)
        if desc.op_class.is_vector_memory:
            return max(1, config.l2_port_words)
        return 1

    def descriptor(self, opcode, vector_length: int, config: MachineConfig) -> LatencyDescriptor:
        """Latency descriptors of one operation instance (Figure 3)."""
        desc = self._descriptor(opcode)
        vl = max(1, int(vector_length))
        memo = self._memo_for(config)
        key = ("desc", desc.name, vl)
        cached = memo.get(key)
        if cached is not None and cached[0] is desc:
            return cached[1]
        latency = self.flow_latency(desc, config)
        if desc.op_class.is_vector or desc.op_class.is_vector_memory:
            rate = self.element_rate(desc, config)
            tail = _ceil_div(vl - 1, rate) if vl > 1 else 0
            result = LatencyDescriptor(
                earliest_read=0,
                latest_read=tail,
                earliest_write=0,
                latest_write=latency + tail,
            )
        else:
            result = LatencyDescriptor(
                earliest_read=0,
                latest_read=0,
                earliest_write=0,
                latest_write=latency,
            )
        memo[key] = (desc, result)
        return result

    def result_latency(self, opcode, vector_length: int, config: MachineConfig) -> int:
        """Issue-to-full-result latency (``Tlw``) of one operation instance."""
        return self.descriptor(opcode, vector_length, config).latest_write

    def chain_latency(self, opcode, config: MachineConfig) -> int:
        """Earliest a chained vector consumer may start after this producer.

        Chaining forwards vector elements as they are produced, so a
        dependent vector operation only waits for the producer's first
        element: its per-element flow latency.
        """
        return self.flow_latency(opcode, config)

    def dependence_latency(self, kind, opcode, vector_length: int,
                           register_class, config: MachineConfig) -> int:
        """Minimum issue-cycle separation a dependence edge imposes.

        This is the *specification* of the scheduler's edge weights — the
        rules the paper's machine description implies for each dependence
        kind — stated once so that independent checkers (the static
        analyzer in :mod:`repro.analysis`) can verify schedules without
        borrowing the scheduler's own edge-weight code:

        * ``raw`` through a **vector** register from a vector or
          vector-memory producer: chaining applies, the consumer waits only
          for the producer's first element (:meth:`chain_latency`);
        * any other ``raw``: the producer's full result latency (``Tlw``);
        * ``war``: the overwrite must wait out the earlier consumer's
          latest read (``Tlr``);
        * ``waw`` / ``memory``: the later operation waits out the
          producer's functional-unit / port occupancy (at least one cycle).

        ``kind`` accepts either the string values ``"raw" | "war" | "waw" |
        "memory"`` or any enum whose ``value`` is one of those (e.g.
        :class:`repro.compiler.dataflow.DependenceKind`).  ``opcode``,
        ``vector_length`` and ``register_class`` describe the *producer*
        operation and the register carrying the dependence.
        """
        desc = self._descriptor(opcode)
        kind_value = getattr(kind, "value", kind)
        if kind_value == "raw":
            if (register_class is RegisterClass.VECTOR
                    and (desc.op_class.is_vector or desc.op_class.is_vector_memory)):
                return self.chain_latency(desc, config)
            return self.result_latency(desc, vector_length, config)
        if kind_value == "war":
            return self.descriptor(desc, vector_length, config).latest_read
        if kind_value in ("waw", "memory"):
            return max(1, self.occupancy(desc, vector_length, config))
        raise ValueError(f"unknown dependence kind {kind!r}")

    def occupancy(self, opcode, vector_length: int, config: MachineConfig,
                  stride_one: bool = True) -> int:
        """Cycles the operation keeps its functional unit or memory port busy.

        Vector computation: ``ceil(VL / lanes)``.  Vector memory with stride
        one: ``ceil(VL / port_width)``; with any other stride the vector
        cache serves one element per cycle, i.e. ``VL`` cycles (the compiler
        always *schedules* assuming stride one — the run-time difference is
        charged as a stall by the simulator, see :mod:`repro.sim`).
        """
        desc = self._descriptor(opcode)
        vl = max(1, int(vector_length))
        memo = self._memo_for(config)
        key = ("occ", desc.name, vl, stride_one)
        cached = memo.get(key)
        if cached is not None and cached[0] is desc:
            return cached[1]
        if desc.op_class.is_vector:
            result = _ceil_div(vl, max(1, config.vector_lanes))
        elif desc.op_class.is_vector_memory:
            result = _ceil_div(vl, max(1, config.l2_port_words)) if stride_one else vl
        else:
            result = 1
        memo[key] = (desc, result)
        return result

    def __getstate__(self):
        # memo entries reference live config objects; rebuild them lazily on
        # the other side instead of shipping them across process boundaries.
        return {"flow_latencies": dict(self.flow_latencies)}

    def __setstate__(self, state):
        self.flow_latencies = state["flow_latencies"]

    def with_overrides(self, **overrides: int) -> "LatencyModel":
        """Return a copy of the model with some flow latencies replaced."""
        table = dict(self.flow_latencies)
        unknown = set(overrides) - set(table)
        if unknown:
            raise KeyError(f"unknown latency classes: {sorted(unknown)}")
        table.update({k: int(v) for k, v in overrides.items()})
        return LatencyModel(flow_latencies=table)
