"""Machine models: the ten processor configurations of the paper.

* :mod:`repro.machine.config` — declarative description of a
  (Vector-µSIMD-)VLIW machine: issue width, functional units, ports,
  register files and memory geometry, plus the registry of the ten
  configurations evaluated in the paper (Table 2).
* :mod:`repro.machine.latency` — the HPL-PD style latency descriptors
  (earliest/latest read and write times) including the vector-length and
  lane dependent descriptors of Figure 3.
* :mod:`repro.machine.resources` — per-cycle reservation tables used by the
  list scheduler and the cycle simulator to enforce issue-width, functional
  unit and port constraints.
"""

from repro.machine.config import (
    MachineConfig,
    MemoryConfig,
    ArchitectureFamily,
    PAPER_CONFIGS,
    PAPER_CONFIG_ORDER,
    get_config,
    baseline_config,
)
from repro.machine.latency import LatencyModel, LatencyDescriptor
from repro.machine.resources import ReservationTable, ResourceKind, ResourceRequest

__all__ = [
    "MachineConfig",
    "MemoryConfig",
    "ArchitectureFamily",
    "PAPER_CONFIGS",
    "PAPER_CONFIG_ORDER",
    "get_config",
    "baseline_config",
    "LatencyModel",
    "LatencyDescriptor",
    "ReservationTable",
    "ResourceKind",
    "ResourceRequest",
]
