"""Per-cycle resource reservation used by the scheduler and the simulator.

A VLIW machine constrains a schedule in two ways: the issue width (how many
operations one long instruction can encode) and the functional units / ports
each operation needs.  The paper's configurations expose six resource kinds
(Table 2): issue slots, integer units, µSIMD units, vector units, L1 data
cache ports and the wide L2 vector-cache port.

Fully pipelined operations occupy their unit for one cycle.  Vector
operations occupy their vector unit for ``ceil(VL / lanes)`` cycles, and
vector memory operations occupy the L2 port for ``ceil(VL / port_width)``
cycles (the stride-one schedule-time assumption).  The
:class:`ReservationTable` tracks per-cycle usage so the list scheduler can
greedily find the earliest cycle where all of an operation's requests fit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.isa.operations import OpClass, descriptor_for
from repro.machine.config import MachineConfig
from repro.machine.latency import LatencyModel

__all__ = [
    "ResourceKind",
    "ResourceRequest",
    "ReservationTable",
    "capacities_for",
    "requests_for",
    "UnschedulableOperationError",
]


class ResourceKind(enum.Enum):
    """Kinds of resources an operation can reserve."""

    ISSUE = "issue"
    INT_UNIT = "int_unit"
    SIMD_UNIT = "simd_unit"
    VECTOR_UNIT = "vector_unit"
    L1_PORT = "l1_port"
    L2_PORT = "l2_port"


@dataclass(frozen=True)
class ResourceRequest:
    """A request for ``count`` units of ``kind`` for ``duration`` cycles."""

    kind: ResourceKind
    duration: int = 1
    count: int = 1

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ValueError("resource duration must be >= 1 cycle")
        if self.count < 1:
            raise ValueError("resource count must be >= 1")


class UnschedulableOperationError(RuntimeError):
    """Raised when an operation cannot execute on the target machine at all.

    Typical causes: a µSIMD operation on a plain VLIW configuration, or a
    vector operation on a machine without vector units.  The kernel builders
    are expected to pick the right ISA flavour per machine, so hitting this
    is a programming error that should fail loudly.
    """


def capacities_for(config: MachineConfig) -> Dict[ResourceKind, int]:
    """Per-cycle capacity of every resource kind in ``config``."""
    capacities = config.resource_capacities()
    return {kind: capacities[kind.value] for kind in ResourceKind}


#: Memo of :func:`requests_for`, keyed ``id(config) -> (config, inner)`` with
#: ``inner`` keyed on ``(opcode name, VL)``.  Entries pin the config, the
#: latency model and the descriptor they were computed from, so recycled ids,
#: swapped models and re-registered opcodes all invalidate by identity.  The
#: request tuples are immutable and shared between hits.
_REQUESTS_MEMO: Dict[int, tuple] = {}


def requests_for(opcode, vector_length: int, config: MachineConfig,
                 latency_model: LatencyModel) -> Sequence[ResourceRequest]:
    """Resource requests of one operation instance on ``config``.

    Every operation consumes one issue slot.  The remaining requests depend
    on the operation class; on vector configurations µSIMD operations are
    executed on a vector unit with ``VL = 1`` (the paper's vector ISA is a
    strict superset of the µSIMD one).
    """
    desc = descriptor_for(opcode)
    vl = max(1, int(vector_length))
    entry = _REQUESTS_MEMO.get(id(config))
    if entry is None or entry[0] is not config:
        entry = (config, {})
        _REQUESTS_MEMO[id(config)] = entry
    inner = entry[1]
    cached = inner.get((desc.name, vl))
    if cached is not None and cached[0] is desc and cached[1] is latency_model:
        return cached[2]
    requests = tuple(_requests_uncached(desc, vl, config, latency_model))
    inner[(desc.name, vl)] = (desc, latency_model, requests)
    return requests


def _requests_uncached(desc, vector_length: int, config: MachineConfig,
                       latency_model: LatencyModel) -> List[ResourceRequest]:
    cls = desc.op_class
    requests = [ResourceRequest(ResourceKind.ISSUE, 1)]

    if cls in (OpClass.INT_ALU, OpClass.INT_MUL, OpClass.BRANCH,
               OpClass.VECTOR_SETUP):
        requests.append(ResourceRequest(ResourceKind.INT_UNIT, 1))
    elif cls is OpClass.NOP:
        pass
    elif cls in (OpClass.LOAD, OpClass.STORE):
        if config.l1_ports < 1:
            raise UnschedulableOperationError(
                f"{config.name} has no L1 port for {desc.name}")
        requests.append(ResourceRequest(ResourceKind.L1_PORT, 1))
    elif cls.is_simd:
        if config.simd_units:
            requests.append(ResourceRequest(ResourceKind.SIMD_UNIT, 1))
        elif config.vector_units:
            requests.append(ResourceRequest(ResourceKind.VECTOR_UNIT, 1))
        else:
            raise UnschedulableOperationError(
                f"{config.name} cannot execute µSIMD operation {desc.name}")
    elif cls.is_vector:
        if not config.vector_units:
            raise UnschedulableOperationError(
                f"{config.name} cannot execute vector operation {desc.name}")
        occupancy = latency_model.occupancy(desc, vector_length, config)
        requests.append(ResourceRequest(ResourceKind.VECTOR_UNIT, occupancy))
    elif cls.is_vector_memory:
        if not config.l2_ports:
            raise UnschedulableOperationError(
                f"{config.name} has no L2 vector-cache port for {desc.name}")
        occupancy = latency_model.occupancy(desc, vector_length, config)
        requests.append(ResourceRequest(ResourceKind.L2_PORT, occupancy))
    else:  # pragma: no cover - defensive
        raise UnschedulableOperationError(f"unhandled operation class {cls}")
    return requests


class ReservationTable:
    """Per-cycle usage table for all resource kinds.

    The table is unbounded in time (schedules grow as needed): a flat list
    per resource kind holds the units in use at each cycle, and cycles at or
    beyond ``_extent`` (one past the last reservation) are implicitly free.
    The scheduler asks :meth:`fits` for a candidate issue cycle and then
    calls :meth:`reserve`; the cycle-level simulator reuses the same
    structure to replay and verify a schedule.  :meth:`earliest_fit` bounds
    its scan by the extent — everything after it trivially fits — and
    switches to a vectorized cumulative-sum scan when the congested region
    is long.
    """

    #: Scan length past which :meth:`earliest_fit` batches the feasibility
    #: test for all candidate cycles at once instead of probing one by one.
    BATCH_SCAN_THRESHOLD = 64

    def __init__(self, capacities: Dict[ResourceKind, int]) -> None:
        self._capacities = dict(capacities)
        self._usage: Dict[ResourceKind, List[int]] = {
            kind: [] for kind in ResourceKind
        }
        self._extent = 0

    @property
    def capacities(self) -> Dict[ResourceKind, int]:
        """Per-cycle capacities this table enforces (read-only copy)."""
        return dict(self._capacities)

    def capacity(self, kind: ResourceKind) -> int:
        """Capacity of one resource kind."""
        return self._capacities.get(kind, 0)

    def usage(self, kind: ResourceKind, cycle: int) -> int:
        """Units of ``kind`` already reserved at ``cycle``."""
        usage = self._usage[kind]
        return usage[cycle] if 0 <= cycle < len(usage) else 0

    def fits(self, cycle: int, requests: Sequence[ResourceRequest]) -> bool:
        """True if all ``requests`` fit starting at ``cycle``."""
        if cycle < 0:
            return False
        for request in requests:
            capacity = self._capacities.get(request.kind, 0)
            if capacity < request.count:
                return False
            usage = self._usage[request.kind]
            limit = capacity - request.count
            for offset in range(min(request.duration, len(usage) - cycle)):
                if usage[cycle + offset] > limit:
                    return False
        return True

    def reserve(self, cycle: int, requests: Sequence[ResourceRequest],
                verified: bool = False) -> None:
        """Reserve ``requests`` starting at ``cycle`` (must fit).

        ``verified=True`` skips the redundant feasibility re-check when the
        caller just found ``cycle`` via :meth:`earliest_fit`.
        """
        if not verified and not self.fits(cycle, requests):
            raise ValueError(f"resource requests do not fit at cycle {cycle}")
        for request in requests:
            usage = self._usage[request.kind]
            end = cycle + request.duration
            if end > len(usage):
                usage.extend([0] * (end - len(usage)))
            for offset in range(cycle, end):
                usage[offset] += request.count
            if end > self._extent:
                self._extent = end

    def earliest_fit(self, not_before: int, requests: Sequence[ResourceRequest],
                     horizon: int = 100_000) -> int:
        """Earliest cycle >= ``not_before`` where all requests fit.

        ``horizon`` bounds the distance searched so that a pathologically
        congested schedule raises instead of placing an operation absurdly
        late; impossible requests (zero-capacity resources) raise
        immediately.
        """
        for kind_request in requests:
            if self._capacities.get(kind_request.kind, 0) < kind_request.count:
                raise UnschedulableOperationError(
                    f"no capacity for resource {kind_request.kind.value}")
        cycle = max(0, int(not_before))
        if cycle >= self._extent:
            # past every reservation: all cells are free
            return cycle
        if self._extent - cycle > self.BATCH_SCAN_THRESHOLD:
            found = self._earliest_fit_batched(cycle, requests)
        else:
            found = self._extent
            for candidate in range(cycle, self._extent):
                if self.fits(candidate, requests):
                    found = candidate
                    break
        if found - cycle >= horizon:
            raise RuntimeError(
                f"could not place operation within {horizon} cycles; "
                "the schedule is pathologically congested")
        return found

    def _earliest_fit_batched(self, start: int,
                              requests: Sequence[ResourceRequest]) -> int:
        """Feasibility of every candidate in ``[start, extent]`` at once.

        For each request a candidate cycle ``c`` is infeasible when any cell
        of ``[c, c + duration)`` lacks headroom; a cumulative sum over the
        per-cell "blocked" flags turns that window test into one subtraction
        per candidate.  The candidate at ``extent`` touches only free cells,
        so a fit always exists.
        """
        ncand = self._extent - start + 1
        ok = np.ones(ncand, dtype=bool)
        for request in requests:
            capacity = self._capacities.get(request.kind, 0)
            usage = self._usage[request.kind]
            span = self._extent + request.duration - start
            cells = np.zeros(span, dtype=np.int64)
            tail = usage[start:min(start + span, len(usage))]
            if tail:
                cells[:len(tail)] = tail
            blocked = cells + request.count > capacity
            if request.duration == 1:
                ok &= ~blocked[:ncand]
            else:
                sums = np.cumsum(blocked)
                windows = sums[request.duration - 1:request.duration - 1 + ncand].copy()
                windows[1:] -= sums[:ncand - 1]
                ok &= windows == 0
        return start + int(np.argmax(ok))

    def busy_cycles(self, kind: ResourceKind) -> Iterable[Tuple[int, int]]:
        """Iterate ``(cycle, units_in_use)`` pairs for one resource kind."""
        usage = self._usage[kind]
        return [(c, u) for c, u in enumerate(usage) if u]

    def high_water_mark(self) -> Dict[ResourceKind, int]:
        """Maximum simultaneous usage observed per resource kind."""
        return {
            kind: max(usage, default=0)
            for kind, usage in self._usage.items()
        }
