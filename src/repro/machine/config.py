"""Processor configurations (Table 2 of the paper).

Ten architectures are evaluated in the paper:

========  =======================  =================================
family    issue widths             description
========  =======================  =================================
VLIW      2, 4, 8                  base HPL-PD style VLIW, integer only
+µSIMD    2, 4, 8                  adds 64-bit packed registers/units
+Vector1  2, 4                     adds vector registers, 1/2 vector
                                   units of 4 lanes, wide L2 port
+Vector2  2, 4                     like Vector1 with twice the vector
                                   units and an extra L1 port at 4-issue
========  =======================  =================================

The vector configurations are intentionally *not* balanced against the same
issue-width µSIMD machines: the paper positions them as an alternative to
**wider** issue processors (the arithmetic capability of the 2-issue Vector2
is comparable to the 8-issue µSIMD machine).

This module also carries the memory-system geometry shared by all
configurations (§4.2): 16 KB 4-way L1 with 1-cycle latency, 256 KB two-bank
L2 vector cache with 5-cycle latency and a 4×64-bit port, 1 MB L3 with
12-cycle latency and 500-cycle main memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.isa.registers import RegisterClass, RegisterFileSpec

__all__ = [
    "ArchitectureFamily",
    "MemoryConfig",
    "MachineConfig",
    "PAPER_CONFIGS",
    "PAPER_CONFIG_ORDER",
    "get_config",
    "register_config",
    "unregister_config",
    "registered_configs",
    "baseline_config",
    "vector_configs",
    "usimd_configs",
    "vliw_configs",
]


class ArchitectureFamily(enum.Enum):
    """The four architecture families compared in the paper."""

    VLIW = "vliw"
    USIMD = "usimd"
    VECTOR1 = "vector1"
    VECTOR2 = "vector2"

    @property
    def has_usimd(self) -> bool:
        """True if the family provides packed (µSIMD) operations."""
        return self is not ArchitectureFamily.VLIW

    @property
    def has_vector(self) -> bool:
        """True if the family provides the Vector-µSIMD extension."""
        return self in {ArchitectureFamily.VECTOR1, ArchitectureFamily.VECTOR2}

    @property
    def label(self) -> str:
        """Label used in the paper's figures."""
        return {
            ArchitectureFamily.VLIW: "VLIW",
            ArchitectureFamily.USIMD: "+uSIMD",
            ArchitectureFamily.VECTOR1: "+Vector1",
            ArchitectureFamily.VECTOR2: "+Vector2",
        }[self]


@dataclass(frozen=True)
class MemoryConfig:
    """Geometry and latencies of the memory hierarchy (paper §4.2)."""

    #: First-level data cache size in bytes (scalar / µSIMD accesses).
    l1_size: int = 16 * 1024
    l1_assoc: int = 4
    l1_line_bytes: int = 32
    l1_latency: int = 1
    #: Second-level vector cache (vector accesses bypass the L1).
    l2_size: int = 256 * 1024
    l2_assoc: int = 4
    l2_line_bytes: int = 64
    l2_latency: int = 5
    l2_banks: int = 2
    #: Third-level cache.
    l3_size: int = 1024 * 1024
    l3_assoc: int = 8
    l3_line_bytes: int = 128
    l3_latency: int = 12
    #: Main memory latency in cycles.
    memory_latency: int = 500

    def __post_init__(self) -> None:
        for name in ("l1_size", "l2_size", "l3_size"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.l2_banks < 1:
            raise ValueError("the vector cache needs at least one bank")


@dataclass(frozen=True)
class MachineConfig:
    """One statically scheduled machine configuration.

    Attributes mirror the rows of Table 2.  ``vector_lanes`` is the number of
    parallel lanes each vector functional unit is split into (four in every
    vector configuration of the paper) and ``l2_port_words`` the width of the
    L2 vector-cache port in 64-bit elements per cycle.
    """

    name: str
    family: ArchitectureFamily
    issue_width: int
    int_units: int
    simd_units: int = 0
    vector_units: int = 0
    vector_lanes: int = 4
    l1_ports: int = 1
    l2_ports: int = 0
    l2_port_words: int = 4
    int_regs: int = 64
    simd_regs: int = 0
    vector_regs: int = 0
    vector_reg_words: int = 16
    accum_regs: int = 0
    memory: MemoryConfig = field(default_factory=MemoryConfig)

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue width must be >= 1")
        if self.int_units < 1:
            raise ValueError("a configuration needs at least one integer unit")
        if self.family.has_vector and self.vector_units < 1:
            raise ValueError(f"{self.name}: vector family without vector units")
        if self.family.has_vector and self.l2_ports < 1:
            raise ValueError(f"{self.name}: vector family needs an L2 port")
        if not self.family.has_usimd and self.simd_units:
            raise ValueError(f"{self.name}: plain VLIW cannot have µSIMD units")

    # -- capability queries --------------------------------------------------

    @property
    def has_usimd(self) -> bool:
        """True if µSIMD (packed) operations can be executed."""
        return self.family.has_usimd

    @property
    def has_vector(self) -> bool:
        """True if Vector-µSIMD operations can be executed."""
        return self.family.has_vector

    @property
    def label(self) -> str:
        """Short label such as ``"+Vector2 2w"`` used in reports."""
        return f"{self.family.label} {self.issue_width}w"

    def register_files(self) -> Dict[RegisterClass, RegisterFileSpec]:
        """Register files of this configuration, keyed by register class."""
        files = {
            RegisterClass.INT: RegisterFileSpec(RegisterClass.INT, self.int_regs, 64),
        }
        if self.simd_regs:
            files[RegisterClass.SIMD] = RegisterFileSpec(
                RegisterClass.SIMD, self.simd_regs, 64)
        if self.vector_regs:
            files[RegisterClass.VECTOR] = RegisterFileSpec(
                RegisterClass.VECTOR, self.vector_regs, 64,
                words_per_register=self.vector_reg_words, lanes=self.vector_lanes)
        if self.accum_regs:
            files[RegisterClass.ACCUM] = RegisterFileSpec(
                RegisterClass.ACCUM, self.accum_regs, 192)
        return files

    def resource_capacities(self) -> Dict[str, int]:
        """Per-cycle capacity of every schedulable resource, keyed by name.

        The keys match the ``ResourceKind`` values in
        :mod:`repro.machine.resources` (``"issue"``, ``"int_unit"``,
        ``"simd_unit"``, ``"vector_unit"``, ``"l1_port"``, ``"l2_port"``).
        This is the single translation of the Table-2 resource columns into
        per-cycle capacities; both the scheduler's reservation table and the
        independent static analyzer consume it.
        """
        return {
            "issue": self.issue_width,
            "int_unit": self.int_units,
            "simd_unit": self.simd_units,
            "vector_unit": self.vector_units,
            "l1_port": self.l1_ports,
            "l2_port": self.l2_ports,
        }

    def peak_micro_ops_per_cycle(self, subwords: int = 8) -> float:
        """Theoretical peak µops/cycle, used by the reports for context.

        Integer units contribute one µop per cycle; µSIMD units ``subwords``
        µops per cycle; each vector unit sustains ``lanes × subwords`` µops
        per cycle once a vector operation is streaming.
        """
        peak = float(self.int_units)
        peak += self.simd_units * subwords
        peak += self.vector_units * self.vector_lanes * subwords
        return peak

    def with_memory(self, memory: MemoryConfig) -> "MachineConfig":
        """Return a copy of this configuration with a different memory system."""
        return replace(self, memory=memory)


def _vliw(width: int, int_regs: int, l1_ports: int) -> MachineConfig:
    return MachineConfig(
        name=f"vliw-{width}w",
        family=ArchitectureFamily.VLIW,
        issue_width=width,
        int_units=width,
        l1_ports=l1_ports,
        int_regs=int_regs,
    )


def _usimd(width: int, int_regs: int, simd_regs: int, l1_ports: int) -> MachineConfig:
    return MachineConfig(
        name=f"usimd-{width}w",
        family=ArchitectureFamily.USIMD,
        issue_width=width,
        int_units=width,
        simd_units=width,
        l1_ports=l1_ports,
        int_regs=int_regs,
        simd_regs=simd_regs,
    )


def _vector(width: int, variant: int, int_regs: int, vector_regs: int,
            accum_regs: int, vector_units: int, l1_ports: int) -> MachineConfig:
    family = ArchitectureFamily.VECTOR1 if variant == 1 else ArchitectureFamily.VECTOR2
    return MachineConfig(
        name=f"vector{variant}-{width}w",
        family=family,
        issue_width=width,
        int_units=width,
        simd_units=0,
        vector_units=vector_units,
        vector_lanes=4,
        l1_ports=l1_ports,
        l2_ports=1,
        l2_port_words=4,
        int_regs=int_regs,
        vector_regs=vector_regs,
        vector_reg_words=16,
        accum_regs=accum_regs,
    )


#: The ten configurations of Table 2, keyed by canonical name
#: (``"<family>-<issue width>w"``, e.g. ``"vector2-4w"``).
#:
#: ============  ====== ========= =========== ==================== ========
#: name          issue  int units µSIMD units vector units × lanes L1 ports
#: ============  ====== ========= =========== ==================== ========
#: vliw-2w       2      2         —           —                    1
#: vliw-4w       4      4         —           —                    2
#: vliw-8w       8      8         —           —                    3
#: usimd-2w      2      2         2           —                    1
#: usimd-4w      4      4         4           —                    2
#: usimd-8w      8      8         8           —                    3
#: vector1-2w    2      2         —           1 × 4                1
#: vector1-4w    4      4         —           2 × 4                1
#: vector2-2w    2      2         —           2 × 4                1
#: vector2-4w    4      4         —           4 × 4                2
#: ============  ====== ========= =========== ==================== ========
#:
#: Every vector configuration adds a 4×64-bit L2 vector-cache port, vector
#: registers of 16 packed words (20 at 2-issue, 32 at 4-issue) and packed
#: accumulators (4 / 6).  See ``docs/configurations.md`` for the full
#: resource and latency tables.
PAPER_CONFIGS: Dict[str, MachineConfig] = {
    cfg.name: cfg
    for cfg in [
        _vliw(2, 64, 1),
        _vliw(4, 96, 2),
        _vliw(8, 128, 3),
        _usimd(2, 64, 64, 1),
        _usimd(4, 96, 96, 2),
        _usimd(8, 128, 128, 3),
        _vector(2, 1, 64, 20, 4, vector_units=1, l1_ports=1),
        _vector(4, 1, 96, 32, 6, vector_units=2, l1_ports=1),
        _vector(2, 2, 64, 20, 4, vector_units=2, l1_ports=1),
        _vector(4, 2, 96, 32, 6, vector_units=4, l1_ports=2),
    ]
}

#: Presentation order used by the figures (matches the paper's x axes).
PAPER_CONFIG_ORDER: Tuple[str, ...] = (
    "vliw-2w", "vliw-4w", "vliw-8w",
    "usimd-2w", "usimd-4w", "usimd-8w",
    "vector1-2w", "vector1-4w",
    "vector2-2w", "vector2-4w",
)


#: Process-local registry of configurations beyond Table 2 — the design
#: space explorer (:mod:`repro.explore`) publishes its generated machines
#: here so the experiment engine can resolve them by name exactly like the
#: paper grid.  Worker processes re-register on initialisation (see
#: :mod:`repro.core.runner`), so the registry never has to cross a process
#: boundary itself.
_CUSTOM_CONFIGS: Dict[str, MachineConfig] = {}


def register_config(config: MachineConfig, overwrite: bool = False) -> MachineConfig:
    """Make a non-paper configuration resolvable through :func:`get_config`.

    Re-registering the *same* configuration is a no-op; registering a
    different configuration under an existing name raises unless
    ``overwrite`` is set (the Table-2 names can never be shadowed).
    Returns ``config`` for chaining.
    """
    if config.name in PAPER_CONFIGS:
        raise ValueError(
            f"{config.name!r} is a paper (Table-2) configuration and cannot "
            f"be overridden")
    existing = _CUSTOM_CONFIGS.get(config.name)
    if existing is not None and existing != config and not overwrite:
        raise ValueError(
            f"a different configuration is already registered as "
            f"{config.name!r}; pass overwrite=True to replace it")
    _CUSTOM_CONFIGS[config.name] = config
    return config


def unregister_config(name: str) -> None:
    """Remove a registered configuration (missing names are ignored)."""
    _CUSTOM_CONFIGS.pop(name, None)


def registered_configs() -> Dict[str, MachineConfig]:
    """Snapshot of the custom-configuration registry."""
    return dict(_CUSTOM_CONFIGS)


def get_config(name: str) -> MachineConfig:
    """Look up a configuration by canonical name.

    Table-2 names follow ``"<family>-<issue width>w"`` with families
    ``vliw``, ``usimd``, ``vector1`` and ``vector2`` — e.g.
    ``get_config("vliw-8w")`` or ``get_config("vector2-4w")``;
    configurations published with :func:`register_config` (the design-space
    explorer's generated machines) resolve the same way.  The returned
    :class:`MachineConfig` is frozen and shared; derive experimental
    variants with :func:`dataclasses.replace` or
    :meth:`MachineConfig.with_memory` rather than mutating it.  Unknown
    names raise ``KeyError`` listing the known configurations.
    """
    config = PAPER_CONFIGS.get(name)
    if config is None:
        config = _CUSTOM_CONFIGS.get(name)
    if config is None:
        known = ", ".join(sorted(PAPER_CONFIGS))
        extra = f" (+{len(_CUSTOM_CONFIGS)} registered)" if _CUSTOM_CONFIGS else ""
        raise KeyError(f"unknown configuration {name!r}; known: {known}{extra}")
    return config


def baseline_config() -> MachineConfig:
    """The 2-issue VLIW machine all speed-ups are normalised against."""
    return PAPER_CONFIGS["vliw-2w"]


def vliw_configs() -> Tuple[MachineConfig, ...]:
    """The plain VLIW configurations in increasing issue width."""
    return tuple(PAPER_CONFIGS[n] for n in ("vliw-2w", "vliw-4w", "vliw-8w"))


def usimd_configs() -> Tuple[MachineConfig, ...]:
    """The µSIMD-VLIW configurations in increasing issue width."""
    return tuple(PAPER_CONFIGS[n] for n in ("usimd-2w", "usimd-4w", "usimd-8w"))


def vector_configs() -> Tuple[MachineConfig, ...]:
    """The four Vector-µSIMD-VLIW configurations."""
    return tuple(PAPER_CONFIGS[n] for n in
                 ("vector1-2w", "vector1-4w", "vector2-2w", "vector2-4w"))
