"""On-disk content-addressed store of simulation results.

Design goals, in order:

* **Correctness** — a stored result is only ever served for a run whose
  *content* matches: the fingerprint covers the kernel IR (via
  :func:`repro.compiler.cache.fingerprint_program`, so structurally
  identical programs built in different processes key identically), the
  machine configuration, the latency model, the memory mode and the
  warm-up footprint.  The benchmark's **registry name**
  (:mod:`repro.workloads.registry`) is also part of the key — renaming or
  re-registering a workload therefore never aliases another workload's
  entries, and one benchmark's entries stay identifiable in a shared
  store.  The engine tier is deliberately *not* part of the key: the
  tiers are tested to produce identical statistics, and the schema
  version namespace covers any change to those semantics.  Invariant:
  everything a run's statistics can depend on is in the key; anything
  proven not to affect them (the engine tier, job count, shard order) is
  not.
* **Concurrency** — writes go through a temporary file in the target
  directory followed by :func:`os.replace`, which is atomic on POSIX and
  Windows; two workers (or two CI jobs sharing a cache) racing on the same
  key both write the same bytes, so last-writer-wins is safe.  Reads treat
  missing, truncated or corrupt files as misses.
* **Shardability** — entries are spread over 256 subdirectories by the
  first fingerprint byte so no directory grows unboundedly and directory
  listings stay cheap on network filesystems.

The default serialisation is canonical JSON (byte-stable, diffable,
greppable).  ``msgpack`` is supported when the package is available but is
never required — the container image does not ship it.
"""

from __future__ import annotations

import errno
import hashlib
import json
import logging
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple, Union

from repro import faults

from repro.compiler.cache import (
    fingerprint_config,
    fingerprint_latency_model,
    fingerprint_program,
)
from repro.compiler.ir import KernelProgram
from repro.machine.config import MachineConfig
from repro.machine.latency import LatencyModel
from repro.sim.stats import STATS_SCHEMA_VERSION, RunStats

try:  # optional accelerator; the toolchain does not guarantee it
    import msgpack  # type: ignore
except ImportError:  # pragma: no cover - absent in the reference image
    msgpack = None

__all__ = ["ResultStore", "StoreStats", "VerifyReport", "run_fingerprint",
           "TRANSIENT_ERRNOS"]

logger = logging.getLogger("repro.store")

#: ``errno`` values :meth:`ResultStore.put` retries once before
#: propagating: interrupted syscalls, NFS staleness, transient I/O and
#: descriptor-table pressure.  ``ENOSPC`` is deliberately absent — a full
#: disk does not heal in the retry window, so it propagates immediately
#: (the caller still keeps the computed stats, see ``execute_requests``).
TRANSIENT_ERRNOS = frozenset(
    value for value in (
        errno.EINTR, errno.EAGAIN, errno.EBUSY, errno.EIO,
        errno.ENFILE, errno.EMFILE, getattr(errno, "ESTALE", None),
    ) if value is not None)

#: Seconds between the two attempts of a retried put.
PUT_RETRY_DELAY = 0.02

#: Environment variable naming the default store directory.  Unset (or
#: empty) means "no persistent store" — library entry points stay
#: side-effect free unless the caller or the CLI opts in.
STORE_ENV_VAR = "REPRO_STORE"

_DEFAULT_LATENCY_MODEL = LatencyModel()


def run_fingerprint(program: KernelProgram, config: MachineConfig,
                    latency_model: Optional[LatencyModel] = None,
                    perfect_memory: bool = False,
                    program_fingerprint: Optional[str] = None,
                    config_fingerprint: Optional[str] = None,
                    latency_fingerprint: Optional[str] = None,
                    benchmark: Optional[str] = None,
                    strategy: str = "baseline") -> str:
    """Content fingerprint of one (benchmark × config × memory-mode) run.

    Everything the deterministic simulators derive statistics from is
    covered: the IR fingerprint family the compile cache uses, plus the
    warm-up spans (``program.address_space``) that seed the L2/L3 before
    timing, plus the memory mode, plus the scheduler ``strategy`` the run
    compiles under — different strategies emit different schedules (and the
    unroller a different program), so they can never share an entry.  The
    stats schema version namespaces the whole key, so a semantic change
    invalidates every old entry at once.

    ``benchmark`` is the workload's **registry name**
    (:mod:`repro.workloads.registry`) and is part of the key: benchmarks
    are resolved through the registry everywhere, so a registry name plus
    the content axes above *is* the identity of a run.  Keying on the name
    keeps one benchmark's entries identifiable (and individually
    retirable) in a shared store, and keeps a user registration that
    happens to compile to the same IR as another workload from aliasing
    its entries.  ``None`` (direct library calls that bypass the registry)
    keys on content alone.

    The ``*_fingerprint`` parameters accept precomputed component hashes so
    batched callers (a plan walks few distinct programs/configs across many
    requests) can skip the repeated IR walks; when given they must be the
    corresponding :mod:`repro.compiler.cache` fingerprints of the same
    arguments.
    """
    latency_model = latency_model if latency_model is not None else _DEFAULT_LATENCY_MODEL
    spans = ()
    space = getattr(program, "address_space", None)
    if space is not None and not perfect_memory:
        # iteration (= preload) order, not sorted: the order spans are
        # installed in is LRU-observable once a warm working set exceeds a
        # set's associativity, so it is part of the run's content
        spans = tuple((spec.base, spec.size_bytes) for spec in space)
    key = (
        STATS_SCHEMA_VERSION,
        benchmark,
        program_fingerprint or fingerprint_program(program),
        config_fingerprint or fingerprint_config(config),
        latency_fingerprint or fingerprint_latency_model(latency_model),
        bool(perfect_memory),
        spans,
        strategy,
    )
    return hashlib.sha256(repr(key).encode()).hexdigest()


@dataclass
class StoreStats:
    """Hit/miss/write counters of one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    quarantined: int = 0
    put_retries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes,
                "corrupt": self.corrupt, "quarantined": self.quarantined,
                "put_retries": self.put_retries, "hit_rate": self.hit_rate}


@dataclass
class VerifyReport:
    """Outcome of one :meth:`ResultStore.verify` walk."""

    total: int = 0
    ok: int = 0
    corrupt: int = 0
    quarantined: Tuple[str, ...] = ()
    by_version: Dict[int, int] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [f"verified {self.total} entries: {self.ok} ok, "
                 f"{self.corrupt} corrupt"]
        for version in sorted(self.by_version):
            lines.append(f"  v{version}: {self.by_version[version]} entries")
        for path in self.quarantined:
            lines.append(f"  quarantined -> {path}")
        return "\n".join(lines)


class ResultStore:
    """Persistent content-addressed map from run fingerprints to ``RunStats``.

    Layout::

        <root>/v<schema>/<fp[:2]>/<fp>.json        # canonical JSON envelope
        <root>/v<schema>/<fp[:2]>/<fp>.msgpack     # optional msgpack form

    ``schema_version`` defaults to the library's
    :data:`~repro.sim.stats.STATS_SCHEMA_VERSION`; overriding it exists for
    tests that exercise the invalidation-by-namespace behaviour.
    """

    def __init__(self, root: Union[str, Path],
                 serialization: str = "json",
                 schema_version: int = STATS_SCHEMA_VERSION) -> None:
        if serialization not in ("json", "msgpack"):
            raise ValueError(
                f"unknown serialization {serialization!r} (json or msgpack)")
        if serialization == "msgpack" and msgpack is None:
            raise RuntimeError(
                "msgpack serialization requested but the msgpack package is "
                "not installed; use the default JSON serialization")
        self.root = Path(root)
        self.serialization = serialization
        self.schema_version = schema_version
        self.stats = StoreStats()

    @classmethod
    def from_env(cls) -> Optional["ResultStore"]:
        """The store named by ``REPRO_STORE``, or ``None`` when unset."""
        root = os.environ.get(STORE_ENV_VAR, "").strip()
        return cls(root) if root else None

    # ------------------------------------------------------------------ paths

    @property
    def version_dir(self) -> Path:
        return self.root / f"v{self.schema_version}"

    def _entry_path(self, fingerprint: str, serialization: str) -> Path:
        suffix = "json" if serialization == "json" else "msgpack"
        return self.version_dir / fingerprint[:2] / f"{fingerprint}.{suffix}"

    # ------------------------------------------------------------------ reads

    def get(self, fingerprint: str) -> Optional[RunStats]:
        """The stored result for ``fingerprint``, or ``None`` on a miss.

        Truncated or otherwise undecodable entries (a crashed writer on a
        filesystem without atomic replace, a corrupted CI cache) count as
        misses.  A bad entry is **quarantined** to the store's ``corrupt/``
        sibling directory on first detection — left in place it would be
        re-read, re-fail and re-counted on every lookup forever — and the
        move is logged once; the caller re-simulates and the next
        :meth:`put` writes a fresh entry.
        """
        for serialization in ("json", "msgpack"):
            if serialization == "msgpack" and msgpack is None:
                continue
            path = self._entry_path(fingerprint, serialization)
            try:
                payload = path.read_bytes()
            except OSError:
                continue
            envelope = self._decode(payload, serialization)
            if envelope is not None:
                try:
                    stats = RunStats.from_dict(envelope["stats"])
                except (KeyError, TypeError, ValueError):
                    stats = None
                if stats is not None:
                    self.stats.hits += 1
                    return stats
            self.stats.corrupt += 1
            self._quarantine(path)
        self.stats.misses += 1
        return None

    # ------------------------------------------------------------- quarantine

    @property
    def corrupt_dir(self) -> Path:
        """Where undecodable entries are moved (sibling of the namespaces)."""
        return self.root / "corrupt"

    def _quarantine(self, path: Path) -> Optional[Path]:
        """Move one undecodable entry aside; returns its new home.

        The move is the "log once" mechanism as much as a repair: once the
        file is out of the lookup path it can never be re-read or
        re-counted.  A failed move (permissions, a concurrent quarantine)
        is demoted to a debug message — the entry then still reads as a
        miss, exactly as before this method existed.
        """
        destination = self.corrupt_dir / path.name
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            suffix = 0
            while destination.exists():
                suffix += 1
                destination = self.corrupt_dir / f"{path.name}.{suffix}"
            os.replace(path, destination)
        except OSError as exc:
            logger.debug("could not quarantine corrupt entry %s: %s", path, exc)
            return None
        self.stats.quarantined += 1
        logger.warning("quarantined corrupt store entry %s -> %s",
                       path, destination)
        return destination

    def get_many(self, fingerprints: Mapping[object, str]
                 ) -> Dict[object, RunStats]:
        """Look up a batch; returns only the keys that hit."""
        found: Dict[object, RunStats] = {}
        for key, fingerprint in fingerprints.items():
            stats = self.get(fingerprint)
            if stats is not None:
                found[key] = stats
        return found

    def _decode(self, payload: bytes, serialization: str) -> Optional[dict]:
        envelope = self._decode_any_schema(payload, serialization)
        if envelope is None or envelope.get("schema") != self.schema_version:
            return None
        return envelope

    # ----------------------------------------------------------------- writes

    def put(self, fingerprint: str, stats: RunStats,
            context: Optional[Mapping[str, object]] = None) -> Path:
        """Persist one result atomically; returns the entry path.

        ``context`` is advisory human-readable metadata (benchmark name,
        configuration name, memory mode) stored alongside the payload for
        debugging; it is never part of the lookup.

        A transient ``OSError`` (:data:`TRANSIENT_ERRNOS` — NFS ``ESTALE``,
        ``EINTR``, spurious ``EIO``, …) is retried once after a short pause
        before propagating.  A put that still fails raises, but the caller
        already holds the computed :class:`RunStats` — the write-back
        layers (``execute_requests``) catch the error and return the
        result regardless, so a sick filesystem costs persistence, never
        simulation work.
        """
        envelope = {
            "schema": self.schema_version,
            "fingerprint": fingerprint,
            "context": dict(context) if context else {},
            "stats": stats.to_dict(),
        }
        if self.serialization == "json":
            payload = json.dumps(envelope, sort_keys=True,
                                 separators=(",", ":")).encode("utf-8")
        else:
            payload = msgpack.packb(envelope, use_bin_type=True)
        path = self._entry_path(fingerprint, self.serialization)
        put_index = faults.claim_put_index()
        last_error: Optional[OSError] = None
        for attempt in range(2):
            if attempt:
                self.stats.put_retries += 1
                logger.warning("retrying store put of %s after transient "
                               "error: %s", fingerprint[:12], last_error)
                time.sleep(PUT_RETRY_DELAY)
            try:
                faults.maybe_fail_put(put_index)
                if faults.maybe_tear_write(put_index, str(path), payload):
                    # the torn writer believed its write succeeded; model
                    # that belief faithfully (verify()/get() find the tear)
                    self.stats.writes += 1
                    return path
                self._publish(path, fingerprint, payload)
            except OSError as exc:
                last_error = exc
                if exc.errno not in TRANSIENT_ERRNOS:
                    raise
                continue
            self.stats.writes += 1
            return path
        assert last_error is not None
        raise last_error

    def _publish(self, path: Path, fingerprint: str, payload: bytes) -> None:
        """Write ``payload`` to ``path`` via a unique sibling + rename.

        Atomic on POSIX and Windows.  Concurrent writers of one key write
        identical bytes, so whichever replace lands last leaves a
        complete, correct entry.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{fingerprint[:8]}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def put_many(self, entries: Iterable[tuple]) -> None:
        """Persist ``(fingerprint, stats)`` or ``(fingerprint, stats, context)``."""
        for entry in entries:
            self.put(*entry)

    # ---------------------------------------------------------- verification

    def iter_entry_paths(self, all_versions: bool = True
                         ) -> Iterator[Tuple[int, Path]]:
        """Yield ``(schema_version, path)`` for every entry on disk.

        Walks every ``v<N>/`` namespace under the root (or only this
        handle's namespace with ``all_versions=False``); the quarantine
        and lease directories are not namespaces and are never visited.
        Deterministic order: version, shard, filename.
        """
        if all_versions:
            if not self.root.is_dir():
                return
            version_dirs = sorted(
                (child for child in self.root.iterdir()
                 if child.is_dir() and child.name.startswith("v")
                 and child.name[1:].isdigit()),
                key=lambda child: int(child.name[1:]))
        else:
            version_dirs = [self.version_dir] if self.version_dir.is_dir() else []
        for version_dir in version_dirs:
            version = int(version_dir.name[1:])
            for shard in sorted(version_dir.iterdir()):
                if not shard.is_dir():
                    continue
                for entry in sorted(shard.iterdir()):
                    if entry.suffix in (".json", ".msgpack"):
                        yield version, entry

    def verify(self, quarantine: bool = True) -> VerifyReport:
        """Walk every entry, decode it, and report (optionally repair).

        Each entry must parse, carry the schema version of its namespace
        directory, name itself truthfully (envelope fingerprint ==
        filename) and round-trip through ``RunStats.from_dict``.  Entries
        failing any of those are counted corrupt and — with
        ``quarantine=True`` — moved to ``corrupt/`` so they can never be
        served or re-counted.  The working end of
        ``python -m repro store verify``.
        """
        report = VerifyReport()
        for version, path in self.iter_entry_paths():
            report.total += 1
            report.by_version[version] = report.by_version.get(version, 0) + 1
            serialization = "json" if path.suffix == ".json" else "msgpack"
            if serialization == "msgpack" and msgpack is None:
                # unreadable without the package; count it, leave it alone
                report.ok += 1
                continue
            ok = False
            try:
                payload = path.read_bytes()
            except OSError:
                payload = None
            if payload is not None:
                envelope = self._decode_any_schema(payload, serialization)
                if (envelope is not None
                        and envelope.get("schema") == version
                        and envelope.get("fingerprint") == path.stem):
                    try:
                        RunStats.from_dict(envelope["stats"])
                        ok = True
                    except (KeyError, TypeError, ValueError):
                        ok = False
            if ok:
                report.ok += 1
                continue
            report.corrupt += 1
            if quarantine:
                moved = self._quarantine(path)
                if moved is not None:
                    report.quarantined += (str(moved),)
        return report

    def _decode_any_schema(self, payload: bytes,
                           serialization: str) -> Optional[dict]:
        """Decode an envelope without pinning it to this handle's schema."""
        try:
            if serialization == "json":
                envelope = json.loads(payload.decode("utf-8"))
            else:
                envelope = msgpack.unpackb(payload, raw=False)
        except Exception:
            return None
        return envelope if isinstance(envelope, dict) else None

    # ------------------------------------------------------------- bookkeeping

    def __len__(self) -> int:
        """Number of distinct entries in this store's schema namespace.

        A fingerprint stored in both serialisations (a json-configured and
        a msgpack-configured writer sharing one root) counts once.
        """
        if not self.version_dir.is_dir():
            return 0
        stems = {entry.stem
                 for shard in self.version_dir.iterdir() if shard.is_dir()
                 for entry in shard.iterdir()
                 if entry.suffix in (".json", ".msgpack")}
        return len(stems)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ResultStore({str(self.root)!r}, v{self.schema_version}, "
                f"{self.serialization})")
