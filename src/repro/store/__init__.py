"""Persistent, content-addressed result store.

The compile cache (:mod:`repro.compiler.cache`) made *scheduling* free
within a process; this package makes *simulation results* free across
processes.  A :class:`ResultStore` maps a content fingerprint of one run —
benchmark registry name × kernel IR × machine configuration × latency
model × memory mode × warm-up footprint, namespaced under the stats
schema version — to the run's
:class:`~repro.sim.stats.RunStats`, persisted as sharded JSON files with
atomic writes so parallel workers, concurrent CI jobs and repeated
``report`` invocations can all share one store.

See ``docs/store.md`` for the on-disk layout and the invalidation story.
"""

from repro.store.leases import (
    DEFAULT_LEASE_TTL,
    Lease,
    LeaseManager,
)
from repro.store.result_store import (
    ResultStore,
    StoreStats,
    VerifyReport,
    run_fingerprint,
)

__all__ = ["ResultStore", "StoreStats", "VerifyReport", "run_fingerprint",
           "Lease", "LeaseManager", "DEFAULT_LEASE_TTL"]
