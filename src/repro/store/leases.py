"""Lease files: crash-safe cooperative claims on units of sweep work.

The result store already lets any number of processes *share results*;
leases let them *divide work*.  A lease is one small JSON file next to the
result entries (``<root>/leases/<key>.lease``) recording who is working on
a shard and when they last proved they were alive:

```json
{"version": "repro-lease/1", "key": "…", "owner": "host:pid:9f2c51ab",
 "acquired": 1754640000.0, "heartbeat": 1754640021.5}
```

The protocol is built from the two primitives every POSIX (and Windows)
filesystem gives us atomically:

* **acquire** — write the full record to a temporary file, then hard-link
  it to the lease name: ``link(2)`` fails when the name exists, so exactly
  one creator wins, and the lease is complete before it is ever visible.
  (A bare ``O_CREAT|O_EXCL`` then write would expose an empty file for a
  moment — and an unreadable lease is *reclaimable*, so a racing peer
  could steal a lease that was just won.)
* **reclaim** — a lease whose heartbeat is older than the TTL belongs to
  a crashed (or wedged) owner.  Reclaiming renames the stale file to a
  unique tombstone first: ``os.rename`` succeeds for exactly one of any
  number of racing reclaimers, and only the winner proceeds to a fresh
  exclusive create.  A ``kill -9``'d owner therefore costs its peers at
  most one TTL of waiting, never a stuck sweep.
* **renew** — the owner rewrites the file (temp + ``os.replace``) with a
  fresh heartbeat on a background thread (:meth:`LeaseManager.heartbeat`)
  while it simulates.  Renewal re-reads the file first: an owner that
  stalled past the TTL and was reclaimed discovers the loss instead of
  silently fighting the new owner.

Renewal fencing is advisory (read-then-replace is not a true CAS), which
is the right trade for *cooperative* sweeps: the worst interleaving makes
two processes simulate the same shard, and the content-addressed store
makes duplicated work harmless — both write identical bytes.  Leases
bound wasted work; correctness never depends on them.
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro import faults

__all__ = ["Lease", "LeaseManager", "DEFAULT_LEASE_TTL"]

LEASE_FORMAT = "repro-lease/1"

#: Seconds without a heartbeat after which a lease is reclaimable.  Shards
#: renew every TTL/3, so a live owner has three chances to prove itself
#: before a peer may steal the shard.
DEFAULT_LEASE_TTL = 30.0


@dataclass(frozen=True)
class Lease:
    """One held claim: the token :meth:`LeaseManager.acquire` returns."""

    key: str
    owner: str
    path: Path
    acquired: float


class LeaseManager:
    """Acquire, renew, reclaim and scrub lease files under one store root.

    ``owner`` defaults to a ``host:pid:nonce`` string — unique per
    manager, so two managers in one process (or one process restarted
    with the same pid) never mistake each other's leases for their own.
    ``clock`` is injectable for tests; it must be a wall clock shared by
    every cooperating process (heartbeats cross process boundaries).
    """

    def __init__(self, root: Union[str, Path],
                 owner: Optional[str] = None,
                 ttl: float = DEFAULT_LEASE_TTL,
                 clock=time.time) -> None:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.directory = Path(root) / "leases"
        self.owner = owner or (f"{socket.gethostname()}:{os.getpid()}:"
                               f"{uuid.uuid4().hex[:8]}")
        self.ttl = ttl
        self.clock = clock

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.lease"

    def _record(self, key: str, acquired: float) -> Dict[str, object]:
        return {"version": LEASE_FORMAT, "key": key, "owner": self.owner,
                "acquired": acquired, "heartbeat": self.clock()}

    # ------------------------------------------------------------------ reads

    def read(self, key: str) -> Optional[Dict[str, object]]:
        """The current lease record for ``key``, or ``None``.

        An unreadable or undecodable lease file reads as ``None`` — a torn
        lease write is treated exactly like a stale lease (reclaimable),
        so corruption can delay a shard by one TTL but never park it.
        """
        return self._read_path(self._path(key))

    @staticmethod
    def _read_path(path: Path) -> Optional[Dict[str, object]]:
        try:
            record = json.loads(path.read_bytes().decode("utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("version") != LEASE_FORMAT:
            return None
        return record

    def is_stale(self, record: Optional[Dict[str, object]]) -> bool:
        """Whether a lease record's owner has missed its TTL (or is unreadable)."""
        if record is None:
            return True
        heartbeat = record.get("heartbeat")
        if not isinstance(heartbeat, (int, float)):
            return True
        return (self.clock() - heartbeat) > self.ttl

    # ---------------------------------------------------------------- acquire

    def acquire(self, key: str) -> Optional[Lease]:
        """Claim ``key``; ``None`` when a live peer holds it.

        A stale or unreadable existing lease is reclaimed (rename-fenced,
        so concurrent reclaimers elect exactly one winner) and then
        re-acquired through the same exclusive create every fresh acquire
        uses.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        lease = self._try_create(key)
        if lease is not None:
            return lease
        record = self.read(key)
        if record is not None and not self.is_stale(record):
            return None
        if not self._reclaim(key):
            return None  # another reclaimer won; let it have the shard
        return self._try_create(key)

    def _try_create(self, key: str) -> Optional[Lease]:
        path = self._path(key)
        now = self.clock()
        fd, tmp_name = tempfile.mkstemp(dir=self.directory,
                                        prefix=f".{key[:8]}.",
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self._record(key, acquired=now), handle)
            try:
                os.link(tmp_name, path)
            except FileExistsError:
                return None
        finally:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
        return Lease(key=key, owner=self.owner, path=path, acquired=now)

    def _reclaim(self, key: str) -> bool:
        """Fence a stale lease out of the way; True for the single winner."""
        path = self._path(key)
        tombstone = path.with_name(
            f".{path.name}.reclaim-{uuid.uuid4().hex[:8]}")
        try:
            os.rename(path, tombstone)
        except OSError:
            return False  # somebody else renamed (reclaimed) it first
        # the rename won — but under contention it can land on a *fresh*
        # lease a faster reclaimer created between our staleness read and
        # our rename.  Verify what we fenced; a live victim is restored
        # (link fails harmlessly if a third racer recreated the name —
        # then the victim's next renew detects the loss, the advisory
        # fallback this protocol always had).
        record = self._read_path(tombstone)
        if record is not None and not self.is_stale(record):
            with contextlib.suppress(OSError):
                os.link(tombstone, path)
            with contextlib.suppress(OSError):
                os.unlink(tombstone)
            return False
        with contextlib.suppress(OSError):
            os.unlink(tombstone)
        return True

    # ------------------------------------------------------------ renew/release

    def renew(self, lease: Lease) -> bool:
        """Refresh the heartbeat; ``False`` when ownership was lost.

        A lost lease (reclaimed while this owner stalled) must stop the
        owner from writing: returning ``False`` tells the heartbeat thread
        — and through it the sweep — that the shard now belongs to a peer.
        """
        record = self.read(lease.key)
        if record is None or record.get("owner") != self.owner:
            return False
        self._rewrite(lease)
        return True

    def _rewrite(self, lease: Lease) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.directory,
                                        prefix=f".{lease.key[:8]}.",
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self._record(lease.key, acquired=lease.acquired),
                          handle)
            os.replace(tmp_name, lease.path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    def release(self, lease: Lease) -> None:
        """Drop the claim (only if still ours); never raises."""
        record = self.read(lease.key)
        if record is not None and record.get("owner") == self.owner:
            with contextlib.suppress(OSError):
                os.unlink(lease.path)

    # -------------------------------------------------------------- heartbeat

    @contextlib.contextmanager
    def heartbeat(self, lease: Lease,
                  interval: Optional[float] = None) -> Iterator[threading.Event]:
        """Renew ``lease`` on a background thread for the block's duration.

        Yields an :class:`threading.Event` that is set if ownership is
        lost mid-block (the sweep checks it after simulating and discards
        nothing — the store absorbs duplicate results — but can log the
        overlap).  The fault harness's ``stall_heartbeats`` freezes
        renewals without stopping the thread, which is exactly what a
        wedged owner looks like from the outside.
        """
        interval = interval if interval is not None else self.ttl / 3.0
        stop = threading.Event()
        lost = threading.Event()

        def _renew_loop() -> None:
            while not stop.wait(interval):
                if faults.heartbeats_stalled():
                    continue
                if not self.renew(lease):
                    lost.set()
                    return

        thread = threading.Thread(target=_renew_loop, name="lease-heartbeat",
                                  daemon=True)
        thread.start()
        try:
            yield lost
        finally:
            stop.set()
            thread.join(timeout=max(1.0, interval))

    # ------------------------------------------------------------------ scrub

    def leases(self) -> List[Dict[str, object]]:
        """Every decodable lease record currently on disk."""
        if not self.directory.is_dir():
            return []
        records = []
        for path in sorted(self.directory.glob("*.lease")):
            record = self.read(path.name[:-len(".lease")])
            if record is not None:
                records.append(record)
        return records

    def scrub(self) -> List[str]:
        """Remove every stale or undecodable lease; returns removed names.

        The janitor behind ``python -m repro store scrub-leases``: a
        crashed fleet leaves lease files behind, and while stale leases
        are reclaimed lazily by the next sweep anyway, scrubbing keeps
        ``stats`` honest and the directory small.  Tombstones left by a
        reclaimer that died mid-reclaim are swept too.
        """
        if not self.directory.is_dir():
            return []
        removed: List[str] = []
        for path in sorted(self.directory.glob("*.lease")):
            key = path.name[:-len(".lease")]
            if self.is_stale(self.read(key)) and self._reclaim(key):
                removed.append(key)
        for tombstone in self.directory.glob(".*.reclaim-*"):
            with contextlib.suppress(OSError):
                os.unlink(tombstone)
        return removed
