"""Static compilation layer: kernel IR, dependence analysis and scheduling.

The paper compiles its benchmarks with Trimaran/Elcor for an HPL-PD machine
extended with µSIMD and Vector-µSIMD operations; the emulation-library calls
in the hand-written sources are replaced by real operations and statically
scheduled against the resource and latency constraints of each target
configuration.  This package plays that role:

* :mod:`repro.compiler.ir` — virtual registers, affine address expressions,
  operations, loops and region-tagged kernel programs;
* :mod:`repro.compiler.builder` — the :class:`KernelBuilder` DSL the
  workload modules use to express each kernel in each ISA flavour;
* :mod:`repro.compiler.dataflow` — dependence graph construction (RAW /
  WAR / WAW, accumulator recurrences, memory ordering);
* :mod:`repro.compiler.scheduler` — the greedy cycle scheduler that packs
  operations into VLIW instructions subject to the reservation table, the
  latency descriptors and vector chaining;
* :mod:`repro.compiler.regalloc` — register-pressure verification against
  the register files of the target configuration;
* :mod:`repro.compiler.cache` — the content-addressed compile cache that
  lets the experiment sweeps schedule each distinct (program,
  configuration) pair exactly once.
"""

from repro.compiler.ir import (
    ISAFlavor,
    VirtualRegister,
    AddressExpr,
    LoopVar,
    Operation,
    Segment,
    LoopNode,
    KernelProgram,
)
from repro.compiler.builder import KernelBuilder
from repro.compiler.cache import CompileCache, GLOBAL_COMPILE_CACHE, compile_cached
from repro.compiler.dataflow import DependenceGraph, build_dependence_graph
from repro.compiler.scheduler import Schedule, ScheduledOperation, schedule_segment, compile_program, CompiledProgram
from repro.compiler.trace import TraceProgram, trace_program
from repro.compiler.regalloc import RegisterPressureReport, check_register_pressure

__all__ = [
    "CompileCache",
    "GLOBAL_COMPILE_CACHE",
    "compile_cached",
    "ISAFlavor",
    "VirtualRegister",
    "AddressExpr",
    "LoopVar",
    "Operation",
    "Segment",
    "LoopNode",
    "KernelProgram",
    "KernelBuilder",
    "DependenceGraph",
    "build_dependence_graph",
    "Schedule",
    "ScheduledOperation",
    "schedule_segment",
    "compile_program",
    "CompiledProgram",
    "TraceProgram",
    "trace_program",
    "RegisterPressureReport",
    "check_register_pressure",
]
