"""Greedy cycle (list) scheduler for VLIW targets.

For each straight-line segment the scheduler packs operations into long
instructions subject to:

* the dependence graph of the segment (:mod:`repro.compiler.dataflow`);
* the per-cycle resources of the target configuration (issue slots,
  functional units and cache ports, :mod:`repro.machine.resources`);
* the latency descriptors of each operation, including the vector-length /
  lane dependent descriptors of Figure 3 and chaining between dependent
  vector operations through the vector register file (§3.3).

The output is a :class:`Schedule`: operation → issue cycle, from which the
simulator derives the iteration initiation interval, the pipeline drain time
and the schedule-time ("assumed") latency of every memory operation.  The
compiler schedules **all** memory operations as cache hits and all vector
memory operations as stride-one accesses; run-time violations of either
assumption stall the processor (handled in :mod:`repro.sim`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.dataflow import (
    DependenceEdge,
    DependenceGraph,
    DependenceKind,
    build_dependence_graph,
    loop_carried_registers,
)
from repro.compiler.ir import AddressExpr, KernelProgram, Operation, Segment
from repro.isa.registers import RegisterClass
from repro.machine.config import MachineConfig
from repro.machine.latency import LatencyModel
from repro.machine.resources import (
    ReservationTable,
    capacities_for,
    requests_for,
)

__all__ = [
    "ScheduledOperation",
    "Schedule",
    "SegmentTiming",
    "segment_timing",
    "schedule_segment",
    "MemoryOpSummary",
    "SegmentSummary",
    "CompiledProgram",
    "compile_program",
]


@dataclass(frozen=True)
class ScheduledOperation:
    """One operation with its assigned issue cycle and timing metadata."""

    operation: Operation
    cycle: int
    occupancy: int
    assumed_latency: int

    @property
    def completion(self) -> int:
        """Cycle at which the full architectural result is available."""
        return self.cycle + self.assumed_latency

    @property
    def busy_until(self) -> int:
        """Cycle after which the functional unit / port is free again."""
        return self.cycle + max(1, self.occupancy)


@dataclass
class Schedule:
    """Static schedule of one segment on one machine configuration.

    ``pipelined_interval`` is set by the modulo-scheduling strategy
    (:mod:`repro.compiler.strategies`): entry cycles then remain the *flat*
    single-iteration placement (dependence distances stay meaningful), while
    consecutive iterations are initiated every ``pipelined_interval`` cycles
    with their resource usage folded modulo that interval.  ``None`` (the
    default) means a conventional non-overlapped schedule.
    """

    segment: Segment
    config_name: str
    entries: List[ScheduledOperation] = field(default_factory=list)
    recurrence_interval: int = 0
    pipelined_interval: Optional[int] = None

    @property
    def issue_makespan(self) -> int:
        """Cycles needed to issue the whole segment once (>= 1 when non-empty)."""
        if not self.entries:
            return 0
        return max(entry.busy_until for entry in self.entries)

    @property
    def initiation_interval(self) -> int:
        """Cycles between the starts of consecutive iterations of the segment.

        Bounded below by the loop-carried recurrences of the segment (e.g. a
        packed accumulator that every iteration both reads and writes).  A
        software-pipelined schedule overlaps iterations, so its interval is
        the modulo-scheduling II rather than the flat issue makespan.
        """
        if self.pipelined_interval is not None:
            return max(self.pipelined_interval, self.recurrence_interval)
        return max(self.issue_makespan, self.recurrence_interval)

    @property
    def drain_cycles(self) -> int:
        """Extra cycles, after the last initiation, for results to complete."""
        if not self.entries:
            return 0
        last_completion = max(entry.completion for entry in self.entries)
        return max(0, last_completion - self.initiation_interval)

    @property
    def operation_count(self) -> int:
        return len(self.entries)

    def memory_operations(self) -> List[ScheduledOperation]:
        """Scheduled memory operations in issue order."""
        return sorted((e for e in self.entries if e.operation.is_memory),
                      key=lambda e: e.cycle)

    def by_cycle(self) -> Dict[int, List[ScheduledOperation]]:
        """Group the scheduled operations by issue cycle."""
        table: Dict[int, List[ScheduledOperation]] = {}
        for entry in self.entries:
            table.setdefault(entry.cycle, []).append(entry)
        return dict(sorted(table.items()))

    def format_table(self) -> str:
        """Human-readable schedule listing (used by the Figure-4 example)."""
        lines = [f"schedule of '{self.segment.label or self.segment.region}' "
                 f"on {self.config_name} "
                 f"(II={self.initiation_interval}, drain={self.drain_cycles})"]
        for cycle, entries in self.by_cycle().items():
            ops = " | ".join(e.operation.comment or e.operation.opcode for e in entries)
            lines.append(f"  cycle {cycle:3d}: {ops}")
        return "\n".join(lines)


def _edge_latency(edge: DependenceEdge, producer: ScheduledOperation | Operation,
                  vector_length: int, config: MachineConfig,
                  latency_model: LatencyModel) -> int:
    """Minimum cycles between the issue of producer and consumer of ``edge``."""
    op = producer.operation if isinstance(producer, ScheduledOperation) else producer
    if edge.kind is DependenceKind.RAW:
        op_class = op.op_class
        if (edge.register_class is RegisterClass.VECTOR
                and (op_class.is_vector or op_class.is_vector_memory)):
            # chaining: the consumer starts as soon as the first element
            # of the producer is available.
            return latency_model.chain_latency(op.opcode, config)
        return latency_model.result_latency(op.opcode, op.vector_length, config)
    if edge.kind is DependenceKind.WAW:
        return max(1, latency_model.occupancy(op.opcode, op.vector_length, config))
    if edge.kind is DependenceKind.WAR:
        # the overwrite may not start before the (possibly multi-cycle) read
        # of the earlier consumer has finished.
        descriptor = latency_model.descriptor(op.opcode, op.vector_length, config)
        return descriptor.latest_read
    if edge.kind is DependenceKind.MEMORY:
        return max(1, latency_model.occupancy(op.opcode, op.vector_length, config))
    raise ValueError(f"unknown dependence kind {edge.kind}")  # pragma: no cover


def _priorities(graph: DependenceGraph, config: MachineConfig,
                latency_model: LatencyModel) -> List[int]:
    """Critical-path-to-sink priority of every operation (higher = schedule first)."""
    ops = graph.operations
    priority = [0] * len(ops)
    for index in range(len(ops) - 1, -1, -1):
        op = ops[index]
        own = latency_model.result_latency(op.opcode, op.vector_length, config)
        best = own
        for edge in graph.successors(index):
            latency = _edge_latency(edge, op, op.vector_length, config, latency_model)
            best = max(best, latency + priority[edge.consumer])
        priority[index] = best
    return priority


@dataclass
class SegmentTiming:
    """Resolved per-operation timing facts of one segment.

    Shared by the baseline list scheduler below and the alternative
    strategies in :mod:`repro.compiler.strategies`, so every scheduling
    algorithm works from the *same* dependence distances and priorities —
    the independent verifier reconstructs the same facts from the IR, so any
    divergence here would surface as REP201 findings.
    """

    ops: List[Operation]
    result_lat: List[int]
    latest_read: List[int]
    occupancy: List[int]
    #: per producer: list of (consumer index, minimum issue distance)
    successors: List[List[Tuple[int, int]]]
    indegree: List[int]
    #: critical-path-to-sink priority (higher = schedule first)
    priority: List[int]
    #: loop-carried recurrence bound on the initiation interval
    recurrence: int


def segment_timing(segment: Segment, config: MachineConfig,
                   latency_model: LatencyModel) -> SegmentTiming:
    """Resolve dependence distances, priorities and the recurrence bound.

    Timing facts (latencies, occupancies, edge weights) are resolved once per
    operation/edge up front — the latency model memoises per configuration,
    so scheduling inner loops are pure integer bookkeeping plus
    reservation-table probes.
    """
    ops = list(segment.operations)
    graph = build_dependence_graph(segment)
    count = len(ops)

    # per-operation timing facts, resolved once
    result_lat = [0] * count
    latest_read = [0] * count
    occupancy = [0] * count
    chainable = [False] * count
    chain_lat = [0] * count
    for i, op in enumerate(ops):
        descriptor = latency_model.descriptor(op.opcode, op.vector_length, config)
        result_lat[i] = descriptor.latest_write
        latest_read[i] = descriptor.latest_read
        occupancy[i] = latency_model.occupancy(op.opcode, op.vector_length, config)
        op_class = op.op_class
        if op_class.is_vector or op_class.is_vector_memory:
            chainable[i] = True
            chain_lat[i] = latency_model.chain_latency(op.opcode, config)

    # per-edge minimum issue distances (same classification as _edge_latency)
    successors: List[List[Tuple[int, int]]] = [[] for _ in range(count)]
    indegree = [0] * count
    for edge in graph.edges:
        producer = edge.producer
        if edge.kind is DependenceKind.RAW:
            if edge.register_class is RegisterClass.VECTOR and chainable[producer]:
                latency = chain_lat[producer]
            else:
                latency = result_lat[producer]
        elif edge.kind is DependenceKind.WAR:
            latency = latest_read[producer]
        else:  # WAW and MEMORY both wait out the producer's occupancy
            latency = max(1, occupancy[producer])
        successors[producer].append((edge.consumer, latency))
        indegree[edge.consumer] += 1

    # critical-path-to-sink priority (higher = schedule first); program order
    # is a valid topological order, so one reverse sweep suffices
    priority = [0] * count
    for index in range(count - 1, -1, -1):
        best = result_lat[index]
        for consumer, latency in successors[index]:
            candidate = latency + priority[consumer]
            if candidate > best:
                best = candidate
        priority[index] = best

    # loop-carried recurrence bound on the initiation interval
    recurrence = 0
    for reg, (writer_index, reg_class) in loop_carried_registers(segment).items():
        if result_lat[writer_index] > recurrence:
            recurrence = result_lat[writer_index]

    return SegmentTiming(ops=ops, result_lat=result_lat,
                         latest_read=latest_read, occupancy=occupancy,
                         successors=successors, indegree=indegree,
                         priority=priority, recurrence=recurrence)


def schedule_segment(segment: Segment, config: MachineConfig,
                     latency_model: Optional[LatencyModel] = None) -> Schedule:
    """List-schedule one segment for ``config``.

    Operations are chosen greedily by critical-path priority among the ready
    set and placed at the earliest cycle where both their dependences and
    their resource requests are satisfied.
    """
    latency_model = latency_model or LatencyModel()
    if not segment.operations:
        return Schedule(segment=segment, config_name=config.name, entries=[])

    timing = segment_timing(segment, config, latency_model)
    ops = timing.ops
    count = len(ops)
    table = ReservationTable(capacities_for(config))
    occupancy = timing.occupancy
    result_lat = timing.result_lat
    successors = timing.successors
    indegree = list(timing.indegree)
    priority = timing.priority

    # highest priority first; ties broken by program order for stability
    heap = [(-priority[i], i) for i in range(count) if indegree[i] == 0]
    heapq.heapify(heap)
    earliest = [0] * count
    placed: List[Optional[ScheduledOperation]] = [None] * count
    scheduled_count = 0

    while heap:
        _, index = heapq.heappop(heap)
        op = ops[index]
        requests = requests_for(op.opcode, op.vector_length, config, latency_model)
        start = table.earliest_fit(earliest[index], requests)
        table.reserve(start, requests, verified=True)
        entry = ScheduledOperation(
            operation=op,
            cycle=start,
            occupancy=occupancy[index],
            assumed_latency=result_lat[index],
        )
        placed[index] = entry
        scheduled_count += 1

        for consumer, latency in successors[index]:
            bound = start + latency
            if bound > earliest[consumer]:
                earliest[consumer] = bound
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                heapq.heappush(heap, (-priority[consumer], consumer))

    if scheduled_count < count:  # pragma: no cover - graph is a DAG by construction
        raise RuntimeError("scheduler deadlock: no ready operations")

    entries = [placed[i] for i in range(count)]
    return Schedule(segment=segment, config_name=config.name, entries=entries,
                    recurrence_interval=timing.recurrence)


@dataclass(frozen=True)
class MemoryOpSummary:
    """Loop-invariant execution facts of one scheduled memory operation.

    Everything the executor needs per dynamic instance except the concrete
    address: which path the access takes, its geometry and the latency the
    schedule assumed.  Precomputing these removes every per-iteration
    opcode-descriptor lookup from the simulation hot loop.
    """

    address: AddressExpr
    is_vector: bool
    stride_bytes: int
    vector_length: int
    is_store: bool
    assumed_latency: int


@dataclass(frozen=True)
class SegmentSummary:
    """Loop-invariant execution facts of one scheduled segment.

    The fast executor charges every dynamic execution of a segment its
    initiation interval plus run-time memory stalls; the interval, the
    operation/micro-operation counts and the memory-operation metadata are
    all static, so they are computed once per compilation instead of once
    per iteration (the dominant cost of the seed simulator).
    """

    region: str
    vectorizable: bool
    initiation_interval: int
    operations: int
    micro_ops: int
    memory_ops: Tuple[MemoryOpSummary, ...]


@dataclass
class CompiledProgram:
    """A program together with the per-segment schedules for one configuration."""

    program: KernelProgram
    config: MachineConfig
    latency_model: LatencyModel
    schedules: Dict[int, Schedule] = field(default_factory=dict)
    _summaries: Dict[int, SegmentSummary] = field(default_factory=dict, repr=False)

    def schedule_for(self, segment: Segment) -> Schedule:
        """Schedule of one segment (segments are identified by object id)."""
        return self.schedules[id(segment)]

    def summary_for(self, segment: Segment) -> SegmentSummary:
        """Loop-invariant execution summary of one segment (memoised).

        Summaries live on the compiled program so every execution engine —
        and, through the compile cache, every run of the same (program,
        configuration) pair — shares one precomputation.
        """
        key = id(segment)
        summary = self._summaries.get(key)
        if summary is None:
            schedule = self.schedules[key]
            region_info = self.program.regions.get(segment.region)
            memory_ops = tuple(
                MemoryOpSummary(
                    address=entry.operation.address,
                    is_vector=entry.operation.is_vector_memory,
                    stride_bytes=entry.operation.stride_bytes,
                    vector_length=entry.operation.vector_length,
                    is_store=entry.operation.is_store,
                    assumed_latency=entry.assumed_latency,
                )
                for entry in schedule.memory_operations()
            )
            summary = SegmentSummary(
                region=segment.region,
                vectorizable=bool(region_info and region_info.vectorizable),
                initiation_interval=schedule.initiation_interval,
                operations=len(segment.operations),
                micro_ops=segment.static_micro_ops,
                memory_ops=memory_ops,
            )
            self._summaries[key] = summary
        return summary

    def total_static_cycles(self) -> int:
        """Sum of the initiation intervals of all segments (diagnostic only)."""
        return sum(s.initiation_interval for s in self.schedules.values())


def compile_program(program: KernelProgram, config: MachineConfig,
                    latency_model: Optional[LatencyModel] = None,
                    verify: Optional[bool] = None,
                    strategy: str = "baseline") -> CompiledProgram:
    """Schedule every segment of ``program`` for ``config``.

    ``strategy`` names a registered scheduling strategy
    (:mod:`repro.compiler.strategies`); the default ``"baseline"`` is the
    in-order list scheduler above and takes no detour through the registry.
    Note that a transforming strategy (loop unrolling) returns a
    :class:`CompiledProgram` whose ``program`` is the *transformed* IR, not
    the argument.

    ``verify=True`` runs the independent static analyzer
    (:func:`repro.analysis.check_or_raise`) over the result and raises
    :class:`repro.analysis.ScheduleVerificationError` on any error-severity
    finding.  ``verify=None`` (the default) defers to the ``REPRO_VERIFY``
    environment variable, so whole sweeps can be re-run verified without
    touching call sites.
    """
    latency_model = latency_model or LatencyModel()
    if strategy != "baseline":
        # imported lazily: the strategies module imports this one
        from repro.compiler.strategies import get_strategy
        compiled = get_strategy(strategy).compile(program, config, latency_model)
    else:
        compiled = CompiledProgram(program=program, config=config,
                                   latency_model=latency_model)
        for segment, _ in program.walk_segments():
            compiled.schedules[id(segment)] = schedule_segment(segment, config, latency_model)
    if verify is not False:
        # imported lazily: repro.analysis imports this module
        from repro.analysis.analyzer import check_or_raise, verification_enabled
        if verification_enabled(verify):
            check_or_raise(compiled)
    return compiled
