"""Content-addressed compile cache.

Scheduling a kernel program is pure: the resulting
:class:`~repro.compiler.scheduler.CompiledProgram` depends only on the
program's IR, the target machine configuration and the latency model.  The
experiment sweeps exploit very little of that purity — the Table-2 sweep
compiles the same three program flavours once per configuration *and once
per memory mode*, and every fresh :class:`SuiteEvaluation` starts from
scratch.  This module provides the missing memoisation layer:

* :func:`fingerprint_program` — a stable content hash of a kernel program's
  IR.  Register and loop-variable identities (process-global counters) are
  normalised to first-appearance indices, so two structurally identical
  programs built at different times — or in different worker processes —
  hash identically.  Cosmetic fields (labels, comments, the program name)
  are excluded.
* :class:`CompileCache` — maps ``(program, config, latency model)``
  fingerprints to compiled programs.  A hit for a *different but
  structurally identical* program object is served by rebinding the cached
  schedule's timing onto the new program's operations (cycle assignments
  are positional, so no re-scheduling is needed).
* :data:`GLOBAL_COMPILE_CACHE` / :func:`compile_cached` — the process-wide
  instance every machine object and experiment engine shares by default.

The cache is in-memory and per-process; the multiprocessing executor in
:mod:`repro.core.runner` gives each worker its own instance, which is
exactly the right scope because compiled schedules hold references to live
IR objects and must not cross process boundaries.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.compiler.ir import KernelProgram, LoopNode, Operation, Segment
from repro.compiler.scheduler import (
    CompiledProgram,
    Schedule,
    ScheduledOperation,
    compile_program,
)
from repro.machine.config import MachineConfig
from repro.machine.latency import LatencyModel

__all__ = [
    "CompileCacheStats",
    "CompileCache",
    "GLOBAL_COMPILE_CACHE",
    "compile_cached",
    "fingerprint_program",
    "fingerprint_config",
    "fingerprint_latency_model",
]


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------

class _Normalizer:
    """First-appearance numbering for process-global identities."""

    def __init__(self) -> None:
        self._ids: Dict[int, int] = {}

    def __call__(self, ident: int) -> int:
        return self._ids.setdefault(ident, len(self._ids))


def _operation_key(op: Operation, regs: _Normalizer, loops: _Normalizer) -> tuple:
    address_key = None
    if op.address is not None:
        address_key = (
            op.address.base,
            tuple(sorted((loops(var.ident), coef) for var, coef in op.address.terms)),
            op.address.wrap_bytes,
        )
    return (
        op.opcode,
        tuple((reg.reg_class.value, regs(reg.ident)) for reg in op.dests),
        tuple((reg.reg_class.value, regs(reg.ident)) for reg in op.srcs),
        address_key,
        op.stride_bytes,
        op.vector_length,
        op.subwords,
    )


def _node_key(node, regs: _Normalizer, loops: _Normalizer) -> tuple:
    if isinstance(node, Segment):
        return ("seg", node.region,
                tuple(_operation_key(op, regs, loops) for op in node.operations))
    if isinstance(node, LoopNode):
        return ("loop", node.region, loops(node.var.ident), node.trip_count,
                tuple(_node_key(child, regs, loops) for child in node.body))
    raise TypeError(f"unexpected program node {node!r}")  # pragma: no cover


def fingerprint_program(program: KernelProgram) -> str:
    """Stable content hash of a program's IR (names/labels excluded).

    Two programs with the same loop structure, regions and operations get
    the same fingerprint even when their virtual-register and loop-variable
    identities differ (those are process-global counters).
    """
    regs = _Normalizer()
    loops = _Normalizer()
    key = (
        program.flavor.value,
        tuple(sorted((name, info.vectorizable) for name, info in program.regions.items())),
        tuple(_node_key(node, regs, loops) for node in program.body),
    )
    return hashlib.sha256(repr(key).encode()).hexdigest()


def fingerprint_config(config: MachineConfig) -> str:
    """Content hash of a machine configuration (all scheduling inputs)."""
    return hashlib.sha256(repr(config).encode()).hexdigest()


def _latency_table_key(latency_model: LatencyModel) -> tuple:
    """The latency model's content as a hashable key (shared by cache + hash)."""
    return tuple(sorted(latency_model.flow_latencies.items()))


def fingerprint_latency_model(latency_model: LatencyModel) -> str:
    """Content hash of a latency model's flow-latency table."""
    return hashlib.sha256(repr(_latency_table_key(latency_model)).encode()).hexdigest()


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------

@dataclass
class CompileCacheStats:
    """Hit/miss counters of one compile cache."""

    hits: int = 0
    misses: int = 0
    rebinds: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "rebinds": self.rebinds, "hit_rate": self.hit_rate}


def _rebind(compiled: CompiledProgram, program: KernelProgram) -> CompiledProgram:
    """Transfer a cached compilation onto a structurally identical program.

    Schedules assign cycles positionally (entry *i* times operation *i* of
    its segment), so an equal program needs no re-scheduling — only new
    :class:`ScheduledOperation` records pointing at its own operation
    objects, whose address expressions reference its own loop variables.
    """
    fresh = CompiledProgram(program=program, config=compiled.config,
                            latency_model=compiled.latency_model)
    old_segments = compiled.program.segments()
    new_segments = program.segments()
    if len(old_segments) != len(new_segments):  # pragma: no cover - defensive
        raise ValueError("cannot rebind schedules: segment count differs")
    for old_seg, new_seg in zip(old_segments, new_segments):
        schedule = compiled.schedules[id(old_seg)]
        if len(old_seg.operations) != len(new_seg.operations):  # pragma: no cover
            raise ValueError("cannot rebind schedules: operation count differs")
        entries = [
            ScheduledOperation(operation=new_op, cycle=entry.cycle,
                               occupancy=entry.occupancy,
                               assumed_latency=entry.assumed_latency)
            for new_op, entry in zip(new_seg.operations, schedule.entries)
        ]
        fresh.schedules[id(new_seg)] = Schedule(
            segment=new_seg, config_name=schedule.config_name, entries=entries,
            recurrence_interval=schedule.recurrence_interval,
            pipelined_interval=schedule.pipelined_interval)
    return fresh


class CompileCache:
    """Content-addressed cache of compiled (scheduled) programs.

    Lookups are two-tier: an identity memo keyed on the live program object
    and the (value-hashed) configuration — no IR hashing on the hot path —
    backed by the content-addressed store keyed on
    :func:`fingerprint_program` so structurally identical programs built
    independently still share one scheduling pass.

    Both tiers are bounded LRU maps; ``max_entries`` covers the full
    Table-2 sweep (≈ 20 distinct (program, configuration) pairs per
    benchmark) many times over while keeping long-lived processes from
    accumulating every program they ever compiled.  An identity entry's
    :class:`CompiledProgram` keeps its program alive, so a live entry's
    ``id(program)`` key can never be recycled; eviction drops key and
    value together.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._by_identity: "OrderedDict[tuple, CompiledProgram]" = OrderedDict()
        self._by_content: "OrderedDict[tuple, CompiledProgram]" = OrderedDict()
        self.stats = CompileCacheStats()

    def get(self, program: KernelProgram, config: MachineConfig,
            latency_model: Optional[LatencyModel] = None,
            verify: Optional[bool] = None,
            strategy: str = "baseline") -> CompiledProgram:
        """The compiled form of ``program`` on ``config`` (compiling on miss).

        ``strategy`` joins both cache keys: every key is a 4-tuple ending in
        the strategy name, so legacy 3-tuple keys (pre-strategy pickles or
        hand-seeded entries) can never satisfy a strategy-aware lookup — a
        stale baseline schedule is structurally unable to answer for a
        ``strategy="modulo"`` request.  Transforming strategies (unrolling)
        skip the content tier entirely: their compiled result holds a
        *different* program, so positional rebinding onto a structurally
        identical original would silently undo the transform.

        ``verify`` follows the same three-state contract as
        :func:`repro.compiler.scheduler.compile_program` (``None`` defers to
        ``REPRO_VERIFY``).  Verification covers every path out of the cache
        — fresh compilations, identity hits and **rebound** content hits —
        because rebinding re-times a different program object and is
        exactly the kind of shortcut an independent checker must not trust.
        Verified results are stamped, so a cache hit only re-verifies after
        an eviction or a fresh rebind.
        """
        latency_model = latency_model if latency_model is not None else _DEFAULT_LATENCY_MODEL
        # Reading the table on every lookup (rather than memoising per model
        # object) means an in-place mutation of ``flow_latencies`` is picked
        # up like the seed's always-recompile path did: the key changes, the
        # lookup misses and the program is rescheduled.
        latency_fp = _latency_table_key(latency_model)
        # the frozen MachineConfig hashes by value, so same-name variants
        # derived with dataclasses.replace / with_memory key separately
        identity_key = (id(program), config, latency_fp, strategy)
        cached = self._by_identity.get(identity_key)
        if cached is not None:
            self._by_identity.move_to_end(identity_key)
            self.stats.hits += 1
            self._maybe_verify(cached, verify)
            return cached

        transforms = False
        if strategy != "baseline":
            from repro.compiler.strategies import get_strategy
            transforms = get_strategy(strategy).transforms_program

        program_fp = fingerprint_program(program)
        content_key = (program_fp, fingerprint_config(config), latency_fp,
                       strategy)
        if not transforms:
            cached = self._by_content.get(content_key)
            if cached is not None:
                self._by_content.move_to_end(content_key)
                self.stats.hits += 1
                self.stats.rebinds += 1
                rebound = _rebind(cached, program)
                self._maybe_verify(rebound, verify, program_fp)
                self._remember(identity_key, content_key, rebound)
                return rebound

        self.stats.misses += 1
        # verify here rather than inside compile_program so the analyzer's
        # pass-memo can reuse the program fingerprint this lookup computed
        compiled = compile_program(program, config, latency_model,
                                   verify=False, strategy=strategy)
        # a transformed result's program is not the argument, so the
        # argument's fingerprint must not stamp its verification memo
        self._maybe_verify(compiled, verify,
                           None if transforms else program_fp)
        self._remember(identity_key, None if transforms else content_key,
                       compiled)
        return compiled

    @staticmethod
    def _maybe_verify(compiled: CompiledProgram, verify: Optional[bool],
                      program_fingerprint: Optional[str] = None) -> None:
        if verify is False:
            return
        from repro.analysis.analyzer import check_or_raise, verification_enabled
        if verification_enabled(verify):
            check_or_raise(compiled,
                           program_fingerprint=program_fingerprint)

    def _remember(self, identity_key, content_key,
                  compiled: CompiledProgram) -> None:
        self._by_identity[identity_key] = compiled
        self._by_identity.move_to_end(identity_key)
        while len(self._by_identity) > self.max_entries:
            self._by_identity.popitem(last=False)
        if content_key is None:
            # transforming strategies are identity-cached only (no rebind)
            return
        if content_key not in self._by_content:
            self._by_content[content_key] = compiled
        self._by_content.move_to_end(content_key)
        while len(self._by_content) > self.max_entries:
            self._by_content.popitem(last=False)

    def __len__(self) -> int:
        return len(self._by_content)

    def clear(self) -> None:
        """Drop every cached compilation (counters are reset too)."""
        self._by_identity.clear()
        self._by_content.clear()
        self.stats = CompileCacheStats()


#: Shared default so callers that pass no latency model hit the memoised
#: fingerprint instead of re-hashing a fresh ``LatencyModel()`` every call.
_DEFAULT_LATENCY_MODEL = LatencyModel()


#: The process-wide cache shared by machines and the experiment engine.
GLOBAL_COMPILE_CACHE = CompileCache()


def compile_cached(program: KernelProgram, config: MachineConfig,
                   latency_model: Optional[LatencyModel] = None,
                   cache: Optional[CompileCache] = None,
                   verify: Optional[bool] = None,
                   strategy: str = "baseline") -> CompiledProgram:
    """Schedule ``program`` for ``config`` through a compile cache.

    Drop-in replacement for
    :func:`repro.compiler.scheduler.compile_program`; pass ``cache=None``
    (the default) to share :data:`GLOBAL_COMPILE_CACHE`.  ``verify``
    post-checks the result (including cache-rebound schedules) with the
    static analyzer; ``None`` defers to ``REPRO_VERIFY``.  ``strategy``
    selects a registered scheduler strategy and is part of the cache key.
    """
    target = cache if cache is not None else GLOBAL_COMPILE_CACHE
    return target.get(program, config, latency_model, verify=verify,
                      strategy=strategy)
