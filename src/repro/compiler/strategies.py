"""Composable scheduler strategies: slot packing, unrolling, modulo scheduling.

The baseline compiler (:mod:`repro.compiler.scheduler`) emits a greedy list
schedule per segment.  This module adds a registry of *scheduler strategies*
— mirroring ``register_config`` / ``register_workload`` — that trade compile
time for schedule quality along the classic ILP axes:

``baseline``
    The list scheduler, unchanged.  Registered so ``--strategy`` flags have
    a uniform vocabulary; :func:`repro.compiler.scheduler.compile_program`
    short-circuits it without consulting this registry.
``packed``
    Dependency-aware slot packing: a cycle-driven greedy scheduler that at
    each cycle fills issue slots / units / ports from the *whole* ready
    list (critical-path priority order) instead of placing operations in
    program order.  Per segment the packed and baseline schedules are both
    built and the shorter one kept, so ``cycles(packed) <= cycles(baseline)``
    holds unconditionally.
``unroll``
    Loop unrolling by a configurable factor: the innermost loops of the
    program are rewritten (replicated bodies, affine addresses re-derived,
    write-first registers renamed per replica through fresh virtual
    registers) and the transformed program is slot-packed.  A remainder
    loop covers trips not divisible by the factor.  The factor is halved
    until the transformed program passes
    :func:`repro.compiler.regalloc.check_register_pressure`; factor 1 is
    the identity and yields a schedule identical to baseline.
``modulo``
    Modulo scheduling (software pipelining) of innermost-loop bodies: a
    candidate initiation interval II is searched upward from
    ``max(RecMII, ResMII)`` — the verifier's recurrence bound (REP206) and
    the resource bound derived from the same
    :func:`~repro.machine.resources.requests_for` facts the reservation
    table enforces — and operations are placed greedily with resource usage
    folded modulo II.  Segments that are not the sole body of a repeating
    innermost loop, or whose memory accesses could alias across
    iterations, fall back to the packed choice, as does any segment where
    no II below the flat interval admits a legal placement.

Strategy-emitted schedules remain ordinary :class:`Schedule` objects —
modulo schedules keep their *flat* single-iteration placement in the entry
cycles and record the II in ``pipelined_interval`` — so the independent
verifier (:mod:`repro.analysis`) checks every strategy with the same
machinery (plus the REP209 pipelining contract).

A transforming strategy (``unroll``) returns a :class:`CompiledProgram`
whose ``program`` attribute is the rewritten IR; execution engines consume
that program, which is how functional equivalence (identical per-region
operation / micro-op / memory-access totals) is preserved by construction.
The compile cache must not rebind such results across program objects —
see ``transforms_program`` and :mod:`repro.compiler.cache`.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.dataflow import loop_carried_registers
from repro.compiler.ir import (
    AddressExpr,
    KernelProgram,
    LoopNode,
    LoopVar,
    Operation,
    ProgramNode,
    Segment,
    VirtualRegister,
)
from repro.compiler.regalloc import check_register_pressure
from repro.compiler.scheduler import (
    CompiledProgram,
    Schedule,
    ScheduledOperation,
    SegmentTiming,
    schedule_segment,
    segment_timing,
)
from repro.machine.config import MachineConfig
from repro.machine.latency import LatencyModel
from repro.machine.resources import (
    ReservationTable,
    ResourceRequest,
    capacities_for,
    requests_for,
)

__all__ = [
    "SchedulerStrategy",
    "BaselineStrategy",
    "PackedStrategy",
    "UnrollStrategy",
    "ModuloStrategy",
    "register_strategy",
    "get_strategy",
    "strategy_names",
    "DEFAULT_STRATEGY",
]

#: Name of the strategy every API defaults to.
DEFAULT_STRATEGY = "baseline"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class SchedulerStrategy:
    """Base class of a registered scheduling strategy.

    ``transforms_program`` marks strategies whose compiled result holds a
    *different* program object than the argument (e.g. the unroller); the
    compile cache disables content-hash rebinding for those, because
    positional schedule transfer onto the original program would be wrong.
    """

    name: str = ""
    transforms_program: bool = False

    def compile(self, program: KernelProgram, config: MachineConfig,
                latency_model: LatencyModel) -> CompiledProgram:
        raise NotImplementedError


_REGISTRY: "Dict[str, SchedulerStrategy]" = {}


def register_strategy(strategy: SchedulerStrategy,
                      overwrite: bool = False) -> SchedulerStrategy:
    """Register ``strategy`` under its ``name`` (mirrors ``register_config``)."""
    if not strategy.name:
        raise ValueError("strategy needs a non-empty name")
    if strategy.name in _REGISTRY and not overwrite:
        raise ValueError(f"strategy {strategy.name!r} is already registered")
    _REGISTRY[strategy.name] = strategy
    return strategy


def get_strategy(name: str) -> SchedulerStrategy:
    """Look up a registered strategy by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scheduler strategy {name!r} "
                       f"(registered: {known})") from None


def strategy_names() -> Tuple[str, ...]:
    """Registered strategy names, default first, then registration order."""
    names = [DEFAULT_STRATEGY]
    names.extend(name for name in _REGISTRY if name != DEFAULT_STRATEGY)
    return tuple(names)


# ---------------------------------------------------------------------------
# Dependency-aware slot packing
# ---------------------------------------------------------------------------

#: Safety bound for the cycle-driven packer (mirrors ReservationTable's
#: earliest-fit horizon; reaching it means a pathologically congested
#: segment, not a normal schedule).
_PACK_CYCLE_LIMIT = 100_000


def _operation_requests(timing: SegmentTiming, config: MachineConfig,
                        latency_model: LatencyModel,
                        ) -> List[Sequence[ResourceRequest]]:
    return [requests_for(op.opcode, op.vector_length, config, latency_model)
            for op in timing.ops]


def pack_segment(segment: Segment, config: MachineConfig,
                 latency_model: Optional[LatencyModel] = None) -> Schedule:
    """Cycle-driven greedy packing of one segment.

    Where the baseline scheduler places one operation at a time at its own
    earliest feasible cycle, the packer walks cycles and at each one issues
    every ready operation (highest critical-path priority first) whose
    resource requests still fit — filling the issue slots across the whole
    ready list before moving on.
    """
    latency_model = latency_model or LatencyModel()
    if not segment.operations:
        return Schedule(segment=segment, config_name=config.name, entries=[])
    timing = segment_timing(segment, config, latency_model)
    ops = timing.ops
    count = len(ops)
    requests = _operation_requests(timing, config, latency_model)
    table = ReservationTable(capacities_for(config))
    indegree = list(timing.indegree)
    earliest = [0] * count
    ready = {i for i in range(count) if indegree[i] == 0}
    placed: List[Optional[ScheduledOperation]] = [None] * count
    remaining = count
    cycle = 0
    while remaining:
        progress = True
        while progress:
            progress = False
            candidates = sorted((i for i in ready if earliest[i] <= cycle),
                                key=lambda i: (-timing.priority[i], i))
            for index in candidates:
                if not table.fits(cycle, requests[index]):
                    continue
                table.reserve(cycle, requests[index], verified=True)
                placed[index] = ScheduledOperation(
                    operation=ops[index], cycle=cycle,
                    occupancy=timing.occupancy[index],
                    assumed_latency=timing.result_lat[index])
                ready.discard(index)
                remaining -= 1
                progress = True
                for consumer, latency in timing.successors[index]:
                    bound = cycle + latency
                    if bound > earliest[consumer]:
                        earliest[consumer] = bound
                    indegree[consumer] -= 1
                    if indegree[consumer] == 0:
                        ready.add(consumer)
        cycle += 1
        if cycle > _PACK_CYCLE_LIMIT:  # pragma: no cover - defensive
            raise RuntimeError("slot packer exceeded its cycle horizon")
    entries = [placed[i] for i in range(count)]
    return Schedule(segment=segment, config_name=config.name, entries=entries,
                    recurrence_interval=timing.recurrence)


def best_flat_schedule(segment: Segment, config: MachineConfig,
                       latency_model: LatencyModel) -> Schedule:
    """The shorter of the packed and baseline schedules (baseline on ties).

    Keeping the baseline schedule on ties is what makes the differential
    guarantee ``cycles(packed) <= cycles(baseline)`` unconditional: packing
    can only ever replace a schedule with a strictly shorter one.
    """
    baseline = schedule_segment(segment, config, latency_model)
    if len(segment.operations) < 2:
        return baseline
    packed = pack_segment(segment, config, latency_model)
    if packed.initiation_interval < baseline.initiation_interval:
        return packed
    return baseline


class BaselineStrategy(SchedulerStrategy):
    """The unmodified greedy list scheduler."""

    name = "baseline"

    def compile(self, program: KernelProgram, config: MachineConfig,
                latency_model: LatencyModel) -> CompiledProgram:
        compiled = CompiledProgram(program=program, config=config,
                                   latency_model=latency_model)
        for segment, _ in program.walk_segments():
            compiled.schedules[id(segment)] = schedule_segment(
                segment, config, latency_model)
        return compiled


class PackedStrategy(SchedulerStrategy):
    """Dependency-aware slot packing (never worse than baseline)."""

    name = "packed"

    def compile(self, program: KernelProgram, config: MachineConfig,
                latency_model: LatencyModel) -> CompiledProgram:
        compiled = CompiledProgram(program=program, config=config,
                                   latency_model=latency_model)
        for segment, _ in program.walk_segments():
            compiled.schedules[id(segment)] = best_flat_schedule(
                segment, config, latency_model)
        return compiled


# ---------------------------------------------------------------------------
# Loop unrolling
# ---------------------------------------------------------------------------

def _write_first_registers(segment: Segment) -> Dict[int, VirtualRegister]:
    """Registers whose first access in the segment is a write.

    These are the per-iteration temporaries; renaming them per replica
    removes the false WAW/WAR serialization between unrolled copies.
    Read-first registers (loop-carried accumulators, live-in values) stay
    shared so replicas chain through them like consecutive iterations do.
    """
    first_access: Dict[int, Tuple[str, VirtualRegister]] = {}
    for op in segment.operations:
        for src in op.srcs:
            first_access.setdefault(src.ident, ("r", src))
        for dest in op.dests:
            first_access.setdefault(dest.ident, ("w", dest))
    return {ident: reg for ident, (kind, reg) in first_access.items()
            if kind == "w"}


def _remap_address(address: Optional[AddressExpr], inner_var: LoopVar,
                   new_var: LoopVar, scale: int,
                   offset_iterations: int) -> Optional[AddressExpr]:
    """Re-derive an affine address for iteration ``scale*j + offset``.

    ``offset_iterations`` is expressed in original-loop iterations; any term
    over the original induction variable is rescaled onto the new one and
    its contribution for the constant offset folded into the base.
    """
    if address is None:
        return None
    base = address.base
    terms: List[Tuple[LoopVar, int]] = []
    for var, coef in address.terms:
        if var == inner_var:
            base += coef * offset_iterations
            if coef * scale != 0:
                terms.append((new_var, coef * scale))
        else:
            terms.append((var, coef))
    return AddressExpr(base=base, terms=tuple(terms),
                       wrap_bytes=address.wrap_bytes)


def _replica_operation(op: Operation, inner_var: LoopVar, new_var: LoopVar,
                       scale: int, offset_iterations: int,
                       rename: Dict[int, VirtualRegister]) -> Operation:
    return Operation(
        opcode=op.opcode,
        dests=tuple(rename.get(reg.ident, reg) for reg in op.dests),
        srcs=tuple(rename.get(reg.ident, reg) for reg in op.srcs),
        address=_remap_address(op.address, inner_var, new_var, scale,
                               offset_iterations),
        stride_bytes=op.stride_bytes,
        vector_length=op.vector_length,
        subwords=op.subwords,
        comment=op.comment,
    )


def _unrollable(loop: LoopNode) -> bool:
    """True when ``loop`` is an innermost single-segment loop we can unroll.

    Data-dependent (``wrap_bytes``) addresses that reference the induction
    variable are excluded: their variable part is reduced modulo the table
    span *before* the base is added, so folding a replica offset into the
    base would change which bytes are touched.
    """
    if loop.trip_count < 2 or len(loop.body) != 1:
        return False
    body = loop.body[0]
    if not isinstance(body, Segment) or not body.operations:
        return False
    for op in body.operations:
        address = op.address
        if (address is not None and address.wrap_bytes
                and any(var == loop.var for var in address.variables)):
            return False
    return True


def _unroll_loop(loop: LoopNode, factor: int) -> List[ProgramNode]:
    """Unrolled replacement nodes for one eligible loop."""
    segment: Segment = loop.body[0]
    unroll = min(factor, loop.trip_count)
    main_trips = loop.trip_count // unroll
    remainder = loop.trip_count - main_trips * unroll
    renameable = _write_first_registers(segment)
    nodes: List[ProgramNode] = []

    if main_trips:
        new_var = LoopVar.fresh(f"{loop.var.name}u")
        operations: List[Operation] = []
        for replica in range(unroll):
            rename: Dict[int, VirtualRegister] = {}
            if replica:
                rename = {
                    ident: VirtualRegister.fresh(
                        reg.reg_class, f"{reg.name}_u{replica}")
                    for ident, reg in renameable.items()
                }
            for op in segment.operations:
                operations.append(_replica_operation(
                    op, loop.var, new_var, unroll, replica, rename))
        body = Segment(operations=operations, region=segment.region,
                       label=f"{segment.label or segment.region}*{unroll}")
        nodes.append(LoopNode(var=new_var, trip_count=main_trips, body=[body],
                              region=loop.region, label=loop.label))

    if remainder:
        rem_var = LoopVar.fresh(f"{loop.var.name}r")
        done = main_trips * unroll
        operations = [
            _replica_operation(op, loop.var, rem_var, 1, done, {})
            for op in segment.operations
        ]
        body = Segment(operations=operations, region=segment.region,
                       label=f"{segment.label or segment.region}%{unroll}")
        nodes.append(LoopNode(var=rem_var, trip_count=remainder, body=[body],
                              region=loop.region, label=loop.label))
    return nodes


def _unroll_nodes(nodes: Sequence[ProgramNode], factor: int,
                  keep) -> Tuple[List[ProgramNode], bool]:
    out: List[ProgramNode] = []
    changed = False
    for node in nodes:
        if isinstance(node, LoopNode):
            if _unrollable(node):
                replacement = _unroll_loop(node, factor)
                if keep is None or keep(node, replacement):
                    out.extend(replacement)
                    changed = True
                    continue
            else:
                body, inner_changed = _unroll_nodes(node.body, factor, keep)
                if inner_changed:
                    node = LoopNode(var=node.var, trip_count=node.trip_count,
                                    body=body, region=node.region,
                                    label=node.label)
                    changed = True
        out.append(node)
    return out, changed


def unroll_program(program: KernelProgram, factor: int,
                   keep=None) -> KernelProgram:
    """Unroll every eligible innermost loop of ``program`` by ``factor``.

    ``keep(loop, replacement_nodes) -> bool`` (optional) vetoes individual
    replacements — the strategy uses it to keep only loops the unrolled
    schedule actually speeds up.  Returns ``program`` itself (same object)
    when the factor is 1 or no loop is rewritten, so callers can detect the
    identity transform.
    """
    if factor < 2:
        return program
    body, changed = _unroll_nodes(program.body, factor, keep)
    if not changed:
        return program
    return KernelProgram(name=program.name, flavor=program.flavor, body=body,
                         regions=program.regions,
                         address_space=program.address_space)


class UnrollStrategy(SchedulerStrategy):
    """Unroll innermost loops, then slot-pack the widened bodies.

    The unroll factor is halved until the transformed program fits the
    target's register files; factor 1 degenerates to the baseline schedule
    of the untouched program (the property the fuzz lane pins down).
    """

    transforms_program = True

    def __init__(self, factor: int = 4, name: str = "unroll") -> None:
        if factor < 1:
            raise ValueError("unroll factor must be >= 1")
        self.factor = factor
        self.name = name

    def compile(self, program: KernelProgram, config: MachineConfig,
                latency_model: LatencyModel) -> CompiledProgram:

        def loop_cycles(node: LoopNode) -> int:
            schedule = best_flat_schedule(node.body[0], config, latency_model)
            return schedule.initiation_interval * node.trip_count

        def keep(loop: LoopNode, replacement: List[ProgramNode]) -> bool:
            # per-loop profitability: only replace a loop when the unrolled
            # schedule models strictly fewer cycles (remainder included), so
            # unrolling never regresses a benchmark
            return sum(loop_cycles(node) for node in replacement) < loop_cycles(loop)

        factor = self.factor
        transformed = program
        while factor > 1:
            candidate = unroll_program(program, factor, keep)
            if candidate is program:
                break
            if check_register_pressure(candidate, config).ok:
                transformed = candidate
                break
            factor //= 2
        compiled = CompiledProgram(program=transformed, config=config,
                                   latency_model=latency_model)
        if transformed is program:
            # identity transform: schedule-identical to baseline
            for segment, _ in transformed.walk_segments():
                compiled.schedules[id(segment)] = schedule_segment(
                    segment, config, latency_model)
            return compiled
        for segment, _ in transformed.walk_segments():
            compiled.schedules[id(segment)] = best_flat_schedule(
                segment, config, latency_model)
        return compiled


# ---------------------------------------------------------------------------
# Modulo scheduling (software pipelining)
# ---------------------------------------------------------------------------

class _ModuloReservationTable:
    """Resource usage folded modulo a candidate initiation interval.

    A request of duration ``d`` starting at flat cycle ``c`` loads residues
    ``(c .. c+d-1) mod II``; durations beyond II wrap around and stack, so
    demand is accumulated per residue before comparing against capacity.
    """

    def __init__(self, capacities: Dict, interval: int) -> None:
        self.interval = interval
        self._capacities = capacities
        self._usage = {kind: [0] * interval for kind in capacities}

    def _demand(self, cycle: int, request: ResourceRequest) -> List[int]:
        demand = [0] * self.interval
        for offset in range(request.duration):
            demand[(cycle + offset) % self.interval] += request.count
        return demand

    def fits(self, cycle: int, requests: Sequence[ResourceRequest]) -> bool:
        for request in requests:
            capacity = self._capacities.get(request.kind, 0)
            usage = self._usage[request.kind]
            for slot, need in enumerate(self._demand(cycle, request)):
                if need and usage[slot] + need > capacity:
                    return False
        return True

    def reserve(self, cycle: int, requests: Sequence[ResourceRequest]) -> None:
        for request in requests:
            usage = self._usage[request.kind]
            for slot, need in enumerate(self._demand(cycle, request)):
                usage[slot] += need

    @property
    def capacities(self) -> Dict:
        return self._capacities


def resource_minimum_interval(requests: Sequence[Sequence[ResourceRequest]],
                              capacities: Dict) -> int:
    """ResMII: per resource kind, ceil(total demand / capacity)."""
    totals: Dict = {}
    for op_requests in requests:
        for request in op_requests:
            totals[request.kind] = (totals.get(request.kind, 0)
                                    + request.duration * request.count)
    bound = 1
    for kind, total in totals.items():
        capacity = capacities.get(kind, 0)
        if capacity <= 0:
            continue  # unschedulable resources surface via requests_for
        bound = max(bound, -(-total // capacity))
    return bound


def _split_address(address: AddressExpr,
                   inner_var: LoopVar) -> Tuple[int, List[Tuple[int, int]]]:
    """Coefficient over the innermost variable + the remaining term key."""
    coef = 0
    rest: List[Tuple[int, int]] = []
    for var, term_coef in address.terms:
        if var == inner_var:
            coef += term_coef
        else:
            rest.append((var.ident, term_coef))
    return coef, sorted(rest)


def _cross_iteration_alias(store_addr: AddressExpr, other_addr: AddressExpr,
                           inner_var: LoopVar, trip_count: int,
                           same_op: bool) -> bool:
    """Could the store collide with ``other`` at a *different* iteration?

    Matches the conservative disambiguation of
    :func:`repro.compiler.dataflow._may_alias`: addresses collide when they
    evaluate to the same byte address.  Anything data-dependent
    (``wrap_bytes``) or non-uniform in the induction variable is treated as
    a hazard; two uniform streams collide only when their base distance is
    a whole number of iterations *smaller than the trip count* — distinct
    arrays are further apart than the loop ever walks.
    """
    if store_addr.wrap_bytes or other_addr.wrap_bytes:
        return True
    store_coef, store_rest = _split_address(store_addr, inner_var)
    other_coef, other_rest = _split_address(other_addr, inner_var)
    if store_rest != other_rest or store_coef != other_coef:
        return True
    if store_coef == 0:
        # loop-invariant pair: every iteration touches the same location
        return same_op or store_addr.base == other_addr.base
    if same_op:
        return False  # one affine stream never self-collides across trips
    delta = store_addr.base - other_addr.base
    if delta == 0 or delta % store_coef != 0:
        return False
    return abs(delta // store_coef) < trip_count


def _memory_pipelining_hazard(segment: Segment, inner: LoopNode) -> bool:
    memory_ops = [op for op in segment.operations if op.is_memory]
    stores = [op for op in memory_ops if op.is_store]
    for store in stores:
        for other in memory_ops:
            if _cross_iteration_alias(store.address, other.address, inner.var,
                                      inner.trip_count,
                                      same_op=other is store):
                return True
    return False


def modulo_eligible(segment: Segment,
                    loops: Tuple[LoopNode, ...]) -> bool:
    """True when ``segment`` may legally be software-pipelined.

    The segment must be the sole body of its innermost loop with more than
    one trip (otherwise there are no iterations to overlap) and its memory
    accesses must provably not alias across iterations.  Loop-carried
    *register* recurrences are legal — they bound the II instead (REP206 /
    REP209); carried anti- and output-dependences are absorbed by rotating
    the renamed registers per in-flight iteration, the standard software-
    pipelining register scheme.
    """
    if not loops or not segment.operations:
        return False
    innermost = loops[-1]
    if innermost.trip_count <= 1 or len(innermost.body) != 1:
        return False
    if innermost.body[0] is not segment:
        return False
    return not _memory_pipelining_hazard(segment, innermost)


def _carried_timing_ok(timing: SegmentTiming,
                       entries: Sequence[ScheduledOperation],
                       interval: int) -> bool:
    """Check carried RAW timing: writer of iteration *i* feeds reads of *i+1*.

    For every loop-carried register, a read of the incoming value at flat
    cycle ``p`` happens ``interval`` cycles later in the next overlapped
    iteration, so the last write (cycle ``w``, latency ``L``) must satisfy
    ``w + L <= p + interval``.
    """
    cycles = [entry.cycle for entry in entries]
    last_write: Dict[int, int] = {}
    for index, op in enumerate(timing.ops):
        for dest in op.dests:
            last_write[dest.ident] = index
    written: set = set()
    for index, op in enumerate(timing.ops):
        for src in op.srcs:
            if src.ident in written:
                continue
            writer = last_write.get(src.ident)
            if writer is None:
                continue
            ready = cycles[writer] + timing.result_lat[writer]
            if ready > cycles[index] + interval:
                return False
        for dest in op.dests:
            written.add(dest.ident)
    return True


def _try_modulo_placement(timing: SegmentTiming,
                          requests: List[Sequence[ResourceRequest]],
                          capacities: Dict,
                          interval: int) -> Optional[List[ScheduledOperation]]:
    """Greedy priority placement under a folded reservation table.

    Flat dependence bounds are honoured exactly like the baseline list
    scheduler; only the resource probe folds modulo the interval.  Probing
    ``interval`` consecutive start cycles covers every residue pattern, so
    a failed window means this interval cannot place the operation.
    """
    count = len(timing.ops)
    table = _ModuloReservationTable(capacities, interval)
    indegree = list(timing.indegree)
    earliest = [0] * count
    heap = [(-timing.priority[i], i) for i in range(count) if indegree[i] == 0]
    heapq.heapify(heap)
    placed: List[Optional[ScheduledOperation]] = [None] * count
    done = 0
    while heap:
        _, index = heapq.heappop(heap)
        start = None
        for candidate in range(earliest[index], earliest[index] + interval):
            if table.fits(candidate, requests[index]):
                start = candidate
                break
        if start is None:
            return None
        table.reserve(start, requests[index])
        placed[index] = ScheduledOperation(
            operation=timing.ops[index], cycle=start,
            occupancy=timing.occupancy[index],
            assumed_latency=timing.result_lat[index])
        done += 1
        for consumer, latency in timing.successors[index]:
            bound = start + latency
            if bound > earliest[consumer]:
                earliest[consumer] = bound
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                heapq.heappush(heap, (-timing.priority[consumer], consumer))
    if done < count:  # pragma: no cover - graph is a DAG by construction
        return None
    return [placed[i] for i in range(count)]


def modulo_schedule_segment(segment: Segment, config: MachineConfig,
                            latency_model: LatencyModel,
                            flat_interval: int) -> Optional[Schedule]:
    """Software-pipeline one segment, or ``None`` when no II improves on flat.

    The II search starts at ``max(RecMII, ResMII)`` — the same recurrence
    bound the verifier enforces as REP206 and the resource bound implied by
    the per-operation reservation requests — and stops below the flat
    interval: a pipelined schedule is only kept when it is strictly better
    than the packed/baseline choice it would replace.
    """
    timing = segment_timing(segment, config, latency_model)
    if not timing.ops:
        return None
    requests = _operation_requests(timing, config, latency_model)
    capacities = capacities_for(config)
    minimum = max(1, timing.recurrence,
                  resource_minimum_interval(requests, capacities))
    for interval in range(minimum, flat_interval):
        entries = _try_modulo_placement(timing, requests, capacities, interval)
        if entries is None:
            continue
        if not _carried_timing_ok(timing, entries, interval):
            continue
        return Schedule(segment=segment, config_name=config.name,
                        entries=entries,
                        recurrence_interval=timing.recurrence,
                        pipelined_interval=interval)
    return None


class ModuloStrategy(SchedulerStrategy):
    """Software-pipeline innermost loops; packed choice everywhere else."""

    name = "modulo"

    def compile(self, program: KernelProgram, config: MachineConfig,
                latency_model: LatencyModel) -> CompiledProgram:
        compiled = CompiledProgram(program=program, config=config,
                                   latency_model=latency_model)
        for segment, loops in program.walk_segments():
            schedule = best_flat_schedule(segment, config, latency_model)
            if modulo_eligible(segment, loops):
                pipelined = modulo_schedule_segment(
                    segment, config, latency_model,
                    schedule.initiation_interval)
                if pipelined is not None:
                    schedule = pipelined
            compiled.schedules[id(segment)] = schedule
        return compiled


register_strategy(BaselineStrategy())
register_strategy(PackedStrategy())
register_strategy(UnrollStrategy(factor=4))
register_strategy(ModuloStrategy())
