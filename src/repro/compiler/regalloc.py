"""Register-pressure verification.

The builders emit nearly-SSA code with virtual registers, so a real register
allocator is unnecessary for timing purposes; what matters is that a kernel
does not require more simultaneously-live registers of a class than the
target configuration provides (Table 2 sizes the integer, µSIMD, vector and
accumulator files differently per configuration).  This module computes the
maximum number of simultaneously live virtual registers per class for every
segment and checks it against the machine's register files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.compiler.ir import KernelProgram, Segment
from repro.isa.registers import RegisterClass
from repro.machine.config import MachineConfig

__all__ = ["RegisterPressureReport", "segment_pressure", "check_register_pressure"]


@dataclass
class RegisterPressureReport:
    """Maximum live registers per class, with any capacity violations."""

    max_live: Dict[RegisterClass, int] = field(default_factory=dict)
    violations: List[Tuple[RegisterClass, int, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every register class fits in the target's register file."""
        return not self.violations

    def merge(self, other: "RegisterPressureReport") -> None:
        """Fold another report into this one (taking per-class maxima)."""
        for reg_class, live in other.max_live.items():
            self.max_live[reg_class] = max(self.max_live.get(reg_class, 0), live)
        self.violations.extend(other.violations)


def segment_pressure(segment: Segment) -> Dict[RegisterClass, int]:
    """Maximum simultaneously-live virtual registers per class in ``segment``.

    Liveness is computed over program order: a register becomes live at its
    first definition (or first use, for values live on entry such as loop
    induction variables) and dies after its last use.
    """
    ops = list(segment.operations)
    first_seen: Dict[int, int] = {}
    last_seen: Dict[int, int] = {}
    reg_class: Dict[int, RegisterClass] = {}
    for index, op in enumerate(ops):
        for reg in tuple(op.srcs) + tuple(op.dests):
            first_seen.setdefault(reg.ident, index)
            last_seen[reg.ident] = index
            reg_class[reg.ident] = reg.reg_class

    live_events: Dict[RegisterClass, List[Tuple[int, int]]] = {}
    for reg, start in first_seen.items():
        end = last_seen[reg]
        live_events.setdefault(reg_class[reg], []).append((start, end))

    pressure: Dict[RegisterClass, int] = {}
    for cls, intervals in live_events.items():
        max_live = 0
        for index in range(len(ops)):
            live = sum(1 for start, end in intervals if start <= index <= end)
            max_live = max(max_live, live)
        pressure[cls] = max_live
    return pressure


_CAPACITY_ATTRS = {
    RegisterClass.INT: "int_regs",
    RegisterClass.SIMD: "simd_regs",
    RegisterClass.VECTOR: "vector_regs",
    RegisterClass.ACCUM: "accum_regs",
}


def check_register_pressure(program: KernelProgram,
                            config: MachineConfig) -> RegisterPressureReport:
    """Check every segment of ``program`` against the register files of ``config``.

    Predicate registers are not limited (HPL-PD provides a large predicate
    file) and µSIMD pressure is checked against the vector register file on
    vector configurations, where packed values live in vector registers of
    length one.
    """
    report = RegisterPressureReport()
    for segment, _ in program.walk_segments():
        for reg_class, live in segment_pressure(segment).items():
            report.max_live[reg_class] = max(report.max_live.get(reg_class, 0), live)

    for reg_class, live in report.max_live.items():
        if reg_class in (RegisterClass.PRED, RegisterClass.SPECIAL):
            continue
        attr = _CAPACITY_ATTRS.get(reg_class)
        if attr is None:  # pragma: no cover - defensive
            continue
        capacity = getattr(config, attr)
        if reg_class is RegisterClass.SIMD and capacity == 0 and config.vector_regs:
            capacity = config.vector_regs
        if capacity and live > capacity:
            report.violations.append((reg_class, live, capacity))
        elif capacity == 0 and live > 0:
            report.violations.append((reg_class, live, capacity))
    return report
