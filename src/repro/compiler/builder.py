"""The :class:`KernelBuilder` DSL used by the workload modules.

The builder plays the role of the paper's emulation library plus the part of
the compiler that replaces emulation calls by machine operations: workload
code calls methods such as :meth:`KernelBuilder.mload`,
:meth:`KernelBuilder.simd` or :meth:`KernelBuilder.vsad` and the builder
records the corresponding IR operations, organised into region-tagged loops
and segments that the scheduler and simulator consume.

A sketch of the Figure-4 motion-estimation kernel::

    b = KernelBuilder("dist1", ISAFlavor.VECTOR)
    with b.region("R1", "Motion estimation", vectorizable=True):
        b.setvs(stride_words=row_stride // 8)
        b.setvl(8)
        acc = b.acc_clear()
        v1 = b.vload(b.addr(block_a.base), vl=8, stride_bytes=row_stride)
        v2 = b.vload(b.addr(block_b.base), vl=8, stride_bytes=row_stride)
        acc = b.vsad(acc, v1, v2, vl=8)
        sad = b.vsum(acc)
        b.store(b.addr(result.base), sad)
    program = b.program()

Loops are expressed with the :meth:`loop` context manager, which creates a
fresh induction variable, optionally emits the loop-control operations
(index increment, compare, branch) and restores the enclosing scope on exit.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.analysis.diagnostics import IRValidationError, SourceLocation, diag
from repro.compiler.ir import (
    AddressExpr,
    ISAFlavor,
    KernelProgram,
    LoopNode,
    LoopVar,
    Operation,
    ProgramNode,
    RegionInfo,
    Segment,
)
from repro.isa.operations import Opcode, descriptor_for
from repro.isa.registers import RegisterClass
from repro.memory.layout import ArraySpec

__all__ = ["KernelBuilder"]

AddressLike = Union[AddressExpr, ArraySpec, int]


def _as_address(value: AddressLike) -> AddressExpr:
    if isinstance(value, AddressExpr):
        return value
    if isinstance(value, ArraySpec):
        return AddressExpr(base=value.base)
    if isinstance(value, int):
        return AddressExpr(base=value)
    raise TypeError(f"cannot interpret {value!r} as an address")


class KernelBuilder:
    """Incrementally constructs a :class:`KernelProgram`."""

    def __init__(self, name: str, flavor: ISAFlavor,
                 address_space=None) -> None:
        self.name = name
        self.flavor = flavor
        self.address_space = address_space
        self._top: List[ProgramNode] = []
        self._body_stack: List[List[ProgramNode]] = [self._top]
        self._region_stack: List[str] = ["R0"]
        self._regions: dict[str, RegionInfo] = {
            "R0": RegionInfo(name="R0", description="scalar region", vectorizable=False)
        }

    # ------------------------------------------------------------------ state

    @property
    def current_region(self) -> str:
        return self._region_stack[-1]

    def _current_body(self) -> List[ProgramNode]:
        return self._body_stack[-1]

    def _current_segment(self) -> Segment:
        body = self._current_body()
        if body and isinstance(body[-1], Segment) and body[-1].region == self.current_region:
            return body[-1]
        segment = Segment(region=self.current_region)
        body.append(segment)
        return segment

    def emit(self, operation: Operation) -> Operation:
        """Append a fully constructed operation to the current segment."""
        self._check_flavor(operation)
        self._current_segment().operations.append(operation)
        return operation

    def _check_flavor(self, operation: Operation) -> None:
        cls = descriptor_for(operation.opcode).op_class
        if cls.is_vector or cls.is_vector_memory:
            if self.flavor is not ISAFlavor.VECTOR:
                raise ValueError(
                    f"{self.name}: vector operation {operation.opcode} in a "
                    f"{self.flavor.value} program")
        elif cls.is_simd:
            if self.flavor is ISAFlavor.SCALAR:
                raise ValueError(
                    f"{self.name}: µSIMD operation {operation.opcode} in a scalar program")

    # -------------------------------------------------------------- registers

    def int_reg(self, name: str = "") -> "VirtualRegisterProxy":
        from repro.compiler.ir import VirtualRegister
        return VirtualRegister.fresh(RegisterClass.INT, name)

    def simd_reg(self, name: str = ""):
        from repro.compiler.ir import VirtualRegister
        return VirtualRegister.fresh(RegisterClass.SIMD, name)

    def vector_reg(self, name: str = ""):
        from repro.compiler.ir import VirtualRegister
        return VirtualRegister.fresh(RegisterClass.VECTOR, name)

    def accum_reg(self, name: str = ""):
        from repro.compiler.ir import VirtualRegister
        return VirtualRegister.fresh(RegisterClass.ACCUM, name)

    def pred_reg(self, name: str = ""):
        from repro.compiler.ir import VirtualRegister
        return VirtualRegister.fresh(RegisterClass.PRED, name)

    # ---------------------------------------------------------------- regions

    @contextlib.contextmanager
    def region(self, name: str, description: str = "",
               vectorizable: bool = True) -> Iterator[None]:
        """Enter a named region (``R1``, ``R2``, ...) for the enclosed code."""
        if name not in self._regions:
            self._regions[name] = RegionInfo(name=name, description=description,
                                             vectorizable=vectorizable)
        self._region_stack.append(name)
        try:
            yield
        finally:
            self._region_stack.pop()

    # ------------------------------------------------------------------ loops

    @contextlib.contextmanager
    def loop(self, trip_count: int, name: str = "i",
             control: bool = True) -> Iterator[LoopVar]:
        """Counted loop; yields the induction variable.

        When ``control`` is true, the builder appends the loop-control
        operations (index increment, compare against the bound, conditional
        branch) to the loop body, so the per-iteration operation counts
        include the loop overhead the paper talks about when it credits the
        vector versions with removing it.
        """
        var = LoopVar.fresh(name)
        loop = LoopNode(var=var, trip_count=int(trip_count),
                        region=self.current_region, label=name)
        self._current_body().append(loop)
        self._body_stack.append(loop.body)
        index_reg = self.int_reg(f"{name}_idx")
        try:
            yield var
        finally:
            if control:
                pred = self.pred_reg(f"{name}_cond")
                self.emit(Operation(Opcode.ADD, dests=(index_reg,), srcs=(index_reg,),
                                    comment=f"{name} += 1"))
                self.emit(Operation(Opcode.CMP, dests=(pred,), srcs=(index_reg,),
                                    comment=f"{name} < {trip_count}"))
                self.emit(Operation(Opcode.BRANCH, srcs=(pred,),
                                    comment=f"loop {name}"))
            self._body_stack.pop()

    # -------------------------------------------------------------- addresses

    def addr(self, base: AddressLike, *terms: Tuple[LoopVar, int],
             offset: int = 0, wrap_bytes: Optional[int] = None) -> AddressExpr:
        """Build an affine address: ``base + offset + Σ coef * var``."""
        expr = _as_address(base).shifted(offset)
        if wrap_bytes is not None:
            expr = AddressExpr(base=expr.base, terms=expr.terms, wrap_bytes=wrap_bytes)
        for var, coef in terms:
            expr = expr.with_term(var, coef)
        return expr

    # ------------------------------------------------------------ scalar code

    def iop(self, opcode: Opcode = Opcode.ADD,
            srcs: Sequence = (), comment: str = "", name: str = ""):
        """Emit one scalar integer operation and return its destination."""
        dest = self.int_reg(name)
        self.emit(Operation(opcode, dests=(dest,), srcs=tuple(srcs), comment=comment))
        return dest

    def const(self, comment: str = "constant") -> "VirtualRegisterProxy":
        """Materialise a constant into an integer register (one MOV)."""
        return self.iop(Opcode.MOV, comment=comment)

    def independent_ops(self, count: int, opcode: Opcode = Opcode.ADD,
                        comment: str = "") -> List:
        """Emit ``count`` mutually independent scalar operations."""
        return [self.iop(opcode, comment=comment) for _ in range(count)]

    def dependent_chain(self, length: int, opcode: Opcode = Opcode.ADD,
                        start=None, comment: str = ""):
        """Emit a chain of ``length`` operations, each depending on the previous.

        Dependence chains are the reason the scalar regions of the paper fail
        to scale with issue width; the scalar-region builders use this helper
        to express recurrences (bit-buffer updates, prefix sums, IIR filters).
        """
        value = start if start is not None else self.iop(Opcode.MOV, comment=comment)
        for _ in range(max(0, length)):
            value = self.iop(opcode, srcs=(value,), comment=comment)
        return value

    def load(self, address: AddressLike, comment: str = "", name: str = ""):
        """Scalar 64-bit load through the L1."""
        dest = self.int_reg(name)
        self.emit(Operation(Opcode.LOAD, dests=(dest,), srcs=(),
                            address=_as_address(address), comment=comment))
        return dest

    def load8(self, address: AddressLike, comment: str = "", name: str = ""):
        """Scalar byte load through the L1."""
        dest = self.int_reg(name)
        self.emit(Operation(Opcode.LOAD8, dests=(dest,), srcs=(),
                            address=_as_address(address), comment=comment))
        return dest

    def store(self, address: AddressLike, src, comment: str = "") -> None:
        """Scalar 64-bit store through the L1."""
        self.emit(Operation(Opcode.STORE, srcs=(src,),
                            address=_as_address(address), comment=comment))

    def store8(self, address: AddressLike, src, comment: str = "") -> None:
        """Scalar byte store through the L1."""
        self.emit(Operation(Opcode.STORE8, srcs=(src,),
                            address=_as_address(address), comment=comment))

    def table_lookup(self, table: ArraySpec, index_reg, comment: str = "table lookup"):
        """Data-dependent load inside ``table`` (address wraps inside the table).

        The access address depends on a run-time value the timing model
        cannot know, so the address expression scatters deterministically
        within the table's footprint (see :class:`AddressExpr.wrap_bytes`).
        """
        expr = AddressExpr(base=table.base, wrap_bytes=max(table.size_bytes, 1))
        dest = self.int_reg("lut")
        self.emit(Operation(Opcode.LOAD, dests=(dest,), srcs=(index_reg,),
                            address=expr, comment=comment))
        return dest

    # ------------------------------------------------------------- µSIMD code

    def mload(self, address: AddressLike, comment: str = "", name: str = ""):
        """µSIMD 64-bit packed load through the L1."""
        dest = self.simd_reg(name)
        self.emit(Operation(Opcode.MLOAD, dests=(dest,), srcs=(),
                            address=_as_address(address), comment=comment))
        return dest

    def mstore(self, address: AddressLike, src, comment: str = "") -> None:
        """µSIMD 64-bit packed store through the L1."""
        self.emit(Operation(Opcode.MSTORE, srcs=(src,),
                            address=_as_address(address), comment=comment))

    def simd(self, opcode: Opcode, *srcs, subwords: Optional[int] = None,
             ndest: int = 1, comment: str = ""):
        """Emit one µSIMD computation operation.

        Returns a single destination register, or a tuple when ``ndest`` is
        greater than one (e.g. the unpack operations produce a low and a
        high half).
        """
        dests = tuple(self.simd_reg() for _ in range(ndest))
        self.emit(Operation(opcode, dests=dests, srcs=tuple(srcs),
                            subwords=subwords, comment=comment))
        return dests[0] if ndest == 1 else dests

    def psad(self, a, b, comment: str = "SAD"):
        """µSIMD sum of absolute differences; the result lands in an int register."""
        dest = self.int_reg("sad")
        self.emit(Operation(Opcode.PSADBW, dests=(dest,), srcs=(a, b), comment=comment))
        return dest

    # ------------------------------------------------------------ vector code

    def setvl(self, vector_length: int, comment: str = "") -> None:
        """Write the vector-length special register."""
        self.emit(Operation(Opcode.SETVL, comment=comment or f"VL={vector_length}"))

    def setvs(self, stride_words: int, comment: str = "") -> None:
        """Write the vector-stride special register (stride in 64-bit words)."""
        self.emit(Operation(Opcode.SETVS, comment=comment or f"VS={stride_words}"))

    def vload(self, address: AddressLike, vl: int, stride_bytes: int = 8,
              comment: str = "", name: str = ""):
        """Vector load of ``vl`` packed words with the given byte stride."""
        dest = self.vector_reg(name)
        self.emit(Operation(Opcode.VLOAD, dests=(dest,), srcs=(),
                            address=_as_address(address), stride_bytes=stride_bytes,
                            vector_length=vl, comment=comment))
        return dest

    def vstore(self, address: AddressLike, src, vl: int, stride_bytes: int = 8,
               comment: str = "") -> None:
        """Vector store of ``vl`` packed words with the given byte stride."""
        self.emit(Operation(Opcode.VSTORE, srcs=(src,),
                            address=_as_address(address), stride_bytes=stride_bytes,
                            vector_length=vl, comment=comment))

    def vop(self, opcode: Opcode, *srcs, vl: int, subwords: Optional[int] = None,
            ndest: int = 1, comment: str = ""):
        """Emit one vector computation operation of length ``vl``."""
        dests = tuple(self.vector_reg() for _ in range(ndest))
        self.emit(Operation(opcode, dests=dests, srcs=tuple(srcs),
                            vector_length=vl, subwords=subwords, comment=comment))
        return dests[0] if ndest == 1 else dests

    def acc_clear(self, comment: str = "A=0"):
        """Clear a packed accumulator and return it."""
        acc = self.accum_reg()
        self.emit(Operation(Opcode.ACCCLEAR, dests=(acc,), comment=comment))
        return acc

    def vsad(self, acc, a, b, vl: int, comment: str = "A=SAD(V,V)"):
        """Vector SAD accumulated into ``acc`` (returns the accumulator)."""
        self.emit(Operation(Opcode.VSAD, dests=(acc,), srcs=(acc, a, b),
                            vector_length=vl, comment=comment))
        return acc

    def vmac(self, acc, a, b, vl: int, comment: str = "A+=V*V"):
        """Vector multiply-accumulate into ``acc`` (returns the accumulator)."""
        self.emit(Operation(Opcode.VMAC, dests=(acc,), srcs=(acc, a, b),
                            vector_length=vl, subwords=4, comment=comment))
        return acc

    def vsum(self, acc, comment: str = "R=SUM(A)"):
        """Reduce a packed accumulator to a scalar integer register."""
        dest = self.int_reg("sum")
        self.emit(Operation(Opcode.VSUM, dests=(dest,), srcs=(acc,), comment=comment))
        return dest

    # ------------------------------------------------------------------ build

    def program(self) -> KernelProgram:
        """Finish building and return the program.

        Validates that every memory operation's address is affine over its
        *enclosing* loop nest: an address term using a loop variable from a
        sibling (or already-closed) loop would make the interpreter fault
        mid-run and the trace tier reject the program at lowering, so the
        builder reports it here, at construction time, with the operation
        that caused it.
        """
        if len(self._body_stack) != 1:
            raise RuntimeError("unbalanced loop() contexts while building program")
        self._validate_addresses(self._top, frozenset())
        return KernelProgram(name=self.name, flavor=self.flavor,
                             body=self._top, regions=dict(self._regions),
                             address_space=self.address_space)

    def _validate_addresses(self, nodes, bound: frozenset) -> None:
        for node in nodes:
            if isinstance(node, LoopNode):
                self._validate_addresses(node.body, bound | {node.var})
                continue
            for operation in node.operations:
                if operation.address is None:
                    continue
                unknown = {var for var, _ in operation.address.terms} - bound
                if unknown:
                    opcode = getattr(operation.opcode, "value",
                                     operation.opcode)
                    message = (
                        f"{self.name}: address of {opcode} "
                        f"references loop variables "
                        f"{sorted(map(repr, unknown))} not bound by an "
                        f"enclosing loop (non-affine over its nest)")
                    raise IRValidationError(message, diag(
                        "REP101", message,
                        SourceLocation(program=self.name,
                                       flavor=self.flavor.value,
                                       region=node.region,
                                       opcode=str(opcode))))
