"""Trace compilation: lowering a scheduled program to address streams.

The interpreting executor (:mod:`repro.sim.fast`) walks the loop nest in
Python and evaluates every memory operation's affine address once per
dynamic instance.  But nothing about that walk is data dependent: trip
counts are static, addresses are affine in the loop indices, and the order
in which memory operations reach the hierarchy is fixed by the tree shape
and the per-segment schedules.  This module exploits that by lowering each
compiled program to *closed form*:

* every memory operation gets, per enclosing loop, an **address
  coefficient** (bytes per iteration, summed over the expression's terms)
  and a **position stride** (how many stream slots one iteration of that
  loop advances — the combined memory-operation count of the loop body);
* the dynamic instances of one operation therefore live at
  ``pos_base + Σ index_k·pos_stride_k`` in the global access stream and
  touch ``base + Σ index_k·addr_coef_k`` (optionally wrapped), both affine
  over the same iteration grid;
* :meth:`TraceProgram.materialize` evaluates both lattices with NumPy
  broadcasting over a *chunk* of stream positions and scatters the results
  into one interleaved ``(op_index, address)`` stream — byte-for-byte the
  order the interpreter would have produced, without executing a single
  Python-level loop iteration.

Positions are strictly increasing in the C-order instance index of each
operation (inner loops advance by less than one iteration of any outer
loop), which is what lets a chunk boundary be located by binary search.

Everything here is static per (program, configuration) pair, so the result
is memoised on the :class:`~repro.compiler.scheduler.CompiledProgram`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.analysis.diagnostics import DiagnosticError
from repro.compiler.ir import LoopNode, Segment
from repro.compiler.scheduler import CompiledProgram, MemoryOpSummary

__all__ = ["TraceLoweringError", "TraceOp", "SegmentCounts", "TraceProgram",
           "trace_program"]


class TraceLoweringError(DiagnosticError, ValueError):
    """A program outside the trace tier's closed-form (affine) contract.

    Raised during lowering, before any statistics or hierarchy state is
    touched, so :class:`~repro.sim.trace.TraceExecutionEngine` can fall
    back to the interpreting oracle with an explicit, recorded reason
    instead of producing wrong statistics silently.  Carries a typed
    ``REP105`` diagnostic (see :mod:`repro.analysis.diagnostics`); still a
    ``ValueError`` for pre-existing callers.
    """

    default_code = "REP105"


@dataclass(frozen=True)
class TraceOp:
    """One memory operation lowered to its address/position lattices.

    ``trips``/``pos_strides``/``addr_coefs`` are aligned outermost→innermost
    over the enclosing loops; ``weights`` are the C-order digit weights
    (suffix products of ``trips``) used to decompose a flat instance index.
    """

    op: MemoryOpSummary
    region: str
    pos_base: int
    trips: Tuple[int, ...]
    weights: Tuple[int, ...]
    pos_strides: Tuple[int, ...]
    addr_coefs: Tuple[int, ...]
    base: int
    wrap: int  # 0 = no wrapping
    count: int

    def position_of(self, instance: int) -> int:
        """Stream position of one dynamic instance (C-order index)."""
        position = self.pos_base
        remainder = instance
        for weight, stride in zip(self.weights, self.pos_strides):
            digit, remainder = divmod(remainder, weight)
            position += digit * stride
        return position

    def first_instance_at(self, position: int) -> int:
        """Smallest instance index whose stream position is >= ``position``."""
        low, high = 0, self.count
        while low < high:
            mid = (low + high) // 2
            if self.position_of(mid) >= position:
                high = mid
            else:
                low = mid + 1
        return low


@dataclass(frozen=True)
class SegmentCounts:
    """Analytic (state-independent) execution facts of one segment.

    Everything the executor accounts per dynamic segment execution except
    memory stalls is loop invariant, so the whole nest contributes
    ``executions`` times the static quantities.
    """

    region: str
    vectorizable: bool
    executions: int
    initiation_interval: int
    operations: int
    micro_ops: int
    memory_ops: int


@dataclass
class TraceProgram:
    """A compiled program lowered to its (static) global access stream."""

    compiled: CompiledProgram
    segments: List[SegmentCounts]
    ops: List[TraceOp]
    stream_length: int

    def chunks(self, chunk_size: int) -> Iterator[Tuple[int, int]]:
        """Split the stream into bounded position ranges."""
        if chunk_size <= 0:
            raise ValueError("chunk size must be positive")
        for low in range(0, self.stream_length, chunk_size):
            yield low, min(low + chunk_size, self.stream_length)

    def materialize(self, low: int, high: int) -> Tuple[np.ndarray, np.ndarray]:
        """The interleaved ``(op_index, address)`` stream for positions [low, high).

        Exactly the accesses the interpreter would issue at those global
        stream positions, in the same order.
        """
        total = high - low
        op_index = np.empty(total, dtype=np.int64)
        addresses = np.empty(total, dtype=np.int64)
        filled = 0
        for index, trace_op in enumerate(self.ops):
            first = trace_op.first_instance_at(low)
            last = trace_op.first_instance_at(high)
            if last <= first:
                continue
            instances = np.arange(first, last, dtype=np.int64)
            positions = np.full(instances.shape, trace_op.pos_base, dtype=np.int64)
            offsets = np.zeros(instances.shape, dtype=np.int64)
            remainder = instances
            for weight, stride, coef in zip(trace_op.weights,
                                            trace_op.pos_strides,
                                            trace_op.addr_coefs):
                digits = remainder // weight
                remainder = remainder - digits * weight
                if stride:
                    positions += digits * stride
                if coef:
                    offsets += digits * coef
            if trace_op.wrap:
                offsets %= trace_op.wrap
            slots = positions - low
            op_index[slots] = index
            addresses[slots] = trace_op.base + offsets
            filled += int(instances.shape[0])
        if filled != total:  # pragma: no cover - lowering invariant
            raise RuntimeError(
                f"trace stream positions [{low}, {high}) covered {filled} slots")
        return op_index, addresses


def _stream_length(node, compiled: CompiledProgram, memo: Dict[int, int]) -> int:
    """Memory accesses one execution of ``node`` feeds into the stream."""
    key = id(node)
    cached = memo.get(key)
    if cached is not None:
        return cached
    if isinstance(node, Segment):
        summary = compiled.summary_for(node)
        length = len(summary.memory_ops)
    elif isinstance(node, LoopNode):
        length = node.trip_count * sum(
            _stream_length(child, compiled, memo) for child in node.body)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unexpected program node {node!r}")
    memo[key] = length
    return length


def _lower(nodes: Sequence, compiled: CompiledProgram,
           dims: Tuple[Tuple[object, int, int], ...], base: int,
           segments: List[SegmentCounts], ops: List[TraceOp],
           memo: Dict[int, int]) -> int:
    """Assign stream positions to every memory operation under ``nodes``."""
    for node in nodes:
        if isinstance(node, Segment):
            summary = compiled.summary_for(node)
            executions = 1
            for _, trip, _ in dims:
                executions *= trip
            segments.append(SegmentCounts(
                region=summary.region,
                vectorizable=summary.vectorizable,
                executions=executions,
                initiation_interval=summary.initiation_interval,
                operations=summary.operations,
                micro_ops=summary.micro_ops,
                memory_ops=len(summary.memory_ops),
            ))
            for slot, mem in enumerate(summary.memory_ops):
                coef_by_var: Dict[object, int] = {}
                for var, coef in mem.address.terms:
                    coef_by_var[var] = coef_by_var.get(var, 0) + coef
                known = {var for var, _, _ in dims}
                unknown = set(coef_by_var) - known
                if unknown:
                    raise TraceLoweringError(
                        f"address of {mem!r} references loop variables "
                        f"{sorted(map(repr, unknown))} not bound by the nest")
                trips = tuple(trip for _, trip, _ in dims)
                weights: List[int] = []
                weight = 1
                for trip in reversed(trips):
                    weights.append(weight)
                    weight *= trip
                weights.reverse()
                count = weight
                ops.append(TraceOp(
                    op=mem,
                    region=summary.region,
                    pos_base=base + slot,
                    trips=trips,
                    weights=tuple(weights),
                    pos_strides=tuple(stride for _, _, stride in dims),
                    addr_coefs=tuple(coef_by_var.get(var, 0) for var, _, _ in dims),
                    base=mem.address.base,
                    wrap=mem.address.wrap_bytes or 0,
                    count=count,
                ))
            base += len(summary.memory_ops)
        elif isinstance(node, LoopNode):
            if node.trip_count == 0:
                continue
            body_length = sum(_stream_length(child, compiled, memo)
                              for child in node.body)
            _lower(node.body, compiled,
                   dims + ((node.var, node.trip_count, body_length),),
                   base, segments, ops, memo)
            base += node.trip_count * body_length
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected program node {node!r}")
    return base


def trace_program(compiled: CompiledProgram) -> TraceProgram:
    """Lower ``compiled`` to its global access stream (memoised)."""
    cached = getattr(compiled, "_trace_program", None)
    if cached is not None:
        return cached
    segments: List[SegmentCounts] = []
    ops: List[TraceOp] = []
    memo: Dict[int, int] = {}
    length = _lower(compiled.program.body, compiled, (), 0, segments, ops, memo)
    trace = TraceProgram(compiled=compiled, segments=segments, ops=ops,
                         stream_length=length)
    compiled._trace_program = trace
    return trace
