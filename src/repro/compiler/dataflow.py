"""Dependence analysis over straight-line segments.

The scheduler needs, for every segment, the set of ordering constraints
between its operations:

* **RAW** (true) dependences through virtual registers;
* **WAR** / **WAW** (anti / output) dependences — rare in the builder's
  mostly-SSA output, but accumulators and loop induction variables are
  updated in place;
* **memory ordering** between stores and later memory operations that may
  touch the same data.  The paper's toolchain includes interprocedural
  pointer analysis and cost-effective memory disambiguation, so the
  conservative case is only applied when two accesses are structurally the
  same address or both are data-dependent look-ups into the same table.

Edges carry a *kind* only; the scheduler assigns latencies because they
depend on the target configuration (vector length, lanes, port width and
whether chaining applies).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.ir import Operation, Segment
from repro.isa.registers import RegisterClass

__all__ = ["DependenceKind", "DependenceEdge", "DependenceGraph",
           "build_dependence_graph", "loop_carried_registers"]


class DependenceKind(enum.Enum):
    """Classification of a dependence edge."""

    RAW = "raw"
    WAR = "war"
    WAW = "waw"
    MEMORY = "memory"


@dataclass(frozen=True)
class DependenceEdge:
    """A directed dependence from ``producer`` to ``consumer`` (segment indices)."""

    producer: int
    consumer: int
    kind: DependenceKind
    register_class: Optional[RegisterClass] = None

    def __post_init__(self) -> None:
        if self.consumer <= self.producer and self.kind is not DependenceKind.WAR:
            # WAR edges can legally connect an op to itself conceptually (an
            # operation that overwrites one of its own sources); everything
            # else must point forward in program order.
            if self.consumer <= self.producer:
                raise ValueError("dependence edges must point forward in program order")


@dataclass
class DependenceGraph:
    """Dependence edges of one segment, with adjacency helpers."""

    operations: Sequence[Operation]
    edges: List[DependenceEdge] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._successors: Dict[int, List[DependenceEdge]] = defaultdict(list)
        self._predecessors: Dict[int, List[DependenceEdge]] = defaultdict(list)
        for edge in self.edges:
            self._successors[edge.producer].append(edge)
            self._predecessors[edge.consumer].append(edge)

    def add_edge(self, edge: DependenceEdge) -> None:
        self.edges.append(edge)
        self._successors[edge.producer].append(edge)
        self._predecessors[edge.consumer].append(edge)

    def successors(self, index: int) -> List[DependenceEdge]:
        """Outgoing edges of the operation at ``index``."""
        return self._successors.get(index, [])

    def predecessors(self, index: int) -> List[DependenceEdge]:
        """Incoming edges of the operation at ``index``."""
        return self._predecessors.get(index, [])

    def roots(self) -> List[int]:
        """Indices of operations with no predecessors."""
        return [i for i in range(len(self.operations)) if not self.predecessors(i)]

    def edge_count(self) -> int:
        return len(self.edges)


def _may_alias(a: Operation, b: Operation) -> bool:
    """Conservative may-alias test between two memory operations."""
    if a.address is None or b.address is None:  # pragma: no cover - defensive
        return True
    if a.address.structurally_equal(b.address):
        return True
    # Two data-dependent accesses into the same table may collide.
    if (a.address.wrap_bytes and b.address.wrap_bytes
            and a.address.base == b.address.base):
        return True
    return False


def build_dependence_graph(segment: Segment) -> DependenceGraph:
    """Construct the dependence graph of one segment.

    The builder emits operations in program order, so every edge points
    forward; the resulting graph is a DAG by construction and program order
    is a valid topological order (a property the scheduler exploits).
    """
    ops = list(segment.operations)
    graph = DependenceGraph(operations=ops, edges=[])

    last_writer: Dict[int, int] = {}
    readers_since_write: Dict[int, List[int]] = defaultdict(list)
    reg_class: Dict[int, RegisterClass] = {}
    pending_stores: List[int] = []

    for index, op in enumerate(ops):
        # register dependences -------------------------------------------------
        for src in op.srcs:
            reg_class[src.ident] = src.reg_class
            writer = last_writer.get(src.ident)
            if writer is not None and writer != index:
                graph.add_edge(DependenceEdge(writer, index, DependenceKind.RAW,
                                              register_class=src.reg_class))
            readers_since_write[src.ident].append(index)
        for dest in op.dests:
            reg_class[dest.ident] = dest.reg_class
            writer = last_writer.get(dest.ident)
            if writer is not None and writer != index:
                graph.add_edge(DependenceEdge(writer, index, DependenceKind.WAW,
                                              register_class=dest.reg_class))
            for reader in readers_since_write.get(dest.ident, []):
                if reader != index and reader < index:
                    graph.add_edge(DependenceEdge(reader, index, DependenceKind.WAR,
                                                  register_class=dest.reg_class))
            last_writer[dest.ident] = index
            readers_since_write[dest.ident] = []

        # memory ordering -------------------------------------------------------
        if op.is_memory:
            for store_index in pending_stores:
                if _may_alias(ops[store_index], op):
                    graph.add_edge(DependenceEdge(store_index, index,
                                                  DependenceKind.MEMORY))
            if op.is_store:
                pending_stores.append(index)

    return graph


def loop_carried_registers(segment: Segment) -> Dict[int, Tuple[int, RegisterClass]]:
    """Registers whose value crosses loop iterations, with their last writer.

    A register is loop-carried when some operation reads it at or before the
    position of its (last) writer in program order — i.e. the read uses the
    value produced by the previous iteration.  The induction variable of
    every loop and the packed accumulators of reduction kernels fall in this
    category; the scheduler uses the result to bound the initiation interval
    of the loop body (a software recurrence constraint).
    """
    ops = list(segment.operations)
    first_read: Dict[int, int] = {}
    last_write: Dict[int, int] = {}
    classes: Dict[int, RegisterClass] = {}
    for index, op in enumerate(ops):
        for src in op.srcs:
            first_read.setdefault(src.ident, index)
            classes[src.ident] = src.reg_class
        for dest in op.dests:
            last_write[dest.ident] = index
            classes[dest.ident] = dest.reg_class
    carried: Dict[int, Tuple[int, RegisterClass]] = {}
    for reg, read_index in first_read.items():
        write_index = last_write.get(reg)
        if write_index is not None and write_index >= read_index:
            carried[reg] = (write_index, classes[reg])
    return carried
