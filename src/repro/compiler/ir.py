"""Kernel intermediate representation.

A *kernel program* is a tree of loops and straight-line segments of
operations, tagged with the region (R0, R1, ...) they belong to.  The IR is
deliberately close to what the paper's hand-written emulation-library codes
look like after the compiler has replaced the emulation calls with machine
operations:

* operations read and write *virtual registers* of the five architectural
  register classes (integer, µSIMD, vector, accumulator, predicate);
* memory operations carry an *affine address expression* over the enclosing
  loop variables, which is what lets the timing simulator generate the
  address stream of every dynamic instance without re-tracing the kernel;
* vector operations additionally carry their static vector length and the
  byte stride of vector memory accesses (the values the compiler would move
  into the VL/VS registers).

The same IR is used for the scalar, µSIMD and Vector-µSIMD versions of every
kernel — only the opcodes and the loop structure differ — so the dynamic
operation and micro-operation accounting of Figure 7 / Table 3 falls out of
one code path.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.isa.operations import Opcode, OpClass, descriptor_for, micro_ops_for
from repro.isa.registers import RegisterClass

__all__ = [
    "ISAFlavor",
    "LoopVar",
    "AddressExpr",
    "VirtualRegister",
    "Operation",
    "Segment",
    "LoopNode",
    "ProgramNode",
    "KernelProgram",
    "RegionInfo",
]


class ISAFlavor(enum.Enum):
    """Which ISA a program version targets."""

    SCALAR = "scalar"
    USIMD = "usimd"
    VECTOR = "vector"

    @property
    def label(self) -> str:
        return {"scalar": "VLIW", "usimd": "+uSIMD", "vector": "+Vector"}[self.value]


_loop_var_ids = itertools.count()
_vreg_ids = itertools.count()
_op_ids = itertools.count()


@dataclass(frozen=True, eq=True)
class LoopVar:
    """A loop induction variable (identified by id, named for readability)."""

    ident: int
    name: str

    @staticmethod
    def fresh(name: str = "i") -> "LoopVar":
        return LoopVar(ident=next(_loop_var_ids), name=name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}#{self.ident}"


@dataclass(frozen=True)
class AddressExpr:
    """Affine byte-address expression ``base + Σ coef_k * var_k``.

    ``terms`` maps loop variables to byte coefficients.  Addresses are
    evaluated against an environment of loop-variable values supplied by the
    simulator when it walks the loop nest.

    ``wrap_bytes`` (optional) reduces the variable part modulo a span before
    adding it to the base.  It models data-dependent accesses — table
    look-ups in the Huffman/VLC scalar regions — whose exact address is not
    an affine function of the loop indices but whose footprint (the table)
    is known; the resulting address stream scatters deterministically inside
    the table, which is what the cache model needs.
    """

    base: int
    terms: Tuple[Tuple[LoopVar, int], ...] = ()
    wrap_bytes: Optional[int] = None

    def evaluate(self, env: Mapping[LoopVar, int]) -> int:
        """Evaluate the expression for concrete loop index values."""
        offset = 0
        for var, coef in self.terms:
            try:
                offset += coef * env[var]
            except KeyError as exc:
                raise KeyError(
                    f"loop variable {var!r} not bound while evaluating address") from exc
        if self.wrap_bytes:
            offset %= self.wrap_bytes
        return self.base + offset

    def shifted(self, offset: int) -> "AddressExpr":
        """Return a copy displaced by ``offset`` bytes."""
        return AddressExpr(base=self.base + offset, terms=self.terms,
                           wrap_bytes=self.wrap_bytes)

    def with_term(self, var: LoopVar, coef: int) -> "AddressExpr":
        """Return a copy with an additional affine term."""
        if coef == 0:
            return self
        return AddressExpr(base=self.base, terms=self.terms + ((var, coef),),
                           wrap_bytes=self.wrap_bytes)

    @property
    def variables(self) -> Tuple[LoopVar, ...]:
        return tuple(var for var, _ in self.terms)

    def structurally_equal(self, other: "AddressExpr") -> bool:
        """True when both expressions are the same affine function."""
        return (self.base == other.base
                and self.wrap_bytes == other.wrap_bytes
                and sorted((v.ident, c) for v, c in self.terms)
                == sorted((v.ident, c) for v, c in other.terms))


@dataclass(frozen=True, eq=True)
class VirtualRegister:
    """A value produced/consumed by operations, typed by register class."""

    ident: int
    reg_class: RegisterClass
    name: str = ""

    @staticmethod
    def fresh(reg_class: RegisterClass, name: str = "") -> "VirtualRegister":
        ident = next(_vreg_ids)
        return VirtualRegister(ident=ident, reg_class=reg_class,
                               name=name or f"v{ident}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        prefix = {
            RegisterClass.INT: "r",
            RegisterClass.SIMD: "m",
            RegisterClass.VECTOR: "V",
            RegisterClass.ACCUM: "A",
            RegisterClass.PRED: "p",
            RegisterClass.SPECIAL: "s",
        }[self.reg_class]
        return f"{prefix}{self.ident}"


@dataclass
class Operation:
    """One machine operation instance in a kernel program.

    Attributes
    ----------
    opcode:
        Canonical opcode name (see :class:`repro.isa.operations.Opcode`).
    dests / srcs:
        Virtual registers written / read.
    address:
        Affine address expression for memory operations, ``None`` otherwise.
    stride_bytes:
        Byte distance between consecutive vector elements of a vector memory
        operation (8 = stride one).  Ignored for other operations.
    vector_length:
        Static vector length used by vector operations (the value the
        compiler proved for the VL register; the maximum 16 when unknown).
    subwords:
        Element-width override for micro-operation accounting.
    comment:
        Free-form annotation used by the schedule pretty-printer
        (e.g. ``"V1=[R1]"`` in the Figure-4 listing).
    """

    opcode: str
    dests: Tuple[VirtualRegister, ...] = ()
    srcs: Tuple[VirtualRegister, ...] = ()
    address: Optional[AddressExpr] = None
    stride_bytes: int = 8
    vector_length: int = 1
    subwords: Optional[int] = None
    comment: str = ""
    ident: int = field(default_factory=lambda: next(_op_ids))

    def __post_init__(self) -> None:
        if isinstance(self.opcode, Opcode):
            self.opcode = self.opcode.value
        self.dests = tuple(self.dests)
        self.srcs = tuple(self.srcs)
        desc = descriptor_for(self.opcode)
        if desc.op_class.is_memory and self.address is None:
            raise ValueError(f"memory operation {self.opcode} needs an address")
        if self.vector_length < 1:
            raise ValueError("vector_length must be >= 1")

    # -- classification helpers ----------------------------------------------

    @property
    def op_class(self) -> OpClass:
        return descriptor_for(self.opcode).op_class

    @property
    def is_memory(self) -> bool:
        return self.op_class.is_memory

    @property
    def is_vector_memory(self) -> bool:
        return self.op_class.is_vector_memory

    @property
    def is_store(self) -> bool:
        return self.op_class.is_store

    @property
    def is_vector(self) -> bool:
        return self.op_class.is_vector or self.op_class.is_vector_memory

    def micro_ops(self) -> int:
        """Micro-operations performed by one dynamic instance."""
        return micro_ops_for(self.opcode, self.vector_length, self.subwords)

    def reads(self) -> Tuple[VirtualRegister, ...]:
        return self.srcs

    def writes(self) -> Tuple[VirtualRegister, ...]:
        return self.dests

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dest = ",".join(map(repr, self.dests))
        src = ",".join(map(repr, self.srcs))
        text = f"{self.opcode}"
        if dest:
            text += f" {dest}"
        if src:
            text += f" <- {src}"
        if self.comment:
            text += f"  ; {self.comment}"
        return text


@dataclass
class Segment:
    """A straight-line run of operations (one scheduling unit)."""

    operations: List[Operation] = field(default_factory=list)
    region: str = "R0"
    label: str = ""

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    @property
    def static_operations(self) -> int:
        return len(self.operations)

    @property
    def static_micro_ops(self) -> int:
        return sum(op.micro_ops() for op in self.operations)

    @property
    def memory_operations(self) -> List[Operation]:
        return [op for op in self.operations if op.is_memory]


@dataclass
class LoopNode:
    """A counted loop whose body is a list of segments and nested loops."""

    var: LoopVar
    trip_count: int
    body: List["ProgramNode"] = field(default_factory=list)
    region: str = "R0"
    label: str = ""

    def __post_init__(self) -> None:
        if self.trip_count < 0:
            raise ValueError("trip count cannot be negative")

    def iterations(self) -> range:
        return range(self.trip_count)


ProgramNode = Union[Segment, LoopNode]


@dataclass(frozen=True)
class RegionInfo:
    """Descriptive information about one region of a benchmark."""

    name: str
    description: str = ""
    vectorizable: bool = False


@dataclass
class KernelProgram:
    """A complete kernel or application program in one ISA flavour.

    ``address_space`` optionally records the allocator the program's buffers
    came from; the runner uses it to pre-load the program's working set into
    the L2/L3 caches before timing, modelling the fact that a real
    application's kernel inputs were just produced by the previous pipeline
    stage (the paper observes high hit ratios for exactly this reason).
    """

    name: str
    flavor: ISAFlavor
    body: List[ProgramNode] = field(default_factory=list)
    regions: Dict[str, RegionInfo] = field(default_factory=dict)
    address_space: Optional[object] = None

    # -- traversal helpers ----------------------------------------------------

    def walk_segments(self) -> Iterator[Tuple[Segment, Tuple[LoopNode, ...]]]:
        """Yield every segment together with its enclosing loop stack."""
        yield from _walk(self.body, ())

    def segments(self) -> List[Segment]:
        """All segments in program order."""
        return [seg for seg, _ in self.walk_segments()]

    def static_operation_count(self) -> int:
        """Static (not weighted by trip counts) operation count."""
        return sum(len(seg) for seg in self.segments())

    def dynamic_operation_count(self) -> int:
        """Operations executed by one run of the program."""
        total = 0
        for seg, loops in self.walk_segments():
            weight = 1
            for loop in loops:
                weight *= loop.trip_count
            total += weight * len(seg)
        return total

    def dynamic_micro_op_count(self) -> int:
        """Micro-operations executed by one run of the program."""
        total = 0
        for seg, loops in self.walk_segments():
            weight = 1
            for loop in loops:
                weight *= loop.trip_count
            total += weight * seg.static_micro_ops
        return total

    def dynamic_counts_by_region(self) -> Dict[str, Tuple[int, int]]:
        """Per-region ``(operations, micro_operations)`` executed by one run."""
        counts: Dict[str, Tuple[int, int]] = {}
        for seg, loops in self.walk_segments():
            weight = 1
            for loop in loops:
                weight *= loop.trip_count
            ops, uops = counts.get(seg.region, (0, 0))
            counts[seg.region] = (ops + weight * len(seg),
                                  uops + weight * seg.static_micro_ops)
        return counts

    def region_names(self) -> List[str]:
        """Region names in first-appearance order."""
        seen: List[str] = []
        for seg, _ in self.walk_segments():
            if seg.region not in seen:
                seen.append(seg.region)
        return seen

    def concatenated(self, other: "KernelProgram", name: Optional[str] = None) -> "KernelProgram":
        """Sequential composition of two programs of the same flavour."""
        if other.flavor is not self.flavor:
            raise ValueError("cannot concatenate programs of different ISA flavours")
        regions = dict(self.regions)
        regions.update(other.regions)
        return KernelProgram(
            name=name or f"{self.name}+{other.name}",
            flavor=self.flavor,
            body=list(self.body) + list(other.body),
            regions=regions,
        )


def _walk(nodes: Iterable[ProgramNode],
          stack: Tuple[LoopNode, ...]) -> Iterator[Tuple[Segment, Tuple[LoopNode, ...]]]:
    for node in nodes:
        if isinstance(node, Segment):
            yield node, stack
        elif isinstance(node, LoopNode):
            yield from _walk(node.body, stack + (node,))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected program node {node!r}")
