"""Design-space exploration beyond the paper's ten configurations.

The paper's evaluation freezes the machine space at Table 2.  This package
opens it (as :mod:`repro.workloads.registry` opens the workload space —
explorations accept any registered benchmark name, including user
registrations and the extended ``mediabench-plus`` kernels):

* :mod:`repro.explore.space` — parameterised configuration generation
  (issue width × vector units × lanes × port width × vector-cache
  geometry), each point a named, registered
  :class:`~repro.machine.config.MachineConfig`;
* :mod:`repro.explore.sweep` — resumable sharded sweeps of those
  configurations through the experiment engine and the persistent result
  store (:mod:`repro.store`), so a 100+-point sweep survives interruption
  and never re-simulates a stored point;
* :mod:`repro.explore.pareto` — Pareto-frontier extraction for the
  speed-up-vs-issue-slots summaries the sweep reports.

CLI: ``python -m repro explore`` (see ``docs/store.md``); benchmark
selection uses the same ``--benchmarks`` name/tag selectors as ``report``
and ``sweep``.  ``docs/architecture.md`` places this package in the
end-to-end dataflow.
"""

from repro.explore.pareto import ParetoPoint, pareto_frontier
from repro.explore.space import (
    DesignPoint,
    DesignSpace,
    generate_configs,
    point_config,
)
from repro.explore.sweep import (
    BASELINE_CONFIG,
    DEFAULT_BENCHMARKS,
    ExplorationResult,
    run_exploration,
)

__all__ = [
    "ParetoPoint",
    "pareto_frontier",
    "DesignPoint",
    "DesignSpace",
    "generate_configs",
    "point_config",
    "ExplorationResult",
    "run_exploration",
    "BASELINE_CONFIG",
    "DEFAULT_BENCHMARKS",
]
