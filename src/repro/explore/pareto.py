"""Pareto-frontier extraction for design-space summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

__all__ = ["ParetoPoint", "pareto_frontier"]


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate: a name, a cost to minimise and a value to maximise."""

    name: str
    cost: float
    value: float


def pareto_frontier(points: Iterable[ParetoPoint]) -> Tuple[ParetoPoint, ...]:
    """The non-dominated subset of ``points``, in increasing cost order.

    A point is dominated when another point has cost ≤ and value ≥ with at
    least one inequality strict.  Ties (same cost, same value) keep only the
    lexicographically first name, so the frontier is deterministic for any
    input order.
    """
    ordered = sorted(points, key=lambda p: (p.cost, -p.value, p.name))
    frontier = []
    best_value = float("-inf")
    for point in ordered:
        if point.value > best_value:
            frontier.append(point)
            best_value = point.value
    return tuple(frontier)
