"""Resumable design-space sweeps through the experiment engine and the store.

:func:`run_exploration` is the orchestrator: it generates the
configurations of a :class:`~repro.explore.space.DesignSpace`, expands them
against a set of benchmarks into one
:class:`~repro.sim.plan.ExperimentPlan`, and executes the plan in
*shards* through :func:`repro.core.runner.execute_requests` — each shard
optionally parallel (``jobs``) and each shard's results persisted to the
:class:`~repro.store.ResultStore` the moment it completes.  Interrupting a
sweep therefore loses at most one shard, and re-running it skips every
stored point, which is what makes 100+-configuration explorations cheap to
iterate on.

Benchmarks are registry names (:mod:`repro.workloads.registry`): the
paper's six, the extended ``mediabench-plus`` kernels, or anything the
caller registered — user registrations ride to pool workers automatically
through :func:`~repro.core.runner.execute_requests`.  The benchmark name
is part of each run's store key, so one shared store cleanly holds sweeps
of many workloads.
"""

from __future__ import annotations

import contextlib
import hashlib
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.runner import execute_requests, request_fingerprints
from repro.explore.pareto import ParetoPoint, pareto_frontier
from repro.explore.space import DesignPoint, DesignSpace, generate_configs
from repro.machine.config import MachineConfig
from repro.machine.latency import LatencyModel
from repro.sim.plan import ExperimentPlan, RunRequest
from repro.sim.stats import RunStats
from repro.store import DEFAULT_LEASE_TTL, LeaseManager, ResultStore
from repro.workloads.suite import SuiteParameters, build_suite

__all__ = ["ExplorationResult", "run_exploration", "DEFAULT_BENCHMARKS",
           "BASELINE_CONFIG"]

#: Benchmarks explored by default: one short-vector kernel suite (GSM) and
#: one with larger, reuse-heavy working sets (JPEG) — the two ends of the
#: paper's workload spectrum.  Any registered benchmark name is accepted
#: (``python -m repro bench list`` shows them).
DEFAULT_BENCHMARKS: Tuple[str, ...] = ("gsm_enc", "jpeg_enc")

#: Every speed-up is normalised against the paper's baseline machine.
BASELINE_CONFIG = "vliw-2w"


@dataclass
class ExplorationResult:
    """Runs and derived metrics of one design-space sweep."""

    space: DesignSpace
    benchmarks: Tuple[str, ...]
    points: Tuple[DesignPoint, ...]
    configs: Dict[str, MachineConfig]
    strategies: Tuple[str, ...] = ("baseline",)
    runs: Dict[RunRequest, RunStats] = field(default_factory=dict)
    simulated_runs: int = 0
    stored_runs: int = 0
    completed_shards: int = 0
    total_shards: int = 0

    @property
    def complete(self) -> bool:
        return self.completed_shards == self.total_shards

    def _strategy(self, strategy: Optional[str]) -> str:
        return self.strategies[0] if strategy is None else strategy

    # ------------------------------------------------------------- metrics

    def stats(self, benchmark: str, config_name: str,
              strategy: Optional[str] = None) -> RunStats:
        return self.runs[RunRequest(benchmark, config_name, False,
                                    self._strategy(strategy))]

    def covered_configs(self) -> Tuple[str, ...]:
        """Configurations every benchmark (and the baseline) has runs for.

        A partial sweep — interrupted, or capped with ``max_shards`` — can
        only rank what it measured; frontiers and summaries are restricted
        to this set and say so.  With several strategies a configuration
        counts only when every (benchmark × strategy) run is present.
        """
        def complete(name: str) -> bool:
            return all(RunRequest(benchmark, name, False, strategy)
                       in self.runs
                       for benchmark in self.benchmarks
                       for strategy in self.strategies)

        if not complete(BASELINE_CONFIG):
            return ()
        return tuple(name for name in self.configs if complete(name))

    def speedup(self, benchmark: str, config_name: str,
                strategy: Optional[str] = None) -> float:
        """Whole-application speed-up over the 2-issue VLIW baseline.

        Strategy-internal: the baseline machine is compiled under the same
        strategy, so the metric isolates the hardware axis — compare
        strategies directly via :meth:`stats` cycle counts instead.
        """
        strategy = self._strategy(strategy)
        baseline = self.stats(benchmark, BASELINE_CONFIG, strategy)
        return self.stats(benchmark, config_name,
                          strategy).speedup_over(baseline)

    def geomean_speedup(self, config_name: str,
                        strategy: Optional[str] = None) -> float:
        """Geometric-mean speed-up across the explored benchmarks."""
        product = 1.0
        for benchmark in self.benchmarks:
            product *= self.speedup(benchmark, config_name, strategy)
        return product ** (1.0 / len(self.benchmarks))

    # ------------------------------------------------------------- frontiers

    def _points_for(self, metric: Callable[[str], float]) -> List[ParetoPoint]:
        by_name = {point.name: point for point in self.points}
        return [ParetoPoint(name=name, cost=by_name[name].issue_slots,
                            value=metric(name))
                for name in self.covered_configs()]

    def frontier(self, benchmark: Optional[str] = None,
                 strategy: Optional[str] = None) -> Tuple[ParetoPoint, ...]:
        """Pareto frontier of speed-up vs issue slots.

        ``benchmark=None`` uses the geometric mean over all explored
        benchmarks; otherwise the named benchmark's speed-up.
        ``strategy=None`` uses the sweep's first strategy.
        """
        if benchmark is None:
            metric = lambda name: self.geomean_speedup(name, strategy)  # noqa: E731
        else:
            metric = lambda name: self.speedup(benchmark, name, strategy)  # noqa: E731
        return pareto_frontier(self._points_for(metric))

    # -------------------------------------------------------------- rendering

    def summary(self) -> str:
        """Human-readable Pareto summary of the sweep."""
        covered = self.covered_configs()
        lines = [
            "=== Design-space exploration "
            f"({len(self.configs)} configurations x "
            f"{len(self.benchmarks)} benchmarks"
            + ("" if self.strategies == ("baseline",)
               else f" x {len(self.strategies)} strategies")
            + ") ===",
            f"baseline: {BASELINE_CONFIG}; cost = issue slots "
            "(issue width + vector units x lanes)",
            f"runs: {self.stored_runs} from store, "
            f"{self.simulated_runs} simulated"
            + ("" if self.complete else
               f"  [PARTIAL: {self.completed_shards}/{self.total_shards} shards]"),
        ]
        if len(covered) < len(self.configs):
            lines.append(f"frontiers cover the {len(covered)}/"
                         f"{len(self.configs)} configurations fully swept "
                         "so far (re-run to resume)")
        # one frontier block per strategy; the baseline-only sweep keeps
        # the historical unlabelled output byte-for-byte
        for strategy in self.strategies:
            tag = ("" if self.strategies == ("baseline",)
                   else f" [{strategy}]")
            lines += [
                "",
                "Pareto frontier, geomean speedup over "
                + "+".join(self.benchmarks) + f"{tag}:",
                "  slots  speedup  configuration",
            ]
            for point in self.frontier(strategy=strategy):
                lines.append(
                    f"  {point.cost:5.0f}  {point.value:7.2f}  {point.name}")
            for benchmark in self.benchmarks:
                lines.append("")
                lines.append(f"Pareto frontier, {benchmark}{tag}:")
                lines.append("  slots  speedup  configuration")
                for point in self.frontier(benchmark, strategy):
                    lines.append(
                        f"  {point.cost:5.0f}  {point.value:7.2f}  {point.name}")
        return "\n".join(lines)


def _sweep_scope(benchmarks: Tuple[str, ...],
                 parameters: SuiteParameters,
                 strategies: Tuple[str, ...]) -> str:
    """Short hash scoping lease keys to one (benchmarks × inputs) sweep.

    Plan fingerprints cover request *names* only; two explorations over
    different input sizes build identical plans but must not share lease
    keys (their store fingerprints differ, so neither can serve the
    other's shards).  Dataclass ``repr`` is deterministic, which makes it
    a sufficient scope key.  The strategy tuple is part of the scope for
    the same reason the input parameters are.
    """
    key = repr(("repro-sweep-scope/2", benchmarks, parameters, strategies))
    return hashlib.sha256(key.encode()).hexdigest()[:12]


def run_exploration(space: Optional[DesignSpace] = None,
                    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
                    parameters: Optional[SuiteParameters] = None,
                    store: Optional[ResultStore] = None,
                    jobs: int = 1,
                    engine: Optional[str] = None,
                    latency_model: Optional[LatencyModel] = None,
                    shard_size: int = 40,
                    max_shards: Optional[int] = None,
                    progress: Optional[Callable[[str], None]] = None,
                    coordinate: bool = False,
                    lease_ttl: float = DEFAULT_LEASE_TTL,
                    owner: Optional[str] = None,
                    min_parallel_runs: Optional[int] = None,
                    max_attempts: Optional[int] = None,
                    strategies: Sequence[str] = ("baseline",)
                    ) -> ExplorationResult:
    """Sweep every configuration of ``space`` over ``benchmarks``.

    The sweep runs in shards of ``shard_size`` requests; with a ``store``
    each completed shard is persisted immediately, so an interrupted sweep
    resumes where it stopped.  ``max_shards`` caps how many shards this
    invocation executes (the programmatic form of an interruption — used by
    tests and by incremental CI lanes); the returned result is then marked
    partial.  ``parameters`` defaults to the tiny test inputs, which keep a
    100+-configuration sweep in tens of seconds on one core.

    ``coordinate=True`` (requires a ``store``) turns the sweep
    *cooperative*: any number of independent processes — different
    terminals, CI jobs, hosts sharing a filesystem — can run the same
    exploration against one store, and the lease layer
    (:mod:`repro.store.leases`) divides the shards between them.  Each
    shard is claimed by atomic lease acquisition before it is simulated,
    heartbeat-renewed on a background thread while it runs, and released
    when its results are in the store.  A shard held by a *live* peer is
    deferred and folded in from the store once the peer finishes; a shard
    whose owner crashed (heartbeat older than ``lease_ttl``) is reclaimed,
    so a ``kill -9``'d participant costs the fleet at most one TTL and
    one in-flight shard of work — never a stuck sweep.  Worker-level
    crash recovery (retry/backoff/quarantine) comes from
    :func:`~repro.core.runner.execute_requests` underneath in every mode;
    ``max_attempts`` is forwarded to it when set.

    ``strategies`` adds the scheduler strategy
    (:mod:`repro.compiler.strategies`) as an exploration axis: every
    configuration × benchmark point is swept once per strategy, and the
    summary renders one frontier block per strategy.  Speed-ups stay
    strategy-internal (each strategy's runs are normalised against the
    baseline machine compiled under that same strategy).
    """
    space = space if space is not None else DesignSpace.default()
    parameters = parameters if parameters is not None else SuiteParameters.tiny()
    benchmarks = tuple(benchmarks)
    strategies = tuple(strategies) or ("baseline",)
    points = tuple(space.points())
    configs = generate_configs(space)
    specs = build_suite(parameters, names=list(benchmarks))
    if coordinate and store is None:
        raise ValueError("coordinate=True needs a store: leases live next "
                         "to the result entries they schedule work for")
    manager = (LeaseManager(store.root, owner=owner, ttl=lease_ttl)
               if coordinate else None)
    scope = (_sweep_scope(benchmarks, parameters, strategies)
             if coordinate else "")
    executor_kwargs: Dict[str, object] = {}
    if max_attempts is not None:
        executor_kwargs["max_attempts"] = max_attempts
    if min_parallel_runs is not None:
        executor_kwargs["min_parallel_runs"] = min_parallel_runs

    config_names = (BASELINE_CONFIG,) + tuple(configs)
    # config-major order: every configuration's runs (all benchmarks, all
    # strategies) are consecutive, so each shard completes whole
    # configurations and a partial sweep can already rank what it covered
    plan = ExperimentPlan(RunRequest(benchmark, config, False, strategy)
                          for config in config_names
                          for strategy in strategies
                          for benchmark in benchmarks)
    shards = plan.shards(shard_size)
    result = ExplorationResult(space=space, benchmarks=benchmarks,
                               points=points, configs=configs,
                               strategies=strategies,
                               total_shards=len(shards))

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    queue = deque(enumerate(shards))
    processed = 0
    consecutive_deferrals = 0
    while queue:
        if max_shards is not None and processed >= max_shards:
            break
        index, shard = queue.popleft()
        lease = None
        if manager is not None:
            lease = manager.acquire(f"{scope}-{shard.fingerprint()[:40]}")
            if lease is None:
                # a live peer owns this shard.  If its results are all in
                # the store the peer already finished (or a previous run
                # did); fold them in.  Otherwise requeue and, once every
                # remaining shard is peer-held, poll gently — a crashed
                # peer's lease goes stale within one TTL and is reclaimed
                # on a later pass through the queue.
                fingerprints = request_fingerprints(shard, specs,
                                                   latency_model)
                hits = store.get_many(fingerprints)
                if len(hits) < len(shard):
                    queue.append((index, shard))
                    consecutive_deferrals += 1
                    note(f"shard {index + 1}/{len(shards)}: "
                         "held by a live peer, deferred")
                    if consecutive_deferrals >= len(queue):
                        time.sleep(min(0.05, manager.ttl / 10.0))
                    continue
                runs = {request: hits[request] for request in shard}
                result.runs.update(runs)
                result.stored_runs += len(shard)
                result.completed_shards += 1
                processed += 1
                consecutive_deferrals = 0
                note(f"shard {index + 1}/{len(shards)}: "
                     f"{len(shard)} runs completed by a peer")
                continue
        consecutive_deferrals = 0
        hits_before = store.stats.hits if store is not None else 0
        heartbeat = (manager.heartbeat(lease) if lease is not None
                     else contextlib.nullcontext())
        try:
            with heartbeat:
                runs = execute_requests(shard, specs, jobs=jobs,
                                        latency_model=latency_model,
                                        engine=engine, store=store,
                                        extra_configs=configs,
                                        **executor_kwargs)
        finally:
            if lease is not None:
                manager.release(lease)
        stored = (store.stats.hits - hits_before) if store is not None else 0
        result.runs.update(runs)
        result.stored_runs += stored
        result.simulated_runs += len(shard) - stored
        result.completed_shards += 1
        processed += 1
        note(f"shard {index + 1}/{len(shards)}: "
             f"{len(shard)} runs ({stored} from store)")
    return result
