"""Parameterised machine-configuration generation.

The paper evaluates ten fixed configurations (Table 2).  This module opens
that grid: a :class:`DesignSpace` is a cross product over the axes the
paper holds constant — issue width, vector units, lanes per unit, vector
cache port width and bank count, L2 capacity — and every point materialises
as a frozen :class:`~repro.machine.config.MachineConfig` with a canonical,
content-describing name (``dse-2w-vu2-ln4-pw4-b2-l2s256k``).  Generated
configurations are published through
:func:`repro.machine.config.register_config` so the experiment engine, the
result store and worker processes resolve them exactly like the paper grid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Tuple

from repro.machine.config import (
    ArchitectureFamily,
    MachineConfig,
    MemoryConfig,
    register_config,
)

__all__ = ["DesignPoint", "DesignSpace", "point_config", "generate_configs"]


@dataclass(frozen=True, order=True)
class DesignPoint:
    """One coordinate of the design space (all axes explicit)."""

    issue_width: int
    vector_units: int
    vector_lanes: int
    port_words: int
    l2_banks: int
    l2_size: int

    @property
    def name(self) -> str:
        """Canonical configuration name encoding every axis value."""
        return (f"dse-{self.issue_width}w-vu{self.vector_units}"
                f"-ln{self.vector_lanes}-pw{self.port_words}"
                f"-b{self.l2_banks}-l2s{self.l2_size // 1024}k")

    @property
    def issue_slots(self) -> int:
        """Hardware-cost proxy used by the Pareto summaries.

        Scalar issue slots plus the vector lane slots a configuration can
        sustain per cycle — the quantity the paper trades against when it
        positions short vectors as an alternative to wider issue.
        """
        return self.issue_width + self.vector_units * self.vector_lanes


@dataclass(frozen=True)
class DesignSpace:
    """A cross product of configuration axes around the paper's vector machines.

    The defaults span 108 configurations: the paper's two issue widths, one
    to four vector units of two to eight lanes, a 2/4/8-word vector-cache
    port and two or four banks.  ``DesignSpace.smoke()`` is the eight-point
    variant the tests and examples use.
    """

    issue_widths: Tuple[int, ...] = (2, 4)
    vector_units: Tuple[int, ...] = (1, 2, 4)
    vector_lanes: Tuple[int, ...] = (2, 4, 8)
    port_words: Tuple[int, ...] = (2, 4, 8)
    l2_banks: Tuple[int, ...] = (2, 4)
    l2_sizes: Tuple[int, ...] = (256 * 1024,)

    @staticmethod
    def default() -> "DesignSpace":
        return DesignSpace()

    @staticmethod
    def smoke() -> "DesignSpace":
        """A deliberately small space for tests, examples and quick looks."""
        return DesignSpace(issue_widths=(2,), vector_units=(1, 2),
                           vector_lanes=(4,), port_words=(2, 4),
                           l2_banks=(2, 4), l2_sizes=(256 * 1024,))

    def __len__(self) -> int:
        return (len(self.issue_widths) * len(self.vector_units)
                * len(self.vector_lanes) * len(self.port_words)
                * len(self.l2_banks) * len(self.l2_sizes))

    def points(self) -> Iterator[DesignPoint]:
        """Every coordinate, in deterministic lexicographic axis order."""
        for iw, vu, ln, pw, banks, l2 in itertools.product(
                self.issue_widths, self.vector_units, self.vector_lanes,
                self.port_words, self.l2_banks, self.l2_sizes):
            yield DesignPoint(issue_width=iw, vector_units=vu, vector_lanes=ln,
                              port_words=pw, l2_banks=banks, l2_size=l2)


def point_config(point: DesignPoint) -> MachineConfig:
    """Materialise one design point as a machine configuration.

    Non-swept resources follow the paper's vector machines at the same
    issue width (register files, L1 ports, the single wide L2 port), so a
    point differs from Table 2 only along the explored axes.
    """
    wide = point.issue_width >= 4
    memory = replace(MemoryConfig(), l2_size=point.l2_size,
                     l2_banks=point.l2_banks)
    return MachineConfig(
        name=point.name,
        family=ArchitectureFamily.VECTOR2,
        issue_width=point.issue_width,
        int_units=point.issue_width,
        vector_units=point.vector_units,
        vector_lanes=point.vector_lanes,
        l1_ports=2 if wide else 1,
        l2_ports=1,
        l2_port_words=point.port_words,
        int_regs=96 if wide else 64,
        vector_regs=32 if wide else 20,
        vector_reg_words=16,
        accum_regs=6 if wide else 4,
        memory=memory,
    )


def generate_configs(space: DesignSpace,
                     register: bool = True) -> Dict[str, MachineConfig]:
    """All configurations of ``space``, keyed by name, in generation order.

    ``register`` (default) publishes every configuration to the
    process-wide registry so plain ``get_config`` — and therefore the
    experiment engine and ``VectorMicroSimdVliwMachine.from_name`` —
    resolves them.
    """
    configs: Dict[str, MachineConfig] = {}
    for point in space.points():
        config = point_config(point)
        if register:
            register_config(config, overwrite=True)
        configs[config.name] = config
    return configs
