"""Long-term prediction (GSM encoder vector region R1, decoder region R1).

The GSM encoder searches, for each 40-sample sub-segment, the lag in
[40, 120] of the previously reconstructed short-term residual that maximises
the cross-correlation with the current sub-segment; the lag and a quantised
gain form the LTP parameters.  The decoder's long-term filtering
reconstructs the residual by adding the gain-scaled delayed signal.

Three functional flavours of the lag search are provided (reference, µSIMD
``pmaddwd`` based and vector packed-accumulator based); all return the same
lag and correlation values.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.isa import packed, vectorops

__all__ = [
    "LTP_MIN_LAG",
    "LTP_MAX_LAG",
    "SUBSEGMENT_SAMPLES",
    "ltp_parameters_reference",
    "ltp_parameters_usimd",
    "ltp_parameters_vector",
    "long_term_filter_reference",
]

#: GSM 06.10 long-term predictor lag range (in samples).
LTP_MIN_LAG = 40
LTP_MAX_LAG = 120
#: Samples per sub-segment (a 160-sample frame has four of them).
SUBSEGMENT_SAMPLES = 40


def _cross_correlation_reference(current: np.ndarray, history: np.ndarray,
                                 lag: int) -> int:
    """Correlation of the sub-segment with the history delayed by ``lag``."""
    window = history[history.shape[0] - lag:history.shape[0] - lag + current.shape[0]]
    return int(np.dot(current.astype(np.int64), window.astype(np.int64)))


def ltp_parameters_reference(current: np.ndarray, history: np.ndarray) -> Tuple[int, int]:
    """Reference LTP lag search: returns ``(best_lag, best_correlation)``."""
    current = np.asarray(current, dtype=np.int64)
    history = np.asarray(history, dtype=np.int64)
    if current.shape[0] != SUBSEGMENT_SAMPLES:
        raise ValueError(f"sub-segment must have {SUBSEGMENT_SAMPLES} samples")
    if history.shape[0] < LTP_MAX_LAG:
        raise ValueError(f"history must hold at least {LTP_MAX_LAG} samples")
    best_lag, best_value = LTP_MIN_LAG, None
    for lag in range(LTP_MIN_LAG, LTP_MAX_LAG + 1):
        value = _cross_correlation_reference(current, history, lag)
        if best_value is None or value > best_value:
            best_lag, best_value = lag, value
    return best_lag, int(best_value)


def _dot_usimd(a: np.ndarray, b: np.ndarray) -> int:
    """Packed-word dot product via ``pmaddwd`` (exactly like the MMX kernel)."""
    a = np.asarray(a, dtype=np.int16)
    b = np.asarray(b, dtype=np.int16)
    a_words = packed.to_packed(a, packed.LANES_16)
    b_words = packed.to_packed(b, packed.LANES_16)
    total = 0
    for index in range(a_words.shape[0]):
        total += int(packed.pmaddwd(a_words[index], b_words[index]).astype(np.int64).sum())
    return total


def ltp_parameters_usimd(current: np.ndarray, history: np.ndarray) -> Tuple[int, int]:
    """µSIMD LTP lag search (per-lag packed dot product)."""
    current = np.asarray(current, dtype=np.int16)
    history = np.asarray(history, dtype=np.int16)
    best_lag, best_value = LTP_MIN_LAG, None
    for lag in range(LTP_MIN_LAG, LTP_MAX_LAG + 1):
        window = history[history.shape[0] - lag:history.shape[0] - lag + current.shape[0]]
        value = _dot_usimd(current, window)
        if best_value is None or value > best_value:
            best_lag, best_value = lag, value
    return best_lag, int(best_value)


def _dot_vector(a: np.ndarray, b: np.ndarray, max_vl: int = 16) -> int:
    """Vector dot product with a packed accumulator and a final reduction."""
    a_words = np.asarray(a, dtype=np.int64).reshape(-1, packed.LANES_16)
    b_words = np.asarray(b, dtype=np.int64).reshape(-1, packed.LANES_16)
    acc = vectorops.accumulator_zero(packed.LANES_16)
    for start in range(0, a_words.shape[0], max_vl):
        stop = min(start + max_vl, a_words.shape[0])
        acc = vectorops.vmac_accumulate(acc, a_words[start:stop], b_words[start:stop])
    return vectorops.accumulator_sum(acc)


def ltp_parameters_vector(current: np.ndarray, history: np.ndarray) -> Tuple[int, int]:
    """Vector-µSIMD LTP lag search (per-lag vector multiply-accumulate)."""
    current = np.asarray(current, dtype=np.int16)
    history = np.asarray(history, dtype=np.int16)
    best_lag, best_value = LTP_MIN_LAG, None
    for lag in range(LTP_MIN_LAG, LTP_MAX_LAG + 1):
        window = history[history.shape[0] - lag:history.shape[0] - lag + current.shape[0]]
        value = _dot_vector(current, window)
        if best_value is None or value > best_value:
            best_lag, best_value = lag, value
    return best_lag, int(best_value)


def long_term_filter_reference(residual: np.ndarray, history: np.ndarray,
                               lag: int, gain_q6: int) -> np.ndarray:
    """Decoder long-term filtering: residual + (gain × delayed history) >> 6.

    ``gain_q6`` is the quantised gain in Q6 fixed point (the GSM tables use
    values 0..55 roughly covering gains 0..0.86).
    """
    residual = np.asarray(residual, dtype=np.int64)
    history = np.asarray(history, dtype=np.int64)
    window = history[history.shape[0] - lag:history.shape[0] - lag + residual.shape[0]]
    reconstructed = residual + ((gain_q6 * window) >> 6)
    return np.clip(reconstructed, -32768, 32767).astype(np.int16)
