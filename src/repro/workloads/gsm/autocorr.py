"""Autocorrelation of the GSM LPC analysis (encoder vector region R2).

The GSM 06.10 encoder computes nine autocorrelation lags of each 160-sample
frame before the Schur recursion.  The kernel is a set of dot products —
ideal packed-multiply-accumulate material — and appears in three flavours:

* :func:`autocorrelation_reference` — NumPy 64-bit integer dot products;
* :func:`autocorrelation_usimd` — ``pmaddwd`` over packed words of four
  16-bit samples, accumulated in 32/64-bit scalars;
* :func:`autocorrelation_vector` — the same multiply-accumulate performed
  with packed accumulators over whole vector registers.

All three produce identical values, which the tests assert.
"""

from __future__ import annotations

import numpy as np

from repro.isa import packed, vectorops

__all__ = ["autocorrelation_reference", "autocorrelation_usimd",
           "autocorrelation_vector", "GSM_FRAME_SAMPLES", "GSM_LAGS"]

#: Samples per GSM full-rate frame.
GSM_FRAME_SAMPLES = 160
#: Autocorrelation lags computed by the LPC analysis (k = 0..8).
GSM_LAGS = 9


def autocorrelation_reference(frame: np.ndarray, lags: int = GSM_LAGS) -> np.ndarray:
    """Reference autocorrelation ``acf[k] = Σ s[i] * s[i-k]`` (int64)."""
    frame = np.asarray(frame, dtype=np.int64)
    if frame.ndim != 1:
        raise ValueError("expected a 1-D frame of samples")
    out = np.zeros(lags, dtype=np.int64)
    for k in range(lags):
        out[k] = int(np.dot(frame[k:], frame[:frame.shape[0] - k]))
    return out


def autocorrelation_usimd(frame: np.ndarray, lags: int = GSM_LAGS) -> np.ndarray:
    """µSIMD autocorrelation using ``pmaddwd`` on packed words of four samples.

    For each lag the two shifted sequences are aligned, padded to a multiple
    of four samples and multiplied-and-added pairwise, exactly the way the
    hand written MMX kernel walks the frame.
    """
    frame = np.asarray(frame, dtype=np.int16)
    out = np.zeros(lags, dtype=np.int64)
    for k in range(lags):
        a = frame[k:].astype(np.int16)
        b = frame[:frame.shape[0] - k].astype(np.int16)
        pad = (-a.shape[0]) % packed.LANES_16
        if pad:
            a = np.concatenate([a, np.zeros(pad, dtype=np.int16)])
            b = np.concatenate([b, np.zeros(pad, dtype=np.int16)])
        total = 0
        a_words = packed.to_packed(a, packed.LANES_16)
        b_words = packed.to_packed(b, packed.LANES_16)
        for index in range(a_words.shape[0]):
            pair_sums = packed.pmaddwd(a_words[index], b_words[index])
            total += int(pair_sums.astype(np.int64).sum())
        out[k] = total
    return out


def autocorrelation_vector(frame: np.ndarray, lags: int = GSM_LAGS,
                           max_vl: int = 16) -> np.ndarray:
    """Vector-µSIMD autocorrelation with packed accumulators.

    Each vector multiply-accumulate covers up to ``max_vl`` packed words (64
    samples); the packed accumulator keeps four partial sums which the final
    ``SUM`` operation reduces, matching the hardware's reduction path.
    """
    frame = np.asarray(frame, dtype=np.int16)
    out = np.zeros(lags, dtype=np.int64)
    for k in range(lags):
        a = frame[k:].astype(np.int64)
        b = frame[:frame.shape[0] - k].astype(np.int64)
        pad = (-a.shape[0]) % packed.LANES_16
        if pad:
            a = np.concatenate([a, np.zeros(pad, dtype=np.int64)])
            b = np.concatenate([b, np.zeros(pad, dtype=np.int64)])
        a_words = a.reshape(-1, packed.LANES_16)
        b_words = b.reshape(-1, packed.LANES_16)
        acc = vectorops.accumulator_zero(packed.LANES_16)
        for start in range(0, a_words.shape[0], max_vl):
            stop = min(start + max_vl, a_words.shape[0])
            acc = vectorops.vmac_accumulate(acc, a_words[start:stop], b_words[start:stop])
        out[k] = vectorops.accumulator_sum(acc)
    return out
