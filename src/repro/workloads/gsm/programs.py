"""Kernel programs (timing models) for the GSM encoder and decoder.

Region structure (Table 1 of the paper):

GSM encoder
    * R1 — LTP parameter computation: for each of the four 40-sample
      sub-segments, a cross-correlation against the reconstructed residual
      is maximised over the 81 lags in [40, 120]
    * R2 — autocorrelation: nine lags over the 160-sample frame
    * R0 — everything else: pre-processing, the Schur recursion of the LPC
      analysis, reflection-coefficient quantisation, the weighting filter,
      RPE grid selection and bit packing.  These parts are dominated by
      first-order recurrences and table work, which is why they do not
      scale with issue width.

GSM decoder
    * R1 — long-term filtering (the only vector region; well under 1 % of
      the execution time)
    * R0 — RPE decoding, the short-term synthesis (lattice) filter — a
      serial recurrence over every sample — and post-processing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.builder import KernelBuilder
from repro.compiler.ir import ISAFlavor, KernelProgram
from repro.isa.operations import Opcode
from repro.memory.layout import AddressSpace
from repro.workloads import common
from repro.workloads.gsm.autocorr import GSM_FRAME_SAMPLES, GSM_LAGS
from repro.workloads.gsm.ltp import LTP_MAX_LAG, LTP_MIN_LAG, SUBSEGMENT_SAMPLES
from repro.workloads.registry import register_workload

__all__ = ["GsmParameters", "build_gsm_enc_program", "build_gsm_dec_program"]


@dataclass(frozen=True)
class GsmParameters:
    """Input geometry of the GSM benchmarks."""

    #: number of 160-sample speech frames processed
    frames: int = 4
    #: lag sub-sampling of the LTP search (1 = all 81 lags; 3 keeps every third)
    lag_step: int = 3
    #: extra scalar work per sample in the LPC/weighting part
    scalar_work: int = 22
    #: taps of the short-term analysis/synthesis lattice filters
    synthesis_taps: int = 8

    def __post_init__(self) -> None:
        if self.frames < 1:
            raise ValueError("need at least one speech frame")
        if self.lag_step < 1:
            raise ValueError("lag_step must be >= 1")

    @property
    def subsegments(self) -> int:
        return 4

    @property
    def lags_searched(self) -> int:
        return len(range(LTP_MIN_LAG, LTP_MAX_LAG + 1, self.lag_step))


# per-MAC scalar work of a dot-product step (load, multiply, accumulate)
_MAC_SCALAR_MIX = ((Opcode.MUL, 1), (Opcode.ADD, 2))
_SCHUR_WORK_MIX = ((Opcode.MUL, 2), (Opcode.ADD, 3), (Opcode.SHR, 1), (Opcode.CMP, 1))
_RPE_WORK_MIX = ((Opcode.ADD, 4), (Opcode.CMP, 2), (Opcode.SHR, 2))


#: The fixed-length dot product all three GSM correlation kernels reduce
#: to — now the shared :func:`repro.workloads.common.emit_dot_product`
#: (the FIR filter bank of the extended suite uses the same emitter).
_emit_dot_product = common.emit_dot_product


@register_workload("gsm_enc", family="gsm", params=GsmParameters,
                   tiny=GsmParameters(frames=1),
                   description="GSM encoder: LTP parameters, autocorrelation",
                   tags=("mediabench", "mediabench-plus", "speech"))
def build_gsm_enc_program(flavor: ISAFlavor,
                          params: GsmParameters = GsmParameters()) -> KernelProgram:
    """GSM full-rate encoder program in the requested ISA flavour."""
    space = AddressSpace()
    samples = space.allocate("samples", (params.frames * GSM_FRAME_SAMPLES,),
                             element_bytes=2)
    residual = space.allocate("residual", (params.frames * GSM_FRAME_SAMPLES,),
                              element_bytes=2)
    history = space.allocate("history", (LTP_MAX_LAG + SUBSEGMENT_SAMPLES,),
                             element_bytes=2)
    acf = space.allocate("acf", (GSM_LAGS,), element_bytes=8)
    reflection = space.allocate("reflection", (8,), element_bytes=2)
    coded = space.allocate("coded", (params.frames * 76,), element_bytes=1)
    tables = space.allocate("quant_tables", (256,), element_bytes=2)

    builder = KernelBuilder("gsm_enc", flavor, address_space=space)
    frame_bytes = GSM_FRAME_SAMPLES * 2

    with builder.loop(params.frames, name="frame") as frame:
        frame_base = builder.addr(samples, (frame, frame_bytes))
        residual_base = builder.addr(residual, (frame, frame_bytes))

        # R2: autocorrelation of the frame (nine lags)
        with builder.region("R2", "Autocorrelation", vectorizable=True):
            with builder.loop(GSM_LAGS, name="lag") as lag:
                _emit_dot_product(builder, samples, frame_base.with_term(lag, 2),
                                  samples, frame_base, GSM_FRAME_SAMPLES, label="acf")
                builder.store(builder.addr(acf, (lag, 8)),
                              builder.iop(Opcode.MOV, comment="acf value"),
                              comment="store acf[k]")

        # R0 (part 1): pre-processing (offset compensation + pre-emphasis),
        # the Schur recursion and the short-term analysis lattice filter
        with builder.region("R0", "LPC analysis, weighting, RPE, packing",
                            vectorizable=False):
            common.emit_recursive_filter(builder, samples, residual,
                                         samples=GSM_FRAME_SAMPLES, taps=2,
                                         work_mix=((Opcode.ADD, params.scalar_work // 2),),
                                         label="preprocess")
            common.emit_recursive_filter(builder, samples, residual,
                                         samples=GSM_FRAME_SAMPLES, taps=4,
                                         work_mix=_SCHUR_WORK_MIX
                                         + ((Opcode.ADD, params.scalar_work),),
                                         label="lpc")
            common.emit_recursive_filter(builder, samples, residual,
                                         samples=GSM_FRAME_SAMPLES,
                                         taps=params.synthesis_taps,
                                         work_mix=((Opcode.ADD, params.scalar_work),),
                                         label="st_analysis")
            common.emit_recursive_filter(builder, residual, residual,
                                         samples=GSM_FRAME_SAMPLES,
                                         taps=params.synthesis_taps // 2,
                                         work_mix=((Opcode.ADD, params.scalar_work // 2),),
                                         label="weighting")

        # R1: LTP parameter search per sub-segment
        with builder.region("R1", "LTP parameters", vectorizable=True):
            with builder.loop(params.subsegments, name="sub") as sub:
                with builder.loop(params.lags_searched, name="ltp_lag") as lag:
                    _emit_dot_product(
                        builder, residual,
                        residual_base.with_term(sub, SUBSEGMENT_SAMPLES * 2),
                        history, builder.addr(history, (lag, 2 * params.lag_step)),
                        SUBSEGMENT_SAMPLES, label="ltp")
                    builder.iop(Opcode.CMP, comment="corr > best?")
                    builder.iop(Opcode.MOV, comment="update best lag")

        # R0 (part 2): RPE grid selection, APCM quantisation and bit packing
        with builder.region("R0", "LPC analysis, weighting, RPE, packing",
                            vectorizable=False):
            common.emit_recursive_filter(builder, residual, residual,
                                         samples=GSM_FRAME_SAMPLES, taps=3,
                                         work_mix=_RPE_WORK_MIX
                                         + ((Opcode.ADD, params.scalar_work // 2),),
                                         label="rpe_grid")
            common.emit_bitstream_encoder(builder, residual, tables, coded,
                                          count=76 + 4 * 13,
                                          work_mix=_RPE_WORK_MIX
                                          + ((Opcode.ADD, params.scalar_work),),
                                          lookups=2, label="rpe")
    return builder.program()


@register_workload("gsm_dec", family="gsm", params=GsmParameters,
                   tiny=GsmParameters(frames=1),
                   description="GSM decoder: long-term filtering",
                   tags=("mediabench", "mediabench-plus", "speech"))
def build_gsm_dec_program(flavor: ISAFlavor,
                          params: GsmParameters = GsmParameters()) -> KernelProgram:
    """GSM full-rate decoder program in the requested ISA flavour."""
    space = AddressSpace()
    coded = space.allocate("coded", (params.frames * 76,), element_bytes=1)
    residual = space.allocate("residual", (params.frames * GSM_FRAME_SAMPLES,),
                              element_bytes=2)
    history = space.allocate("history", (LTP_MAX_LAG + SUBSEGMENT_SAMPLES,),
                             element_bytes=2)
    speech = space.allocate("speech", (params.frames * GSM_FRAME_SAMPLES,),
                            element_bytes=2)
    tables = space.allocate("decode_tables", (256,), element_bytes=2)

    builder = KernelBuilder("gsm_dec", flavor, address_space=space)
    frame_bytes = GSM_FRAME_SAMPLES * 2

    with builder.loop(params.frames, name="frame") as frame:
        residual_base = builder.addr(residual, (frame, frame_bytes))
        speech_base = builder.addr(speech, (frame, frame_bytes))

        # R0 (part 1): parameter unpacking and RPE decoding
        with builder.region("R0", "RPE decoding and short-term synthesis",
                            vectorizable=False):
            common.emit_table_decoder(builder, coded, tables, residual, count=76,
                                      work_mix=_RPE_WORK_MIX
                                      + ((Opcode.ADD, params.scalar_work),),
                                      lookups=2, label="unpack")

        # R1: long-term filtering per sub-segment (the only vector region)
        with builder.region("R1", "Long term filtering", vectorizable=True):
            with builder.loop(params.subsegments, name="sub") as sub:
                sub_addr = residual_base.with_term(sub, SUBSEGMENT_SAMPLES * 2)
                hist_addr = builder.addr(history)
                words = SUBSEGMENT_SAMPLES // 4
                if flavor is ISAFlavor.VECTOR:
                    vl = min(16, words)
                    builder.setvl(vl)
                    ve = builder.vload(sub_addr, vl=vl, stride_bytes=8,
                                       comment="vload residual")
                    vh = builder.vload(hist_addr, vl=vl, stride_bytes=8,
                                       comment="vload history")
                    scaled = builder.vop(Opcode.VMULHW, vh, vl=vl, subwords=4,
                                         comment="gain * history")
                    summed = builder.vop(Opcode.VADDW, ve, scaled, vl=vl, subwords=4,
                                         comment="residual + ltp")
                    builder.vstore(sub_addr, summed, vl=vl, stride_bytes=8,
                                   comment="vstore reconstructed")
                elif flavor is ISAFlavor.USIMD:
                    with builder.loop(words, name="ltw") as word:
                        me = builder.mload(sub_addr.with_term(word, 8),
                                           comment="mload residual")
                        mh = builder.mload(hist_addr.with_term(word, 8),
                                           comment="mload history")
                        scaled = builder.simd(Opcode.PMULHW, mh, subwords=4,
                                              comment="gain * history")
                        summed = builder.simd(Opcode.PADDW, me, scaled, subwords=4,
                                              comment="residual + ltp")
                        builder.mstore(sub_addr.with_term(word, 8), summed,
                                       comment="mstore reconstructed")
                else:
                    with builder.loop(SUBSEGMENT_SAMPLES, name="ltn") as n:
                        value = builder.load(sub_addr.with_term(n, 2),
                                             comment="load residual")
                        hist = builder.load(hist_addr.with_term(n, 2),
                                            comment="load history")
                        prod = builder.iop(Opcode.MUL, srcs=(hist,), comment="gain mul")
                        total = builder.iop(Opcode.ADD, srcs=(value, prod),
                                            comment="residual + ltp")
                        builder.store(sub_addr.with_term(n, 2), total,
                                      comment="store reconstructed")

        # R0 (part 2): short-term synthesis lattice filter, de-emphasis,
        # upscaling and truncation of the output samples
        with builder.region("R0", "RPE decoding and short-term synthesis",
                            vectorizable=False):
            common.emit_recursive_filter(builder, residual, speech,
                                         samples=GSM_FRAME_SAMPLES,
                                         taps=params.synthesis_taps,
                                         work_mix=((Opcode.ADD, params.scalar_work),),
                                         label="synth")
            common.emit_recursive_filter(builder, speech, speech,
                                         samples=GSM_FRAME_SAMPLES, taps=3,
                                         work_mix=((Opcode.ADD, params.scalar_work),),
                                         label="postprocess")
    return builder.program()
