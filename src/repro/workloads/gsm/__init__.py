"""GSM 06.10 full-rate speech codec workloads.

Vector regions (Table 1 of the paper):

* **encoder** — LTP parameter computation (the long-term-prediction lag
  search, a cross-correlation maximisation) and the autocorrelation of the
  LPC analysis (18.7 % of the 2-issue µSIMD execution time);
* **decoder** — long-term filtering only (0.9 %; essentially the whole
  decoder is scalar, dominated by the short-term synthesis filter's
  recurrences).

Functional implementations of the autocorrelation and the LTP lag search
exist in scalar/µSIMD/Vector-µSIMD form and are checked for exact agreement.
"""

from repro.workloads.gsm import autocorr, ltp, programs

__all__ = ["autocorr", "ltp", "programs"]
