"""Deterministic synthetic media inputs.

The original evaluation uses the UCLA Mediabench inputs (a photographic
test image, a short video sequence and recorded speech).  Those files are
not redistributable here, so the workloads run on synthetic inputs with
similar second-order statistics:

* *images*: smooth low-frequency illumination plus texture noise, which
  gives DCT coefficient distributions and motion-estimation behaviour in the
  same regime as natural images (energy concentrated in low frequencies);
* *video*: the synthetic image translated by a few pixels per frame with a
  little independent noise, so motion estimation finds good matches at
  non-trivial displacements;
* *speech*: a sum of a few slowly drifting harmonics plus noise, which gives
  autocorrelation sequences with the strong short-lag structure the GSM
  coder exploits.

All generators are deterministic in their ``seed`` so tests and benchmarks
are reproducible.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["synthetic_image", "synthetic_video", "synthetic_speech", "synthetic_blocks"]


def synthetic_image(width: int, height: int, channels: int = 3,
                    seed: int = 2005) -> np.ndarray:
    """Synthetic natural-statistics image of shape ``(height, width, channels)``.

    Values are ``uint8``.  Each channel combines two low-frequency gradients
    (illumination), a mid-frequency sinusoidal texture and white noise.
    """
    if width <= 0 or height <= 0 or channels <= 0:
        raise ValueError("image dimensions must be positive")
    rng = np.random.default_rng(seed)
    y = np.linspace(0.0, 1.0, height)[:, None]
    x = np.linspace(0.0, 1.0, width)[None, :]
    planes = []
    for channel in range(channels):
        phase = 2.0 * np.pi * (channel + 1) / (channels + 1)
        base = (96.0
                + 64.0 * np.sin(2.0 * np.pi * (x + 0.3 * channel) + phase)
                + 48.0 * np.cos(2.0 * np.pi * (y - 0.2 * channel))
                + 24.0 * np.sin(10.0 * np.pi * x) * np.cos(8.0 * np.pi * y))
        noise = rng.normal(scale=6.0, size=(height, width))
        planes.append(np.clip(base + noise + 64.0, 0, 255))
    return np.stack(planes, axis=-1).astype(np.uint8)


def synthetic_video(frames: int, width: int, height: int,
                    dx: int = 2, dy: int = 1, seed: int = 2005) -> np.ndarray:
    """Synthetic luminance video of shape ``(frames, height, width)``.

    Frame ``t`` is frame 0 translated by ``(t*dy, t*dx)`` pixels (with wrap
    around) plus a small amount of independent noise, so block motion search
    finds strong matches at the true displacement.
    """
    if frames <= 0:
        raise ValueError("need at least one frame")
    rng = np.random.default_rng(seed)
    base = synthetic_image(width, height, channels=1, seed=seed)[:, :, 0].astype(np.int16)
    sequence = np.empty((frames, height, width), dtype=np.uint8)
    for t in range(frames):
        shifted = np.roll(np.roll(base, t * dy, axis=0), t * dx, axis=1)
        noise = rng.normal(scale=2.0, size=(height, width))
        sequence[t] = np.clip(shifted + noise, 0, 255).astype(np.uint8)
    return sequence


def synthetic_speech(samples: int, seed: int = 2005) -> np.ndarray:
    """Synthetic speech-like signal of ``samples`` 16-bit values.

    A few harmonics of a slowly drifting pitch plus noise, scaled well inside
    the 13-bit range the GSM codec works with.
    """
    if samples <= 0:
        raise ValueError("need at least one sample")
    rng = np.random.default_rng(seed)
    t = np.arange(samples, dtype=np.float64)
    pitch = 110.0 + 10.0 * np.sin(2.0 * np.pi * t / 4000.0)
    phase = np.cumsum(2.0 * np.pi * pitch / 8000.0)
    signal = (2200.0 * np.sin(phase)
              + 900.0 * np.sin(2.0 * phase)
              + 350.0 * np.sin(3.0 * phase)
              + rng.normal(scale=120.0, size=samples))
    return np.clip(signal, -4095, 4095).astype(np.int16)


def synthetic_blocks(count: int, block: Tuple[int, int] = (8, 8),
                     seed: int = 2005) -> np.ndarray:
    """A batch of ``count`` uint8 blocks (used by kernel-level unit tests)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(count,) + tuple(block), dtype=np.uint8)
