"""Kernel programs (timing models) for the JPEG encoder and decoder.

Each builder returns a :class:`~repro.compiler.ir.KernelProgram` for one ISA
flavour.  Region structure follows Table 1 of the paper:

JPEG encoder
    * R1 — RGB→YCbCr colour conversion (streaming, stride-one)
    * R2 — forward DCT (8×8 blocks, 16-bit arithmetic)
    * R3 — quantisation (streaming, 16-bit)
    * R0 — zig-zag + Huffman encoding (bit-buffer recurrence, table look-ups)

JPEG decoder
    * R1 — YCbCr→RGB colour conversion
    * R2 — h2v2 chroma up-sampling
    * R0 — Huffman decoding (serial table look-ups) and the inverse DCT,
      which the paper keeps in the scalar part for this benchmark

The operation mixes are derived from the classic scalar and MMX
implementations (libjpeg ``jpeg_fdct_islow``, Intel application-note colour
conversion and quantisation loops); their absolute counts are approximate
but the ratios between the scalar, µSIMD and vector versions — which drive
every figure of the paper — follow directly from the data widths
(8/16-bit), the packed word width (8 or 4 elements) and the vector length.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.builder import KernelBuilder
from repro.compiler.ir import ISAFlavor, KernelProgram
from repro.isa.operations import Opcode
from repro.memory.layout import AddressSpace
from repro.workloads import common
from repro.workloads.registry import register_workload

__all__ = ["JpegParameters", "build_jpeg_enc_program", "build_jpeg_dec_program"]


@dataclass(frozen=True)
class JpegParameters:
    """Input geometry of the JPEG benchmarks (reduced Mediabench stand-in)."""

    width: int = 64
    height: int = 64
    #: entropy-coded symbols per 8×8 block (non-zero coefficients + EOB)
    symbols_per_block: int = 32
    #: extra scalar bookkeeping operations per entropy symbol (encoder side:
    #: magnitude/size computation, DC prediction, marker handling)
    scalar_work: int = 36
    #: extra scalar bookkeeping operations per entropy symbol (decoder side)
    decoder_scalar_work: int = 8

    def __post_init__(self) -> None:
        if self.width % 16 or self.height % 16:
            raise ValueError("JPEG dimensions must be multiples of 16 "
                             "(8x8 blocks plus 2x2 chroma sub-sampling)")

    @property
    def luma_blocks(self) -> int:
        return (self.width // 8) * (self.height // 8)

    @property
    def chroma_blocks(self) -> int:
        return 2 * (self.width // 16) * (self.height // 16)

    @property
    def total_blocks(self) -> int:
        return self.luma_blocks + self.chroma_blocks


# ---------------------------------------------------------------------------
# operation mixes (per element / packed word / vector operation)
# ---------------------------------------------------------------------------

# scalar colour conversion: 3 multiplies, 2 adds and a shift per output channel
_COLOR_SCALAR_MIX = ((Opcode.MUL, 9), (Opcode.ADD, 8), (Opcode.SHR, 3))
# µSIMD colour conversion per packed word of 8 pixels (unpack, fixed-point
# multiply-accumulate per channel, pack)
_COLOR_PACKED_MIX = ((Opcode.UNPACK, 6), (Opcode.PMULLW, 9), (Opcode.PMULHW, 3),
                     (Opcode.PADDW, 8), (Opcode.PSHIFT, 3), (Opcode.PACK, 3))
_COLOR_VECTOR_MIX = ((Opcode.VUNPACK, 6), (Opcode.VMULLW, 9), (Opcode.VMULHW, 3),
                     (Opcode.VADDW, 8), (Opcode.VSHIFT, 3), (Opcode.VPACK, 3))

# 8-point DCT pass (LLM): ~11 multiplies, ~29 add/sub, descaling shifts
_DCT_SCALAR_MIX = ((Opcode.MUL, 11), (Opcode.ADD, 18), (Opcode.SUB, 11), (Opcode.SHR, 8))
# per half-block pass of a hand written MMX DCT
_DCT_PACKED_MIX = ((Opcode.PMULLW, 12), (Opcode.PMULHW, 12), (Opcode.PADDW, 20),
                   (Opcode.PSUBW, 12), (Opcode.PSHIFT, 6), (Opcode.UNPACK, 4),
                   (Opcode.PACK, 4))
# per block pass of the vector version (each op covers VL=8 packed words)
_DCT_VECTOR_MIX = ((Opcode.VMULLW, 6), (Opcode.VMULHW, 6), (Opcode.VADDW, 8),
                   (Opcode.VSUBW, 4), (Opcode.VSHIFT, 3), (Opcode.VUNPACK, 2),
                   (Opcode.VPACK, 2))

# quantisation: reciprocal multiply, round, shift, sign fix-up
_QUANT_SCALAR_MIX = ((Opcode.MUL, 1), (Opcode.ADD, 2), (Opcode.SHR, 2), (Opcode.CMP, 1))
_QUANT_PACKED_MIX = ((Opcode.PMULHW, 2), (Opcode.PADDW, 2), (Opcode.PSHIFT, 2),
                     (Opcode.PCMP, 1), (Opcode.PLOGICAL, 1))
_QUANT_VECTOR_MIX = ((Opcode.VMULHW, 2), (Opcode.VADDW, 2), (Opcode.VSHIFT, 2),
                     (Opcode.VLOGICAL, 2))

# chroma up-sampling: packed rounded averages plus interleaving
_UPSAMPLE_SCALAR_MIX = ((Opcode.ADD, 6), (Opcode.SHR, 3), (Opcode.MOV, 2))
_UPSAMPLE_PACKED_MIX = ((Opcode.PAVGB, 4), (Opcode.UNPACK, 2), (Opcode.PACK, 2),
                        (Opcode.PLOGICAL, 2))
_UPSAMPLE_VECTOR_MIX = ((Opcode.VPAVGB, 4), (Opcode.VUNPACK, 2), (Opcode.VPACK, 2),
                        (Opcode.VLOGICAL, 2))

# per-symbol entropy-coding work besides the bit-buffer recurrence
_HUFFMAN_WORK_MIX = ((Opcode.ADD, 4), (Opcode.CMP, 2), (Opcode.SHR, 2), (Opcode.AND, 2))
_VLD_WORK_MIX = ((Opcode.ADD, 3), (Opcode.CMP, 2), (Opcode.SHL, 1), (Opcode.AND, 2))


# ---------------------------------------------------------------------------
# helpers shared by the encoder and decoder builders
# ---------------------------------------------------------------------------

def _allocate_enc_arrays(params: JpegParameters) -> AddressSpace:
    space = AddressSpace()
    h, w = params.height, params.width
    for name in ("red", "green", "blue", "luma", "cb", "cr"):
        space.allocate(name, (h, w), element_bytes=1)
    space.allocate("coeffs", (h, w), element_bytes=2)
    space.allocate("quantised", (h, w), element_bytes=2)
    space.allocate("qtable", (8, 8), element_bytes=2)
    space.allocate("recip", (8, 8), element_bytes=2)
    space.allocate("symbols", (params.total_blocks * params.symbols_per_block,),
                   element_bytes=1)
    space.allocate("hufftable", (512,), element_bytes=4)
    space.allocate("bitstream", (params.total_blocks * params.symbols_per_block,),
                   element_bytes=1)
    return space


def _allocate_dec_arrays(params: JpegParameters) -> AddressSpace:
    space = AddressSpace()
    h, w = params.height, params.width
    space.allocate("bitstream", (params.total_blocks * params.symbols_per_block,),
                   element_bytes=1)
    space.allocate("vldtable", (512,), element_bytes=4)
    space.allocate("coeffs", (h, w), element_bytes=2)
    space.allocate("samples", (h, w), element_bytes=2)
    for name in ("luma", "cb_small", "cr_small"):
        shape = (h, w) if name == "luma" else (h // 2, w // 2)
        space.allocate(name, shape, element_bytes=1)
    for name in ("cb_full", "cr_full", "red", "green", "blue"):
        space.allocate(name, (h, w), element_bytes=1)
    return space


def _emit_color_conversion(builder: KernelBuilder, space: AddressSpace,
                           params: JpegParameters, inputs, outputs,
                           region: str, description: str) -> None:
    arrays_in = [space[name] for name in inputs]
    arrays_out = [space[name] for name in outputs]
    with builder.region(region, description, vectorizable=True):
        if builder.flavor is ISAFlavor.SCALAR:
            common.emit_elementwise_scalar(builder, arrays_in, arrays_out,
                                           params.height, params.width,
                                           _COLOR_SCALAR_MIX, label="color")
        elif builder.flavor is ISAFlavor.USIMD:
            common.emit_elementwise_usimd(builder, arrays_in, arrays_out,
                                          params.height, params.width,
                                          _COLOR_PACKED_MIX, label="color")
        else:
            common.emit_elementwise_vector(builder, arrays_in, arrays_out,
                                           params.height, params.width,
                                           _COLOR_VECTOR_MIX, vl=min(16, params.width // 8),
                                           label="color")


def _emit_dct(builder: KernelBuilder, space: AddressSpace, params: JpegParameters,
              source: str, destination: str, region: str, description: str) -> None:
    with builder.region(region, description, vectorizable=True):
        if builder.flavor is ISAFlavor.SCALAR:
            common.emit_block_transform_scalar(builder, space[source], space[destination],
                                               params.total_blocks, _DCT_SCALAR_MIX,
                                               label="fdct")
        elif builder.flavor is ISAFlavor.USIMD:
            common.emit_block_transform_usimd(builder, space[source], space[destination],
                                              params.total_blocks, _DCT_PACKED_MIX,
                                              label="fdct")
        else:
            common.emit_block_transform_vector(builder, space[source], space[destination],
                                               params.total_blocks, _DCT_VECTOR_MIX,
                                               label="fdct")


def _emit_quantisation(builder: KernelBuilder, space: AddressSpace,
                       params: JpegParameters, region: str) -> None:
    inputs = [space["coeffs"], space["recip"]]
    outputs = [space["quantised"]]
    with builder.region(region, "Quantification", vectorizable=True):
        if builder.flavor is ISAFlavor.SCALAR:
            common.emit_elementwise_scalar(builder, inputs, outputs,
                                           params.height, params.width,
                                           _QUANT_SCALAR_MIX, element_bytes=2,
                                           label="quant")
        elif builder.flavor is ISAFlavor.USIMD:
            common.emit_elementwise_usimd(builder, inputs, outputs,
                                          params.height, params.width,
                                          _QUANT_PACKED_MIX, element_bytes=2,
                                          label="quant")
        else:
            common.emit_elementwise_vector(builder, inputs, outputs,
                                           params.height, params.width,
                                           _QUANT_VECTOR_MIX, vl=16, element_bytes=2,
                                           label="quant")


# ---------------------------------------------------------------------------
# encoder
# ---------------------------------------------------------------------------

@register_workload("jpeg_enc", family="jpeg", params=JpegParameters,
                   tiny=JpegParameters(width=32, height=32),
                   description="JPEG encoder: colour conversion, forward DCT, "
                               "quantisation",
                   tags=("mediabench", "mediabench-plus", "image"))
def build_jpeg_enc_program(flavor: ISAFlavor,
                           params: JpegParameters = JpegParameters()) -> KernelProgram:
    """JPEG encoder program in the requested ISA flavour."""
    space = _allocate_enc_arrays(params)
    builder = KernelBuilder("jpeg_enc", flavor, address_space=space)

    _emit_color_conversion(builder, space, params,
                           inputs=("red", "green", "blue"),
                           outputs=("luma", "cb", "cr"),
                           region="R1", description="RGB to YCC color conversion")
    _emit_dct(builder, space, params, source="luma", destination="coeffs",
              region="R2", description="Forward DCT")
    _emit_quantisation(builder, space, params, region="R3")

    # scalar region: chroma down-sampling (not vectorised in the paper's
    # Table 1) plus zig-zag and Huffman bit packing over every block's symbols
    symbol_count = params.total_blocks * params.symbols_per_block
    with builder.region("R0", "Entropy coding", vectorizable=False):
        common.emit_elementwise_scalar(
            builder, [space["cb"], space["cr"]], [space["cb"], space["cr"]],
            params.height // 2, params.width // 2,
            ((Opcode.ADD, 6), (Opcode.SHR, 2), (Opcode.MOV, 2)),
            label="downsample")
        common.emit_bitstream_encoder(
            builder, space["symbols"], space["hufftable"], space["bitstream"],
            count=symbol_count,
            work_mix=_HUFFMAN_WORK_MIX + ((Opcode.ADD, params.scalar_work),),
            lookups=2, label="huffman")
    return builder.program()


# ---------------------------------------------------------------------------
# decoder
# ---------------------------------------------------------------------------

@register_workload("jpeg_dec", family="jpeg", params=JpegParameters,
                   tiny=JpegParameters(width=32, height=32),
                   description="JPEG decoder: colour conversion, h2v2 "
                               "up-sampling",
                   tags=("mediabench", "mediabench-plus", "image"))
def build_jpeg_dec_program(flavor: ISAFlavor,
                           params: JpegParameters = JpegParameters()) -> KernelProgram:
    """JPEG decoder program in the requested ISA flavour."""
    space = _allocate_dec_arrays(params)
    builder = KernelBuilder("jpeg_dec", flavor, address_space=space)

    symbol_count = params.total_blocks * params.symbols_per_block

    # scalar region first (entropy decode feeds everything else), exactly as
    # the real decoder interleaves VLD -> IDCT -> upsample -> colour.
    with builder.region("R0", "Entropy decoding and inverse DCT", vectorizable=False):
        common.emit_table_decoder(
            builder, space["bitstream"], space["vldtable"], space["coeffs"],
            count=symbol_count,
            work_mix=_VLD_WORK_MIX + ((Opcode.ADD, params.decoder_scalar_work),),
            lookups=2, label="vld")
        # the decoder's inverse DCT stays in the scalar region for this
        # benchmark (Table 1 lists only colour conversion and up-sampling)
        common.emit_block_transform_scalar(
            builder, space["coeffs"], space["samples"], params.total_blocks,
            _DCT_SCALAR_MIX, label="idct")

    # R2: h2v2 up-sampling of both chroma planes
    with builder.region("R2", "H2v2 up-sample", vectorizable=True):
        for small, full in (("cb_small", "cb_full"), ("cr_small", "cr_full")):
            inputs = [space[small]]
            outputs = [space[full]]
            rows, cols = space[small].shape
            if builder.flavor is ISAFlavor.SCALAR:
                common.emit_elementwise_scalar(builder, inputs, outputs, rows, cols,
                                               _UPSAMPLE_SCALAR_MIX, label="h2v2")
            elif builder.flavor is ISAFlavor.USIMD:
                common.emit_elementwise_usimd(builder, inputs, outputs, rows, cols,
                                              _UPSAMPLE_PACKED_MIX, label="h2v2")
            else:
                common.emit_elementwise_vector(builder, inputs, outputs, rows, cols,
                                               _UPSAMPLE_VECTOR_MIX,
                                               vl=min(16, max(1, cols // 8)),
                                               label="h2v2")

    # R1: YCbCr -> RGB colour conversion of the full-resolution image
    _emit_color_conversion(builder, space, params,
                           inputs=("luma", "cb_full", "cr_full"),
                           outputs=("red", "green", "blue"),
                           region="R1", description="YCC to RGB color conversion")
    return builder.program()
