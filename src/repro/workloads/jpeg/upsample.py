"""h2v2 chroma up-sampling (JPEG decoder R2).

The decoder stores chroma at quarter resolution (2×2 sub-sampling); the
"h2v2 fancy upsample" of libjpeg reconstructs the full-resolution plane with
a 3:1 weighted average of the nearest chroma samples.  The µSIMD and vector
versions use the rounded packed-average idiom on bytes and therefore compute
exactly the same triangular filter as the reference.
"""

from __future__ import annotations

import numpy as np

from repro.isa import packed

__all__ = ["downsample_h2v2", "upsample_h2v2_reference", "upsample_h2v2_usimd",
           "upsample_h2v2_vector"]


def downsample_h2v2(plane: np.ndarray) -> np.ndarray:
    """2×2 box down-sampling (the encoder-side operation, used to build inputs)."""
    plane = np.asarray(plane, dtype=np.int32)
    if plane.shape[0] % 2 or plane.shape[1] % 2:
        raise ValueError("plane dimensions must be even")
    return ((plane[0::2, 0::2] + plane[0::2, 1::2]
             + plane[1::2, 0::2] + plane[1::2, 1::2] + 2) >> 2).astype(np.uint8)


def upsample_h2v2_reference(chroma: np.ndarray) -> np.ndarray:
    """Reference 2×2 up-sampling by sample replication with rounding average.

    Uses the simple replicate-then-smooth formulation: each output pixel is
    the rounded average of its nearest low-resolution sample and the
    replicated neighbour, which is what the packed implementations compute
    with ``pavgb``.
    """
    chroma = np.asarray(chroma, dtype=np.uint8)
    height, width = chroma.shape
    out = np.empty((height * 2, width * 2), dtype=np.uint8)
    widened = chroma.astype(np.int32)
    right = np.roll(widened, -1, axis=1)
    # the bottom edge clamps (replicates the last row) rather than wrapping,
    # matching the way the row-wise packed kernels handle the image border
    down = np.concatenate([widened[1:], widened[-1:]], axis=0)
    down_right = np.concatenate([right[1:], right[-1:]], axis=0)
    out[0::2, 0::2] = chroma
    out[0::2, 1::2] = ((widened + right + 1) >> 1).astype(np.uint8)
    out[1::2, 0::2] = ((widened + down + 1) >> 1).astype(np.uint8)
    out[1::2, 1::2] = ((((widened + right + 1) >> 1)
                        + ((down + down_right + 1) >> 1) + 1) >> 1).astype(np.uint8)
    return out


def _upsample_rows_packed(row: np.ndarray, next_row: np.ndarray):
    """Produce the two output rows for one input chroma row (packed arithmetic)."""
    right = np.roll(row, -1)
    next_right = np.roll(next_row, -1)
    words = packed.to_packed(row, packed.LANES_8)
    right_words = packed.to_packed(right, packed.LANES_8)
    down_words = packed.to_packed(next_row, packed.LANES_8)
    down_right_words = packed.to_packed(next_right, packed.LANES_8)

    horizontal = packed.pavgb(words, right_words)
    vertical = packed.pavgb(words, down_words)
    diagonal = packed.pavgb(down_words, down_right_words)
    center = packed.pavgb(horizontal, diagonal)

    top = np.empty(row.shape[0] * 2, dtype=np.uint8)
    bottom = np.empty(row.shape[0] * 2, dtype=np.uint8)
    top[0::2] = packed.from_packed(words)
    top[1::2] = packed.from_packed(horizontal)
    bottom[0::2] = packed.from_packed(vertical)
    bottom[1::2] = packed.from_packed(center)
    return top, bottom


def upsample_h2v2_usimd(chroma: np.ndarray) -> np.ndarray:
    """µSIMD h2v2 up-sampling, eight chroma samples per packed operation."""
    chroma = np.asarray(chroma, dtype=np.uint8)
    height, width = chroma.shape
    if width % packed.LANES_8:
        raise ValueError("chroma width must be a multiple of 8")
    out = np.empty((height * 2, width * 2), dtype=np.uint8)
    for row_index in range(height):
        row = chroma[row_index]
        next_row = chroma[min(row_index + 1, height - 1)]
        top, bottom = _upsample_rows_packed(row, next_row)
        out[2 * row_index] = top
        out[2 * row_index + 1] = bottom
    return out


def upsample_h2v2_vector(chroma: np.ndarray, max_vl: int = 16) -> np.ndarray:
    """Vector-µSIMD h2v2 up-sampling.

    Identical arithmetic to the µSIMD version but each vector operation
    covers up to ``max_vl`` packed words of a row; functionally the result
    is the same, which is what the equivalence tests check (the timing
    difference is captured by the kernel programs, not here).
    """
    chroma = np.asarray(chroma, dtype=np.uint8)
    height, width = chroma.shape
    if width % packed.LANES_8:
        raise ValueError("chroma width must be a multiple of 8")
    words_per_row = width // packed.LANES_8
    out = np.empty((height * 2, width * 2), dtype=np.uint8)
    for row_index in range(height):
        row = chroma[row_index]
        next_row = chroma[min(row_index + 1, height - 1)]
        top = np.empty(width * 2, dtype=np.uint8)
        bottom = np.empty(width * 2, dtype=np.uint8)
        for start in range(0, words_per_row, max_vl):
            stop = min(start + max_vl, words_per_row)
            sl = slice(start * 8, stop * 8)
            chunk_top, chunk_bottom = _upsample_rows_packed(row, next_row)
            top[sl.start * 2:sl.stop * 2] = chunk_top[sl.start * 2:sl.stop * 2]
            bottom[sl.start * 2:sl.stop * 2] = chunk_bottom[sl.start * 2:sl.stop * 2]
        out[2 * row_index] = top
        out[2 * row_index + 1] = bottom
    return out
