"""8×8 integer DCT / IDCT (JPEG encoder R2, MPEG-2 encoder R2/R3, decoder R2).

The forward and inverse transforms are implemented as separable fixed-point
matrix transforms in 32-bit intermediate precision, the same arithmetic
regime as libjpeg's ``jpeg_fdct_islow`` / ``jpeg_idct_islow``.  They serve as
the functional reference for the DCT-shaped kernel programs and as the
source of the quantised coefficients fed to the entropy-coding (scalar
region) models.

A forward/inverse round trip is accurate to within ±1 per sample for 8-bit
inputs, which the tests assert.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["forward_dct_block", "inverse_dct_block", "forward_dct_image",
           "inverse_dct_image", "dct_matrix"]

_SCALE_BITS = 13


def dct_matrix() -> np.ndarray:
    """The 8-point DCT-II basis matrix in fixed point (scaled by 2^13)."""
    basis = np.zeros((8, 8), dtype=np.float64)
    for k in range(8):
        for n in range(8):
            scale = math.sqrt(1.0 / 8.0) if k == 0 else math.sqrt(2.0 / 8.0)
            basis[k, n] = scale * math.cos(math.pi * (2 * n + 1) * k / 16.0)
    return np.round(basis * (1 << _SCALE_BITS)).astype(np.int64)


_DCT = dct_matrix()


def forward_dct_block(block: np.ndarray) -> np.ndarray:
    """Forward 8×8 DCT of one block of samples (level shifted by -128).

    Input: ``(8, 8)`` uint8/int; output: ``(8, 8)`` int16 coefficients.
    """
    block = np.asarray(block, dtype=np.int64)
    if block.shape != (8, 8):
        raise ValueError("forward_dct_block expects an 8x8 block")
    centered = block - 128
    rows = (_DCT @ centered + (1 << (_SCALE_BITS - 1))) >> _SCALE_BITS
    full = (rows @ _DCT.T + (1 << (_SCALE_BITS - 1))) >> _SCALE_BITS
    return np.clip(full, -32768, 32767).astype(np.int16)


def inverse_dct_block(coefficients: np.ndarray) -> np.ndarray:
    """Inverse 8×8 DCT; returns uint8 samples (level shifted back by +128)."""
    coefficients = np.asarray(coefficients, dtype=np.int64)
    if coefficients.shape != (8, 8):
        raise ValueError("inverse_dct_block expects an 8x8 block")
    rows = (_DCT.T @ coefficients + (1 << (_SCALE_BITS - 1))) >> _SCALE_BITS
    full = (rows @ _DCT + (1 << (_SCALE_BITS - 1))) >> _SCALE_BITS
    return np.clip(full + 128, 0, 255).astype(np.uint8)


def _iter_blocks(plane: np.ndarray):
    height, width = plane.shape
    if height % 8 or width % 8:
        raise ValueError("plane dimensions must be multiples of 8")
    for by in range(0, height, 8):
        for bx in range(0, width, 8):
            yield by, bx


def forward_dct_image(plane: np.ndarray) -> np.ndarray:
    """Forward DCT of every 8×8 block of a luminance/chrominance plane."""
    plane = np.asarray(plane)
    out = np.empty(plane.shape, dtype=np.int16)
    for by, bx in _iter_blocks(plane):
        out[by:by + 8, bx:bx + 8] = forward_dct_block(plane[by:by + 8, bx:bx + 8])
    return out


def inverse_dct_image(coefficients: np.ndarray) -> np.ndarray:
    """Inverse DCT of every 8×8 block of a coefficient plane."""
    coefficients = np.asarray(coefficients)
    out = np.empty(coefficients.shape, dtype=np.uint8)
    for by, bx in _iter_blocks(coefficients):
        out[by:by + 8, bx:bx + 8] = inverse_dct_block(coefficients[by:by + 8, bx:bx + 8])
    return out
