"""Entropy coding (the JPEG scalar region R0).

The encoder's non-DLP time is dominated by zig-zag scanning, run-length
coding and Huffman bit packing; the decoder's by the inverse.  This module
provides a functional entropy coder over quantised DCT blocks that captures
the computational character of that code (per-symbol table work feeding a
serial bit buffer) and round-trips exactly, which the tests verify.

For simplicity the prefix code is an exponential-Golomb style code rather
than the baseline JPEG Huffman tables; the structure of the work per symbol
(look-up, magnitude/size computation, buffer shift/or, byte spill) is the
same, which is what matters for the scalar-region timing model built from
:func:`repro.workloads.common.emit_bitstream_encoder`.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

__all__ = ["ZIGZAG_ORDER", "zigzag_scan", "inverse_zigzag", "run_length_encode",
           "run_length_decode", "BitWriter", "BitReader", "encode_block",
           "decode_block"]


def _build_zigzag() -> np.ndarray:
    order = []
    for diagonal in range(15):
        cells = [(y, diagonal - y) for y in range(8) if 0 <= diagonal - y < 8]
        if diagonal % 2 == 0:
            cells.reverse()
        order.extend(cells)
    indices = np.array([y * 8 + x for y, x in order], dtype=np.int64)
    return indices


#: Zig-zag scan order of an 8×8 block (row-major indices).
ZIGZAG_ORDER = _build_zigzag()


def zigzag_scan(block: np.ndarray) -> np.ndarray:
    """Scan an 8×8 block into the 64-entry zig-zag order."""
    block = np.asarray(block)
    if block.shape != (8, 8):
        raise ValueError("zigzag_scan expects an 8x8 block")
    return block.reshape(-1)[ZIGZAG_ORDER]


def inverse_zigzag(sequence: np.ndarray) -> np.ndarray:
    """Reassemble an 8×8 block from its zig-zag sequence."""
    sequence = np.asarray(sequence)
    if sequence.shape != (64,):
        raise ValueError("inverse_zigzag expects 64 values")
    block = np.zeros(64, dtype=sequence.dtype)
    block[ZIGZAG_ORDER] = sequence
    return block.reshape(8, 8)


def run_length_encode(sequence: np.ndarray) -> List[Tuple[int, int]]:
    """(zero-run, value) pairs of the non-zero entries, plus an end marker."""
    pairs: List[Tuple[int, int]] = []
    run = 0
    for value in np.asarray(sequence, dtype=np.int64):
        if value == 0:
            run += 1
            continue
        pairs.append((run, int(value)))
        run = 0
    pairs.append((0, 0))  # end-of-block
    return pairs


def run_length_decode(pairs: Iterable[Tuple[int, int]], length: int = 64) -> np.ndarray:
    """Inverse of :func:`run_length_encode`."""
    out = np.zeros(length, dtype=np.int64)
    index = 0
    for run, value in pairs:
        if run == 0 and value == 0:
            break
        index += run
        if index >= length:
            raise ValueError("run-length data overruns the block")
        out[index] = value
        index += 1
    return out


class BitWriter:
    """Serial most-significant-bit-first bit packer (the encoder bit buffer)."""

    def __init__(self) -> None:
        self._bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        if width < 0:
            raise ValueError("bit width cannot be negative")
        for position in range(width - 1, -1, -1):
            self._bits.append((value >> position) & 1)

    def write_unary(self, count: int) -> None:
        """``count`` one bits followed by a zero (prefix of the Golomb code)."""
        self._bits.extend([1] * count)
        self._bits.append(0)

    def getvalue(self) -> bytes:
        padded = list(self._bits)
        while len(padded) % 8:
            padded.append(0)
        data = bytearray()
        for start in range(0, len(padded), 8):
            byte = 0
            for bit in padded[start:start + 8]:
                byte = (byte << 1) | bit
            data.append(byte)
        return bytes(data)

    def __len__(self) -> int:
        return len(self._bits)


class BitReader:
    """Serial bit unpacker matching :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._bits: List[int] = []
        for byte in data:
            for position in range(7, -1, -1):
                self._bits.append((byte >> position) & 1)
        self._cursor = 0

    def read(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self._bits[self._cursor]
            self._cursor += 1
        return value

    def read_unary(self) -> int:
        count = 0
        while self._bits[self._cursor] == 1:
            count += 1
            self._cursor += 1
        self._cursor += 1  # consume the terminating zero
        return count

    @property
    def remaining(self) -> int:
        return len(self._bits) - self._cursor


def _magnitude_size(value: int) -> int:
    return int(abs(value)).bit_length()


def encode_block(block: np.ndarray, writer: BitWriter) -> None:
    """Entropy-encode one quantised 8×8 block into ``writer``."""
    sequence = zigzag_scan(block)
    for run, value in run_length_encode(sequence):
        if run == 0 and value == 0:
            writer.write_unary(0)
            writer.write(0, 4)
            continue
        size = _magnitude_size(value)
        writer.write_unary(run + 1)
        writer.write(size, 4)
        sign = 1 if value < 0 else 0
        writer.write(sign, 1)
        writer.write(abs(value), size)


def decode_block(reader: BitReader) -> np.ndarray:
    """Decode one 8×8 block previously written by :func:`encode_block`."""
    pairs: List[Tuple[int, int]] = []
    while True:
        prefix = reader.read_unary()
        size = reader.read(4)
        if prefix == 0 and size == 0:
            pairs.append((0, 0))
            break
        run = prefix - 1
        sign = reader.read(1)
        magnitude = reader.read(size)
        value = -magnitude if sign else magnitude
        pairs.append((run, value))
    sequence = run_length_decode(pairs)
    return inverse_zigzag(sequence)
