"""JPEG encoder / decoder workloads.

Vector regions (Table 1 of the paper):

* **encoder** — RGB→YCbCr colour conversion, forward DCT, quantisation
  (29.6 % of the 2-issue µSIMD execution time);
* **decoder** — YCbCr→RGB colour conversion and h2v2 chroma up-sampling
  (18.5 %).

The scalar regions are entropy coding (Huffman encode/decode with its
bit-buffer recurrences) plus the decoder's inverse DCT, which the paper
keeps in the scalar part for this benchmark.

Functional implementations of the colour conversions, quantisation and
up-sampling exist in scalar/µSIMD/Vector-µSIMD form and are checked for
bit-exact agreement by the test-suite; the DCT has an integer reference
implementation used for energy/round-trip tests.
"""

from repro.workloads.jpeg import color, dct, quant, upsample, huffman, programs

__all__ = ["color", "dct", "quant", "upsample", "huffman", "programs"]
