"""Quantisation / dequantisation (JPEG encoder R3).

Quantisation divides each DCT coefficient by a table entry; hand-written
SIMD implementations replace the division by a multiply with the
reciprocal in fixed point followed by a shift.  All three flavours here use
that multiply-and-shift formulation so they agree bit-exactly (and agree
with a true rounding division for the quality-50 luminance table used in
the tests).
"""

from __future__ import annotations

import numpy as np

from repro.isa import packed

__all__ = [
    "LUMINANCE_QTABLE",
    "CHROMINANCE_QTABLE",
    "reciprocal_table",
    "quantize_reference",
    "quantize_usimd",
    "quantize_vector",
    "dequantize_reference",
]

#: Annex-K luminance quantisation table (quality 50).
LUMINANCE_QTABLE = np.array([
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
], dtype=np.int32)

#: Annex-K chrominance quantisation table (quality 50).
CHROMINANCE_QTABLE = np.array([
    [17, 18, 24, 47, 99, 99, 99, 99],
    [18, 21, 26, 66, 99, 99, 99, 99],
    [24, 26, 56, 99, 99, 99, 99, 99],
    [47, 66, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
], dtype=np.int32)

_RECIP_BITS = 16


def reciprocal_table(qtable: np.ndarray) -> np.ndarray:
    """Fixed-point reciprocals ``round(2^16 / q)`` of a quantisation table."""
    qtable = np.asarray(qtable, dtype=np.int64)
    if np.any(qtable <= 0):
        raise ValueError("quantisation table entries must be positive")
    return ((1 << _RECIP_BITS) + qtable // 2) // qtable


def quantize_reference(coefficients: np.ndarray, qtable: np.ndarray) -> np.ndarray:
    """Reference quantisation via reciprocal multiply (sign-magnitude rounding)."""
    coefficients = np.asarray(coefficients, dtype=np.int64)
    recip = reciprocal_table(qtable)
    tiled = np.tile(recip, (coefficients.shape[0] // 8, coefficients.shape[1] // 8))
    magnitude = np.abs(coefficients)
    quantised = (magnitude * tiled + (1 << (_RECIP_BITS - 1))) >> _RECIP_BITS
    return (np.sign(coefficients) * quantised).astype(np.int16)


def _quantize_words(words: np.ndarray, recip_words: np.ndarray) -> np.ndarray:
    """Quantise packed 4×16-bit words against matching reciprocal words."""
    magnitude = np.abs(words.astype(np.int64))
    quantised = (magnitude * recip_words.astype(np.int64)
                 + (1 << (_RECIP_BITS - 1))) >> _RECIP_BITS
    return (np.sign(words.astype(np.int64)) * quantised).astype(np.int16)


def quantize_usimd(coefficients: np.ndarray, qtable: np.ndarray) -> np.ndarray:
    """µSIMD quantisation: one packed word (four coefficients) per step."""
    coefficients = np.asarray(coefficients, dtype=np.int16)
    recip = reciprocal_table(qtable)
    tiled = np.tile(recip, (coefficients.shape[0] // 8, coefficients.shape[1] // 8))
    flat = coefficients.reshape(-1)
    flat_recip = tiled.reshape(-1)
    out = np.empty_like(flat)
    words = packed.to_packed(flat, packed.LANES_16)
    recip_words = packed.to_packed(flat_recip.astype(np.int32), packed.LANES_16)
    for index in range(words.shape[0]):
        out[index * 4:(index + 1) * 4] = _quantize_words(words[index], recip_words[index])
    return out.reshape(coefficients.shape)


def quantize_vector(coefficients: np.ndarray, qtable: np.ndarray,
                    max_vl: int = 16) -> np.ndarray:
    """Vector-µSIMD quantisation: up to 16 packed words per operation."""
    coefficients = np.asarray(coefficients, dtype=np.int16)
    recip = reciprocal_table(qtable)
    tiled = np.tile(recip, (coefficients.shape[0] // 8, coefficients.shape[1] // 8))
    flat = coefficients.reshape(-1)
    flat_recip = tiled.reshape(-1).astype(np.int32)
    out = np.empty_like(flat)
    words = packed.to_packed(flat, packed.LANES_16)
    recip_words = packed.to_packed(flat_recip, packed.LANES_16)
    for start in range(0, words.shape[0], max_vl):
        stop = min(start + max_vl, words.shape[0])
        out[start * 4:stop * 4] = _quantize_words(
            words[start:stop], recip_words[start:stop]).reshape(-1)
    return out.reshape(coefficients.shape)


def dequantize_reference(quantised: np.ndarray, qtable: np.ndarray) -> np.ndarray:
    """Dequantisation (decoder side): multiply back by the table entries."""
    quantised = np.asarray(quantised, dtype=np.int64)
    qtable = np.asarray(qtable, dtype=np.int64)
    tiled = np.tile(qtable, (quantised.shape[0] // 8, quantised.shape[1] // 8))
    return np.clip(quantised * tiled, -32768, 32767).astype(np.int16)
