"""Colour conversion kernels (JPEG encoder R1 / decoder R1).

The JPEG encoder converts interleaved RGB pixels to YCbCr before the DCT;
the decoder converts back.  Both directions are implemented three times:

* :func:`rgb_to_ycc_reference` / :func:`ycc_to_rgb_reference` — plain NumPy
  integer arithmetic, the ground truth;
* :func:`rgb_to_ycc_usimd` — per packed word of eight pixels, using the
  µSIMD emulation layer (unpack to 16 bits, fixed-point multiplies, pack);
* :func:`rgb_to_ycc_vector` — the same packed arithmetic applied to a whole
  vector register of pixels at a time (the Vector-µSIMD version).

All three use the libjpeg fixed-point coefficients (scaled by 2^16) so the
results agree bit-exactly, which the tests assert.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.isa import packed

__all__ = [
    "rgb_to_ycc_reference",
    "rgb_to_ycc_usimd",
    "rgb_to_ycc_vector",
    "ycc_to_rgb_reference",
]

# libjpeg fixed-point coefficients, scaled by 2^16 and rounded.
_FIX = 1 << 16
_HALF = _FIX // 2
_CY = (19595, 38470, 7471)          # 0.29900, 0.58700, 0.11400
_CCB = (-11059, -21709, 32768)      # -0.16874, -0.33126, 0.50000
_CCR = (32768, -27439, -5329)       # 0.50000, -0.41869, -0.08131
_OFFSET = 128 << 16


def rgb_to_ycc_reference(rgb: np.ndarray) -> np.ndarray:
    """Reference RGB→YCbCr conversion on a ``(h, w, 3)`` uint8 image."""
    rgb = np.asarray(rgb, dtype=np.int64)
    if rgb.ndim != 3 or rgb.shape[-1] != 3:
        raise ValueError("expected an (h, w, 3) RGB image")
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    y = (_CY[0] * r + _CY[1] * g + _CY[2] * b + _HALF) >> 16
    cb = (_CCB[0] * r + _CCB[1] * g + _CCB[2] * b + _OFFSET + _HALF - 1) >> 16
    cr = (_CCR[0] * r + _CCR[1] * g + _CCR[2] * b + _OFFSET + _HALF - 1) >> 16
    out = np.stack([y, cb, cr], axis=-1)
    return np.clip(out, 0, 255).astype(np.uint8)


def _convert_rows_packed(r16: np.ndarray, g16: np.ndarray, b16: np.ndarray,
                         coefficients: Tuple[int, int, int],
                         rounding: int) -> np.ndarray:
    """Fixed-point channel combination on int64 lanes (shared helper).

    The µSIMD and vector versions call this with arrays whose last axis is
    the 4-lane (16-bit) axis; the arithmetic mirrors what a pmaddwd-based
    inner loop computes, carried in wide precision exactly like the 32-bit
    intermediate of the hardware.
    """
    acc = (coefficients[0] * r16.astype(np.int64)
           + coefficients[1] * g16.astype(np.int64)
           + coefficients[2] * b16.astype(np.int64)
           + rounding)
    return acc >> 16


def rgb_to_ycc_usimd(rgb_planar: Tuple[np.ndarray, np.ndarray, np.ndarray]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """µSIMD RGB→YCbCr on planar channel arrays of shape ``(n,)`` (n % 8 == 0).

    Processes eight pixels per iteration: unpack each channel's packed word
    to two 4×16-bit halves, run the fixed-point combination per half, then
    pack the results back to bytes with unsigned saturation — the classic
    MMX colour-conversion inner loop.
    """
    r_plane, g_plane, b_plane = (np.asarray(p, dtype=np.uint8) for p in rgb_planar)
    n = r_plane.shape[0]
    if n % packed.LANES_8:
        raise ValueError("planar length must be a multiple of 8 pixels")
    y_out = np.empty(n, dtype=np.uint8)
    cb_out = np.empty(n, dtype=np.uint8)
    cr_out = np.empty(n, dtype=np.uint8)

    r_words = packed.to_packed(r_plane, packed.LANES_8)
    g_words = packed.to_packed(g_plane, packed.LANES_8)
    b_words = packed.to_packed(b_plane, packed.LANES_8)

    for index in range(r_words.shape[0]):
        r_lo, r_hi = packed.unpack_u8_to_s16(r_words[index])
        g_lo, g_hi = packed.unpack_u8_to_s16(g_words[index])
        b_lo, b_hi = packed.unpack_u8_to_s16(b_words[index])
        halves = {}
        for name, coefficients, rounding in (
                ("y", _CY, _HALF),
                ("cb", _CCB, _OFFSET + _HALF - 1),
                ("cr", _CCR, _OFFSET + _HALF - 1)):
            lo = _convert_rows_packed(r_lo, g_lo, b_lo, coefficients, rounding)
            hi = _convert_rows_packed(r_hi, g_hi, b_hi, coefficients, rounding)
            halves[name] = packed.packuswb(lo, hi)
        sl = slice(index * 8, index * 8 + 8)
        y_out[sl] = halves["y"]
        cb_out[sl] = halves["cb"]
        cr_out[sl] = halves["cr"]
    return y_out, cb_out, cr_out


def rgb_to_ycc_vector(rgb_planar: Tuple[np.ndarray, np.ndarray, np.ndarray],
                      max_vl: int = 16) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vector-µSIMD RGB→YCbCr: whole vector registers of pixels per operation.

    Identical arithmetic to :func:`rgb_to_ycc_usimd`, but each operation
    covers up to ``max_vl`` packed words (128 pixels), the way the vector
    version strip-mines a row of the image.
    """
    r_plane, g_plane, b_plane = (np.asarray(p, dtype=np.uint8) for p in rgb_planar)
    n = r_plane.shape[0]
    if n % packed.LANES_8:
        raise ValueError("planar length must be a multiple of 8 pixels")
    y_out = np.empty(n, dtype=np.uint8)
    cb_out = np.empty(n, dtype=np.uint8)
    cr_out = np.empty(n, dtype=np.uint8)

    r_words = packed.to_packed(r_plane, packed.LANES_8)
    g_words = packed.to_packed(g_plane, packed.LANES_8)
    b_words = packed.to_packed(b_plane, packed.LANES_8)
    total_words = r_words.shape[0]

    for start in range(0, total_words, max_vl):
        stop = min(start + max_vl, total_words)
        r_vec = r_words[start:stop]
        g_vec = g_words[start:stop]
        b_vec = b_words[start:stop]
        r_lo = r_vec.astype(np.int16)[..., :4]
        r_hi = r_vec.astype(np.int16)[..., 4:]
        g_lo = g_vec.astype(np.int16)[..., :4]
        g_hi = g_vec.astype(np.int16)[..., 4:]
        b_lo = b_vec.astype(np.int16)[..., :4]
        b_hi = b_vec.astype(np.int16)[..., 4:]
        outs = {}
        for name, coefficients, rounding in (
                ("y", _CY, _HALF),
                ("cb", _CCB, _OFFSET + _HALF - 1),
                ("cr", _CCR, _OFFSET + _HALF - 1)):
            lo = _convert_rows_packed(r_lo, g_lo, b_lo, coefficients, rounding)
            hi = _convert_rows_packed(r_hi, g_hi, b_hi, coefficients, rounding)
            outs[name] = packed.packuswb(lo, hi)
        sl = slice(start * 8, stop * 8)
        y_out[sl] = outs["y"].reshape(-1)
        cb_out[sl] = outs["cb"].reshape(-1)
        cr_out[sl] = outs["cr"].reshape(-1)
    return y_out, cb_out, cr_out


def ycc_to_rgb_reference(ycc: np.ndarray) -> np.ndarray:
    """Reference YCbCr→RGB conversion (decoder direction) on uint8 data."""
    ycc = np.asarray(ycc, dtype=np.int64)
    if ycc.ndim != 3 or ycc.shape[-1] != 3:
        raise ValueError("expected an (h, w, 3) YCbCr image")
    y = ycc[..., 0]
    cb = ycc[..., 1] - 128
    cr = ycc[..., 2] - 128
    r = y + ((91881 * cr + _HALF) >> 16)
    g = y - ((22554 * cb + 46802 * cr + _HALF) >> 16)
    b = y + ((116130 * cb + _HALF) >> 16)
    out = np.stack([r, g, b], axis=-1)
    return np.clip(out, 0, 255).astype(np.uint8)
