"""The pluggable workload registry.

The paper's evaluation freezes the benchmark suite at six MediaBench-style
applications.  This module opens the *workload* dimension the same way
:func:`repro.machine.config.register_config` opened the *machine* dimension:
every benchmark is a :class:`WorkloadDefinition` published through the
:func:`register_workload` decorator, and everything downstream —
:func:`repro.workloads.suite.build_suite`, the experiment engine, the
result store, the design-space explorer and the ``python -m repro`` CLI —
resolves benchmarks by registry name.

A workload declares:

* its **builders**: one function ``builder(flavor, params)`` returning a
  :class:`~repro.compiler.ir.KernelProgram` for each of the three ISA
  flavours (scalar / µSIMD / Vector-µSIMD) — one callable, dispatched on
  ``flavor``, exactly like the six shipped benchmarks;
* its **parameter family**: the name and dataclass of its input-geometry
  parameters, plus canonical *default* (published-results) and *tiny*
  (unit-test) instances.  Workloads of one application share a family
  (``jpeg_enc`` and ``jpeg_dec`` both read ``params.jpeg``), and
  :meth:`~repro.workloads.suite.SuiteParameters.tiny` is assembled from the
  registered families;
* its **tags**: free-form labels (``"mediabench"``, ``"mediabench-plus"``,
  ``"stencil"``, …) the CLI's ``tag:`` selectors filter on.

Registration is process-local, like the machine-config registry: worker
processes re-register extra workloads on pool initialisation (see
:func:`repro.core.runner.execute_requests`), so the registry itself never
crosses a process boundary.  The shipped workloads are protected — their
names cannot be shadowed — while user registrations behave exactly like
the explorer's generated machine configurations.

See ``docs/workloads.md`` for the authoring guide.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

__all__ = [
    "WorkloadDefinition",
    "register_workload",
    "register_workload_definition",
    "unregister_workload",
    "get_workload",
    "registered_workloads",
    "workload_names",
    "family_parameters",
    "registered_families",
    "select_benchmarks",
    "user_workload_definitions",
    "ensure_builtin_workloads",
]

#: Tag shared by the paper's original six benchmarks.
MEDIABENCH_TAG = "mediabench"
#: Tag shared by the extended ten-benchmark suite (the original six plus
#: the four access-pattern kernels this registry added).
MEDIABENCH_PLUS_TAG = "mediabench-plus"

#: The program modules whose import populates the built-in registry (their
#: ``@register_workload`` decorators run at import time).  Order matters:
#: it fixes the presentation order of ``workload_names()`` and therefore of
#: every figure/table that iterates an extended suite.
_BUILTIN_MODULES: Tuple[str, ...] = (
    "repro.workloads.jpeg.programs",
    "repro.workloads.mpeg2.programs",
    "repro.workloads.gsm.programs",
    "repro.workloads.viterbi.programs",
    "repro.workloads.fir.programs",
    "repro.workloads.sobel.programs",
    "repro.workloads.adpcm.programs",
    "repro.workloads.synthetic.programs",
)

#: Canonical presentation order of the shipped benchmarks (the paper's six
#: in figure order, then the extended-suite kernels).  Registration order
#: depends on which module happens to be imported first; this pins the
#: order ``workload_names()`` and the CLI report in regardless.
_BUILTIN_ORDER: Tuple[str, ...] = (
    "jpeg_enc", "jpeg_dec", "mpeg2_enc", "mpeg2_dec", "gsm_enc", "gsm_dec",
    "viterbi_dec", "fir_bank", "sobel_edge", "adpcm_codec",
    "synthetic_stream", "synthetic_gather", "synthetic_deep",
)


@dataclass(frozen=True)
class WorkloadDefinition:
    """One registered benchmark: builders, parameters, description, tags."""

    #: Registry name (the benchmark name used by ``RunRequest``, the CLI,
    #: the store's advisory context and every report row).
    name: str
    #: Parameter-family name: the attribute of
    #: :class:`~repro.workloads.suite.SuiteParameters` (or ``extras`` key)
    #: holding this workload's parameter dataclass.
    family: str
    #: ``builder(flavor, params) -> KernelProgram`` for all three flavours.
    #: Must be a module-level callable so definitions pickle across worker
    #: processes.
    builder: Callable
    #: The parameter dataclass (``builder``'s second argument type).
    params_type: type
    #: Canonical full-size parameters (the published-results inputs).
    default_params: object
    #: Reduced parameters for unit tests (seconds, not minutes).
    tiny_params: object
    #: One-line description shown by ``python -m repro bench list``.
    description: str = ""
    #: Free-form labels for ``tag:`` selectors.
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a workload needs a non-empty name")
        if not self.family:
            raise ValueError(f"workload {self.name!r} needs a parameter family")
        if not callable(self.builder):
            raise TypeError(f"workload {self.name!r}: builder must be callable")
        for params, label in ((self.default_params, "default"),
                              (self.tiny_params, "tiny")):
            if not isinstance(params, self.params_type):
                raise TypeError(
                    f"workload {self.name!r}: {label} parameters must be a "
                    f"{self.params_type.__name__}, got {type(params).__name__}")

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags


#: name -> definition, in registration order (= presentation order).
_WORKLOADS: Dict[str, WorkloadDefinition] = {}
#: Names registered by the shipped program modules; protected from shadowing.
_BUILTIN_NAMES: set = set()
#: Families of the shipped benchmarks; their parameter contracts are
#: protected from replacement (a corrupted contract would break the
#: shipped builders through ``SuiteParameters``).
_BUILTIN_FAMILIES: set = set()
#: family -> (params_type, default, tiny); shared across a family's workloads.
_FAMILIES: Dict[str, Tuple[type, object, object]] = {}

_builtins_loaded = False


def ensure_builtin_workloads() -> None:
    """Import the shipped program modules so their registrations run.

    Idempotent; called lazily by every lookup so library users never have
    to know about import-time registration.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True  # set first: the imports below re-enter lookups
    try:
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
    except BaseException:
        # a failed import must not poison the registry: leave it retryable
        # so the *next* lookup surfaces the same root-cause ImportError
        # instead of mysterious "unknown benchmark" KeyErrors forever after
        _builtins_loaded = False
        raise
    _BUILTIN_NAMES.update(_WORKLOADS)
    _BUILTIN_FAMILIES.update(d.family for d in _WORKLOADS.values())
    # pin the canonical order: shipped benchmarks first (in _BUILTIN_ORDER),
    # then anything a user registered before the builtins finished loading
    ordered = {name: _WORKLOADS[name] for name in _BUILTIN_ORDER
               if name in _WORKLOADS}
    ordered.update(_WORKLOADS)
    _WORKLOADS.clear()
    _WORKLOADS.update(ordered)


def register_workload_definition(definition: WorkloadDefinition,
                                 overwrite: bool = False) -> WorkloadDefinition:
    """Publish a workload definition (the non-decorator registration form).

    Mirrors :func:`repro.machine.config.register_config`: re-registering an
    identical definition is a no-op, registering a *different* definition
    under an existing name raises unless ``overwrite`` is set, and the
    shipped benchmark names can never be shadowed.  The family's parameter
    contract (dataclass type, default and tiny instances) must agree with
    any workload already registered in the same family.  Returns
    ``definition`` for chaining.
    """
    if definition.name in _BUILTIN_NAMES:
        raise ValueError(
            f"{definition.name!r} is a shipped benchmark and cannot be "
            f"overridden")
    existing = _WORKLOADS.get(definition.name)
    if existing is not None and existing != definition and not overwrite:
        raise ValueError(
            f"a different workload is already registered as "
            f"{definition.name!r}; pass overwrite=True to replace it")
    family = _FAMILIES.get(definition.family)
    contract = (definition.params_type, definition.default_params,
                definition.tiny_params)
    if family is not None and family != contract:
        # ``overwrite`` never licenses changing a contract out from under
        # other workloads: the shipped families are permanently protected,
        # and a user family can only be re-contracted once no *other*
        # workload still builds with it (for_family would otherwise feed
        # the wrong dataclass to the sibling's builder)
        if definition.family in _BUILTIN_FAMILIES:
            raise ValueError(
                f"workload {definition.name!r}: {definition.family!r} is a "
                f"shipped parameter family and its contract cannot be "
                f"changed")
        if not overwrite:
            raise ValueError(
                f"workload {definition.name!r} declares family "
                f"{definition.family!r} with a parameter contract that "
                f"differs from the family's registered one")
        siblings = [d.name for d in _WORKLOADS.values()
                    if d.family == definition.family
                    and d.name != definition.name]
        if siblings:
            raise ValueError(
                f"cannot change the parameter contract of family "
                f"{definition.family!r}: workloads {siblings!r} still "
                f"build with it")
    _WORKLOADS[definition.name] = definition
    _FAMILIES[definition.family] = contract
    return definition


def register_workload(name: str, *, family: str, params: type,
                      default: object = None, tiny: object = None,
                      description: str = "",
                      tags: Iterable[str] = (),
                      overwrite: bool = False) -> Callable:
    """Decorator form of workload registration.

    Apply to the builder function::

        @register_workload("sobel_edge", family="sobel",
                           params=SobelParameters,
                           tiny=SobelParameters(width=32, height=24),
                           description="3x3 Sobel gradient stencil",
                           tags=("mediabench-plus", "stencil"))
        def build_sobel_edge_program(flavor, params): ...

    ``default`` falls back to ``params()`` (the dataclass default
    construction) and ``tiny`` falls back to ``default`` — always provide
    a real tiny size, or the test suites will simulate this workload at
    full size.  Returns the builder unchanged so the module can still
    export and call it directly.
    """
    default_params = default if default is not None else params()
    tiny_params = tiny if tiny is not None else default_params

    def decorate(builder: Callable) -> Callable:
        register_workload_definition(
            WorkloadDefinition(name=name, family=family, builder=builder,
                               params_type=params,
                               default_params=default_params,
                               tiny_params=tiny_params,
                               description=description, tags=tuple(tags)),
            overwrite=overwrite)
        return builder

    return decorate


def unregister_workload(name: str) -> None:
    """Remove a user-registered workload (shipped names are protected).

    The family's parameter contract is released with the last workload
    registered in it, so the family name becomes reusable (possibly with
    a different dataclass) and :meth:`SuiteParameters.tiny` stops carrying
    sizes for it.
    """
    if name in _BUILTIN_NAMES:
        raise ValueError(f"{name!r} is a shipped benchmark and cannot be "
                         f"unregistered")
    definition = _WORKLOADS.pop(name, None)
    if definition is not None and not any(
            d.family == definition.family for d in _WORKLOADS.values()):
        _FAMILIES.pop(definition.family, None)


def get_workload(name: str) -> WorkloadDefinition:
    """Look up one workload by registry name.

    Unknown names raise ``KeyError`` listing the known benchmarks, exactly
    like :func:`repro.machine.config.get_config` does for machines.
    """
    ensure_builtin_workloads()
    definition = _WORKLOADS.get(name)
    if definition is None:
        known = ", ".join(_WORKLOADS)
        raise KeyError(f"unknown benchmark {name!r}; known: {known}")
    return definition


def registered_workloads() -> Dict[str, WorkloadDefinition]:
    """Snapshot of the registry (shipped and user entries), in order."""
    ensure_builtin_workloads()
    return dict(_WORKLOADS)


def workload_names(tag: Optional[str] = None) -> Tuple[str, ...]:
    """Registered benchmark names, optionally restricted to one tag."""
    ensure_builtin_workloads()
    if tag is None:
        return tuple(_WORKLOADS)
    return tuple(name for name, definition in _WORKLOADS.items()
                 if definition.has_tag(tag))


def user_workload_definitions() -> Dict[str, WorkloadDefinition]:
    """The registry entries users added on top of the shipped benchmarks.

    These are the definitions that ride along to pool workers: a shipped
    benchmark re-registers itself when its program module is imported, but
    a user registration exists only in the process that made it.
    :func:`repro.core.runner.execute_requests` forwards this mapping to
    every worker's initialiser (the definitions must pickle — in practice,
    the builder must be a module-level callable) to keep worker registry
    state consistent with the parent's; the execution hot path itself runs
    from pre-built, pickled specs and does not consult the registry.
    """
    ensure_builtin_workloads()
    return {name: definition for name, definition in _WORKLOADS.items()
            if name not in _BUILTIN_NAMES}


def registered_families() -> Dict[str, Tuple[type, object, object]]:
    """family -> (params_type, default, tiny) for every registered family."""
    ensure_builtin_workloads()
    return dict(_FAMILIES)


def family_parameters(family: str, tiny: bool = False) -> object:
    """The registered default (or tiny) parameter instance of one family."""
    ensure_builtin_workloads()
    try:
        params_type, default, tiny_params = _FAMILIES[family]
    except KeyError as exc:
        known = ", ".join(_FAMILIES)
        raise KeyError(f"unknown parameter family {family!r}; "
                       f"known: {known}") from exc
    return tiny_params if tiny else default


def select_benchmarks(selectors: Iterable[str]) -> Tuple[str, ...]:
    """Resolve CLI-style benchmark selectors to registry names.

    Each selector is a benchmark name, ``tag:<tag>`` (every benchmark
    carrying the tag), or ``all`` (every registered benchmark).  The result
    is de-duplicated and ordered by registry (presentation) order.  Unknown
    names raise ``KeyError``; a tag matching nothing raises ``ValueError``
    so a typo cannot silently select an empty suite.
    """
    ensure_builtin_workloads()
    chosen: Dict[str, None] = {}
    for selector in selectors:
        if selector == "all":
            for name in _WORKLOADS:
                chosen.setdefault(name)
        elif selector.startswith("tag:"):
            tag = selector[len("tag:"):]
            matches = workload_names(tag)
            if not matches:
                known = sorted({t for d in _WORKLOADS.values() for t in d.tags})
                raise ValueError(f"no benchmark carries tag {tag!r}; "
                                 f"known tags: {', '.join(known)}")
            for name in matches:
                chosen.setdefault(name)
        else:
            chosen.setdefault(get_workload(selector).name)
    ordered = tuple(name for name in _WORKLOADS if name in chosen)
    return ordered
