"""Shared IR-building patterns used by the benchmark modules.

The six applications are built from a small number of recurring code
shapes; this module provides emitters for them so each benchmark module can
focus on the parameters that make it that benchmark (arrays, operation
mixes, loop extents):

* **element-wise streaming kernels** (colour conversion, quantisation,
  up-sampling, add-block): one or more input streams are loaded, a fixed
  per-element operation mix is applied and one or more output streams are
  stored.  Emitters exist for the three ISA flavours;
* **8×8 block transforms** (forward/inverse DCT): two passes over the block
  with a butterfly-style operation mix;
* **reduction kernels** (SAD motion estimation, autocorrelation, LTP
  search) built around packed accumulators in the vector flavour;
* **scalar-region shapes**: bit-stream encoding with a bit-buffer
  recurrence and table look-ups (Huffman/VLC), table-driven decoding with a
  data-dependent chain (VLD), and recursive filters (LPC/short-term
  synthesis).  These are the code shapes whose ILP does not scale with
  issue width, which is the behaviour the paper's scalar regions exhibit.

Operation mixes are expressed as sequences of ``(opcode, count)`` pairs and
emitted as two interleaved dependence chains, which yields the moderate ILP
(2–3) typical of hand-optimised DSP code.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.compiler.builder import KernelBuilder
from repro.compiler.ir import AddressExpr, ISAFlavor
from repro.isa.operations import Opcode
from repro.memory.layout import ArraySpec

__all__ = [
    "OpMix",
    "emit_scalar_mix",
    "emit_packed_mix",
    "emit_vector_mix",
    "emit_elementwise_scalar",
    "emit_elementwise_usimd",
    "emit_elementwise_vector",
    "emit_block_transform_scalar",
    "emit_block_transform_usimd",
    "emit_block_transform_vector",
    "emit_dot_product",
    "emit_bitstream_encoder",
    "emit_table_decoder",
    "emit_recursive_filter",
]

#: An operation mix: ``(opcode, how_many)`` pairs applied per element / word.
OpMix = Sequence[Tuple[Opcode, int]]


# ---------------------------------------------------------------------------
# operation-mix emitters
# ---------------------------------------------------------------------------

def _expand(mix: OpMix) -> List[Opcode]:
    expanded: List[Opcode] = []
    for opcode, count in mix:
        expanded.extend([opcode] * count)
    return expanded


#: Default number of interleaved dependence chains in the DLP kernels.  The
#: hand-optimised media kernels of the paper expose enough ILP that the
#: vector regions scale with issue width (Figure 1); four parallel chains
#: reproduce that behaviour, while the scalar-region shapes below override
#: this with two chains (or true recurrences) to model their limited ILP.
DEFAULT_CHAINS = 4


def emit_scalar_mix(builder: KernelBuilder, mix: OpMix,
                    seeds: Sequence = (), comment: str = "",
                    chains: int = DEFAULT_CHAINS) -> List:
    """Emit a scalar operation mix as ``chains`` interleaved dependence chains.

    ``seeds`` (typically freshly loaded values) prime the chains; the return
    value is the list of live results (chain tails), which callers usually
    feed into stores.
    """
    chains = max(1, int(chains))
    lanes: List = list(seeds[:chains]) if seeds else []
    while len(lanes) < chains:
        lanes.append(builder.iop(Opcode.MOV, comment=comment or "init"))
    for index, opcode in enumerate(_expand(mix)):
        lane = index % chains
        source = lanes[lane]
        lanes[lane] = builder.iop(opcode, srcs=(source,), comment=comment)
    return lanes


def emit_packed_mix(builder: KernelBuilder, mix: OpMix,
                    seeds: Sequence = (), subwords: Optional[int] = None,
                    comment: str = "", chains: int = DEFAULT_CHAINS) -> List:
    """Emit a µSIMD operation mix as ``chains`` interleaved dependence chains."""
    chains = max(1, int(chains))
    lanes: List = list(seeds[:chains]) if seeds else []
    while len(lanes) < chains:
        lanes.append(builder.simd(Opcode.PLOGICAL, comment=comment or "init"))
    for index, opcode in enumerate(_expand(mix)):
        lane = index % chains
        source = lanes[lane]
        lanes[lane] = builder.simd(opcode, source, subwords=subwords, comment=comment)
    return lanes


def emit_vector_mix(builder: KernelBuilder, mix: OpMix, vl: int,
                    seeds: Sequence = (), subwords: Optional[int] = None,
                    comment: str = "", chains: int = DEFAULT_CHAINS) -> List:
    """Emit a Vector-µSIMD operation mix as ``chains`` interleaved chains."""
    chains = max(1, int(chains))
    lanes: List = list(seeds[:chains]) if seeds else []
    while len(lanes) < chains:
        lanes.append(builder.vop(Opcode.VLOGICAL, vl=vl, comment=comment or "init"))
    for index, opcode in enumerate(_expand(mix)):
        lane = index % chains
        source = lanes[lane]
        lanes[lane] = builder.vop(opcode, source, vl=vl, subwords=subwords,
                                  comment=comment)
    return lanes


# ---------------------------------------------------------------------------
# element-wise streaming kernels
# ---------------------------------------------------------------------------

def emit_elementwise_scalar(builder: KernelBuilder, inputs: Sequence[ArraySpec],
                            outputs: Sequence[ArraySpec], rows: int, cols: int,
                            mix: OpMix, element_bytes: int = 1,
                            label: str = "") -> None:
    """Scalar per-element streaming loop nest.

    One iteration of the inner loop processes one element: it loads one
    value from every input array, applies the scalar operation mix and
    stores one value to every output array.
    """
    with builder.loop(rows, name=f"{label}_row") as row:
        with builder.loop(cols, name=f"{label}_col") as col:
            seeds = []
            for array in inputs:
                addr = AddressExpr(base=array.base).with_term(
                    row, array.shape[-1] * element_bytes).with_term(col, element_bytes)
                seeds.append(builder.load8(addr, comment=f"load {array.name}"))
            chains = emit_scalar_mix(builder, mix, seeds=seeds, comment=label)
            for index, array in enumerate(outputs):
                addr = AddressExpr(base=array.base).with_term(
                    row, array.shape[-1] * element_bytes).with_term(col, element_bytes)
                builder.store8(addr, chains[index % len(chains)],
                               comment=f"store {array.name}")


def emit_elementwise_usimd(builder: KernelBuilder, inputs: Sequence[ArraySpec],
                           outputs: Sequence[ArraySpec], rows: int, cols: int,
                           mix: OpMix, element_bytes: int = 1,
                           label: str = "") -> None:
    """µSIMD per-packed-word streaming loop nest (8 bytes per iteration)."""
    bytes_per_row = cols * element_bytes
    words_per_row = max(1, bytes_per_row // 8)
    with builder.loop(rows, name=f"{label}_row") as row:
        with builder.loop(words_per_row, name=f"{label}_word") as word:
            seeds = []
            for array in inputs:
                addr = AddressExpr(base=array.base).with_term(
                    row, array.shape[-1] * element_bytes).with_term(word, 8)
                seeds.append(builder.mload(addr, comment=f"mload {array.name}"))
            chains = emit_packed_mix(builder, mix, seeds=seeds, comment=label)
            for index, array in enumerate(outputs):
                addr = AddressExpr(base=array.base).with_term(
                    row, array.shape[-1] * element_bytes).with_term(word, 8)
                builder.mstore(addr, chains[index % len(chains)],
                               comment=f"mstore {array.name}")


def emit_elementwise_vector(builder: KernelBuilder, inputs: Sequence[ArraySpec],
                            outputs: Sequence[ArraySpec], rows: int, cols: int,
                            mix: OpMix, vl: int = 16, element_bytes: int = 1,
                            label: str = "") -> None:
    """Vector-µSIMD streaming loop nest (``vl`` packed words per iteration).

    Rows are processed ``vl * 8 / element_bytes`` elements at a time with
    stride-one vector loads/stores, which is exactly how the colour
    conversion and up-sampling kernels of the paper use the vector cache.
    """
    bytes_per_row = cols * element_bytes
    words_per_row = max(1, bytes_per_row // 8)
    vl = max(1, min(vl, 16, words_per_row))
    chunks_per_row = max(1, words_per_row // vl)
    with builder.loop(rows, name=f"{label}_row") as row:
        with builder.loop(chunks_per_row, name=f"{label}_chunk") as chunk:
            builder.setvl(vl)
            seeds = []
            for array in inputs:
                addr = AddressExpr(base=array.base).with_term(
                    row, array.shape[-1] * element_bytes).with_term(chunk, vl * 8)
                seeds.append(builder.vload(addr, vl=vl, stride_bytes=8,
                                           comment=f"vload {array.name}"))
            chains = emit_vector_mix(builder, mix, vl=vl, seeds=seeds, comment=label)
            for index, array in enumerate(outputs):
                addr = AddressExpr(base=array.base).with_term(
                    row, array.shape[-1] * element_bytes).with_term(chunk, vl * 8)
                builder.vstore(addr, chains[index % len(chains)], vl=vl,
                               stride_bytes=8, comment=f"vstore {array.name}")


# ---------------------------------------------------------------------------
# 8x8 block transforms (DCT / IDCT shape)
# ---------------------------------------------------------------------------

def emit_block_transform_scalar(builder: KernelBuilder, source: ArraySpec,
                                destination: ArraySpec, blocks: int,
                                point_mix: OpMix, element_bytes: int = 2,
                                label: str = "dct") -> None:
    """Scalar two-pass 8×8 transform.

    Each pass processes the eight 8-point vectors of the block: eight loads,
    the 1-D butterfly operation mix, eight stores.  The per-point operation
    mix is supplied by the caller (e.g. the LLM DCT uses roughly 11
    multiplies and 29 additions per 8-point transform).
    """
    with builder.loop(blocks, name=f"{label}_blk") as blk:
        for pass_name in ("rows", "cols"):
            with builder.loop(8, name=f"{label}_{pass_name}") as line:
                values = []
                for k in range(8):
                    addr = AddressExpr(base=source.base).with_term(
                        blk, 64 * element_bytes).with_term(line, 8 * element_bytes)
                    values.append(builder.load(addr.shifted(k * element_bytes),
                                               comment=f"{label} load"))
                chains = emit_scalar_mix(builder, point_mix, seeds=values[:2],
                                         comment=f"{label} {pass_name}")
                for k in range(8):
                    addr = AddressExpr(base=destination.base).with_term(
                        blk, 64 * element_bytes).with_term(line, 8 * element_bytes)
                    builder.store(addr.shifted(k * element_bytes),
                                  chains[k % len(chains)], comment=f"{label} store")


def emit_block_transform_usimd(builder: KernelBuilder, source: ArraySpec,
                               destination: ArraySpec, blocks: int,
                               word_mix: OpMix, element_bytes: int = 2,
                               label: str = "dct") -> None:
    """µSIMD two-pass 8×8 transform (four 16-bit lanes per packed word).

    Per pass the block is held as 16 packed words (8 rows × 2 words); the
    supplied mix is the per-pass packed-operation budget of a hand written
    MMX transform (transpose + butterflies).
    """
    with builder.loop(blocks, name=f"{label}_blk") as blk:
        for pass_name in ("rows", "cols"):
            with builder.loop(2, name=f"{label}_{pass_name}") as half:
                words = []
                for k in range(8):
                    addr = AddressExpr(base=source.base).with_term(
                        blk, 64 * element_bytes).with_term(half, 8)
                    words.append(builder.mload(addr.shifted(k * 8 * element_bytes),
                                               comment=f"{label} mload"))
                chains = emit_packed_mix(builder, word_mix, seeds=words[:2],
                                         subwords=4, comment=f"{label} {pass_name}")
                for k in range(8):
                    addr = AddressExpr(base=destination.base).with_term(
                        blk, 64 * element_bytes).with_term(half, 8)
                    builder.mstore(addr.shifted(k * 8 * element_bytes),
                                   chains[k % len(chains)], comment=f"{label} mstore")


def emit_block_transform_vector(builder: KernelBuilder, source: ArraySpec,
                                destination: ArraySpec, blocks: int,
                                vector_mix: OpMix, element_bytes: int = 2,
                                label: str = "dct") -> None:
    """Vector-µSIMD two-pass 8×8 transform.

    A whole 8×8 16-bit block is 16 packed words, i.e. one full vector
    register (``VL = 16``); each pass loads the block with two stride-one
    vector loads of length 8, applies the vector operation mix and stores it
    back.  This is the "larger loop sizes benefit from more vector units"
    case the paper highlights for the DCTs.
    """
    with builder.loop(blocks, name=f"{label}_blk") as blk:
        for pass_name in ("rows", "cols"):
            builder.setvl(8)
            base = AddressExpr(base=source.base).with_term(blk, 64 * element_bytes)
            low = builder.vload(base, vl=8, stride_bytes=8,
                                comment=f"{label} vload lo")
            high = builder.vload(base.shifted(64), vl=8, stride_bytes=8,
                                 comment=f"{label} vload hi")
            chains = emit_vector_mix(builder, vector_mix, vl=8, seeds=[low, high],
                                     subwords=4, comment=f"{label} {pass_name}")
            out = AddressExpr(base=destination.base).with_term(blk, 64 * element_bytes)
            builder.vstore(out, chains[0], vl=8, stride_bytes=8,
                           comment=f"{label} vstore lo")
            builder.vstore(out.shifted(64), chains[1], vl=8, stride_bytes=8,
                           comment=f"{label} vstore hi")


# ---------------------------------------------------------------------------
# reduction kernels
# ---------------------------------------------------------------------------

def emit_dot_product(builder: KernelBuilder, a: ArraySpec, a_offset, b: ArraySpec,
                     b_offset, samples: int, label: str) -> None:
    """One fixed-length 16-bit dot product in the current ISA flavour.

    ``a_offset`` / ``b_offset`` are affine address expressions pointing at
    the first sample of each operand (already including any loop terms of
    the caller).  Vector flavour: multiply-accumulate into a packed
    accumulator, reduced by ``SUM``; µSIMD: ``pmaddwd`` over packed words
    of four samples; scalar: one multiply-add per sample.  Used by the GSM
    correlation kernels and the FIR filter bank.
    """
    words = max(1, samples // 4)
    if builder.flavor is ISAFlavor.VECTOR:
        vl = min(16, words)
        chunks, tail = divmod(words, vl)
        builder.setvl(vl)
        acc = builder.acc_clear(comment=f"{label} acc=0")
        with builder.loop(chunks, name=f"{label}_chunk") as chunk:
            va = builder.vload(a_offset.with_term(chunk, vl * 8), vl=vl, stride_bytes=8,
                               comment=f"{label} vload a")
            vb = builder.vload(b_offset.with_term(chunk, vl * 8), vl=vl, stride_bytes=8,
                               comment=f"{label} vload b")
            builder.vmac(acc, va, vb, vl=vl, comment=f"{label} vmac")
        if tail:
            # remainder words when the operand is not a whole number of
            # vectors — the same MACs the other flavours model
            builder.setvl(tail)
            va = builder.vload(a_offset.shifted(chunks * vl * 8), vl=tail,
                               stride_bytes=8, comment=f"{label} vload a tail")
            vb = builder.vload(b_offset.shifted(chunks * vl * 8), vl=tail,
                               stride_bytes=8, comment=f"{label} vload b tail")
            builder.vmac(acc, va, vb, vl=tail, comment=f"{label} vmac tail")
        builder.vsum(acc, comment=f"{label} sum")
    elif builder.flavor is ISAFlavor.USIMD:
        total = builder.iop(Opcode.MOV, comment=f"{label} acc=0")
        with builder.loop(words, name=f"{label}_word") as word:
            ma = builder.mload(a_offset.with_term(word, 8), comment=f"{label} mload a")
            mb = builder.mload(b_offset.with_term(word, 8), comment=f"{label} mload b")
            prod = builder.simd(Opcode.PMADDWD, ma, mb, subwords=4,
                                comment=f"{label} pmaddwd")
            partial = builder.simd(Opcode.PADDW, prod, subwords=2,
                                   comment=f"{label} pair add")
            total = builder.iop(Opcode.ADD, srcs=(total, partial),
                                comment=f"{label} acc +=")
    else:
        total = builder.iop(Opcode.MOV, comment=f"{label} acc=0")
        with builder.loop(samples, name=f"{label}_n") as n:
            va = builder.load(a_offset.with_term(n, 2), comment=f"{label} load a")
            vb = builder.load(b_offset.with_term(n, 2), comment=f"{label} load b")
            prod = builder.iop(Opcode.MUL, srcs=(va, vb), comment=f"{label} mul")
            total = builder.iop(Opcode.ADD, srcs=(total, prod), comment=f"{label} acc +=")


# ---------------------------------------------------------------------------
# scalar-region shapes
# ---------------------------------------------------------------------------

def emit_bitstream_encoder(builder: KernelBuilder, symbols: ArraySpec,
                           table: ArraySpec, output: ArraySpec, count: int,
                           work_mix: OpMix, lookups: int = 2,
                           label: str = "huffman") -> None:
    """Huffman/VLC style encoder: per symbol, table look-ups feeding a
    bit-buffer recurrence.

    The bit buffer is a genuine first-order recurrence (every symbol's shift
    and OR depend on the previous symbol's result), which is why this region
    does not scale with issue width.
    """
    bitbuf = builder.iop(Opcode.MOV, comment=f"{label} bitbuf init")
    with builder.loop(count, name=f"{label}_sym") as sym:
        value = builder.load8(AddressExpr(base=symbols.base).with_term(sym, 1),
                              comment=f"{label} load symbol")
        looked = value
        for _ in range(max(1, lookups)):
            looked = builder.table_lookup(table, looked, comment=f"{label} code lookup")
        emit_scalar_mix(builder, work_mix, seeds=[looked, value], comment=label,
                        chains=2)
        # bit-buffer recurrence: shift in the new code, spill one byte
        bitbuf = builder.iop(Opcode.SHL, srcs=(bitbuf,), comment=f"{label} bitbuf <<")
        bitbuf = builder.iop(Opcode.OR, srcs=(bitbuf, looked), comment=f"{label} bitbuf |")
        builder.store8(AddressExpr(base=output.base).with_term(sym, 1), bitbuf,
                       comment=f"{label} emit byte")


def emit_table_decoder(builder: KernelBuilder, bitstream: ArraySpec,
                       table: ArraySpec, output: ArraySpec, count: int,
                       work_mix: OpMix, lookups: int = 2,
                       label: str = "vld") -> None:
    """VLD/Huffman-decode shape: data-dependent look-up chain per symbol.

    Each decoded symbol's table index depends on the bits left over from the
    previous symbol, so the look-ups form a serial chain across iterations —
    the worst case for wide issue.
    """
    state = builder.iop(Opcode.MOV, comment=f"{label} decoder state")
    with builder.loop(count, name=f"{label}_sym") as sym:
        raw = builder.load8(AddressExpr(base=bitstream.base).with_term(sym, 1),
                            comment=f"{label} refill")
        state = builder.iop(Opcode.OR, srcs=(state, raw), comment=f"{label} refill merge")
        looked = state
        for _ in range(max(1, lookups)):
            looked = builder.table_lookup(table, looked, comment=f"{label} decode lookup")
        state = builder.iop(Opcode.SHL, srcs=(looked,), comment=f"{label} consume bits")
        chains = emit_scalar_mix(builder, work_mix, seeds=[looked, raw], comment=label,
                                 chains=2)
        builder.store8(AddressExpr(base=output.base).with_term(sym, 1),
                       chains[0], comment=f"{label} store symbol")


def emit_recursive_filter(builder: KernelBuilder, source: ArraySpec,
                          destination: ArraySpec, samples: int, taps: int,
                          work_mix: OpMix = (), element_bytes: int = 2,
                          label: str = "filter") -> None:
    """First-order-recurrence filter (LPC lattice / short-term synthesis).

    Every output sample depends on the previous output sample through a
    multiply-add chain of ``taps`` stages; independent bookkeeping from
    ``work_mix`` can overlap with it, but the recurrence bounds the ILP.
    """
    state = builder.iop(Opcode.MOV, comment=f"{label} state init")
    with builder.loop(samples, name=f"{label}_n") as n:
        sample = builder.load(AddressExpr(base=source.base).with_term(n, element_bytes),
                              comment=f"{label} load sample")
        value = sample
        for _ in range(max(1, taps)):
            value = builder.iop(Opcode.MUL, srcs=(value, state), comment=f"{label} mac")
            value = builder.iop(Opcode.ADD, srcs=(value,), comment=f"{label} acc")
        state = builder.iop(Opcode.ADD, srcs=(state, value), comment=f"{label} recurrence")
        if work_mix:
            emit_scalar_mix(builder, work_mix, seeds=[sample], comment=label, chains=2)
        builder.store(AddressExpr(base=destination.base).with_term(n, element_bytes),
                      state, comment=f"{label} store sample")
