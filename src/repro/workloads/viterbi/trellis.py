"""Functional Viterbi decoding of a GSM-style convolutional code.

The code is the GSM 06.10 channel code: rate 1/2, constraint length 5
(16 trellis states), generators ``G0 = 1 + D^3 + D^4`` and
``G1 = 1 + D + D^3 + D^4``.  Three flavours of the decoder are provided:

* :func:`viterbi_decode_reference` — NumPy int64 path metrics, the oracle;
* :func:`viterbi_decode_usimd` — the add-compare-select (ACS) arithmetic
  performed with packed 16-bit operations (``paddw`` / ``pminsw`` /
  ``pcmpgtw``) over four words of four states each, the way a hand written
  MMX decoder lays the 16 metrics out.  The predecessor gather between
  steps is expressed as an index permutation, standing in for the
  unpack/interleave network of the real kernel;
* :func:`viterbi_decode_vector` — the same ACS with the packed words
  stacked into a vector-register value (shape ``(VL, lanes)``) and
  operated on through :func:`repro.isa.vectorops.vmap2`.

Path metrics are re-normalised (minimum subtracted) every step in *all*
flavours, which keeps the 16-bit arithmetic exact and makes the three
versions bit-identical — the tests assert it.
"""

from __future__ import annotations

import numpy as np

from repro.isa import packed, vectorops

__all__ = [
    "CODE_RATE",
    "CONSTRAINT_LENGTH",
    "NUM_STATES",
    "convolutional_encode_reference",
    "viterbi_decode_reference",
    "viterbi_decode_usimd",
    "viterbi_decode_vector",
]

#: Output bits per input bit.
CODE_RATE = 2
#: Constraint length of the GSM channel code (memory 4, 16 states).
CONSTRAINT_LENGTH = 5
NUM_STATES = 1 << (CONSTRAINT_LENGTH - 1)

#: Generators, newest input bit at the LSB of the 5-bit window.
_G0 = 0b11001  # 1 + D^3 + D^4
_G1 = 0b11011  # 1 + D + D^3 + D^4


def _parity(values: np.ndarray) -> np.ndarray:
    out = np.zeros_like(values)
    for shift in range(CONSTRAINT_LENGTH):
        out ^= (values >> shift) & 1
    return out


def _branch_table() -> np.ndarray:
    """``(2, NUM_STATES, 2)`` coded bit pair for (input bit, state) pairs.

    Entry ``[b, s]`` is the output pair emitted when input bit ``b``
    arrives in state ``s`` (the previous four input bits, newest at LSB).
    """
    states = np.arange(NUM_STATES)
    table = np.zeros((2, NUM_STATES, 2), dtype=np.int64)
    for bit in (0, 1):
        window = (states << 1) | bit
        table[bit, :, 0] = _parity(window & _G0)
        table[bit, :, 1] = _parity(window & _G1)
    return table


_BRANCHES = _branch_table()

#: Predecessor states of each new state ``n = ((s << 1) | b) & 0xF``:
#: ``n`` is reached from ``n >> 1`` and ``(n >> 1) | 8``.
_PRED_LOW = np.arange(NUM_STATES) >> 1
_PRED_HIGH = _PRED_LOW | (NUM_STATES // 2)


def convolutional_encode_reference(bits: np.ndarray) -> np.ndarray:
    """Encode ``bits`` (plus 4 flush zeros) to ``2 * (n + 4)`` coded bits."""
    bits = np.asarray(bits, dtype=np.int64).ravel()
    if bits.size == 0:
        raise ValueError("need at least one input bit")
    padded = np.concatenate([bits, np.zeros(CONSTRAINT_LENGTH - 1, np.int64)])
    coded = np.empty(padded.size * CODE_RATE, dtype=np.int64)
    state = 0
    for index, bit in enumerate(padded):
        coded[2 * index:2 * index + 2] = _BRANCHES[bit, state]
        state = ((state << 1) | int(bit)) & (NUM_STATES - 1)
    return coded


def _branch_metrics(pair: np.ndarray) -> np.ndarray:
    """Hamming branch metric of every (input bit, state) transition."""
    return np.abs(_BRANCHES[..., 0] - pair[0]) + np.abs(_BRANCHES[..., 1] - pair[1])


def _acs_sweep(coded: np.ndarray, add, minimum, greater, gather):
    """The shared trellis sweep; flavours differ only in the ACS arithmetic.

    ``add``/``minimum``/``greater`` operate on a metric vector of
    ``NUM_STATES`` 16-bit values in whatever layout the flavour uses;
    ``gather`` permutes a metric vector by a state-index array.
    """
    coded = np.asarray(coded, dtype=np.int64).ravel()
    if coded.size % CODE_RATE:
        raise ValueError("coded stream must hold whole output pairs")
    steps = coded.size // CODE_RATE
    if steps < CONSTRAINT_LENGTH:
        raise ValueError("coded stream shorter than one constraint length")
    new_bits = np.arange(NUM_STATES) & 1
    metrics = np.full(NUM_STATES, 64, dtype=np.int16)
    metrics[0] = 0  # the encoder starts in state 0
    decisions = np.zeros((steps, NUM_STATES), dtype=np.int8)
    for t in range(steps):
        bm = _branch_metrics(coded[2 * t:2 * t + 2])
        # candidate path metrics through the low / high predecessor
        low = add(gather(metrics, _PRED_LOW),
                  bm[new_bits, _PRED_LOW].astype(np.int16))
        high = add(gather(metrics, _PRED_HIGH),
                   bm[new_bits, _PRED_HIGH].astype(np.int16))
        decisions[t] = greater(low, high)  # 1: the high predecessor wins
        survivors = minimum(low, high)
        metrics = add(survivors, np.full(NUM_STATES, -int(survivors.min()),
                                         dtype=np.int16))
    # traceback from the best final state (the flush bits drive it to 0)
    state = int(np.argmin(metrics))
    decoded = np.zeros(steps, dtype=np.int64)
    for t in range(steps - 1, -1, -1):
        decoded[t] = state & 1
        state = (state >> 1) | (int(decisions[t, state]) << (NUM_STATES.bit_length() - 2))
    return decoded[:steps - (CONSTRAINT_LENGTH - 1)]


def viterbi_decode_reference(coded: np.ndarray) -> np.ndarray:
    """Reference decoder: plain NumPy arithmetic on the metric vector."""
    return _acs_sweep(
        coded,
        add=lambda a, b: (a.astype(np.int64) + b).astype(np.int16),
        minimum=np.minimum,
        greater=lambda a, b: (b < a).astype(np.int8),
        gather=lambda metrics, index: metrics[index],
    )


def viterbi_decode_usimd(coded: np.ndarray) -> np.ndarray:
    """µSIMD decoder: packed 16-bit ACS over four words of four states."""

    def to_words(flat):
        return packed.to_packed(np.asarray(flat, dtype=np.int16), packed.LANES_16)

    def add(a, b):
        return packed.from_packed(packed.paddw(to_words(a), to_words(b)))

    def minimum(a, b):
        return packed.from_packed(packed.pminsw(to_words(a), to_words(b)))

    def greater(a, b):
        mask = packed.pcmpgtw(to_words(a), to_words(b))
        return (packed.from_packed(mask) & 1).astype(np.int8)

    return _acs_sweep(coded, add=add, minimum=minimum, greater=greater,
                      gather=lambda metrics, index: metrics[index])


def viterbi_decode_vector(coded: np.ndarray) -> np.ndarray:
    """Vector-µSIMD decoder: the four packed words as one vector value."""

    def to_vec(flat):
        return packed.to_packed(np.asarray(flat, dtype=np.int16), packed.LANES_16)

    def add(a, b):
        return packed.from_packed(vectorops.vmap2(packed.paddw, to_vec(a), to_vec(b)))

    def minimum(a, b):
        return packed.from_packed(vectorops.vmap2(packed.pminsw, to_vec(a), to_vec(b)))

    def greater(a, b):
        mask = vectorops.vmap2(packed.pcmpgtw, to_vec(a), to_vec(b))
        return (packed.from_packed(mask) & 1).astype(np.int8)

    return _acs_sweep(coded, add=add, minimum=minimum, greater=greater,
                      gather=lambda metrics, index: metrics[index])
