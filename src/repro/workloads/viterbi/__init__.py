"""Viterbi channel decoding (GSM-style convolutional code).

The GSM full-rate channel coder protects the speech bits with a rate-1/2,
constraint-length-5 convolutional code; the receiver decodes it with the
Viterbi algorithm.  The kernel's hot loop is the *add-compare-select*
(ACS): per received bit pair, every one of the 16 trellis states adds a
branch metric to two predecessor path metrics, compares, and keeps the
survivor.  The ACS is data-parallel **across states** (that is how real
SIMD Viterbi implementations work) but strictly serial **across time
steps**, and the final traceback is a data-dependent pointer chase —
an access pattern none of the paper's six benchmarks exercises.

* :mod:`repro.workloads.viterbi.trellis` — functional encode/decode in the
  three flavours (NumPy reference, µSIMD packed ACS, Vector-µSIMD ACS);
* :mod:`repro.workloads.viterbi.programs` — the ``viterbi_dec`` kernel
  program (timing model) registered with the workload registry.
"""

from repro.workloads.viterbi.trellis import (
    CODE_RATE,
    CONSTRAINT_LENGTH,
    NUM_STATES,
    convolutional_encode_reference,
    viterbi_decode_reference,
    viterbi_decode_usimd,
    viterbi_decode_vector,
)

__all__ = [
    "CODE_RATE",
    "CONSTRAINT_LENGTH",
    "NUM_STATES",
    "convolutional_encode_reference",
    "viterbi_decode_reference",
    "viterbi_decode_usimd",
    "viterbi_decode_vector",
]
