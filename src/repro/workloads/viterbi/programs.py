"""Kernel program (timing model) for the Viterbi channel decoder.

Region structure:

``viterbi_dec``
    * R1 — branch metrics and add-compare-select: per received bit pair,
      all 16 trellis states update in parallel.  The scalar version walks
      the states one at a time; the µSIMD version processes four states
      per packed word; the vector version updates the whole metric vector
      with one short (VL = 4) vector operation sequence — the
      short-vector end of the suite's spectrum, where issue width and
      start-up overhead matter more than lanes;
    * R0 — the traceback: a data-dependent pointer chase through the
      decision array (each step's predecessor depends on the decision
      read in the step before), plus output bit packing.  Serial by
      construction, like every scalar region of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.builder import KernelBuilder
from repro.compiler.ir import ISAFlavor, KernelProgram
from repro.isa.operations import Opcode
from repro.memory.layout import AddressSpace
from repro.workloads import common
from repro.workloads.registry import register_workload
from repro.workloads.viterbi.trellis import CONSTRAINT_LENGTH, NUM_STATES

__all__ = ["ViterbiParameters", "build_viterbi_dec_program"]


@dataclass(frozen=True)
class ViterbiParameters:
    """Input geometry of the Viterbi decoding benchmark."""

    #: payload bits per decoded frame (GSM class-1a+1b block is 189;
    #: two blocks make the default)
    bits: int = 378
    #: decoded frames
    frames: int = 2
    #: extra scalar bookkeeping per traceback step (bit packing, CRC)
    scalar_work: int = 8

    def __post_init__(self) -> None:
        if self.bits < CONSTRAINT_LENGTH:
            raise ValueError("need at least one constraint length of bits")
        if self.frames < 1:
            raise ValueError("need at least one frame")

    @property
    def steps(self) -> int:
        """Trellis steps per frame (payload plus flush bits)."""
        return self.bits + CONSTRAINT_LENGTH - 1


#: per-state scalar ACS work besides the loads/stores: two metric adds,
#: the compare, the select and the decision-mask update
_ACS_SCALAR_MIX = ((Opcode.ADD, 2), (Opcode.CMP, 1), (Opcode.MOV, 1),
                   (Opcode.OR, 1))
#: per-packed-word ACS work: packed adds, packed min, packed compare for
#: the decision mask, and the word-level normalisation subtract
_ACS_PACKED_MIX = ((Opcode.PADDW, 2), (Opcode.PMINMAX, 1), (Opcode.PCMP, 1),
                   (Opcode.PSUBW, 1))
_ACS_VECTOR_MIX = ((Opcode.VADDW, 2), (Opcode.VLOGICAL, 1), (Opcode.VSUBW, 2))

#: per-step traceback work: predecessor reconstruction and bit packing
_TRACEBACK_WORK_MIX = ((Opcode.AND, 2), (Opcode.SHR, 2), (Opcode.OR, 1),
                       (Opcode.ADD, 2))


@register_workload("viterbi_dec", family="viterbi", params=ViterbiParameters,
                   tiny=ViterbiParameters(bits=48, frames=1),
                   description="Viterbi channel decoder: data-dependent "
                               "add-compare-select, serial traceback",
                   tags=("mediabench-plus", "speech", "short-vector"))
def build_viterbi_dec_program(flavor: ISAFlavor,
                              params: ViterbiParameters = ViterbiParameters()
                              ) -> KernelProgram:
    """Viterbi decoder program in the requested ISA flavour."""
    space = AddressSpace()
    steps = params.steps
    coded = space.allocate("coded", (params.frames * steps, 2), element_bytes=2)
    metrics = space.allocate("metrics", (2, NUM_STATES), element_bytes=2)
    branches = space.allocate("branches", (2, NUM_STATES), element_bytes=2)
    decisions = space.allocate("decisions", (steps, NUM_STATES), element_bytes=2)
    decoded = space.allocate("decoded", (params.frames * params.bits,),
                             element_bytes=1)
    pred_table = space.allocate("pred_table", (2 * NUM_STATES,), element_bytes=2)

    builder = KernelBuilder("viterbi_dec", flavor, address_space=space)
    state_words = NUM_STATES // 4  # packed words per metric vector
    decision_row = NUM_STATES * 2  # bytes per step in the decision array

    with builder.loop(params.frames, name="frame") as frame:
        coded_base = builder.addr(coded, (frame, steps * 4))

        # R1: per received pair, branch metrics + ACS across all states
        with builder.region("R1", "Branch metrics and ACS", vectorizable=True):
            with builder.loop(steps, name="step") as step:
                pair = coded_base.with_term(step, 4)
                received = builder.load(pair, comment="load received pair")
                builder.iop(Opcode.XOR, srcs=(received,),
                            comment="expected ^ received")
                if flavor is ISAFlavor.VECTOR:
                    builder.setvl(state_words)
                    prev = builder.vload(builder.addr(metrics), vl=state_words,
                                         stride_bytes=8, comment="vload metrics")
                    bm = builder.vload(builder.addr(branches), vl=state_words,
                                       stride_bytes=8, comment="vload branch metrics")
                    chains = common.emit_vector_mix(
                        builder, _ACS_VECTOR_MIX, vl=state_words,
                        seeds=[prev, bm], subwords=4, comment="acs", chains=2)
                    builder.vstore(builder.addr(metrics, offset=NUM_STATES * 2),
                                   chains[0], vl=state_words, stride_bytes=8,
                                   comment="vstore survivors")
                    builder.vstore(builder.addr(decisions, (step, decision_row)),
                                   chains[1], vl=state_words, stride_bytes=8,
                                   comment="vstore decisions")
                elif flavor is ISAFlavor.USIMD:
                    with builder.loop(state_words, name="word") as word:
                        prev = builder.mload(builder.addr(metrics, (word, 8)),
                                             comment="mload metrics")
                        bm = builder.mload(builder.addr(branches, (word, 8)),
                                           comment="mload branch metrics")
                        chains = common.emit_packed_mix(
                            builder, _ACS_PACKED_MIX, seeds=[prev, bm],
                            subwords=4, comment="acs", chains=2)
                        builder.mstore(
                            builder.addr(metrics, (word, 8),
                                         offset=NUM_STATES * 2),
                            chains[0], comment="mstore survivors")
                        builder.mstore(
                            builder.addr(decisions, (step, decision_row), (word, 8)),
                            chains[1], comment="mstore decisions")
                else:
                    with builder.loop(NUM_STATES, name="state") as state:
                        low = builder.load(builder.addr(metrics, (state, 2)),
                                           comment="load low-pred metric")
                        high = builder.load(builder.addr(metrics, (state, 2),
                                                         offset=NUM_STATES),
                                            comment="load high-pred metric")
                        chains = common.emit_scalar_mix(
                            builder, _ACS_SCALAR_MIX, seeds=[low, high],
                            comment="acs", chains=2)
                        builder.store(builder.addr(metrics, (state, 2),
                                                   offset=NUM_STATES * 2),
                                      chains[0], comment="store survivor")
                        builder.store(
                            builder.addr(decisions, (step, decision_row), (state, 2)),
                            chains[1], comment="store decision")

        # R0: the traceback — a serial pointer chase through the decisions
        with builder.region("R0", "Traceback and bit packing",
                            vectorizable=False):
            common.emit_table_decoder(
                builder, decisions, pred_table, decoded, count=params.bits,
                work_mix=_TRACEBACK_WORK_MIX
                + ((Opcode.ADD, params.scalar_work),),
                lookups=2, label="traceback")
    return builder.program()
