"""Seeded synthetic workloads: deterministic random programs + fuzz specs.

See :mod:`repro.workloads.synthetic.generator` for the parameter knobs,
:mod:`repro.workloads.synthetic.spec` for the portable program-spec form
the fuzz shrinker and reproducer files use, and
:mod:`repro.workloads.synthetic.programs` for the registered presets.
"""

from repro.workloads.synthetic.functional import (
    synthetic_payload,
    synthetic_reference,
    synthetic_usimd,
    synthetic_vector,
)
from repro.workloads.synthetic.generator import (
    SyntheticParameters,
    build_synthetic_program,
    generate_spec,
    params_for_seed,
)
from repro.workloads.synthetic.spec import (
    LoopSpec,
    ProgramSpec,
    Statement,
    build_program,
    canonical_spec_json,
    count_statements,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    "SyntheticParameters",
    "ProgramSpec",
    "LoopSpec",
    "Statement",
    "generate_spec",
    "build_program",
    "build_synthetic_program",
    "params_for_seed",
    "canonical_spec_json",
    "count_statements",
    "spec_to_dict",
    "spec_from_dict",
    "synthetic_payload",
    "synthetic_reference",
    "synthetic_usimd",
    "synthetic_vector",
]
